GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate: vet + build + tests under the race detector.
check:
	./scripts/check.sh

# bench runs the suite with -benchmem, writes a dated BENCH_<date>.json
# snapshot and diffs ns/op against the previous snapshot when one exists.
# Tune with BENCHTIME=2s or BENCH=<regexp>.
bench:
	./scripts/bench.sh
