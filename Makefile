GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the tier-1 gate: vet + build + tests under the race detector.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
