// Package alidrone is the public API of the AliDrone reproduction: a
// trustworthy Proof-of-Alibi (PoA) system that lets commercial drones
// prove compliance with no-fly zones to a third-party auditor
// (Liu, Hojjati, Bates, Nahrstedt — ICDCS 2018).
//
// The package re-exports the stable surface of the implementation
// packages so downstream users need a single import:
//
//   - geo:       coordinates, no-fly-zone circles, travel-range ellipses
//   - poa:       samples, Proofs-of-Alibi, sufficiency verification
//   - sampling:  the adaptive sampling algorithm and the fix-rate baseline
//   - tee:       the software trusted-execution-environment substrate
//   - gps:       the simulated NMEA GPS receiver and secure driver
//   - auditor:   the AliDrone Server (registries + verification + HTTP)
//   - operator:  the drone-side client (Adapter)
//   - privacy:   the one-time-key selective-disclosure extension
//
// See examples/quickstart for the complete five-minute tour.
package alidrone

import (
	"time"

	"repro/internal/auditor"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/operator"
	"repro/internal/planner"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/zone"
)

// Geometry and zones.
type (
	// LatLon is a WGS-84 coordinate in decimal degrees.
	LatLon = geo.LatLon
	// GeoCircle is a circular no-fly zone (centre + radius in metres).
	GeoCircle = geo.GeoCircle
	// Rect is a navigation-area rectangle for zone queries.
	Rect = geo.Rect
	// NFZ is a registered no-fly zone with its issued identifier.
	NFZ = zone.NFZ
	// ZoneIndex answers nearest-zone queries during flight.
	ZoneIndex = zone.Index
)

// Proof-of-Alibi core.
type (
	// Sample is one GPS observation (lat, lon, alt, t).
	Sample = poa.Sample
	// SignedSample is a sample plus its TEE signature.
	SignedSample = poa.SignedSample
	// PoA is the Proof-of-Alibi: the signed sample series.
	PoA = poa.PoA
	// SufficiencyReport is the outcome of verifying a PoA against zones.
	SufficiencyReport = poa.Report
)

// Platform substrate.
type (
	// Device is a TrustZone-capable drone SoC with its secure world.
	Device = tee.Device
	// KeyVault holds the manufacturer-provisioned TEE keypair.
	KeyVault = tee.KeyVault
	// SimClock drives deterministic simulations.
	SimClock = tee.SimClock
	// Receiver is the simulated 1-5 Hz NMEA GPS receiver.
	Receiver = gps.Receiver
	// Driver is the secure-world GPS driver.
	Driver = gps.Driver
	// Route is a piecewise-linear flight/drive trajectory.
	Route = trace.Route
)

// Protocol roles.
type (
	// AuditorServer is the AliDrone Server run by the authorized third
	// party.
	AuditorServer = auditor.Server
	// AuditorConfig parameterises the server.
	AuditorConfig = auditor.Config
	// Drone is the drone-side client (the Adapter plus protocol state).
	Drone = operator.Drone
	// Verdict is the auditor's conclusion about a submitted PoA.
	Verdict = protocol.Verdict
)

// Samplers.
type (
	// AdaptiveSampler implements the paper's Algorithm 1.
	AdaptiveSampler = sampling.Adaptive
	// FixedRateSampler is the fix-rate baseline.
	FixedRateSampler = sampling.FixedRate
	// SamplingEnv wires a sampler to receiver, clock and TEE.
	SamplingEnv = sampling.Env
)

// Privacy extension.
type (
	// SealedPoA is the one-time-key encrypted Proof-of-Alibi.
	SealedPoA = privacy.SealedPoA
	// KeyRing holds the operator's one-time keys for disclosure.
	KeyRing = privacy.KeyRing
)

// Verdicts.
const (
	// VerdictCompliant means the PoA proves NFZ compliance.
	VerdictCompliant = protocol.VerdictCompliant
	// VerdictViolation means a violation was detected (or the PoA failed
	// authentication).
	VerdictViolation = protocol.VerdictViolation
)

// Sufficiency test modes.
const (
	// Conservative is the paper's cheap boundary-distance test.
	Conservative = poa.Conservative
	// Exact decides true geometric ellipse-zone disjointness.
	Exact = poa.Exact
)

// Platform assembly and planning.
type (
	// Platform is the assembled drone: TEE device + receiver + sampler TA.
	Platform = core.Platform
	// PlatformConfig describes one platform build.
	PlatformConfig = core.PlatformConfig
	// SpoofGuardConfig tunes the §VII-A2 GPS plausibility detector.
	SpoofGuardConfig = core.SpoofGuardConfig
	// PlannerConfig tunes the NFZ-avoiding route planner.
	PlannerConfig = planner.Config
	// CylinderZone is a 3-D no-fly region (§VII-B1).
	CylinderZone = poa.CylinderZone
	// BatchPoA is the sign-once trace envelope (§VII-A1b).
	BatchPoA = poa.BatchPoA
)

// MaxDroneSpeedMPS is the FAA 100 mph speed bound in metres per second.
var MaxDroneSpeedMPS = geo.MaxDroneSpeedMPS

// NewPlatform manufactures a drone platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return core.NewPlatform(cfg) }

// NewRouteLine builds a straight constant-speed route: the simplest flight
// path for demos and tests.
func NewRouteLine(start LatLon, bearingDeg, speedMS float64, departure time.Time, dur time.Duration) (*Route, error) {
	return trace.ConstantSpeedLine(start, bearingDeg, speedMS, departure, dur)
}

// PlanRoute computes a no-fly-zone-avoiding waypoint route.
func PlanRoute(start, goal LatLon, zones []GeoCircle, cfg PlannerConfig) ([]LatLon, error) {
	return planner.PlanRoute(start, goal, zones, cfg)
}

// NewAuditor creates an AliDrone Server.
func NewAuditor(cfg AuditorConfig) (*AuditorServer, error) { return auditor.NewServer(cfg) }

// NewZoneIndex builds a nearest-zone index over a flight's NFZ set.
func NewZoneIndex(zones []GeoCircle) *ZoneIndex { return zone.NewIndex(zones, 0) }

// VerifySufficiency checks the paper's eq. 1 over a bare sample trace.
func VerifySufficiency(samples []Sample, zones []GeoCircle, vmaxMS float64, mode poa.TestMode) (SufficiencyReport, error) {
	return poa.VerifySufficiency(samples, zones, vmaxMS, mode)
}
