// End-to-end tracing check: one full drone mission replayed over HTTP
// must produce a single contiguous trace — the "drone.proof" root span
// with children for the TEE signing work, the HTTP submission, the
// auditor's server-side handling, each verification stage and the WAL
// commit — and the whole trace must be retrievable from the auditor's
// /debug/traces endpoint. The auditor runs at sample rate 0 throughout:
// every auditor-side span below exists only because the drone's sampling
// decision propagated over the wire (parent-based sampling).
package alidrone

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/auditor"
	"repro/internal/core"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/operator"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
	"repro/internal/trace"
)

// spanIndex gives parent/child lookups over one trace's records.
type spanIndex struct {
	t     *testing.T
	byID  map[string]otrace.SpanRecord
	spans []otrace.SpanRecord
}

func indexSpans(t *testing.T, spans []otrace.SpanRecord) *spanIndex {
	t.Helper()
	idx := &spanIndex{t: t, byID: make(map[string]otrace.SpanRecord), spans: spans}
	for _, s := range spans {
		idx.byID[s.SpanID] = s
	}
	return idx
}

// find returns the single span with the given name, failing the test on
// zero or multiple matches.
func (idx *spanIndex) find(name string) otrace.SpanRecord {
	idx.t.Helper()
	var found []otrace.SpanRecord
	for _, s := range idx.spans {
		if s.Name == name {
			found = append(found, s)
		}
	}
	if len(found) != 1 {
		idx.t.Fatalf("span %q: found %d, want exactly 1 (trace has %d spans)", name, len(found), len(idx.spans))
	}
	return found[0]
}

// requireChild asserts that the named span's parent chain reaches
// ancestorID, and returns the span.
func (idx *spanIndex) requireChild(name, ancestorID string) otrace.SpanRecord {
	idx.t.Helper()
	s := idx.find(name)
	for p := s.Parent; p != ""; {
		if p == ancestorID {
			return s
		}
		parent, ok := idx.byID[p]
		if !ok {
			break
		}
		p = parent.Parent
	}
	idx.t.Fatalf("span %q (parent %s) does not descend from %s", name, s.Parent, ancestorID)
	return s
}

func attr(s otrace.SpanRecord, key string) string {
	for _, a := range s.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

func TestMissionReplayProducesContiguousTrace(t *testing.T) {
	// One shared collector stands in for a trace backend both sides
	// export to, so the cross-process trace can be asserted as a whole.
	collector := otrace.NewRingCollector(otrace.DefaultRingSize)

	st, err := storage.OpenFileStore(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := auditor.OpenServer(auditor.Config{
		Metrics: obs.NewRegistry(nil),
		Tracer:  otrace.New(otrace.Options{Sample: 0, Sink: collector}),
	}, st, "")
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandlerOpts(srv, auditor.HandlerOptions{Collector: collector}))
	defer hs.Close()

	sc, err := trace.NewAirportScenario(trace.DefaultAirportConfig(benchStart))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := core.NewPlatform(core.PlatformConfig{Path: sc.Route, GPSRateHz: 1})
	if err != nil {
		t.Fatal(err)
	}

	droneTracer := otrace.New(otrace.Options{Sample: 1, Sink: collector})
	api := operator.NewHTTPAuditor(hs.URL, nil)
	api.SetTracer(droneTracer)
	auditorPub, err := api.FetchEncryptionPub()
	if err != nil {
		t.Fatal(err)
	}
	drone, err := operator.NewDrone(api, auditorPub, platform.Device(), platform.Clock(),
		sigcrypto.KeySize1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	drone.SetTracer(droneTracer)
	if err := drone.Register(); err != nil {
		t.Fatal(err)
	}
	rep, err := drone.RunMission(platform.Receiver(), sc.Route, operator.MissionConfig{Mode: operator.ModeAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Verdict != protocol.VerdictCompliant {
		t.Fatalf("mission verdict = %s (%s), want compliant", rep.Verdict.Verdict, rep.Verdict.Reason)
	}

	// The root span is the drone's proof; its trace must contain the
	// whole pipeline.
	var rootID, traceID string
	for _, s := range collector.Snapshot() {
		if s.Name == "drone.proof" {
			rootID, traceID = s.SpanID, s.TraceID
		}
	}
	if rootID == "" {
		t.Fatal("no drone.proof root span recorded")
	}
	idx := indexSpans(t, collector.Trace(traceID))

	root := idx.find("drone.proof")
	if root.Parent != "" {
		t.Errorf("drone.proof has parent %s, want root", root.Parent)
	}
	if got := attr(root, "verdict"); got != string(protocol.VerdictCompliant) {
		t.Errorf("root verdict attr = %q, want %q", got, protocol.VerdictCompliant)
	}
	idx.requireChild("tee.sign", rootID)
	client := idx.requireChild("http.client "+protocol.PathSubmitPoA, rootID)
	server := idx.requireChild("auditor "+protocol.PathSubmitPoA, client.SpanID)
	for _, stage := range []string{
		auditor.StageSignature, auditor.StageChronology, auditor.StageSpeed, auditor.StageSufficiency,
	} {
		idx.requireChild("verify."+stage, server.SpanID)
	}
	// The retained-PoA WAL commit descends from the auditor's server
	// span: the traced submission shows its durability cost.
	var walRetain bool
	for _, s := range idx.spans {
		if s.Name == "wal.append" && attr(s, "kind") == "poa-retained" {
			walRetain = true
		}
	}
	if !walRetain {
		t.Error("no wal.append span with kind=poa-retained in the trace")
	}

	// The same trace must be retrievable over HTTP from /debug/traces.
	resp, err := http.Get(hs.URL + auditor.PathDebugTraces + "?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var served []otrace.SpanRecord
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scan.Scan() {
		var rec otrace.SpanRecord
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", scan.Text(), err)
		}
		served = append(served, rec)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(served) != len(idx.spans) {
		t.Fatalf("/debug/traces served %d spans, collector holds %d", len(served), len(idx.spans))
	}
	indexSpans(t, served).find("drone.proof")
}
