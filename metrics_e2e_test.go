// End-to-end observability check: one full drone mission replayed over
// HTTP must leave non-zero per-stage verification timings and
// per-endpoint request counts on the auditor's /metrics endpoint, and
// non-zero TEE/sampler/client counters on the drone-side registry.
package alidrone

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/auditor"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
)

// expositionValue extracts the value of one exact series (name plus
// rendered label set) from Prometheus 0.0.4 text output.
func expositionValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q: bad value %q: %v", series, m[1], err)
	}
	return v
}

func TestMissionReplayPopulatesMetrics(t *testing.T) {
	auditorReg := obs.NewRegistry(nil)
	srv, err := auditor.NewServer(auditor.Config{Metrics: auditorReg})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()

	sc, err := trace.NewAirportScenario(trace.DefaultAirportConfig(benchStart))
	if err != nil {
		t.Fatal(err)
	}
	platform, err := core.NewPlatform(core.PlatformConfig{Path: sc.Route, GPSRateHz: 1})
	if err != nil {
		t.Fatal(err)
	}

	droneReg := obs.NewRegistry(nil)
	api := operator.NewHTTPAuditor(hs.URL, nil)
	api.SetMetrics(droneReg)
	auditorPub, err := api.FetchEncryptionPub()
	if err != nil {
		t.Fatal(err)
	}
	drone, err := operator.NewDrone(api, auditorPub, platform.Device(), platform.Clock(),
		sigcrypto.KeySize1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	drone.SetMetrics(droneReg)
	if err := drone.Register(); err != nil {
		t.Fatal(err)
	}
	rep, err := drone.RunMission(platform.Receiver(), sc.Route, operator.MissionConfig{Mode: operator.ModeAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict.Verdict != protocol.VerdictCompliant {
		t.Fatalf("mission verdict = %s (%s), want compliant", rep.Verdict.Verdict, rep.Verdict.Reason)
	}

	// Auditor side: scrape /metrics over the same HTTP surface the
	// mission used.
	resp, err := http.Get(hs.URL + auditor.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)

	for _, stage := range []string{
		auditor.StageSignature, auditor.StageChronology, auditor.StageSpeed, auditor.StageSufficiency,
	} {
		count := expositionValue(t, exposition,
			auditor.MetricVerifyStageSeconds+`_count{stage="`+stage+`"}`)
		if count < 1 {
			t.Errorf("stage %s: timing count = %v, want >= 1", stage, count)
		}
		sum := expositionValue(t, exposition,
			auditor.MetricVerifyStageSeconds+`_sum{stage="`+stage+`"}`)
		if sum <= 0 {
			t.Errorf("stage %s: timing sum = %v, want > 0", stage, sum)
		}
	}
	for _, path := range []string{
		protocol.PathRegisterDrone, protocol.PathAuditorPub, protocol.PathZoneQuery, protocol.PathSubmitPoA,
	} {
		if n := expositionValue(t, exposition,
			auditor.MetricHTTPRequestsTotal+`{path="`+path+`"}`); n < 1 {
			t.Errorf("endpoint %s: request count = %v, want >= 1", path, n)
		}
	}
	if n := expositionValue(t, exposition,
		auditor.MetricSubmissionsTotal+`{verdict="compliant"}`); n != 1 {
		t.Errorf("compliant submissions = %v, want 1", n)
	}
	if n := expositionValue(t, exposition, auditor.MetricRetainedPoAs); n != 1 {
		t.Errorf("retained PoAs = %v, want 1", n)
	}

	// Drone side: the shared registry must have seen TEE invocations,
	// sampler activity and HTTP client calls.
	var buf bytes.Buffer
	if err := droneReg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	droneText := buf.String()
	for _, series := range []string{
		tee.MetricSMCTotal,
		tee.MetricSignsTotal,
		`alidrone_sampler_reads_total{mode="adaptive"}`,
		`alidrone_sampler_auth_total{mode="adaptive"}`,
		`alidrone_client_requests_total{path="` + protocol.PathSubmitPoA + `"}`,
	} {
		if v := expositionValue(t, droneText, series); v < 1 {
			t.Errorf("drone series %s = %v, want >= 1", series, v)
		}
	}
	if strings.Contains(droneText, "alidrone_client_retries_total") {
		if v := expositionValue(t, droneText, "alidrone_client_retries_total"); v != 0 {
			t.Errorf("client retries = %v against a healthy auditor, want 0", v)
		}
	}
}
