// Command metricslint is the metrics-naming gate check.sh runs: every
// metric series the codebase registers must follow one convention, or
// fleet-level merging (/cluster/metrics) and dashboard queries quietly
// fracture into near-duplicate families.
//
// Enforced rules, purely syntactic (stdlib go/parser, no build needed):
//
//  1. Every constant whose name starts with "Metric" and whose value is
//     a string literal must match ^alidrone_[a-z0-9_]+$ — one prefix,
//     lowercase snake case, no dots or dashes.
//  2. Every obs.L(...) call in non-test code whose label keys are all
//     string literals must pass them in strictly ascending order with an
//     even number of key/value arguments. obs.L canonicalises the order
//     itself, so this is a readability rule: the call site reads exactly
//     like the rendered series, so grepping an exposition line lands on
//     the code that registered it. Test files are exempt (the registry's
//     own tests exercise the sorting). Strict ascent also rejects a
//     duplicated key, which L would render as a malformed series.
//
// Usage: go run ./scripts/metricslint [dir]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var namePattern = regexp.MustCompile(`^alidrone_[a-z0-9_]+$`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "metricslint" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		violations = append(violations, lintFile(fset, f, strings.HasSuffix(path, "_test.go"))...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintFile applies both rules to one parsed file; test files get only
// the naming rule.
func lintFile(fset *token.FileSet, f *ast.File, isTest bool) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GenDecl:
			if node.Tok != token.CONST {
				return true
			}
			for _, spec := range node.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if !strings.HasPrefix(id.Name, "Metric") || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil || namePattern.MatchString(val) {
						continue
					}
					out = append(out, fmt.Sprintf("%s: const %s = %q does not match %s",
						fset.Position(id.Pos()), id.Name, val, namePattern))
				}
			}
		case *ast.CallExpr:
			if isTest || !isObsL(node.Fun) {
				return true
			}
			out = append(out, lintLabelCall(fset, node)...)
		}
		return true
	})
	return out
}

// isObsL recognises obs.L(...) (any import alias) and the in-package
// bare L(...).
func isObsL(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name == "L"
	case *ast.SelectorExpr:
		if f.Sel.Name != "L" {
			return false
		}
		_, ok := f.X.(*ast.Ident)
		return ok
	}
	return false
}

// lintLabelCall checks one obs.L call: even kv count and, when every key
// is a string literal, strictly ascending key order.
func lintLabelCall(fset *token.FileSet, call *ast.CallExpr) []string {
	if len(call.Args) < 1 || call.Ellipsis != token.NoPos {
		return nil
	}
	kv := call.Args[1:]
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		return []string{fmt.Sprintf("%s: obs.L with odd key/value count (%d label args)",
			fset.Position(call.Pos()), len(kv))}
	}
	var keys []string
	for i := 0; i < len(kv); i += 2 {
		lit, ok := kv[i].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return nil // dynamic key: order not statically checkable
		}
		key, err := strconv.Unquote(lit.Value)
		if err != nil {
			return nil
		}
		keys = append(keys, key)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return []string{fmt.Sprintf("%s: obs.L label keys not strictly sorted: %q after %q",
				fset.Position(call.Pos()), keys[i], keys[i-1])}
		}
	}
	return nil
}
