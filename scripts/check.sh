#!/bin/sh
# check.sh is the repository gate: everything a change must pass before
# merging. The race detector is part of the gate because the observability
# layer is read concurrently (scrapes) with the serving path.
set -eu
cd "$(dirname "$0")/.."

echo ">> gofmt -l"
UNFORMATTED="$(gofmt -l .)"
if [ -n "${UNFORMATTED}" ]; then
	echo "gofmt needed on:" >&2
	echo "${UNFORMATTED}" >&2
	exit 1
fi

echo ">> go vet ./..."
go vet ./...

echo ">> go build ./..."
go build ./...

echo ">> go test -race ./..."
go test -race ./...

echo "all checks passed"
