#!/bin/sh
# check.sh is the repository gate: everything a change must pass before
# merging. The race detector is part of the gate because the observability
# layer is read concurrently (scrapes) with the serving path.
set -eu
cd "$(dirname "$0")/.."

echo ">> gofmt -l"
UNFORMATTED="$(gofmt -l .)"
if [ -n "${UNFORMATTED}" ]; then
	echo "gofmt needed on:" >&2
	echo "${UNFORMATTED}" >&2
	exit 1
fi

echo ">> go vet ./..."
go vet ./...

# staticcheck is part of the merge gate but is not vendored: CI installs a
# pinned version (see .github/workflows/ci.yml). Locally it runs when the
# binary is on PATH and is skipped with a notice otherwise, so offline
# checkouts still pass the rest of the gate.
if command -v staticcheck >/dev/null 2>&1; then
	echo ">> staticcheck ./..."
	staticcheck ./...
else
	echo ">> staticcheck not found; skipping (CI runs it — go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"
fi

echo ">> go build ./..."
go build ./...

# Metrics naming gate: every Metric* constant follows the
# alidrone_[a-z0-9_]+ convention and obs.L call sites pass label keys in
# sorted order (see scripts/metricslint/main.go). A misnamed series
# fractures the fleet-merged exposition into near-duplicate families.
echo ">> go run ./scripts/metricslint"
go run ./scripts/metricslint .

echo ">> go test -race ./..."
go test -race ./...

# Ten seconds of coverage-guided fuzzing over the wire codec: the decoder
# faces untrusted bytes from the network, so the gate exercises it beyond
# the checked-in corpus on every run.
echo ">> go test ./internal/wire -fuzz FuzzDecodeFrame -fuzztime 10s"
go test ./internal/wire -run '^$' -fuzz FuzzDecodeFrame -fuzztime 10s

# The disclosure codecs face the same untrusted bytes: Merkle proofs
# arrive from accused operators, commit envelopes from any drone.
echo ">> go test ./internal/poa -fuzz FuzzDecodeMerkleProof -fuzztime 10s"
go test ./internal/poa -run '^$' -fuzz FuzzDecodeMerkleProof -fuzztime 10s

echo ">> go test ./internal/privacy -fuzz FuzzDecodeCommitEnvelope -fuzztime 10s"
go test ./internal/privacy -run '^$' -fuzz FuzzDecodeCommitEnvelope -fuzztime 10s

# Two-node cluster end-to-end smoke: register a drone on node A, submit
# its PoA through node B, and expect a transparent forward plus a
# compliant verdict. The full suite above already runs this test; the
# explicit -count=1 invocation keeps the cluster path in the gate even
# when test caching or a narrowed suite would skip it.
echo ">> go test ./internal/auditor -run TestClusterTwoNodeSmoke -count=1"
go test ./internal/auditor -run 'TestClusterTwoNodeSmoke$' -count=1

echo "all checks passed"
