#!/bin/sh
# bench.sh runs the benchmark suite with -benchmem and records the raw
# output as a dated snapshot, so performance work leaves an auditable
# trail. Each run writes BENCH_<yyyy-mm-dd>.json next to this repo's root
# and, when an older snapshot exists, prints a per-benchmark ns/op
# comparison against the most recent one.
#
# Usage:
#
#   scripts/bench.sh                 # full suite, -benchtime 1x (smoke)
#   BENCHTIME=2s scripts/bench.sh    # real measurement run
#   BENCH='VerifyPipeline' scripts/bench.sh   # subset by regexp
set -eu
cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1x}"
DATE="$(date +%Y-%m-%d)"
OUT="BENCH_${DATE}.json"

PREV="$(ls BENCH_*.json 2>/dev/null | grep -v "^${OUT}\$" | sort | tail -1 || true)"

PKGS=". ./internal/storage"
echo ">> go test -bench ${BENCH} -benchtime ${BENCHTIME} -benchmem -run '^$' ${PKGS}"
RAW="$(go test -bench "${BENCH}" -benchtime "${BENCHTIME}" -benchmem -run '^$' ${PKGS} | grep -v 'BenchmarkSubmitThroughput' | grep -v 'BenchmarkVerdictSLO')"
echo "${RAW}"

# The transport pair runs separately with an iteration floor: at the
# smoke default of 1x the http/binary ratio is all noise, and this pair
# gates CI (binary must beat HTTP/JSON), so it needs real iterations.
if echo "BenchmarkSubmitThroughput" | grep -q "${BENCH}"; then
	WIRE_BENCHTIME="${BENCHTIME}"
	case "${WIRE_BENCHTIME}" in
	*x) [ "${WIRE_BENCHTIME%x}" -lt 200 ] && WIRE_BENCHTIME=200x ;;
	esac
	echo ">> go test -bench 'BenchmarkSubmitThroughput$' -benchtime ${WIRE_BENCHTIME} -benchmem -run '^$' ."
	WIRE_RAW="$(go test -bench 'BenchmarkSubmitThroughput$' -benchtime "${WIRE_BENCHTIME}" -benchmem -run '^$' .)"
	echo "${WIRE_RAW}"
	RAW="${RAW}
${WIRE_RAW}"
fi

# The SLO pair also needs an iteration floor: at the 1x smoke default the
# bare/slo ratio is all noise, and this pair gates CI (the SLO-tracked
# verdict path must stay within 5% of the untracked one).
if echo "BenchmarkVerdictSLO" | grep -q "${BENCH}"; then
	SLO_BENCHTIME="${BENCHTIME}"
	case "${SLO_BENCHTIME}" in
	*x) [ "${SLO_BENCHTIME%x}" -lt 5000 ] && SLO_BENCHTIME=5000x ;;
	esac
	echo ">> go test -bench 'BenchmarkVerdictSLO' -benchtime ${SLO_BENCHTIME} -benchmem -run '^$' ."
	SLO_RAW="$(go test -bench 'BenchmarkVerdictSLO' -benchtime "${SLO_BENCHTIME}" -benchmem -run '^$' .)"
	echo "${SLO_RAW}"
	RAW="${RAW}
${SLO_RAW}"
fi

# Headline signature-suite ratio: how many times cheaper verifying one
# batch-sealed Ed25519 submission is than per-sample RSA-2048 (integer
# factor; empty when the suite benchmarks were filtered out).
SPEEDUP="$(echo "${RAW}" | awk '
	$1 ~ /^BenchmarkVerifySamples\/rsa2048/       { rsa = $3 }
	$1 ~ /^BenchmarkVerifySamples\/ed25519-batch/ { batch = $3 }
	END { if (rsa && batch && batch > 0) printf "%d", rsa / batch }')"

# Headline transport ratio: how many times faster one submission travels
# over the batched binary wire door than over per-request HTTP/JSON.
WIRE_SPEEDUP="$(echo "${RAW}" | awk '
	$1 ~ /^BenchmarkSubmitThroughput\/http/   { http = $3 }
	$1 ~ /^BenchmarkSubmitThroughput\/binary/ { bin = $3 }
	END { if (http && bin && bin > 0) printf "%.1f", http / bin }')"

# Headline scale-out ratio: submission throughput of a 4-node cluster
# against a 1-node cluster with identical per-node capacity (ns/op of
# the 1-node run divided by the 4-node run).
CLUSTER_SPEEDUP="$(echo "${RAW}" | awk '
	$1 ~ /^BenchmarkSubmitThroughput\/cluster-1node/ { one = $3 }
	$1 ~ /^BenchmarkSubmitThroughput\/cluster-4node/ { four = $3 }
	END { if (one && four && four > 0) printf "%.1f", one / four }')"

# Headline disclosure-size ratio: ciphertext bytes of the 600-sample
# Merkle-commitment envelope as a fraction of the same flight's full
# per-sample-signed PoA ciphertext.
COMMIT_RATIO="$(echo "${RAW}" | awk '
	$1 ~ /^BenchmarkSubmitThroughput\/commit/ {
		for (i = 4; i <= NF; i++) {
			if ($i == "commitbytes/op") commit = $(i-1)
			if ($i == "fullbytes/op")   full = $(i-1)
		}
	}
	END { if (commit && full && full > 0) printf "%.3f", commit / full }')"

# Headline observability cost: the SLO-instrumented verdict path's ns/op
# as a multiple of the bare (registry-only) path.
SLO_OVERHEAD="$(echo "${RAW}" | awk '
	$1 ~ /^BenchmarkVerdictSLO\/bare/ { bare = $3 }
	$1 ~ /^BenchmarkVerdictSLO\/slo/  { slo = $3 }
	END { if (bare && slo && bare > 0) printf "%.3f", slo / bare }')"

# Snapshot as JSON: one object per benchmark line, plus run metadata.
{
	printf '{\n  "date": "%s",\n  "benchtime": "%s",\n' "${DATE}" "${BENCHTIME}"
	if [ -n "${SPEEDUP}" ]; then
		printf '  "verify_speedup_ed25519_batch_vs_rsa2048": %s,\n' "${SPEEDUP}"
	fi
	if [ -n "${WIRE_SPEEDUP}" ]; then
		printf '  "submit_speedup_binary_vs_http": %s,\n' "${WIRE_SPEEDUP}"
	fi
	if [ -n "${CLUSTER_SPEEDUP}" ]; then
		printf '  "cluster_scaleout_4node_vs_1node": %s,\n' "${CLUSTER_SPEEDUP}"
	fi
	if [ -n "${SLO_OVERHEAD}" ]; then
		printf '  "slo_observe_overhead": %s,\n' "${SLO_OVERHEAD}"
	fi
	if [ -n "${COMMIT_RATIO}" ]; then
		printf '  "commit_bytes_ratio_vs_full": %s,\n' "${COMMIT_RATIO}"
	fi
	printf '  "results": [\n'
	echo "${RAW}" | awk '
		/^Benchmark/ {
			line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, $2, $3)
			for (i = 4; i <= NF; i++) {
				if ($i == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $(i-1))
				if ($i == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $(i-1))
			}
			lines[++n] = line "}"
		}
		END {
			for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
		}'
	printf '  ]\n}\n'
} >"${OUT}"
echo ">> wrote ${OUT}"

if [ -n "${PREV}" ]; then
	echo ">> comparing against ${PREV} (ns/op, old -> new)"
	awk -F'"' '
		/"name"/ {
			name = $4
			split($0, parts, /"ns_per_op": /)
			split(parts[2], v, /[,}]/)
			if (FILENAME == ARGV[1]) old[name] = v[1]
			else if (name in old) {
				delta = (v[1] - old[name]) / old[name] * 100
				printf "%-60s %14.0f -> %14.0f  (%+.1f%%)\n", name, old[name], v[1], delta
			}
		}' "${PREV}" "${OUT}"
else
	echo ">> no previous snapshot; nothing to compare"
fi

# Regression gate: the binary wire door exists to beat HTTP/JSON. If it
# stops winning, the transport (or its batching) regressed — fail the run.
if [ -n "${WIRE_SPEEDUP}" ]; then
	if awk "BEGIN { exit !(${WIRE_SPEEDUP} <= 1.0) }"; then
		echo ">> FAIL: binary wire transport no faster than HTTP (${WIRE_SPEEDUP}x)" >&2
		exit 1
	fi
	echo ">> binary wire transport ${WIRE_SPEEDUP}x faster than HTTP/JSON"
fi

# Scale-out gate: four nodes with identical per-node capacity must push
# more than twice the submissions of one. A ratio at or under 2 means
# the routing layer is serialising nodes against each other.
if [ -n "${CLUSTER_SPEEDUP}" ]; then
	if awk "BEGIN { exit !(${CLUSTER_SPEEDUP} <= 2.0) }"; then
		echo ">> FAIL: 4-node cluster only ${CLUSTER_SPEEDUP}x a single node (need > 2x)" >&2
		exit 1
	fi
	echo ">> 4-node cluster ${CLUSTER_SPEEDUP}x single-node submission throughput"
fi

# Disclosure-size gate: the commit envelope exists to shrink the
# submission. For the 600-sample flight it must stay at or under half
# the full PoA ciphertext, or the envelope encoding has bloated.
if [ -n "${COMMIT_RATIO}" ]; then
	if awk "BEGIN { exit !(${COMMIT_RATIO} > 0.5) }"; then
		echo ">> FAIL: commit envelope is ${COMMIT_RATIO}x the full PoA ciphertext (need <= 0.5x)" >&2
		exit 1
	fi
	echo ">> commit envelope ${COMMIT_RATIO}x the full PoA ciphertext for a 600-sample flight"
fi

# Observability gate: the sliding-window SLO tracker must stay cheap
# enough to leave on everywhere — within 5% of the registry-only path.
if [ -n "${SLO_OVERHEAD}" ]; then
	if awk "BEGIN { exit !(${SLO_OVERHEAD} > 1.05) }"; then
		echo ">> FAIL: SLO-instrumented verdict path ${SLO_OVERHEAD}x bare (need <= 1.05x)" >&2
		exit 1
	fi
	echo ">> SLO instrumentation ${SLO_OVERHEAD}x bare verdict path (within the 1.05x budget)"
fi
