// Planned delivery: the full commercial workflow the paper's introduction
// motivates (Amazon-style package delivery). The drone queries the Auditor
// for no-fly zones along its delivery corridor, *plans a route around
// them* (the "compute a viable route" step of §IV-B), flies the planned
// route with adaptive sampling, and submits a Proof-of-Alibi that the
// Auditor accepts — while the naive straight-line route would have been a
// violation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/auditor"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/operator"
	"repro/internal/planner"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	warehouse := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	customer := warehouse.Offset(90, 4000)

	srv, err := auditor.NewServer(auditor.Config{})
	if err != nil {
		return err
	}
	// Three no-fly zones sit across the direct corridor.
	for i, offset := range []float64{1200, 2000, 2800} {
		z := geo.GeoCircle{
			Center: warehouse.Offset(90, offset).Offset(float64(i-1)*8, 60),
			R:      150,
		}
		if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{Owner: fmt.Sprintf("owner-%d", i), Zone: z}); err != nil {
			return err
		}
	}

	// The operator asks for zones over the corridor (we reuse the
	// protocol path later; here we plan first, then build the platform
	// over the planned route).
	zones := zone.Circles(srv.Zones().QueryRect(
		geo.NewRect(warehouse.Offset(225, 2000), customer.Offset(45, 2000))))
	fmt.Printf("corridor holds %d no-fly zones\n", len(zones))

	// Route planning: the straight line is blocked; A* finds a detour.
	waypoints, err := planner.PlanRoute(warehouse, customer, zones, planner.Config{ClearanceMeters: 60})
	if err != nil {
		return err
	}
	straight := geo.HaversineMeters(warehouse, customer)
	fmt.Printf("planned route: %d waypoints, %.0f m (straight line: %.0f m, +%.1f%%)\n",
		len(waypoints), planner.PathLengthMeters(waypoints), straight,
		100*(planner.PathLengthMeters(waypoints)/straight-1))

	route, err := planner.ToRoute(waypoints, 15, start)
	if err != nil {
		return err
	}

	// Manufacture the platform over the planned route and fly it.
	platform, err := core.NewPlatform(core.PlatformConfig{Path: route})
	if err != nil {
		return err
	}
	drone, err := operator.NewDrone(srv, srv.EncryptionPub(), platform.Device(), platform.Clock(),
		sigcrypto.KeySize1024, nil)
	if err != nil {
		return err
	}
	if err := drone.Register(); err != nil {
		return err
	}
	res, err := drone.FlyAdaptive(platform.Receiver(), zones, route.End())
	if err != nil {
		return err
	}
	fmt.Printf("delivery flight: %v, %d signed samples (mean %.2f Hz)\n",
		route.Duration().Round(time.Second), res.PoA.Len(), res.Stats.MeanRateHz())

	verdict, err := drone.SubmitPoA(res.PoA)
	if err != nil {
		return err
	}
	fmt.Printf("auditor verdict: %s\n", verdict.Verdict)
	if verdict.Verdict != protocol.VerdictCompliant {
		return fmt.Errorf("planned route should be compliant: %s", verdict.Reason)
	}
	return nil
}
