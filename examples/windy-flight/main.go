// Windy flight: the fully closed loop. A delivery mission is planned
// around a no-fly zone, flown by the simulated airframe through gusty
// wind (so the track has real tracking error, unlike an ideal polyline),
// sampled adaptively through the TEE, and audited — first offline, then
// with the real-time streaming mode.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/auditor"
	"repro/internal/core"
	"repro/internal/flightsim"
	"repro/internal/geo"
	"repro/internal/operator"
	"repro/internal/planner"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	depot := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	customer := depot.Offset(90, 2500)
	nfz := geo.GeoCircle{Center: depot.Offset(90, 1200), R: 250}

	srv, err := auditor.NewServer(auditor.Config{})
	if err != nil {
		return err
	}
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{Owner: "hospital", Zone: nfz}); err != nil {
		return err
	}

	// Plan around the zone with generous clearance for wind drift.
	waypoints, err := planner.PlanRoute(depot, customer, []geo.GeoCircle{nfz},
		planner.Config{ClearanceMeters: 120})
	if err != nil {
		return err
	}
	fmt.Printf("planned %d waypoints, %.0f m\n", len(waypoints), planner.PathLengthMeters(waypoints))

	// Fly the plan through a 5 m/s wind with 2 m/s gusts.
	flown, err := flightsim.Fly(flightsim.Mission{
		Waypoints: waypoints,
		Departure: start,
		Wind:      flightsim.WindModel{MeanMS: 5, BearingDeg: 330, GustMS: 2, Seed: 9},
	})
	if err != nil {
		return err
	}
	fmt.Printf("flown in %v through gusty wind (%d track points)\n",
		flown.Duration().Round(time.Second), len(flown.Waypoints()))

	// The platform samples the flown (imperfect) trajectory.
	platform, err := core.NewPlatform(core.PlatformConfig{Path: flown})
	if err != nil {
		return err
	}
	drone, err := operator.NewDrone(srv, srv.EncryptionPub(), platform.Device(), platform.Clock(),
		sigcrypto.KeySize1024, nil)
	if err != nil {
		return err
	}
	if err := drone.Register(); err != nil {
		return err
	}

	// Real-time streaming audit: the auditor checks each sample in
	// flight.
	rep, err := drone.RunMission(platform.Receiver(), flown, operator.MissionConfig{Mode: operator.ModeStreaming})
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d samples; in-flight violation: %v\n",
		rep.Run.PoA.Len(), rep.StreamedViolationAt >= 0)
	fmt.Printf("final verdict: %s\n", rep.Verdict.Verdict)
	if rep.Verdict.Verdict != protocol.VerdictCompliant {
		return fmt.Errorf("windy delivery should still be compliant: %s", rep.Verdict.Reason)
	}
	return nil
}
