// Quickstart: the minimal AliDrone round trip — one auditor, one no-fly
// zone, one drone. The drone registers, asks for zones, flies past the
// zone with adaptive sampling, and submits a Proof-of-Alibi the auditor
// accepts.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/operator"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}

	// 1. The Auditor (e.g. a local FAA agent) starts its server.
	srv, err := auditor.NewServer(auditor.Config{})
	if err != nil {
		return err
	}

	// 2. A Zone Owner registers a no-fly zone over her property.
	zoneResp, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner:          "alice",
		Zone:           geo.GeoCircle{Center: home.Offset(0, 150), R: geo.FeetToMeters(20)},
		OwnershipProof: "parcel 1234-5678",
	})
	if err != nil {
		return err
	}
	fmt.Println("zone registered:", zoneResp.ZoneID)

	// 3. The drone is manufactured: the TEE keypair is generated inside
	//    the secure hardware; the operator never sees the private half.
	vault, err := tee.ManufactureVault(nil, sigcrypto.KeySize1024)
	if err != nil {
		return err
	}
	clock := tee.NewSimClock(start)
	dev := tee.NewDevice(clock, vault)

	// The flight plan: a 90-second run straight down the street at 10 m/s.
	route, err := trace.ConstantSpeedLine(home, 90, 10, start, 90*time.Second)
	if err != nil {
		return err
	}
	rx, err := gps.NewReceiver(route, 5)
	if err != nil {
		return err
	}
	if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), nil); err != nil {
		return err
	}

	// 4. The Drone Operator registers the drone and queries for zones.
	drone, err := operator.NewDrone(srv, srv.EncryptionPub(), dev, clock, sigcrypto.KeySize1024, nil)
	if err != nil {
		return err
	}
	if err := drone.Register(); err != nil {
		return err
	}
	fmt.Println("drone registered:", drone.ID())

	area := geo.NewRect(home.Offset(225, 2000), home.Offset(45, 2000))
	zones, err := drone.QueryZones(area)
	if err != nil {
		return err
	}
	fmt.Printf("zones in flight area: %d\n", len(zones))

	// 5. Fly with adaptive sampling: the secure world signs each sample.
	res, err := drone.FlyAdaptive(rx, zone.Circles(zones), route.End())
	if err != nil {
		return err
	}
	fmt.Printf("flight done: %d signed samples (mean %.2f Hz)\n",
		res.PoA.Len(), res.Stats.MeanRateHz())

	// 6. Submit the encrypted Proof-of-Alibi.
	verdict, err := drone.SubmitPoA(res.PoA)
	if err != nil {
		return err
	}
	fmt.Println("auditor verdict:", verdict.Verdict)
	return nil
}
