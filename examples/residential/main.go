// Residential field study (paper §VI-A3) through the public API: a
// one-mile drive past 94 house no-fly zones. Compares fix-rate sampling
// at 2/3/5 Hz against adaptive sampling on the three metrics of the
// paper's Fig 8: nearest-zone distance, sampling rate, and insufficient
// Proof-of-Alibi count.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/sampling"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	sc, err := trace.NewResidentialScenario(trace.DefaultResidentialConfig(start))
	if err != nil {
		return err
	}
	idx := zone.NewIndex(sc.Zones, 0)
	fmt.Printf("scenario: %.2f mi drive past %d house NFZs (r = 20 ft)\n",
		geo.MetersToMiles(sc.Route.LengthMeters()), len(sc.Zones))

	// Fig 8-(a): the distance profile.
	fmt.Println("\ndistance to nearest NFZ:")
	for dt := time.Duration(0); dt <= sc.Route.Duration(); dt += 30 * time.Second {
		_, d, err := idx.Nearest(sc.Route.Position(start.Add(dt)).Pos)
		if err != nil {
			return err
		}
		fmt.Printf("  t=%-5v %6.0f ft\n", dt, geo.MetersToFeet(d))
	}

	// Fig 8-(b,c): run each sampler over an identical replay.
	fmt.Println("\nsampler comparison:")
	fmt.Printf("  %-10s %8s %10s %14s\n", "sampler", "samples", "mean rate", "insufficient")
	for _, cfg := range []struct {
		name string
		rate float64 // 0 = adaptive
	}{
		{"fixed-2hz", 2}, {"fixed-3hz", 3}, {"fixed-5hz", 5}, {"adaptive", 0},
	} {
		vault, err := tee.ManufactureVault(nil, sigcrypto.KeySize1024)
		if err != nil {
			return err
		}
		clock := tee.NewSimClock(start)
		dev := tee.NewDevice(clock, vault)
		rx, err := gps.NewReceiver(sc.Route, 5)
		if err != nil {
			return err
		}
		if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), nil); err != nil {
			return err
		}
		env := sampling.NewTEEEnv(dev, clock, rx)

		var res *sampling.RunResult
		if cfg.rate > 0 {
			f := &sampling.FixedRate{Env: env, RateHz: cfg.rate}
			res, err = f.Run(sc.Route.End())
		} else {
			a := &sampling.Adaptive{Env: env, Index: idx, VMaxMS: geo.MaxDroneSpeedMPS}
			res, err = a.Run(sc.Route.End())
		}
		if err != nil {
			return err
		}

		counts := poa.CountInsufficient(res.PoA.Alibi(), sc.Zones, geo.MaxDroneSpeedMPS)
		total := 0
		if len(counts) > 0 {
			total = counts[len(counts)-1]
		}
		fmt.Printf("  %-10s %8d %8.2fHz %14d\n",
			cfg.name, res.PoA.Len(), res.Stats.MeanRateHz(), total)
	}
	fmt.Println("\n(the paper reports 39 insufficient pairs at 2 Hz, 9 at 3 Hz, ~1 for 5 Hz/adaptive)")
	return nil
}
