// Airport field study (paper §VI-A2) through the public API: a vehicle
// starts 30 ft outside the FAA 5-mile airport no-fly boundary and drives
// away for 12 minutes. Compares 1 Hz fix-rate sampling against adaptive
// sampling — the paper's Fig 6 headline (649 vs 14 samples).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/operator"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	sc, err := trace.NewAirportScenario(trace.DefaultAirportConfig(start))
	if err != nil {
		return err
	}
	airportZone := sc.Zones[0]
	fmt.Printf("airport NFZ: centre %v, radius %.1f mi\n",
		airportZone.Center, geo.MetersToMiles(airportZone.R))

	srv, err := auditor.NewServer(auditor.Config{})
	if err != nil {
		return err
	}
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "faa", Zone: airportZone, OwnershipProof: "14 CFR 107",
	}); err != nil {
		return err
	}

	for _, mode := range []string{"fixed-1hz", "adaptive"} {
		vault, err := tee.ManufactureVault(nil, sigcrypto.KeySize1024)
		if err != nil {
			return err
		}
		clock := tee.NewSimClock(start)
		dev := tee.NewDevice(clock, vault)
		rx, err := gps.NewReceiver(sc.Route, 1) // the paper runs this scenario at 1 Hz
		if err != nil {
			return err
		}
		if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), nil); err != nil {
			return err
		}
		drone, err := operator.NewDrone(srv, srv.EncryptionPub(), dev, clock, sigcrypto.KeySize1024, nil)
		if err != nil {
			return err
		}
		if err := drone.Register(); err != nil {
			return err
		}

		var samples int
		if mode == "adaptive" {
			res, err := drone.FlyAdaptive(rx, []geo.GeoCircle{airportZone}, sc.Route.End())
			if err != nil {
				return err
			}
			samples = res.PoA.Len()
		} else {
			res, err := drone.FlyFixedRate(rx, 1, sc.Route.End())
			if err != nil {
				return err
			}
			samples = res.PoA.Len()
		}
		fmt.Printf("%-10s %4d GPS samples over %v\n", mode, samples, sc.Route.Duration())
	}

	// Show the distance profile the figure plots.
	fmt.Println("\ndistance to the NFZ boundary during the drive:")
	for dt := time.Duration(0); dt <= sc.Route.Duration(); dt += 2 * time.Minute {
		d := airportZone.BoundaryDistMeters(sc.Route.Position(start.Add(dt)).Pos)
		fmt.Printf("  t=%-4v %8.0f ft\n", dt, geo.MetersToFeet(d))
	}
	return nil
}
