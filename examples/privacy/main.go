// Privacy: the §VII-B3 extension against an honest-but-curious auditor.
// The drone uploads its Proof-of-Alibi with every position encrypted
// under a one-time key. When a Zone Owner accuses the drone, the operator
// reveals only the two keys spanning the incident — the auditor resolves
// the accusation while learning just that fragment of the trajectory.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/sampling"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/zone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := geo.GeoCircle{Center: home.Offset(0, 250), R: geo.FeetToMeters(20)}

	// Fly a clean route with the full TEE stack.
	vault, err := tee.ManufactureVault(nil, sigcrypto.KeySize1024)
	if err != nil {
		return err
	}
	clock := tee.NewSimClock(start)
	dev := tee.NewDevice(clock, vault)
	route, err := trace.ConstantSpeedLine(home, 90, 10, start, 90*time.Second)
	if err != nil {
		return err
	}
	rx, err := gps.NewReceiver(route, 5)
	if err != nil {
		return err
	}
	if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), nil); err != nil {
		return err
	}

	a := &sampling.Adaptive{
		Env:    sampling.NewTEEEnv(dev, clock, rx),
		Index:  zone.NewIndex([]geo.GeoCircle{z}, 0),
		VMaxMS: geo.MaxDroneSpeedMPS,
	}
	res, err := a.Run(route.End())
	if err != nil {
		return err
	}
	fmt.Printf("flight: %d signed samples\n", res.PoA.Len())

	// The operator seals the PoA: one fresh key per sample.
	sealed, ring, err := privacy.Seal(res.PoA, nil)
	if err != nil {
		return err
	}
	fmt.Printf("sealed PoA uploaded: %d encrypted entries, %d keys retained by the operator\n",
		len(sealed.Entries), ring.Len())

	// A Zone Owner spots the drone near her property at t+40 s and
	// reports (zone id, drone id, time) to the auditor.
	incident := start.Add(40 * time.Second)
	i, err := privacy.FindPair(sealed, incident)
	if err != nil {
		return err
	}
	fmt.Printf("accusation at t+40s: auditor requests keys for entries %d and %d (of %d)\n",
		i, i+1, len(sealed.Entries))

	// The operator reveals exactly two keys.
	k1, err := ring.Reveal(i)
	if err != nil {
		return err
	}
	k2, err := ring.Reveal(i + 1)
	if err != nil {
		return err
	}

	// The auditor opens only those entries, verifies the TEE signatures,
	// and decides the boolean compliance question.
	exonerated, err := privacy.JudgeAccusation(
		sealed.Entries[i], sealed.Entries[i+1], k1, k2,
		vault.SuiteKey(), z, geo.MaxDroneSpeedMPS, poa.Exact)
	if err != nil {
		return err
	}
	if exonerated {
		fmt.Println("verdict: alibi proven — the drone could not have been in the zone")
	} else {
		fmt.Println("verdict: alibi NOT proven — violation proceedings begin")
	}
	fmt.Printf("trajectory disclosed to the auditor: %d of %d samples\n", 2, len(sealed.Entries))
	return nil
}
