// Forgery: a dishonest Drone Operator flies through a no-fly zone and
// then tries every GPS forgery attack from the paper's threat model to
// hide it — fabricating a route, tampering with signed samples, dropping
// the incriminating window, splicing traces, and replaying an old PoA.
// The auditor catches each one (design goal G3: unforgeability).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/operator"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := geo.GeoCircle{Center: home.Offset(0, 120), R: 30}

	srv, err := auditor.NewServer(auditor.Config{})
	if err != nil {
		return err
	}
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{Owner: "alice", Zone: z}); err != nil {
		return err
	}

	// Build the honest platform and record a legitimate flight past the
	// zone; the attacker will mutate this PoA.
	vault, err := tee.ManufactureVault(nil, sigcrypto.KeySize1024)
	if err != nil {
		return err
	}
	clock := tee.NewSimClock(start)
	dev := tee.NewDevice(clock, vault)
	route, err := trace.ConstantSpeedLine(home, 90, 10, start, 2*time.Minute)
	if err != nil {
		return err
	}
	rx, err := gps.NewReceiver(route, 5)
	if err != nil {
		return err
	}
	if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), nil); err != nil {
		return err
	}
	drone, err := operator.NewDrone(srv, srv.EncryptionPub(), dev, clock, sigcrypto.KeySize1024, nil)
	if err != nil {
		return err
	}
	if err := drone.Register(); err != nil {
		return err
	}
	honest, err := drone.FlyAdaptive(rx, []geo.GeoCircle{z}, route.End())
	if err != nil {
		return err
	}

	eval := attack.Evaluate{API: srv, DroneID: drone.ID(), EncryptPoA: drone.EncryptPoA}
	report := func(r attack.Result) {
		status := "DETECTED"
		if !r.Detected {
			status = "MISSED  "
		}
		fmt.Printf("  %-14s %s  %s\n", r.Name, status, r.Reason)
	}

	fmt.Println("attack suite against the auditor:")

	// 0. Baseline: the honest PoA is accepted.
	r, err := eval.Run("honest", honest.PoA)
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s verdict=%s\n", "honest", r.Verdict)

	// 1. Forged route signed with the attacker's own key.
	attackerKey, err := sigcrypto.GenerateKeyPair(nil, sigcrypto.KeySize1024)
	if err != nil {
		return err
	}
	forged, err := attack.ForgeRoute(attackerKey, home.Offset(180, 3000), 90, 10, 60, start)
	if err != nil {
		return err
	}
	if r, err = eval.Run("forge-route", forged); err != nil {
		return err
	}
	report(r)

	// 2. Tamper with the signed samples that passed near the zone.
	tampered, err := attack.Tamper(honest.PoA, z, 200, 500)
	if err != nil {
		return err
	}
	if r, err = eval.Run("tamper", tampered); err != nil {
		return err
	}
	report(r)

	// 3. Drop the incriminating middle of the flight.
	truncated, err := attack.Truncate(honest.PoA, start.Add(2*time.Second), start.Add(110*time.Second))
	if err != nil {
		return err
	}
	if r, err = eval.Run("truncate", truncated); err != nil {
		return err
	}
	report(r)

	// 4. Splice two signed fragments with overlapping timestamps.
	half := honest.PoA.Len() / 2
	spliced, err := attack.Splice(
		poa.PoA{Samples: honest.PoA.Samples[:half]},
		poa.PoA{Samples: honest.PoA.Samples[half-1:]},
	)
	if err != nil {
		return err
	}
	if r, err = eval.Run("splice", spliced); err != nil {
		return err
	}
	report(r)

	// 5. Replay the already-reported honest PoA for a "second flight".
	if r, err = eval.Run("replay", attack.Replay(honest.PoA)); err != nil {
		return err
	}
	report(r)

	return nil
}
