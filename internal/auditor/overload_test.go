package auditor

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/auditor/pipeline"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/protocol"
)

// gateAtSignature stalls every submission at the signature stage until
// gate is closed, and closes entered the first time a submission reaches
// it — the deterministic way to hold the admission slot without sleeping.
func gateAtSignature(srv *Server, gate, entered chan struct{}) {
	var once sync.Once
	srv.runner.OnStage = func(_ context.Context, stage string, _ *pipeline.Submission) {
		if stage == StageSignature {
			once.Do(func() { close(entered) })
			<-gate
		}
	}
}

// TestOverloadShedsWithRetryAfter saturates a MaxInflight=1 server with a
// stalled submission and asserts the load-shedding contract: excess
// requests fail fast with ErrOverloaded (HTTP 429 + Retry-After), a shed
// submission never claims its replay digest, and the admitted one still
// completes normally once unstalled.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	reg := obs.NewRegistry(nil)
	srv, id, keys := newFixtureConfig(t, Config{
		Clock:       obs.ClockFunc(func() time.Time { return t0 }),
		Metrics:     reg,
		MaxInflight: 1,
		QueueDepth:  -1, // shed immediately, no waiting
		RetryAfter:  2 * time.Second,
	})
	gate := make(chan struct{})
	entered := make(chan struct{})
	gateAtSignature(srv, gate, entered)

	poaA := encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second))
	poaB := encryptFor(t, srv, signedTrace(t, keys, urbana, 90, 10, 6, time.Second))

	// Hold the only slot with a stalled submission of trace A.
	held := make(chan protocol.SubmitPoAResponse, 1)
	go func() {
		resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaA})
		if err != nil {
			t.Errorf("stalled submission: %v", err)
		}
		held <- resp
	}()
	<-entered

	// Server level: the excess submission is shed with the typed error and
	// no verdict.
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaB})
	if !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("shed err = %v, want ErrOverloaded", err)
	}
	if resp.Verdict != "" {
		t.Errorf("shed submission got verdict %q — shedding must not judge", resp.Verdict)
	}

	// HTTP level: 429 plus the Retry-After hint in whole seconds.
	hs := httptest.NewServer(NewHandler(srv))
	defer hs.Close()
	hresp := postJSON(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaB})
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", hresp.StatusCode)
	}
	if got := hresp.Header.Get(protocol.RetryAfterHeader); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}

	// Drain: the admitted submission completes compliant.
	close(gate)
	if v := (<-held).Verdict; v != protocol.VerdictCompliant {
		t.Fatalf("stalled submission verdict = %v", v)
	}

	// No replay-digest leak: the shed trace B was never claimed, so the
	// retry verifies cleanly instead of tripping the replay guard.
	resp, err = srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaB})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("retry of shed PoA: %v / %v (%s) — digest leaked?", err, resp.Verdict, resp.Reason)
	}
	// ...while the committed trace A is genuinely replay-guarded.
	resp, err = srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaA})
	if err != nil || resp.Verdict != protocol.VerdictViolation || !strings.Contains(resp.Reason, "replayed PoA") {
		t.Errorf("replay of committed PoA = %v / %v (%s), want replay violation", err, resp.Verdict, resp.Reason)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricAdmissionShedTotal + " 2",
		MetricAdmissionInflight + " 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestOverloadOperatorClientRetries drives the operator client against a
// saturated auditor: the first attempt is shed with 429, the client backs
// off by the Retry-After hint, and the retry succeeds once load drains.
func TestOverloadOperatorClientRetries(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Clock:       obs.ClockFunc(func() time.Time { return t0 }),
		MaxInflight: 1,
		QueueDepth:  -1,
		RetryAfter:  time.Millisecond, // header floors at 1 s
	})
	gate := make(chan struct{})
	entered := make(chan struct{})
	gateAtSignature(srv, gate, entered)

	// Middleware releases the stalled submission as soon as one request
	// has actually been shed, so the client's retry finds a free slot.
	shedSeen := make(chan struct{})
	var once sync.Once
	inner := NewHandler(srv)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		inner.ServeHTTP(sw, r)
		if sw.status == http.StatusTooManyRequests {
			once.Do(func() { close(shedSeen) })
		}
	}))
	defer hs.Close()
	go func() {
		<-shedSeen
		close(gate)
	}()

	held := make(chan struct{})
	go func() {
		defer close(held)
		if _, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second))}); err != nil {
			t.Errorf("stalled submission: %v", err)
		}
	}()
	<-entered

	api := operator.NewHTTPAuditor(hs.URL, hs.Client())
	api.SetRetryPolicy(operator.RetryPolicy{Max: 3, Backoff: 10 * time.Millisecond})
	resp, err := api.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 90, 10, 6, time.Second))})
	if err != nil {
		t.Fatalf("client never recovered from overload: %v", err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
	select {
	case <-shedSeen:
	default:
		t.Error("client succeeded without ever being shed — test did not exercise overload")
	}
	<-held
}

// statusWriter records the status code written by the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
