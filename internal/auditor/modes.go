package auditor

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/auditor/pipeline"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// Errors of the §VII-A1 alternative-envelope endpoints.
var (
	// ErrUnknownSession is returned when a MAC PoA names a session the
	// server never established.
	ErrUnknownSession = errors.New("auditor: unknown session id")
)

var _ protocol.ModesAPI = (*Server)(nil)

// SubmitBatchPoA verifies a batch-signed trace (§VII-A1b): one TEE
// signature covers the canonical encoding of the whole sample series.
func (s *Server) SubmitBatchPoA(req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitBatchPoACtx(context.Background(), req)
}

// SubmitBatchPoACtx is SubmitBatchPoA under a caller context.
func (s *Server) SubmitBatchPoACtx(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.submitBatchPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
		s.observeVerdict(DoorBatch, start)
	}
	return resp, err
}

func (s *Server) submitBatchPoA(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureFull); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if err := s.admission.Acquire(ctx, req.DroneID); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer s.admission.Release()
	sub := &pipeline.Submission{
		DroneID:    req.DroneID,
		Ciphertext: req.EncryptedBatch,
		Keys:       s.ring(rec),
		Suite:      rec.Suite,
	}
	return s.runSubmission(ctx, sub, s.seqBatch)
}

// StartSession establishes a §VII-A1a symmetric flight session: the server
// unwraps the TEE-generated HMAC key with its private encryption key and
// remembers it for the flight.
func (s *Server) StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.StartSessionResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureFull); err != nil {
		return protocol.StartSessionResponse{}, err
	}

	key, err := sigcrypto.Decrypt(s.encKey, req.WrappedKey)
	if err != nil {
		return protocol.StartSessionResponse{}, fmt.Errorf("auditor: unwrap session key: %w", err)
	}
	if len(key) < 16 {
		return protocol.StartSessionResponse{}, fmt.Errorf("auditor: session key too short (%d bytes)", len(key))
	}

	id := s.sessions.add(sessionRecord{DroneID: req.DroneID, Key: key})
	return protocol.StartSessionResponse{SessionID: id}, nil
}

// SubmitMACPoA verifies a symmetric-mode PoA: every sample's tag must be a
// valid HMAC under the flight's session key.
func (s *Server) SubmitMACPoA(req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitMACPoACtx(context.Background(), req)
}

// SubmitMACPoACtx is SubmitMACPoA under a caller context.
func (s *Server) SubmitMACPoACtx(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.submitMACPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
		s.observeVerdict(DoorMAC, start)
	}
	return resp, err
}

func (s *Server) submitMACPoA(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, droneKnown := s.drones.get(req.DroneID)
	sess, sessKnown := s.sessions.get(req.SessionID)
	if !droneKnown {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureFull); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if !sessKnown {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownSession, req.SessionID)
	}
	if sess.DroneID != req.DroneID {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: session belongs to another drone", ErrUnknownSession)
	}
	if err := s.admission.Acquire(ctx, req.DroneID); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer s.admission.Release()
	sub := &pipeline.Submission{
		DroneID:    req.DroneID,
		Ciphertext: req.EncryptedPoA,
		MACKey:     sess.Key,
	}
	return s.runSubmission(ctx, sub, s.seqMAC)
}

// sessionRecord is one established symmetric flight session.
type sessionRecord struct {
	DroneID string
	Key     []byte
}
