package auditor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// Errors of the §VII-A1 alternative-envelope endpoints.
var (
	// ErrUnknownSession is returned when a MAC PoA names a session the
	// server never established.
	ErrUnknownSession = errors.New("auditor: unknown session id")
)

// errInsufficient marks a sufficiency-stage failure that carries its own
// response shape (insufficient-pair count) rather than a bare reason.
var errInsufficient = errors.New("auditor: insufficient alibi")

var _ protocol.ModesAPI = (*Server)(nil)

// SubmitBatchPoA verifies a batch-signed trace (§VII-A1b): one TEE
// signature covers the canonical encoding of the whole sample series.
func (s *Server) SubmitBatchPoA(req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitBatchPoACtx(context.Background(), req)
}

// SubmitBatchPoACtx is SubmitBatchPoA under a caller context.
func (s *Server) SubmitBatchPoACtx(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	resp, err := s.submitBatchPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
	}
	return resp, err
}

func (s *Server) submitBatchPoA(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}

	plaintext, err := sigcrypto.Decrypt(s.encKey, req.EncryptedBatch)
	if err != nil {
		return violation(fmt.Sprintf("undecryptable batch PoA: %v", err)), nil
	}
	var batch poa.BatchPoA
	if err := json.Unmarshal(plaintext, &batch); err != nil {
		return violation(fmt.Sprintf("malformed batch PoA: %v", err)), nil
	}

	// Authenticity: the single signature must cover the exact canonical
	// batch encoding under the registered T+.
	if err := s.stage(ctx, StageSignature, func(context.Context) error {
		return sigcrypto.Verify(rec.TEEPub, poa.MarshalBatch(batch.Samples), batch.Sig)
	}); err != nil {
		return violation("batch signature verification failed"), nil
	}
	return s.verifyAlibi(ctx, req.DroneID, batch.Samples)
}

// StartSession establishes a §VII-A1a symmetric flight session: the server
// unwraps the TEE-generated HMAC key with its private encryption key and
// remembers it for the flight.
func (s *Server) StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error) {
	if _, ok := s.drones.get(req.DroneID); !ok {
		return protocol.StartSessionResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}

	key, err := sigcrypto.Decrypt(s.encKey, req.WrappedKey)
	if err != nil {
		return protocol.StartSessionResponse{}, fmt.Errorf("auditor: unwrap session key: %w", err)
	}
	if len(key) < 16 {
		return protocol.StartSessionResponse{}, fmt.Errorf("auditor: session key too short (%d bytes)", len(key))
	}

	id := s.sessions.add(sessionRecord{DroneID: req.DroneID, Key: key})
	return protocol.StartSessionResponse{SessionID: id}, nil
}

// SubmitMACPoA verifies a symmetric-mode PoA: every sample's tag must be a
// valid HMAC under the flight's session key.
func (s *Server) SubmitMACPoA(req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitMACPoACtx(context.Background(), req)
}

// SubmitMACPoACtx is SubmitMACPoA under a caller context.
func (s *Server) SubmitMACPoACtx(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	resp, err := s.submitMACPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
	}
	return resp, err
}

func (s *Server) submitMACPoA(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	_, droneKnown := s.drones.get(req.DroneID)
	sess, sessKnown := s.sessions.get(req.SessionID)
	if !droneKnown {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if !sessKnown {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownSession, req.SessionID)
	}
	if sess.DroneID != req.DroneID {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: session belongs to another drone", ErrUnknownSession)
	}

	plaintext, err := sigcrypto.Decrypt(s.encKey, req.EncryptedPoA)
	if err != nil {
		return violation(fmt.Sprintf("undecryptable PoA: %v", err)), nil
	}
	var p poa.PoA
	if err := json.Unmarshal(plaintext, &p); err != nil {
		return violation(fmt.Sprintf("malformed PoA: %v", err)), nil
	}

	// HMAC checks are independent per sample, so they fan out across the
	// worker pool exactly like the RSA path; FirstError reports the
	// lowest failing index, keeping the violation reason deterministic.
	if err := s.stage(ctx, StageSignature, func(ctx context.Context) error {
		_, err := s.pool.FirstErrorCtx(ctx, len(p.Samples), func(i int) error {
			if err := sigcrypto.VerifyMAC(sess.Key, p.Samples[i].Sample.Marshal(), p.Samples[i].Sig); err != nil {
				return fmt.Errorf("MAC verification failed at sample %d", i)
			}
			return nil
		})
		return err
	}); err != nil {
		if isCtxErr(err) {
			return protocol.SubmitPoAResponse{}, err
		}
		return violation(err.Error()), nil
	}
	return s.verifyAlibi(ctx, req.DroneID, p.Alibi())
}

// sessionRecord is one established symmetric flight session.
type sessionRecord struct {
	DroneID string
	Key     []byte
}

// verifyAlibi runs the authenticity-independent part of the pipeline
// (chronology → flyability → sufficiency) over a bare sample trace and
// retains it on success. Shared by all three PoA envelopes. The error
// return is reserved for retention-durability failures: a verdict the
// server cannot make durable is not issued.
func (s *Server) verifyAlibi(ctx context.Context, droneID string, alibi []poa.Sample) (protocol.SubmitPoAResponse, error) {
	if len(alibi) < 2 {
		return violation("PoA has fewer than two samples"), nil
	}
	if err := s.stage(ctx, StageChronology, func(context.Context) error {
		return poa.CheckChronology(alibi)
	}); err != nil {
		return violation(err.Error()), nil
	}
	if err := s.stage(ctx, StageSpeed, func(context.Context) error {
		return poa.SpeedFeasible(alibi, s.cfg.VMaxMS)
	}); err != nil {
		return violation(err.Error()), nil
	}
	var rep poa.Report
	if err := s.stage(ctx, StageSufficiency, func(context.Context) error {
		zones := s.zonesForTrace(alibi)
		var err error
		rep, err = poa.VerifySufficiencyPool(alibi, zones, s.cfg.VMaxMS, s.cfg.Mode, s.pool)
		if err != nil {
			return err
		}
		if !rep.Sufficient() {
			return errInsufficient
		}
		return nil
	}); err != nil && err != errInsufficient {
		return violation(err.Error()), nil
	}
	if !rep.Sufficient() {
		return protocol.SubmitPoAResponse{
			Verdict:           protocol.VerdictViolation,
			Reason:            "insufficient alibi: the drone may have entered a no-fly zone",
			InsufficientPairs: rep.InsufficientPairs(),
		}, nil
	}
	if resp3d := s.verify3D(alibi); resp3d != nil {
		return *resp3d, nil
	}
	if err := s.retain(ctx, droneID, alibi); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	return protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant}, nil
}
