package auditor

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/operator"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// encryptBytes encrypts an arbitrary plaintext to the server, as the
// Adapter would.
func encryptBytes(t *testing.T, srv *Server, plaintext []byte) []byte {
	t.Helper()
	ct, err := sigcrypto.Encrypt(rand.New(rand.NewSource(7)), srv.EncryptionPub(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// batchEnvelope wraps a trace in the §VII-A1b batch envelope: bare
// samples plus one TEE signature over the canonical batch encoding.
func batchEnvelope(t *testing.T, srv *Server, keys droneKeys, p poa.PoA) []byte {
	t.Helper()
	samples := p.Alibi()
	sig, err := sigcrypto.Sign(keys.tee, poa.MarshalBatch(samples))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(poa.BatchPoA{Samples: samples, Sig: sig})
	if err != nil {
		t.Fatal(err)
	}
	return encryptBytes(t, srv, data)
}

// macEnvelope re-tags a trace with HMAC tags under key and encrypts it.
func macEnvelope(t *testing.T, srv *Server, key []byte, p poa.PoA) []byte {
	t.Helper()
	var mp poa.PoA
	for _, ss := range p.Samples {
		mp.Append(poa.SignedSample{Sample: ss.Sample, Sig: sigcrypto.MAC(key, ss.Sample.Marshal())})
	}
	data, err := json.Marshal(mp)
	if err != nil {
		t.Fatal(err)
	}
	return encryptBytes(t, srv, data)
}

// TestVerdictParityAcrossEntryPoints asserts the tentpole property of the
// staged pipeline: the batch submission path, the alternative envelopes,
// the real-time stream path and the accusation re-check all execute the
// same stage registry, so the same trace against the same zone yields the
// same verdict no matter which door it entered through.
func TestVerdictParityAcrossEntryPoints(t *testing.T) {
	// All traces start at urbana heading north (bearing 0) at 10 m/s.
	cases := []struct {
		name string
		// trace shape
		n   int
		gap time.Duration
		// zone relative to the trace (registered before verification,
		// except on the accusation path, where it is registered after the
		// compliant retention so the trace is actually retained).
		zone geo.GeoCircle
		want protocol.Verdict
	}{
		{
			name: "compliant",
			n:    10, gap: time.Second,
			zone: geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 100},
			want: protocol.VerdictCompliant,
		},
		{
			name: "violating",
			n:    10, gap: time.Second,
			zone: geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100},
			want: protocol.VerdictViolation,
		},
		{
			name: "insufficient sampling",
			n:    3, gap: time.Minute,
			// ~1.3 km away: unreachable at 10 m/s in reality, but a 60 s
			// inter-sample gap leaves a >2.6 km travel ellipse, so the
			// alibi cannot rule the zone out.
			zone: geo.GeoCircle{Center: urbana.Offset(90, 1300), R: 50},
			want: protocol.VerdictViolation,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verdicts := map[string]protocol.Verdict{}

			trace := func(keys droneKeys) poa.PoA {
				return signedTrace(t, keys, urbana, 0, 10, tc.n, tc.gap)
			}

			{ // regular per-sample-signed path
				srv, id, keys := newFixture(t)
				mustRegisterZone(t, srv, tc.zone)
				resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, trace(keys))})
				if err != nil {
					t.Fatal(err)
				}
				verdicts["submit"] = resp.Verdict
			}

			{ // batch envelope
				srv, id, keys := newFixture(t)
				mustRegisterZone(t, srv, tc.zone)
				resp, err := srv.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: id, EncryptedBatch: batchEnvelope(t, srv, keys, trace(keys))})
				if err != nil {
					t.Fatal(err)
				}
				verdicts["batch"] = resp.Verdict
			}

			{ // symmetric (MAC) envelope
				srv, id, keys := newFixture(t)
				mustRegisterZone(t, srv, tc.zone)
				key := []byte("0123456789abcdef0123456789abcdef")
				sess, err := srv.StartSession(protocol.StartSessionRequest{DroneID: id, WrappedKey: encryptBytes(t, srv, key)})
				if err != nil {
					t.Fatal(err)
				}
				resp, err := srv.SubmitMACPoA(protocol.SubmitMACPoARequest{DroneID: id, SessionID: sess.SessionID, EncryptedPoA: macEnvelope(t, srv, key, trace(keys))})
				if err != nil {
					t.Fatal(err)
				}
				verdicts["mac"] = resp.Verdict
			}

			{ // real-time stream path
				srv, id, keys := newFixture(t)
				mustRegisterZone(t, srv, tc.zone)
				open, err := srv.OpenStream(protocol.OpenStreamRequest{DroneID: id})
				if err != nil {
					t.Fatal(err)
				}
				for _, ss := range trace(keys).Samples {
					if _, err := srv.StreamSample(protocol.StreamSampleRequest{StreamID: open.StreamID, Sample: ss}); err != nil {
						t.Fatal(err)
					}
				}
				resp, err := srv.CloseStream(protocol.CloseStreamRequest{StreamID: open.StreamID})
				if err != nil {
					t.Fatal(err)
				}
				verdicts["stream"] = resp.Verdict
			}

			{ // binary wire door (same pipeline behind the framing)
				srv, id, keys := newFixture(t)
				mustRegisterZone(t, srv, tc.zone)
				addr := startWire(t, srv, WireOptions{})
				wc := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
				resp, err := wc.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, trace(keys))})
				if err != nil {
					t.Fatal(err)
				}
				wc.Close()
				verdicts["wire"] = resp.Verdict
			}

			{ // commit-envelope door: the TEE-signed predicates must judge
				// the same trace against the same zone identically, with the
				// auditor never seeing a position.
				srv, id, keys := newDisclosureFixture(t, poa.DisclosureCommit)
				mustRegisterZone(t, srv, tc.zone)
				ct, _, _ := commitSubmission(t, srv, keys, trace(keys), tc.zone)
				resp, err := srv.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct})
				if err != nil {
					t.Fatal(err)
				}
				verdicts["commit"] = resp.Verdict
			}

			{ // commit envelope through the binary wire door
				srv, id, keys := newDisclosureFixture(t, poa.DisclosureCommit)
				mustRegisterZone(t, srv, tc.zone)
				ct, _, _ := commitSubmission(t, srv, keys, trace(keys), tc.zone)
				addr := startWire(t, srv, WireOptions{})
				wc := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
				resp, err := wc.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct})
				if err != nil {
					t.Fatal(err)
				}
				wc.Close()
				verdicts["commit-wire"] = resp.Verdict
			}

			{ // accusation re-check over the retained trace
				srv, id, keys := newFixture(t)
				resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, trace(keys))})
				if err != nil || resp.Verdict != protocol.VerdictCompliant {
					t.Fatalf("pre-accusation submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
				}
				zoneID := mustRegisterZone(t, srv, tc.zone)
				// Accuse strictly inside the first sample pair so exactly
				// one retained pair spans the instant — the same pair the
				// submission paths judge.
				mid := t0.Add(tc.gap / 2)
				acc, err := srv.HandleAccusation(id, zoneID, mid)
				if err != nil {
					t.Fatal(err)
				}
				verdicts["accusation"] = acc.Verdict
			}

			for path, v := range verdicts {
				if v != tc.want {
					t.Errorf("%s verdict = %v, want %v", path, v, tc.want)
				}
			}
		})
	}
}

func mustRegisterZone(t *testing.T, srv *Server, z geo.GeoCircle) string {
	t.Helper()
	id, err := srv.Zones().Register("owner", z)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
