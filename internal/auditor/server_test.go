package auditor

import (
	"crypto/rsa"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

var (
	t0     = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	urbana = geo.LatLon{Lat: 40.1106, Lon: -88.2073}
)

// droneKeys holds both drone-side keypairs so tests can sign (or forge) on
// either side of the protocol without a full TEE stack.
type droneKeys struct {
	op  *rsa.PrivateKey // D-
	tee *rsa.PrivateKey // T-
}

// newFixture builds a server with one registered drone and returns the
// drone's keys.
func newFixture(t *testing.T) (*Server, string, droneKeys) {
	t.Helper()
	return newFixtureConfig(t, Config{
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
		Metrics: obs.NewRegistry(nil),
	})
}

// newFixtureConfig is newFixture with an explicit config; the Random
// source is filled in when unset.
func newFixtureConfig(t *testing.T, cfg Config) (*Server, string, droneKeys) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	if cfg.Random == nil {
		cfg.Random = rng
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	teeKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := sigcrypto.MarshalPublicKey(&teeKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	return srv, resp.DroneID, droneKeys{op: op, tee: teeKey}
}

// signedTrace builds a PoA of TEE-signed samples along a straight line.
func signedTrace(t *testing.T, keys droneKeys, start geo.LatLon, bearing, speed float64, n int, gap time.Duration) poa.PoA {
	t.Helper()
	var p poa.PoA
	for i := 0; i < n; i++ {
		s := poa.Sample{
			Pos:  start.Offset(bearing, speed*float64(i)*gap.Seconds()),
			Time: t0.Add(time.Duration(i) * gap),
		}.Canon()
		sig, err := sigcrypto.Sign(keys.tee, s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		p.Append(poa.SignedSample{Sample: s, Sig: sig})
	}
	return p
}

// encryptFor encrypts a PoA to the server, as the Adapter would.
func encryptFor(t *testing.T, srv *Server, p poa.PoA) []byte {
	t.Helper()
	plaintext, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sigcrypto.Encrypt(rand.New(rand.NewSource(7)), srv.EncryptionPub(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestRegisterDroneIssuesIDs(t *testing.T) {
	srv, id, keys := newFixture(t)
	if id == "" {
		t.Fatal("empty drone id")
	}
	opPub, _ := sigcrypto.MarshalPublicKey(&keys.op.PublicKey)
	teePub, _ := sigcrypto.MarshalPublicKey(&keys.tee.PublicKey)
	resp2, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.DroneID == id {
		t.Error("drone IDs must be unique")
	}
}

func TestRegisterDroneBadKeys(t *testing.T) {
	srv, _, keys := newFixture(t)
	opPub, _ := sigcrypto.MarshalPublicKey(&keys.op.PublicKey)
	if _, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: "junk", TEEPub: opPub}); err == nil {
		t.Error("bad operator key accepted")
	}
	if _, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: "junk"}); err == nil {
		t.Error("bad tee key accepted")
	}
}

func TestZoneQueryFlow(t *testing.T) {
	srv, id, keys := newFixture(t)
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "alice", Zone: geo.GeoCircle{Center: urbana, R: 100}, OwnershipProof: "deed",
	}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	nonce, err := protocol.NewNonce(rng)
	if err != nil {
		t.Fatal(err)
	}
	req := protocol.ZoneQueryRequest{
		DroneID: id,
		Area:    geo.NewRect(urbana.Offset(225, 5000), urbana.Offset(45, 5000)),
		Nonce:   nonce,
	}
	if err := protocol.SignZoneQuery(&req, keys.op); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.ZoneQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Zones) != 1 {
		t.Fatalf("zones = %d, want 1", len(resp.Zones))
	}

	// Replaying the same nonce must fail.
	if _, err := srv.ZoneQuery(req); !errors.Is(err, protocol.ErrBadNonce) {
		t.Errorf("replay err = %v, want ErrBadNonce", err)
	}
}

func TestZoneQueryRejectsBadSignature(t *testing.T) {
	srv, id, _ := newFixture(t)
	rng := rand.New(rand.NewSource(6))
	attacker, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := protocol.NewNonce(rng)
	req := protocol.ZoneQueryRequest{
		DroneID: id,
		Area:    geo.NewRect(urbana.Offset(225, 5000), urbana.Offset(45, 5000)),
		Nonce:   nonce,
	}
	// Signed with the wrong key: the attacker does not hold D-.
	if err := protocol.SignZoneQuery(&req, attacker); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ZoneQuery(req); !errors.Is(err, protocol.ErrBadSignature) {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestZoneQueryUnknownDrone(t *testing.T) {
	srv, _, keys := newFixture(t)
	rng := rand.New(rand.NewSource(6))
	nonce, _ := protocol.NewNonce(rng)
	req := protocol.ZoneQueryRequest{DroneID: "drone-9999", Area: geo.Rect{}, Nonce: nonce}
	if err := protocol.SignZoneQuery(&req, keys.op); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ZoneQuery(req); !errors.Is(err, ErrUnknownDrone) {
		t.Errorf("err = %v, want ErrUnknownDrone", err)
	}
}

func TestSubmitPoACompliant(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Zone 5 km north of the flight line.
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "alice", Zone: geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100},
	}); err != nil {
		t.Fatal(err)
	}

	p := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
	if srv.RetainedCount() != 1 {
		t.Errorf("retained = %d, want 1", srv.RetainedCount())
	}
}

func TestSubmitPoAInsufficient(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Zone right next to the flight line.
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "bob", Zone: geo.GeoCircle{Center: urbana.Offset(0, 60), R: 30},
	}); err != nil {
		t.Fatal(err)
	}

	// Sparse 20 s gaps: travel budget 894 m vs boundary ~30 m.
	p := signedTrace(t, keys, urbana, 90, 10, 5, 20*time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("verdict = %v, want violation", resp.Verdict)
	}
	if resp.InsufficientPairs == 0 {
		t.Error("expected insufficient pairs to be reported")
	}
	if srv.RetainedCount() != 0 {
		t.Error("violating PoA should not be retained")
	}
}

func TestSubmitPoAForgedSample(t *testing.T) {
	srv, id, keys := newFixture(t)
	p := signedTrace(t, keys, urbana, 90, 10, 10, time.Second)
	// Tamper with one sample after signing — the forged-route attack.
	p.Samples[4].Sample.Pos.Lat += 0.01

	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("forged sample verdict = %v, want violation", resp.Verdict)
	}
}

func TestSubmitPoAWrongTEEKey(t *testing.T) {
	srv, id, _ := newFixture(t)
	rng := rand.New(rand.NewSource(9))
	other, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	// Signed by a different TEE (relay attack: PoA from another drone).
	p := signedTrace(t, droneKeys{tee: other}, urbana, 90, 10, 10, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("relayed PoA verdict = %v, want violation", resp.Verdict)
	}
}

func TestSubmitPoASpeedInfeasible(t *testing.T) {
	srv, id, keys := newFixture(t)
	// 1 km hops at 1 s gaps: 1000 m/s ≫ vmax. Physically impossible.
	p := signedTrace(t, keys, urbana, 90, 1000, 5, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("infeasible trace verdict = %v, want violation", resp.Verdict)
	}
}

func TestSubmitPoAGarbage(t *testing.T) {
	srv, id, _ := newFixture(t)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: []byte("garbage")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Error("garbage ciphertext should be a violation")
	}

	if _, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: "nope", EncryptedPoA: nil}); !errors.Is(err, ErrUnknownDrone) {
		t.Errorf("err = %v, want ErrUnknownDrone", err)
	}
}

func TestAccusationFlow(t *testing.T) {
	srv, id, keys := newFixture(t)
	zoneID, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100})
	if err != nil {
		t.Fatal(err)
	}

	p := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	if _, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)}); err != nil {
		t.Fatal(err)
	}

	// Zone owner reports a sighting at t0+10 s: the retained alibi
	// exonerates the drone.
	resp, err := srv.HandleAccusation(id, zoneID, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v, want compliant", resp.Verdict)
	}

	// An accusation outside the covered window cannot be answered.
	if _, err := srv.HandleAccusation(id, zoneID, t0.Add(time.Hour)); !errors.Is(err, ErrNoPoA) {
		t.Errorf("err = %v, want ErrNoPoA", err)
	}
	if _, err := srv.HandleAccusation("nope", zoneID, t0); !errors.Is(err, ErrUnknownDrone) {
		t.Errorf("err = %v, want ErrUnknownDrone", err)
	}
	if _, err := srv.HandleAccusation(id, "zone-999", t0); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("err = %v, want ErrUnknownZone", err)
	}
}

func TestRetentionPurge(t *testing.T) {
	clock := obs.NewFakeClock(t0)
	rng := rand.New(rand.NewSource(11))
	srv, err := NewServer(Config{
		Random:    rng,
		Retention: 48 * time.Hour,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	op, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	teeKey, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	opPub, _ := sigcrypto.MarshalPublicKey(&op.PublicKey)
	teePub, _ := sigcrypto.MarshalPublicKey(&teeKey.PublicKey)
	reg, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}

	p := signedTrace(t, droneKeys{tee: teeKey}, urbana, 90, 10, 10, time.Second)
	if _, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: reg.DroneID, EncryptedPoA: encryptFor(t, srv, p)}); err != nil {
		t.Fatal(err)
	}
	if srv.RetainedCount() != 1 {
		t.Fatal("PoA not retained")
	}

	// One day later: still retained.
	clock.Set(t0.Add(24 * time.Hour))
	if removed := srv.PurgeExpired(); removed != 0 {
		t.Errorf("purged %d too early", removed)
	}
	// Three days later: purged.
	clock.Set(t0.Add(72 * time.Hour))
	if removed := srv.PurgeExpired(); removed != 1 {
		t.Errorf("purged %d, want 1", removed)
	}
	if srv.RetainedCount() != 0 {
		t.Error("retention store not emptied")
	}
}

func TestAccusationCannotExonerate(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Zone close to the trace with sparse retained samples: the covering
	// pair cannot rule out presence.
	zoneID, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 20000), R: 100})
	if err != nil {
		t.Fatal(err)
	}
	nearID, err := srv.Zones().Register("bob", geo.GeoCircle{Center: urbana.Offset(0, 21000), R: 100})
	if err != nil {
		t.Fatal(err)
	}
	_ = zoneID

	// Submit a compliant trace far from both zones (they are ~20 km away,
	// pairs 1 s apart → sufficient).
	p := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}

	// An accusation against the distant zone: exonerated (pairs cannot
	// reach 20 km in 1 s).
	acc, err := srv.HandleAccusation(id, nearID, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictCompliant {
		t.Errorf("distant zone accusation = %v", acc.Verdict)
	}

	// Now register a zone right on the trace and accuse: the retained
	// pair is 1 s apart with the boundary only ~40 m away — the sum of
	// boundary distances (~80 m) exceeds the 45 m budget, so still
	// exonerated; shrink the margin by using a zone overlapping the
	// trace: the samples were inside it, nothing can exonerate.
	onTraceID, err := srv.Zones().Register("carol", geo.GeoCircle{Center: urbana.Offset(90, 100), R: 50})
	if err != nil {
		t.Fatal(err)
	}
	acc, err = srv.HandleAccusation(id, onTraceID, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictViolation {
		t.Errorf("on-trace zone accusation = %v, want violation", acc.Verdict)
	}
}
