package auditor

// Crash-recovery tests for the WAL-backed server: every record type
// replays, recovery from any prefix of the log lands on the last
// committed mutation (kill-point cuts at and inside record boundaries),
// and time-based expiry schedules survive a restart.

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
)

// mutableClock is a settable obs.Clock shared across restarts.
type mutableClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *mutableClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *mutableClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

// openStoreServer opens (or recovers) a WAL-backed server in dir.
func openStoreServer(t *testing.T, dir string, cfg Config) (*Server, storage.Store) {
	t.Helper()
	st, err := storage.OpenFileStore(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := OpenServer(cfg, st, "")
	if err != nil {
		_ = st.Close()
		t.Fatalf("OpenServer: %v", err)
	}
	return srv, st
}

func recoveryConfig(clock obs.Clock) Config {
	return Config{
		Clock:   clock,
		Metrics: obs.NewRegistry(nil),
		Random:  rand.New(rand.NewSource(42)),
	}
}

// mutateAll drives one committed mutation of every WAL record type except
// the purge (the caller controls the clock for that): drone registration,
// zone registration through both the protocol endpoint and the exposed
// registry, 3-D zone registration, a nonce-consuming zone query, and a
// compliant PoA submission (retention + replay digest). It returns the
// drone identity and the signed query + ciphertext for replay probes.
func mutateAll(t *testing.T, srv *Server) (id string, keys droneKeys, query protocol.ZoneQueryRequest, ct []byte) {
	t.Helper()
	id, keys = registerRecoveryDrone(t, srv)
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "alice",
		Zone:  geo.GeoCircle{Center: urbana, R: 200},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Zones().Register("bob", geo.GeoCircle{Center: urbana.Offset(90, 3000), R: 150}); err != nil {
		t.Fatal(err)
	}

	// A commit-mode drone with a retained commitment (WAL record kind 9).
	// This must precede the 3-D zone below: commit predicates cannot rule
	// out cylindrical regions, so the door rejects once one is registered.
	cid, ckeys := registerDisclosureDrone(t, srv, rand.New(rand.NewSource(46)), poa.DisclosureCommit)
	cp := signedTrace(t, ckeys, urbana.Offset(90, 60000), 0, 10, 5, time.Second)
	cct, _, _ := commitSubmission(t, srv, ckeys, cp)
	if resp, err := srv.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: cid, EncryptedEnvelope: cct}); err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("commit submit: %v / %+v", err, resp)
	}

	if _, err := srv.RegisterZone3D("carol", poa.CylinderZone{Center: urbana.Offset(180, 3000), R: 80, AltMax: 120}); err != nil {
		t.Fatal(err)
	}

	nonce, err := protocol.NewNonce(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	query = protocol.ZoneQueryRequest{
		DroneID: id,
		Area:    geo.NewRect(urbana.Offset(225, 5000), urbana.Offset(45, 5000)),
		Nonce:   nonce,
	}
	if err := protocol.SignZoneQuery(&query, keys.op); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ZoneQuery(query); err != nil {
		t.Fatal(err)
	}

	// A trace far from every registered zone: trivially compliant, so it
	// is retained and its digest claimed.
	p := signedTrace(t, keys, urbana.Offset(0, 50000), 90, 10, 10, time.Second)
	ct = encryptFor(t, srv, p)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %+v", err, resp)
	}
	return id, keys, query, ct
}

// registerRecoveryDrone registers one drone with deterministic keypairs
// on an already-open server.
func registerRecoveryDrone(t *testing.T, srv *Server) (string, droneKeys) {
	t.Helper()
	rng := rand.New(rand.NewSource(43))
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	tee, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := sigcrypto.MarshalPublicKey(&tee.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	return resp.DroneID, droneKeys{op: op, tee: tee}
}

func TestOpenServerRecoversAllRecordTypes(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	srv, st := openStoreServer(t, dir, recoveryConfig(clock))
	id, keys, query, ct := mutateAll(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover with no explicit checkpoint: everything after the initial
	// snapshot lives only in the WAL tail.
	srv2, st2 := openStoreServer(t, dir, recoveryConfig(clock))
	defer st2.Close()

	status := srv2.Status()
	if status.Drones != 2 || status.Zones != 2 || status.Zones3D != 1 || status.RetainedPoAs != 1 || status.Commitments != 1 {
		t.Fatalf("recovered status = %+v, want 2 drones / 2 zones / 1 zone3d / 1 retained / 1 commitment", status)
	}
	// The nonce claim survived: replaying the signed query is rejected.
	if _, err := srv2.ZoneQuery(query); !errors.Is(err, protocol.ErrBadNonce) {
		t.Errorf("nonce replay after recovery err = %v, want ErrBadNonce", err)
	}
	// The replay digest survived: the old ciphertext still decrypts (the
	// encryption key came back) and is rejected as a replay.
	resp, err := srv2.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("PoA replay after recovery verdict = %v, want violation", resp.Verdict)
	}
	// The recovered server keeps working: a fresh submission from the
	// registered drone verifies under the restored TEE key.
	p2 := signedTrace(t, keys, urbana.Offset(0, 60000), 45, 10, 10, time.Second)
	resp, err = srv2.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv2, p2)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("fresh submit after recovery: %v / %+v", err, resp)
	}
}

// walFrames parses a WAL segment into record kinds and their end offsets,
// mirroring the storage framing ([4B len][4B crc][kind+payload]).
func walFrames(t *testing.T, path string) (kinds []byte, ends []int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for int(off)+8 <= len(data) {
		length := binary.LittleEndian.Uint32(data[off : off+4])
		end := off + 8 + int64(length)
		if int(end) > len(data) {
			break
		}
		kinds = append(kinds, data[off+8])
		ends = append(ends, end)
		off = end
	}
	if int(off) != len(data) {
		t.Fatalf("segment %s has %d trailing bytes", path, len(data)-int(off))
	}
	return kinds, ends
}

// activeSegment returns the highest-numbered WAL segment in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	best := matches[0]
	for _, m := range matches[1:] {
		if m > best {
			best = m
		}
	}
	return best
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o700); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryKillPoints is the crash-recovery property test: the WAL is
// cut after every record boundary — and mid-record — and recovery must
// land exactly on the state after the last committed mutation.
func TestRecoveryKillPoints(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	srv, st := openStoreServer(t, dir, recoveryConfig(clock))
	mutateAll(t, srv)
	// Advance past the nonce TTL and purge, so a recPurge record is in
	// the stream too.
	clock.Set(t0.Add(2 * time.Hour))
	srv.PurgeExpired()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	seg := activeSegment(t, dir)
	kinds, ends := walFrames(t, seg)
	if len(kinds) < 7 {
		t.Fatalf("expected >= 7 WAL records, got %d (kinds %v)", len(kinds), kinds)
	}

	// Expected store sizes after replaying the first k records onto the
	// initial (empty) snapshot.
	type counts struct{ drones, zones, zones3D, retained, commitments int }
	expect := make([]counts, len(kinds)+1)
	for k, kind := range kinds {
		c := expect[k]
		switch kind {
		case recDroneRegistered:
			c.drones++
		case recZoneRegistered:
			c.zones++
		case recZone3DRegistered:
			c.zones3D++
		case recPoARetained:
			c.retained++
		case recDisclosureRetained:
			c.commitments++
		}
		expect[k+1] = c
	}

	check := func(name string, cutAt int64, want counts) {
		t.Helper()
		cut := filepath.Join(t.TempDir(), "cut")
		copyDir(t, dir, cut)
		if err := os.Truncate(filepath.Join(cut, filepath.Base(seg)), cutAt); err != nil {
			t.Fatal(err)
		}
		srv2, st2 := openStoreServer(t, cut, recoveryConfig(clock))
		defer st2.Close()
		got := srv2.Status()
		if got.Drones != want.drones || got.Zones != want.zones ||
			got.Zones3D != want.zones3D || got.RetainedPoAs != want.retained ||
			got.Commitments != want.commitments {
			t.Errorf("%s: recovered %+v, want %+v", name, got, want)
		}
	}

	// Cut 0: nothing committed.
	check("cut@0", 0, expect[0])
	for k, end := range ends {
		// Exactly at the boundary: records 0..k are committed.
		check(kindName(kinds[k])+"/boundary", end, expect[k+1])
		// Mid-record: the torn frame of record k+1 (or trailing garbage)
		// must be discarded, landing on the same committed prefix.
		if k+1 < len(ends) {
			check(kindName(kinds[k+1])+"/torn", end+5, expect[k+1])
		}
	}

	// A repaired log accepts new appends: cut inside the last record,
	// recover, mutate, and recover again.
	cut := filepath.Join(t.TempDir(), "repair")
	copyDir(t, dir, cut)
	if err := os.Truncate(filepath.Join(cut, filepath.Base(seg)), ends[len(ends)-1]-3); err != nil {
		t.Fatal(err)
	}
	srv2, st2 := openStoreServer(t, cut, recoveryConfig(clock))
	if _, err := srv2.Zones().Register("dave", geo.GeoCircle{Center: urbana.Offset(270, 4000), R: 60}); err != nil {
		t.Fatal(err)
	}
	wantZones := srv2.Status().Zones
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3, st3 := openStoreServer(t, cut, recoveryConfig(clock))
	defer st3.Close()
	if got := srv3.Status().Zones; got != wantZones {
		t.Errorf("zones after repair+append+recover = %d, want %d", got, wantZones)
	}
}

func kindName(k byte) string {
	switch k {
	case recDroneRegistered:
		return "drone"
	case recZoneRegistered:
		return "zone"
	case recZone3DRegistered:
		return "zone3d"
	case recPoARetained:
		return "retained"
	case recNonceSeen:
		return "nonce"
	case recDigestClaimed:
		return "digest"
	case recPurge:
		return "purge"
	case recDisclosureRetained:
		return "disclosure"
	}
	return "unknown"
}

// TestDisclosureRetentionSurvivesRestart pins the WAL round-trip of a
// retained commitment (record kind 9): after a crash and recovery, an
// accusation over the restored Times still opens a challenge, and a
// reveal verifies against the restored Root and KeyEpoch and settles it.
func TestDisclosureRetentionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	srv, st := openStoreServer(t, dir, recoveryConfig(clock))

	id, keys := registerDisclosureDrone(t, srv, rand.New(rand.NewSource(47)), poa.DisclosureCommit)
	p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)
	ct, sealed, otKeys := commitSubmission(t, srv, keys, p)
	if resp, err := srv.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct}); err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("commit submit: %v / %+v", err, resp)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, st2 := openStoreServer(t, dir, recoveryConfig(clock))
	defer st2.Close()
	if got := srv2.Status().Commitments; got != 1 {
		t.Fatalf("recovered commitments = %d, want 1", got)
	}

	zoneID, err := srv2.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := srv2.HandleAccusation(id, zoneID, t0.Add(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictDisclosureRequired || acc.Challenge == nil {
		t.Fatalf("post-recovery accusation = %+v, want disclosure-required", acc)
	}
	secrets := &operator.DisclosureSecrets{Mode: poa.DisclosureCommit, Sealed: sealed, Keys: otKeys}
	req, err := secrets.Answer(*acc.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	final, err := srv2.Reveal(req)
	if err != nil {
		t.Fatal(err)
	}
	if final.Verdict != protocol.VerdictViolation {
		t.Errorf("post-recovery reveal verdict = %+v, want violation", final)
	}
}

// TestExpirySchedulesSurviveRestart pins the recovery semantics of
// time-based state: nonce and replay-digest expiry run on the schedule
// established before the crash, and a logged purge replays with its
// commit-time cutoffs.
func TestExpirySchedulesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	cfg := recoveryConfig(clock)
	cfg.NonceTTL = time.Hour
	cfg.Retention = 2 * time.Hour

	srv, st := openStoreServer(t, dir, cfg)
	id, _, query, ct := mutateAll(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart mid-TTL: both caches still reject replays — the first-seen
	// times recovered, not reset to the restart instant.
	clock.Set(t0.Add(30 * time.Minute))
	srv, st = openStoreServer(t, dir, cfg)
	if _, err := srv.ZoneQuery(query); !errors.Is(err, protocol.ErrBadNonce) {
		t.Fatalf("nonce replay at t0+30m: err = %v, want ErrBadNonce", err)
	}
	if resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct}); err != nil || resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("PoA replay at t0+30m: %v / %+v", err, resp)
	}

	// Past the nonce TTL the original nonce frees up again.
	clock.Set(t0.Add(61 * time.Minute))
	srv.PurgeExpired()
	if _, err := srv.ZoneQuery(query); err != nil {
		t.Fatalf("nonce reuse after TTL: %v", err)
	}

	// Past the retention window the digest and the retained PoA expire,
	// so the identical trace is acceptable (and retained) again.
	clock.Set(t0.Add(2*time.Hour + time.Second))
	srv.PurgeExpired()
	if got := srv.RetainedCount(); got != 0 {
		t.Fatalf("retained after purge = %d, want 0", got)
	}
	if resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct}); err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("resubmit after expiry: %v / %+v", err, resp)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Final restart: the purges replayed with their original cutoffs, so
	// exactly the re-retained PoA is present — not the expired one too.
	srv, st = openStoreServer(t, dir, cfg)
	defer st.Close()
	if got := srv.RetainedCount(); got != 1 {
		t.Errorf("retained after final recovery = %d, want 1", got)
	}
}
