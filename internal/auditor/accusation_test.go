package auditor

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
)

// TestAccusationScansAllRetainedPoAs is the regression test for the
// first-spanning-pair bug: an accusation used to return the violation
// verdict from the first retained PoA whose pair spanned the incident
// instant, even when a later retained PoA for the same drone covered the
// same instant with a pair fine-grained enough to exonerate. Any
// exonerating pair proves the drone was elsewhere; the scan must prefer
// it.
func TestAccusationScansAllRetainedPoAs(t *testing.T) {
	srv, id, keys := newFixture(t)

	// Trace A: two stationary samples 60 s apart. Its only pair has a
	// ~2.7 km travel ellipse — far too coarse to rule out the zone.
	coarse := signedTrace(t, keys, urbana, 0, 0, 2, time.Minute)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, coarse)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("coarse submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}

	// Trace B: the same stationary minute at 1 Hz. Every pair's travel
	// budget is ~45 m against a zone 1.3 km away — a decisive alibi.
	fine := signedTrace(t, keys, urbana, 0, 0, 61, time.Second)
	resp, err = srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, fine)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("fine submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}

	zoneID := mustRegisterZone(t, srv, geo.GeoCircle{Center: urbana.Offset(90, 1300), R: 50})

	// Both retained traces span t0+30s; only trace B can exonerate. The
	// buggy scan stopped at trace A's insufficient pair.
	acc, err := srv.HandleAccusation(id, zoneID, t0.Add(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v (%s), want compliant from the later fine-grained trace", acc.Verdict, acc.Reason)
	}

	// With only coarse coverage (outside trace B's window nothing else
	// spans), the accusation still stands... and an uncovered instant is
	// still ErrNoPoA.
	if _, err := srv.HandleAccusation(id, zoneID, t0.Add(2*time.Hour)); !errors.Is(err, ErrNoPoA) {
		t.Errorf("uncovered instant err = %v, want ErrNoPoA", err)
	}
}

// registerDrone registers a fresh drone on an existing server and returns
// its ID and keys (newFixtureConfig builds its own server, which the
// storage-backed tests cannot use).
func registerDrone(t *testing.T, srv *Server) (string, droneKeys) {
	t.Helper()
	rng := rand.New(rand.NewSource(43))
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	tee, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := sigcrypto.MarshalPublicKey(&tee.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	return resp.DroneID, droneKeys{op: op, tee: tee}
}

// flakyStore wraps a Store with a switchable Append failure.
type flakyStore struct {
	storage.Store
	fail atomic.Bool
}

func (f *flakyStore) Append(ctx context.Context, recs ...storage.Record) error {
	if f.fail.Load() {
		return errors.New("disk full")
	}
	return f.Store.Append(ctx, recs...)
}

// TestPurgeExpiredLogsWALFailure pins the sweeper-observability fix:
// PurgeExpired used to fire its WAL record on context.Background and
// swallow the error beyond the metric. Now the sweeper's context threads
// through and a failed append lands in the structured log.
func TestPurgeExpiredLogsWALFailure(t *testing.T) {
	clock := obs.NewFakeClock(t0)
	var logBuf bytes.Buffer
	st := &flakyStore{Store: storage.NewMemStore()}
	srv, err := OpenServer(Config{
		Clock:     clock,
		Retention: time.Hour,
		Logger:    olog.New(&logBuf, olog.LevelWarn, clock),
	}, st, "")
	if err != nil {
		t.Fatal(err)
	}
	id, keys := registerDrone(t, srv)

	// Nothing expired yet: no purge, no log line.
	if n := srv.PurgeExpiredCtx(context.Background()); n != 0 {
		t.Fatalf("premature purge of %d", n)
	}

	// Retain one PoA, expire it, and make the WAL fail.
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second))})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}
	clock.Advance(2 * time.Hour)
	st.fail.Store(true)

	if n := srv.PurgeExpiredCtx(context.Background()); n != 1 {
		t.Fatalf("purged = %d, want 1", n)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "retention purge WAL append failed") || !strings.Contains(logged, "disk full") {
		t.Errorf("log = %q, want the WAL failure warning", logged)
	}
}
