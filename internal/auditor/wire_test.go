package auditor

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/wire"
)

// startWire spins up a WireServer for srv on a loopback listener and
// tears it down with the test.
func startWire(t *testing.T, srv *Server, opts WireOptions) net.Addr {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv, opts)
	go func() { _ = ws.Serve(lis) }()
	t.Cleanup(func() { ws.Close() })
	return lis.Addr()
}

// marshalFixtureKeys produces fresh marshalled operator/TEE public keys
// for a binary registration (distinct from the fixture's drone).
func marshalFixtureKeys(t *testing.T, keys droneKeys) (opPub, teePub string) {
	t.Helper()
	opPub, err := sigcrypto.MarshalPublicKey(&keys.op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err = sigcrypto.MarshalPublicKey(&keys.tee.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	return opPub, teePub
}

func TestWireSubmitVerdicts(t *testing.T) {
	srv, id, keys := newFixture(t)
	mustRegisterZone(t, srv, geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100})
	addr := startWire(t, srv, WireOptions{})

	wc := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
	defer wc.Close()

	// Heading north through the zone: violation.
	resp, err := wc.SubmitPoA(protocol.SubmitPoARequest{
		DroneID:      id,
		EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 10, time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("verdict = %v, want violation (%s)", resp.Verdict, resp.Reason)
	}

	// Heading east, away from it: compliant, on the same connection.
	resp, err = wc.SubmitPoA(protocol.SubmitPoARequest{
		DroneID:      id,
		EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana.Offset(90, 500), 90, 10, 10, time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v, want compliant (%s)", resp.Verdict, resp.Reason)
	}

	reg := srv.Metrics()
	if got := reg.Counter(MetricWireSubmissionsTotal).Value(); got != 2 {
		t.Errorf("wire submissions counter = %d, want 2", got)
	}
	if got := reg.Counter(obs.L(MetricWireAcksTotal, "status", "compliant")).Value(); got != 1 {
		t.Errorf("compliant ack counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.L(MetricWireAcksTotal, "status", "violation")).Value(); got != 1 {
		t.Errorf("violation ack counter = %d, want 1", got)
	}
}

// TestWireRegisterThenSubmit exercises the binary registration frame:
// a drone that has never touched HTTP registers and submits over one
// wire connection.
func TestWireRegisterThenSubmit(t *testing.T) {
	srv, _, keys := newFixture(t)
	addr := startWire(t, srv, WireOptions{})

	wc := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
	defer wc.Close()

	opPub, teePub := marshalFixtureKeys(t, keys)
	reg, err := wc.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	if reg.DroneID == "" {
		t.Fatal("binary registration returned an empty drone id")
	}

	resp, err := wc.SubmitPoA(protocol.SubmitPoARequest{
		DroneID:      reg.DroneID,
		EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v, want compliant (%s)", resp.Verdict, resp.Reason)
	}
}

// TestWireOverloadAckHonored pins the shedding contract on the binary
// door: a shed submission comes back as a typed overload ack that a
// no-retry client surfaces as ErrOverloaded with the server's hint, and
// a retrying client rides the hint to an eventual verdict.
func TestWireOverloadAckHonored(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Clock:       obs.ClockFunc(func() time.Time { return t0 }),
		Metrics:     obs.NewRegistry(nil),
		MaxInflight: 1,
		QueueDepth:  -1, // shed immediately, no waiting
		RetryAfter:  1500 * time.Millisecond,
	})
	gate := make(chan struct{})
	entered := make(chan struct{})
	gateAtSignature(srv, gate, entered)
	addr := startWire(t, srv, WireOptions{})

	poaA := encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second))
	poaB := encryptFor(t, srv, signedTrace(t, keys, urbana, 90, 10, 6, time.Second))

	// Hold the only admission slot with a stalled wire submission.
	holder := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
	defer holder.Close()
	held := make(chan error, 1)
	go func() {
		_, err := holder.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaA})
		held <- err
	}()
	<-entered

	// A no-retry client is shed with the typed error and the hint.
	shed := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
	defer shed.Close()
	_, err := shed.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaB})
	if !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("shed err = %v, want ErrOverloaded", err)
	}
	var over *protocol.OverloadedError
	if !errors.As(err, &over) || over.RetryAfter != 1500*time.Millisecond {
		t.Errorf("overload err = %#v, want RetryAfter 1.5s hint", err)
	}

	// A retrying client sleeps out the hint and then gets a verdict; the
	// fake sleeper releases the gate so the slot frees up "during" the
	// backoff.
	retrier := operator.NewWireClient(addr.String(), operator.WireClientOptions{
		Retry: operator.RetryPolicy{Max: 3, Backoff: 10 * time.Millisecond},
	})
	defer retrier.Close()
	var slept []time.Duration
	var once bool
	retrier.SetSleep(func(d time.Duration) {
		slept = append(slept, d)
		if !once {
			once = true
			close(gate)
			if err := <-held; err != nil {
				t.Errorf("stalled submission: %v", err)
			}
		}
	})
	resp, err := retrier.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: poaB})
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v, want compliant (%s)", resp.Verdict, resp.Reason)
	}
	if len(slept) == 0 || slept[0] != 1500*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want the 1.5s Retry-After hint first", slept)
	}
}

// TestWireTornFrameReconnect kills a connection mid-frame and checks the
// server shrugs it off: the torn tail is dropped, the error is counted,
// and a fresh connection gets verdicts as usual.
func TestWireTornFrameReconnect(t *testing.T) {
	srv, id, keys := newFixture(t)
	addr := startWire(t, srv, WireOptions{})

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(raw)
	if _, err := raw.Write(wire.EncodeHello(nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(br, wire.MaxMessageBytes); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	// Write two-thirds of a submission frame, then die.
	frame := wire.EncodeSubmit(nil, wire.Submit{
		Seq:        1,
		DroneID:    id,
		Ciphertext: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second)),
	})
	if _, err := raw.Write(frame[:2*len(frame)/3]); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// The server must keep serving: a fresh client gets a verdict.
	wc := operator.NewWireClient(addr.String(), operator.WireClientOptions{})
	defer wc.Close()
	resp, err := wc.SubmitPoA(protocol.SubmitPoARequest{
		DroneID:      id,
		EncryptedPoA: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("post-reconnect verdict = %v, want compliant (%s)", resp.Verdict, resp.Reason)
	}
	// The torn write was observed and counted (the read loop may need a
	// beat to see the close).
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Counter(MetricWireErrorsTotal).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("torn frame never counted in wire errors")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireBadCRCGetsErrorFrame corrupts a frame payload in flight and
// expects a fatal protocol error frame back before the server hangs up.
func TestWireBadCRCGetsErrorFrame(t *testing.T) {
	srv, id, keys := newFixture(t)
	addr := startWire(t, srv, WireOptions{})

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	br := bufio.NewReader(raw)
	if _, err := raw.Write(wire.EncodeHello(nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(br, wire.MaxMessageBytes); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	frame := wire.EncodeSubmit(nil, wire.Submit{
		Seq:        1,
		DroneID:    id,
		Ciphertext: encryptFor(t, srv, signedTrace(t, keys, urbana, 0, 10, 5, time.Second)),
	})
	frame[len(frame)-1] ^= 0xff // corrupt the payload, not the header
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}

	kind, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
	if err != nil {
		t.Fatalf("expected an error frame, read failed: %v", err)
	}
	typ, body, err := wire.SplitType(data)
	if err != nil || kind != wire.Version1 || typ != wire.TypeError {
		t.Fatalf("reply kind=%#x typ=%#x err=%v, want a v1 error frame", kind, typ, err)
	}
	we, err := wire.DecodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(we.Message), "crc") {
		t.Errorf("error message %q does not mention the CRC", we.Message)
	}
}

// TestWireUnknownVersionRejected sends a hello from the future and
// expects the version-mismatch error frame (the downgrade signal).
func TestWireUnknownVersionRejected(t *testing.T) {
	srv, _, _ := newFixture(t)
	addr := startWire(t, srv, WireOptions{})

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	br := bufio.NewReader(raw)
	// A well-framed hello with version byte 0x63.
	if _, err := raw.Write(wire.AppendFrame(nil, 0x63, []byte{wire.TypeHello})); err != nil {
		t.Fatal(err)
	}
	kind, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
	if err != nil {
		t.Fatalf("expected an error frame, read failed: %v", err)
	}
	typ, body, splitErr := wire.SplitType(data)
	if splitErr != nil || kind != wire.Version1 || typ != wire.TypeError {
		t.Fatalf("reply kind=%#x typ=%#x err=%v, want a v1 error frame", kind, typ, splitErr)
	}
	we, err := wire.DecodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(we.Message, "version") {
		t.Errorf("error message %q does not mention the version", we.Message)
	}
}
