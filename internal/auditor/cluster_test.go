package auditor

import (
	"context"
	"crypto/rsa"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// testCluster is an in-process N-node auditor cluster: every node runs a
// Router over real shard Servers behind a real HTTP listener, with the
// full node set as seeds so the very first map is complete and tests
// need no gossip warm-up.
type testCluster struct {
	routers []*Router
	servers []*httptest.Server
	nodes   []cluster.Node
	encKey  *rsa.PrivateKey
}

// newTestCluster builds the cluster. Listeners are bound before the
// routers so each node knows every address up front.
func newTestCluster(t *testing.T, n, shards int, mut func(i int, rc *RouterConfig)) *testCluster {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	encKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{encKey: encKey}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		tc.nodes = append(tc.nodes, cluster.Node{
			ID:   fmt.Sprintf("node-%d", i),
			Addr: lis.Addr().String(),
		})
	}
	for i := 0; i < n; i++ {
		rc := RouterConfig{
			Self:   tc.nodes[i],
			Seeds:  tc.nodes,
			Shards: shards,
			Server: Config{
				Clock:         obs.ClockFunc(func() time.Time { return t0 }),
				Metrics:       obs.NewRegistry(nil),
				EncryptionKey: encKey,
			},
		}
		if mut != nil {
			mut(i, &rc)
		}
		r, err := NewRouter(rc)
		if err != nil {
			t.Fatal(err)
		}
		tc.routers = append(tc.routers, r)
		hs := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: NewHandler(r)},
		}
		hs.Start()
		tc.servers = append(tc.servers, hs)
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			tc.servers[i].Close()
			tc.routers[i].Close()
		}
	})
	return tc
}

// url returns node i's base URL.
func (tc *testCluster) url(i int) string { return "http://" + tc.nodes[i].Addr }

// registerDrone registers a fresh drone through node i's HTTP door and
// returns its cluster-issued ID and keys.
func (tc *testCluster) registerDrone(t *testing.T, i int, rng *rand.Rand) (string, droneKeys) {
	t.Helper()
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	tee, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, _ := sigcrypto.MarshalPublicKey(&op.PublicKey)
	teePub, _ := sigcrypto.MarshalPublicKey(&tee.PublicKey)
	resp := postJSON(t, tc.url(i)+protocol.PathRegisterDrone,
		protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register via node %d: HTTP %d", i, resp.StatusCode)
	}
	var rr protocol.RegisterDroneResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.DroneID == "" {
		t.Fatal("empty cluster drone ID")
	}
	return rr.DroneID, droneKeys{op: op, tee: tee}
}

// encryptPoA encrypts a PoA to the cluster's shared key.
func encryptPoA(t *testing.T, pub *rsa.PublicKey, p poa.PoA) []byte {
	t.Helper()
	plaintext, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sigcrypto.Encrypt(rand.New(rand.NewSource(7)), pub, plaintext)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// ownerIndex resolves which node of tc owns droneID (per node 0's map;
// all maps agree when the seed set is complete).
func (tc *testCluster) ownerIndex(t *testing.T, droneID string) int {
	t.Helper()
	owner, ok := tc.routers[0].Map().Owner(droneID)
	if !ok {
		t.Fatalf("no owner for %q", droneID)
	}
	for i, n := range tc.nodes {
		if n.ID == owner.ID {
			return i
		}
	}
	t.Fatalf("owner %q not in cluster", owner.ID)
	return -1
}

// submitVia POSTs a PoA submission through node i's public HTTP door and
// returns the status code and decoded response.
func (tc *testCluster) submitVia(t *testing.T, i int, req protocol.SubmitPoARequest) (int, protocol.SubmitPoAResponse) {
	t.Helper()
	resp := postJSON(t, tc.url(i)+protocol.PathSubmitPoA, req)
	var sr protocol.SubmitPoAResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

// forwardsOut reads node i's outgoing-forward counter.
func (tc *testCluster) forwardsOut(i int) uint64 {
	return tc.routers[i].cfg.Server.Metrics.Counter(obs.L(MetricClusterForwardsTotal, "dir", "out")).Value()
}

// TestClusterTwoNodeSmoke is the end-to-end cluster door check.sh runs:
// register a drone on node A, submit its PoA to node B, and expect the
// verdict to come back compliant — directly when B owns the drone, via
// exactly one transparent forward when it does not.
func TestClusterTwoNodeSmoke(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	rng := rand.New(rand.NewSource(1))

	droneID, keys := tc.registerDrone(t, 0, rng)
	owner := tc.ownerIndex(t, droneID)
	nonOwner := 1 - owner

	trace := signedTrace(t, keys, urbana, 90, 10, 5, time.Second)
	before := tc.forwardsOut(nonOwner)
	status, sr := tc.submitVia(t, nonOwner, protocol.SubmitPoARequest{
		DroneID:      droneID,
		EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
	})
	if status != http.StatusOK {
		t.Fatalf("submit via non-owner node %d: HTTP %d", nonOwner, status)
	}
	if sr.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %q, want compliant (%s)", sr.Verdict, sr.Reason)
	}
	if got := tc.forwardsOut(nonOwner) - before; got != 1 {
		t.Errorf("non-owner forwarded %d times, want exactly 1", got)
	}
}

// TestClusterForwardedVerdictParity is the routed-via-non-owner door of
// the verdict-parity suite: for every drone, the same logical submission
// must yield the identical verdict whether it enters at the owning node
// or at a non-owner (which forwards exactly once). Compliant and
// violation traces are both exercised.
func TestClusterForwardedVerdictParity(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	rng := rand.New(rand.NewSource(2))

	// A zone registered through any node replicates cluster-wide, so the
	// violation verdict must not depend on the entry node either.
	zresp := postJSON(t, tc.url(0)+protocol.PathRegisterZone, protocol.RegisterZoneRequest{
		Owner: "alice", Zone: geo.GeoCircle{Center: urbana, R: 200}, OwnershipProof: "deed",
	})
	if zresp.StatusCode != http.StatusOK {
		t.Fatalf("register zone: HTTP %d", zresp.StatusCode)
	}

	type door struct {
		name      string
		violation bool
	}
	for _, d := range []door{{"compliant", false}, {"violation", true}} {
		t.Run(d.name, func(t *testing.T) {
			// Two drones with the same trace shape: one submits at its
			// owner, one at the other node. Verdicts must agree.
			var verdicts []protocol.Verdict
			for _, direct := range []bool{true, false} {
				droneID, keys := tc.registerDrone(t, 0, rng)
				owner := tc.ownerIndex(t, droneID)
				entry := owner
				if !direct {
					entry = 1 - owner
				}
				start := urbana
				if !d.violation {
					start = urbana.Offset(0, 5000) // well clear of the zone
				}
				trace := signedTrace(t, keys, start, 90, 10, 5, time.Second)
				before := tc.forwardsOut(entry)
				status, sr := tc.submitVia(t, entry, protocol.SubmitPoARequest{
					DroneID:      droneID,
					EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
				})
				if status != http.StatusOK {
					t.Fatalf("submit (direct=%v): HTTP %d", direct, status)
				}
				wantForwards := uint64(0)
				if !direct {
					wantForwards = 1
				}
				if got := tc.forwardsOut(entry) - before; got != wantForwards {
					t.Errorf("entry node forwarded %d times, want %d", got, wantForwards)
				}
				verdicts = append(verdicts, sr.Verdict)
			}
			if verdicts[0] != verdicts[1] {
				t.Fatalf("verdict parity broken: owner door %q vs forwarded door %q", verdicts[0], verdicts[1])
			}
			wantViolation := verdicts[0] == protocol.VerdictViolation
			if wantViolation != d.violation {
				t.Fatalf("verdict = %q for %s trace", verdicts[0], d.name)
			}
		})
	}
}

// TestClusterSingleHopGuard verifies the forwarding loop-breaker: a
// request already marked forwarded that lands on a non-owner answers 421
// Misdirected Request instead of forwarding again.
func TestClusterSingleHopGuard(t *testing.T) {
	tc := newTestCluster(t, 2, 1, nil)
	rng := rand.New(rand.NewSource(3))
	droneID, keys := tc.registerDrone(t, 0, rng)
	nonOwner := 1 - tc.ownerIndex(t, droneID)

	trace := signedTrace(t, keys, urbana, 90, 10, 3, time.Second)
	body, _ := json.Marshal(protocol.SubmitPoARequest{
		DroneID:      droneID,
		EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
	})
	req, err := http.NewRequest(http.MethodPost, tc.url(nonOwner)+protocol.PathSubmitPoA, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(protocol.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("forwarded request to non-owner: HTTP %d, want 421", resp.StatusCode)
	}
}

// TestClusterReadyz verifies the liveness/readiness split: a node that
// has not joined the ring answers 503 on /readyz (while /healthz stays
// 200), and flips to 200 after its first successful gossip exchange.
func TestClusterReadyz(t *testing.T) {
	tc := newTestCluster(t, 2, 1, nil)

	// A third node seeded with the others but not yet gossiped-with is
	// alive but not ready.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := cluster.Node{ID: "node-late", Addr: lis.Addr().String()}
	r, err := NewRouter(RouterConfig{
		Self:  self,
		Seeds: append(append([]cluster.Node(nil), tc.nodes...), self),
		Server: Config{
			Clock:         obs.ClockFunc(func() time.Time { return t0 }),
			EncryptionKey: tc.encKey,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &httptest.Server{Listener: lis, Config: &http.Server{Handler: NewHandler(r)}}
	hs.Start()
	t.Cleanup(func() { hs.Close(); r.Close() })

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + self.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, _ := get(PathHealthz); code != http.StatusOK {
		t.Fatalf("healthz on unjoined node: HTTP %d", code)
	}
	code, body := get(PathReadyz)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on unjoined node: HTTP %d, want 503", code)
	}
	// The 503 must say why, so an operator reading the probe output can
	// tell a slow WAL recovery from a node that never joined the ring.
	if !strings.HasPrefix(body, "not ready: ") {
		t.Fatalf("readyz 503 body %q lacks a reason", body)
	}
	// One gossip round against a seed joins the ring.
	r.Gossiper().RunOnce(context.Background())
	if code, _ := get(PathReadyz); code != http.StatusOK {
		t.Fatalf("readyz after gossip join: HTTP %d, want 200", code)
	}
}

// TestClusterHandoffKillPoint exercises the durability contract of the
// handoff protocol: state moved to a new owner survives that owner being
// killed immediately after it acknowledged, because the receiver
// checkpoints the touched shards before answering.
func TestClusterHandoffKillPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dirA, dirB := t.TempDir(), t.TempDir()

	nodeA := cluster.Node{ID: "node-a", Addr: "127.0.0.1:1"} // never dialled
	nodeB := cluster.Node{ID: "node-b"}
	lisB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodeB.Addr = lisB.Addr().String()

	encKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	serverCfg := func() Config {
		return Config{
			Clock:         obs.ClockFunc(func() time.Time { return t0 }),
			EncryptionKey: encKey,
		}
	}

	// Node A starts as the sole owner, accumulates drones and verified
	// PoAs.
	rA, err := NewRouter(RouterConfig{Self: nodeA, Shards: 2, StateDir: dirA, Server: serverCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer rA.Close()

	ctx := context.Background()
	type drone struct {
		id   string
		keys droneKeys
	}
	var drones []drone
	for i := 0; i < 8; i++ {
		op, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
		tee, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
		opPub, _ := sigcrypto.MarshalPublicKey(&op.PublicKey)
		teePub, _ := sigcrypto.MarshalPublicKey(&tee.PublicKey)
		resp, err := rA.RegisterDroneCtx(ctx, protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
		if err != nil {
			t.Fatal(err)
		}
		d := drone{id: resp.DroneID, keys: droneKeys{op: op, tee: tee}}
		trace := signedTrace(t, d.keys, urbana, 90, 10, 3, time.Second)
		sr, err := rA.SubmitPoACtx(ctx, protocol.SubmitPoARequest{
			DroneID: d.id, EncryptedPoA: encryptPoA(t, rA.EncryptionPub(), trace),
		})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Verdict != protocol.VerdictCompliant {
			t.Fatalf("pre-handoff submit: %q (%s)", sr.Verdict, sr.Reason)
		}
		drones = append(drones, d)
	}

	// Node B joins. Its own seed set lists both nodes, so its ring
	// already assigns it a share of A's drones.
	bCfg := RouterConfig{Self: nodeB, Seeds: []cluster.Node{nodeA, nodeB}, Shards: 2, StateDir: dirB, Server: serverCfg()}
	rB, err := NewRouter(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	hsB := &httptest.Server{Listener: lisB, Config: &http.Server{Handler: NewHandler(rB)}}
	hsB.Start()

	// A learns of B and streams its shards over; rB checkpoints before
	// acknowledging.
	rA.Membership().Merge(cluster.Digest{From: nodeB, Entries: []cluster.DigestEntry{{Node: nodeB, Heartbeat: 1}}})
	if err := rA.Rebalance(ctx); err != nil {
		t.Fatalf("rebalance to B: %v", err)
	}

	var moved []drone
	for _, d := range drones {
		if owner, ok := rB.Map().Owner(d.id); ok && owner.ID == nodeB.ID {
			moved = append(moved, d)
		}
	}
	if len(moved) == 0 {
		t.Fatal("ring moved no drones to node B; test needs a bigger fleet")
	}

	// Kill point: B dies the instant after the handoff ack — no further
	// WAL writes, no graceful shutdown.
	hsB.Close()
	if err := rB.Close(); err != nil {
		t.Fatal(err)
	}

	// B restarts from disk alone and must own the moved drones' state:
	// fresh submissions verify against the streamed registrations.
	rB2, err := NewRouter(bCfg)
	if err != nil {
		t.Fatalf("reopen node B: %v", err)
	}
	defer rB2.Close()
	for _, d := range moved {
		trace := signedTrace(t, d.keys, urbana.Offset(45, 300), 90, 12, 3, time.Second)
		sr, err := rB2.SubmitPoACtx(ctx, protocol.SubmitPoARequest{
			DroneID: d.id, EncryptedPoA: encryptPoA(t, rB2.EncryptionPub(), trace),
		})
		if err != nil {
			t.Fatalf("post-recovery submit for moved drone %s: %v", d.id, err)
		}
		if sr.Verdict != protocol.VerdictCompliant {
			t.Fatalf("post-recovery verdict for %s: %q (%s)", d.id, sr.Verdict, sr.Reason)
		}
	}
	// The retained PoAs moved with the drones (accusation evidence
	// survives the ownership change).
	if got := rB2.Status().RetainedPoAs; got < len(moved) {
		t.Errorf("retained after recovery = %d, want >= %d", got, len(moved))
	}
}

// TestClusterNodeDiesMidHandoff verifies the failure half of the
// protocol: a peer dying mid-transfer fails the rebalance loudly, the
// source keeps its copy, and a later retry (the peer recovered) streams
// the same state without duplicating anything.
func TestClusterNodeDiesMidHandoff(t *testing.T) {
	tc := newTestCluster(t, 2, 1, nil)
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()

	droneID, keys := tc.registerDrone(t, 0, rng)
	owner := tc.ownerIndex(t, droneID)
	peer := 1 - owner

	// The peer dies mid-handoff: its listener closes, the source's POST
	// fails, and Rebalance reports it.
	tc.servers[peer].Close()
	err := tc.routers[owner].Rebalance(ctx)
	if err == nil {
		t.Fatal("rebalance to a dead peer reported success")
	}

	// The source keeps serving the drone regardless.
	trace := signedTrace(t, keys, urbana, 90, 10, 3, time.Second)
	sr, err := tc.routers[owner].SubmitPoACtx(ctx, protocol.SubmitPoARequest{
		DroneID: droneID, EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict != protocol.VerdictCompliant {
		t.Fatalf("source verdict after failed handoff: %q (%s)", sr.Verdict, sr.Reason)
	}

	// Direct delivery (the transport retry) imports once; a duplicate
	// delivery of the same map version is dropped by the dedup guard.
	m := tc.routers[owner].Map()
	var states []json.RawMessage
	for i := 0; i < tc.routers[owner].NumShards(); i++ {
		data, err := tc.routers[owner].Shard(i).snapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, data)
	}
	req := protocol.ClusterHandoffRequest{From: tc.nodes[owner].ID, MapVersion: m.Version, State: states}
	if err := tc.routers[peer].clusterHandoff(ctx, req); err != nil {
		t.Fatalf("handoff retry: %v", err)
	}
	retained := tc.routers[peer].Status().RetainedPoAs
	if err := tc.routers[peer].clusterHandoff(ctx, req); err != nil {
		t.Fatalf("duplicate handoff: %v", err)
	}
	if got := tc.routers[peer].Status().RetainedPoAs; got != retained {
		t.Errorf("duplicate handoff changed retained count: %d -> %d", retained, got)
	}
}

// TestClusterJoinerFetchesKeyFromSeed: a fresh joiner constructed
// without an encryption key learns the cluster-wide key from its seed,
// so drones registered anywhere decrypt everywhere.
func TestClusterJoinerFetchesKeyFromSeed(t *testing.T) {
	tc := newTestCluster(t, 1, 1, nil)
	self := cluster.Node{ID: "node-join", Addr: "127.0.0.1:1"}
	joiner, err := NewRouter(RouterConfig{
		Self:   self,
		Seeds:  append(append([]cluster.Node(nil), tc.nodes...), self),
		Server: Config{Clock: obs.ClockFunc(func() time.Time { return t0 })},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if !joiner.EncryptionPub().Equal(tc.routers[0].EncryptionPub()) {
		t.Fatal("joiner generated its own encryption key instead of fetching the cluster's")
	}
}

// TestClusterJoinerRefusesDivergentKey: a fresh joiner that cannot
// reach any seed must refuse to start rather than generate a key that
// diverges from the cluster's — forwarded submissions would fail to
// decrypt on every other node.
func TestClusterJoinerRefusesDivergentKey(t *testing.T) {
	_, err := NewRouter(RouterConfig{
		Self:             cluster.Node{ID: "node-join", Addr: "127.0.0.1:1"},
		Seeds:            []cluster.Node{{ID: "node-dead", Addr: "127.0.0.1:1"}},
		Server:           Config{Clock: obs.ClockFunc(func() time.Time { return t0 })},
		keyFetchAttempts: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "shared PoA key") {
		t.Fatalf("NewRouter with unreachable seeds: err = %v, want shared-key refusal", err)
	}
}
