package auditor

// Tests for the sealed/commit disclosure doors and the accusation-time
// selective-disclosure round-trip: mode negotiation at registration, the
// retained verdicts, challenge issuance, reveal verification, and the
// privacy property that a reveal opens exactly the spanning pair.

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/operator"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// registerDisclosureDrone registers a drone announcing the given
// disclosure mode on an already-open server.
func registerDisclosureDrone(t *testing.T, srv *Server, rng *rand.Rand, mode string) (string, droneKeys) {
	t.Helper()
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	teeKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := sigcrypto.MarshalPublicKey(&teeKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub, Disclosure: mode})
	if err != nil {
		t.Fatal(err)
	}
	return resp.DroneID, droneKeys{op: op, tee: teeKey}
}

// newDisclosureFixture builds a server with one drone registered under the
// given disclosure mode.
func newDisclosureFixture(t *testing.T, mode string) (*Server, string, droneKeys) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	srv, err := NewServer(Config{
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
		Metrics: obs.NewRegistry(nil),
		Random:  rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, keys := registerDisclosureDrone(t, srv, rng, mode)
	return srv, id, keys
}

// sealedSubmission seals a trace as the TEE would and returns the
// encrypted submission plus the operator-retained one-time keys.
func sealedSubmission(t *testing.T, srv *Server, p poa.PoA) (ct []byte, sealed privacy.SealedPoA, keys [][]byte) {
	t.Helper()
	sealed, ring, err := privacy.Seal(p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	keys = make([][]byte, ring.Len())
	for i := range keys {
		if keys[i], err = ring.Reveal(i); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	return encryptBytes(t, srv, data), sealed, keys
}

// commitSubmission builds a TEE-signed commit envelope over the trace with
// predicates for the given zones, returning the encrypted submission plus
// the operator-retained sealed entries and one-time keys.
func commitSubmission(t *testing.T, srv *Server, dk droneKeys, p poa.PoA, zones ...geo.GeoCircle) (ct []byte, sealed privacy.SealedPoA, keys [][]byte) {
	t.Helper()
	sealed, ring, env, err := privacy.CommitTrace(p, zones, geo.MaxDroneSpeedMPS, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if env.Sig, err = sigcrypto.Sign(dk.tee, env.SigningBytes()); err != nil {
		t.Fatal(err)
	}
	keys = make([][]byte, ring.Len())
	for i := range keys {
		if keys[i], err = ring.Reveal(i); err != nil {
			t.Fatal(err)
		}
	}
	return encryptBytes(t, srv, privacy.EncodeCommitEnvelope(*env)), sealed, keys
}

func TestDisclosureModeNegotiation(t *testing.T) {
	// Unknown modes are rejected at registration.
	srv, _, _ := newFixture(t)
	rng := rand.New(rand.NewSource(44))
	op, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	teeKey, _ := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	opPub, _ := sigcrypto.MarshalPublicKey(&op.PublicKey)
	teePub, _ := sigcrypto.MarshalPublicKey(&teeKey.PublicKey)
	if _, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub, Disclosure: "partial"}); err == nil {
		t.Error("unknown disclosure mode accepted at registration")
	}

	// A full-mode drone cannot use the sealed or commit doors.
	srv2, id, keys := newFixture(t)
	p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)
	sct, _, _ := sealedSubmission(t, srv2, p)
	if _, err := srv2.SubmitSealedPoA(protocol.SubmitSealedPoARequest{DroneID: id, EncryptedPoA: sct}); !errors.Is(err, ErrDisclosureMismatch) {
		t.Errorf("sealed submission from full-mode drone err = %v, want ErrDisclosureMismatch", err)
	}

	// A sealed-mode drone cannot use the full doors.
	srv3, id3, keys3 := newDisclosureFixture(t, poa.DisclosureSealed)
	p3 := signedTrace(t, keys3, urbana, 0, 10, 10, time.Second)
	if _, err := srv3.SubmitPoA(protocol.SubmitPoARequest{DroneID: id3, EncryptedPoA: encryptFor(t, srv3, p3)}); !errors.Is(err, ErrDisclosureMismatch) {
		t.Errorf("full submission from sealed-mode drone err = %v, want ErrDisclosureMismatch", err)
	}
	if _, err := srv3.OpenStream(protocol.OpenStreamRequest{DroneID: id3}); !errors.Is(err, ErrDisclosureMismatch) {
		t.Errorf("stream open from sealed-mode drone err = %v, want ErrDisclosureMismatch", err)
	}

	// Config.AllowedDisclosures restricts what registration admits.
	rng4 := rand.New(rand.NewSource(45))
	srv4, err := NewServer(Config{
		Clock:              obs.ClockFunc(func() time.Time { return t0 }),
		Metrics:            obs.NewRegistry(nil),
		Random:             rng4,
		AllowedDisclosures: []string{poa.DisclosureFull},
	})
	if err != nil {
		t.Fatal(err)
	}
	opPub4, _ := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if _, err := srv4.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub4, TEEPub: teePub, Disclosure: poa.DisclosureCommit}); err == nil {
		t.Error("commit registration accepted despite AllowedDisclosures=[full]")
	}
}

func TestSealedSubmissionRetained(t *testing.T) {
	srv, id, keys := newDisclosureFixture(t, poa.DisclosureSealed)
	p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)
	ct, _, _ := sealedSubmission(t, srv, p)
	resp, err := srv.SubmitSealedPoA(protocol.SubmitSealedPoARequest{DroneID: id, EncryptedPoA: ct})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictRetained {
		t.Fatalf("sealed verdict = %v (%s), want retained", resp.Verdict, resp.Reason)
	}
	if got := srv.Status().Commitments; got != 1 {
		t.Errorf("Commitments = %d, want 1", got)
	}
	// Replay of the same ciphertext is still caught (clear-timestamp
	// digest claim runs before retention).
	resp, err = srv.SubmitSealedPoA(protocol.SubmitSealedPoARequest{DroneID: id, EncryptedPoA: ct})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("sealed replay verdict = %v, want violation", resp.Verdict)
	}
}

// TestSelectiveDisclosureRoundTrip drives the full accusation protocol for
// both hiding modes and both outcomes: submit → accuse → challenge →
// reveal → verdict. It also pins the privacy property: the reveal carries
// exactly the two samples spanning the accused instant, and in commit mode
// the auditor retains no ciphertext at all before the reveal.
func TestSelectiveDisclosureRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mode string
		zone geo.GeoCircle
		want protocol.Verdict
	}{
		{"sealed compliant", poa.DisclosureSealed, geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 100}, protocol.VerdictCompliant},
		{"sealed violating", poa.DisclosureSealed, geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100}, protocol.VerdictViolation},
		{"commit compliant", poa.DisclosureCommit, geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 100}, protocol.VerdictCompliant},
		{"commit violating", poa.DisclosureCommit, geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100}, protocol.VerdictViolation},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, id, keys := newDisclosureFixture(t, tc.mode)
			p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)

			var ct []byte
			var sealed privacy.SealedPoA
			var otKeys [][]byte
			if tc.mode == poa.DisclosureSealed {
				ct, sealed, otKeys = sealedSubmission(t, srv, p)
				resp, err := srv.SubmitSealedPoA(protocol.SubmitSealedPoARequest{DroneID: id, EncryptedPoA: ct})
				if err != nil || resp.Verdict != protocol.VerdictRetained {
					t.Fatalf("sealed submit: %v / %+v", err, resp)
				}
			} else {
				// The accused zone is registered only after submission, so
				// the envelope carries no predicate for it and the upload is
				// compliant on its own terms.
				ct, sealed, otKeys = commitSubmission(t, srv, keys, p)
				resp, err := srv.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct})
				if err != nil || resp.Verdict != protocol.VerdictCompliant {
					t.Fatalf("commit submit: %v / %+v", err, resp)
				}
				// Privacy: the auditor retained the commitment only — no
				// sealed ciphertexts live server-side before the reveal.
				recs := srv.disclosures.byDrone(id)
				if len(recs) != 1 || len(recs[0].Entries) != 0 {
					t.Fatalf("commit retention holds %d records / %d entries, want 1 / 0", len(recs), len(recs[0].Entries))
				}
			}

			zoneID := mustRegisterZone(t, srv, tc.zone)
			at := t0.Add(500 * time.Millisecond)
			acc, err := srv.HandleAccusation(id, zoneID, at)
			if err != nil {
				t.Fatal(err)
			}
			if acc.Verdict != protocol.VerdictDisclosureRequired || acc.Challenge == nil {
				t.Fatalf("accusation = %+v, want disclosure-required with a challenge", acc)
			}
			ch := *acc.Challenge
			if ch.Mode != tc.mode || ch.PairIndex != 0 {
				t.Fatalf("challenge = %+v, want mode %s pair 0", ch, tc.mode)
			}

			// The operator answers from its retained material. The answer
			// must open exactly the spanning pair — two keys, and in commit
			// mode two entries with two proofs — never anything else.
			secrets := &operator.DisclosureSecrets{Mode: tc.mode, Sealed: sealed, Keys: otKeys}
			req, err := secrets.Answer(ch)
			if err != nil {
				t.Fatal(err)
			}
			if len(req.Keys) != 2 {
				t.Fatalf("reveal carries %d keys, want exactly 2", len(req.Keys))
			}
			if tc.mode == poa.DisclosureCommit {
				if len(req.Entries) != 2 || len(req.Proofs) != 2 {
					t.Fatalf("commit reveal carries %d entries / %d proofs, want 2 / 2", len(req.Entries), len(req.Proofs))
				}
				for i, e := range req.Entries {
					if !e.Time.Equal(sealed.Entries[ch.PairIndex+i].Time) {
						t.Errorf("revealed entry %d is not the challenged pair member", i)
					}
				}
			} else if len(req.Entries) != 0 {
				t.Fatalf("sealed reveal carries %d entries, want 0", len(req.Entries))
			}

			final, err := srv.Reveal(req)
			if err != nil {
				t.Fatal(err)
			}
			if final.Verdict != tc.want {
				t.Errorf("post-reveal verdict = %v (%s), want %v", final.Verdict, final.Reason, tc.want)
			}

			// The challenge is settled: replaying the reveal is rejected.
			if _, err := srv.Reveal(req); !errors.Is(err, ErrUnknownChallenge) {
				t.Errorf("reveal replay err = %v, want ErrUnknownChallenge", err)
			}
		})
	}
}

// TestRevealRejectsBadMaterial pins the bad_reveal path: tampered keys,
// swapped entries and forged proofs all fail verification, and the
// challenge stays open so a correct retry still settles it.
func TestRevealRejectsBadMaterial(t *testing.T) {
	srv, id, keys := newDisclosureFixture(t, poa.DisclosureCommit)
	p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)
	ct, sealed, otKeys := commitSubmission(t, srv, keys, p)
	if resp, err := srv.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct}); err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("commit submit: %v / %+v", err, resp)
	}
	zoneID := mustRegisterZone(t, srv, geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 100})
	acc, err := srv.HandleAccusation(id, zoneID, t0.Add(500*time.Millisecond))
	if err != nil || acc.Challenge == nil {
		t.Fatalf("accusation: %v / %+v", err, acc)
	}
	secrets := &operator.DisclosureSecrets{Mode: poa.DisclosureCommit, Sealed: sealed, Keys: otKeys}
	good, err := secrets.Answer(*acc.Challenge)
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(name string, mutate func(r *protocol.RevealRequest)) {
		t.Helper()
		bad := good
		bad.Keys = append([][]byte{}, good.Keys...)
		bad.Entries = append([]privacy.SealedSample{}, good.Entries...)
		bad.Proofs = append([][]byte{}, good.Proofs...)
		mutate(&bad)
		if _, err := srv.Reveal(bad); !errors.Is(err, ErrBadReveal) {
			t.Errorf("%s: err = %v, want ErrBadReveal", name, err)
		}
	}
	tamper("tampered key", func(r *protocol.RevealRequest) {
		k := append([]byte{}, r.Keys[1]...)
		k[0] ^= 0xff
		r.Keys[1] = k
	})
	tamper("one key only", func(r *protocol.RevealRequest) { r.Keys = r.Keys[:1] })
	tamper("swapped entries", func(r *protocol.RevealRequest) {
		r.Entries[0], r.Entries[1] = r.Entries[1], r.Entries[0]
	})
	tamper("entry outside the pair", func(r *protocol.RevealRequest) {
		// Substitute entry 2 (with its valid proof) for pair member 0: the
		// committed timestamp check must refuse the off-pair leaf.
		tree, err := sealed.MerkleTree()
		if err != nil {
			t.Fatal(err)
		}
		proof, err := tree.Proof(2)
		if err != nil {
			t.Fatal(err)
		}
		r.Entries[0] = sealed.Entries[2]
		r.Proofs[0] = poa.EncodeMerkleProof(proof)
		r.Keys[0] = otKeys[2]
	})
	tamper("truncated proof", func(r *protocol.RevealRequest) { r.Proofs[0] = r.Proofs[0][:8] })

	// Every rejection above left the challenge open: the honest reveal
	// still settles it.
	final, err := srv.Reveal(good)
	if err != nil || final.Verdict != protocol.VerdictCompliant {
		t.Fatalf("honest reveal after rejected attempts: %v / %+v", err, final)
	}

	m := srv.Metrics()
	if got := m.Counter(obs.L(MetricAccusationsTotal, "outcome", "bad_reveal")).Value(); got != 5 {
		t.Errorf("bad_reveal count = %d, want 5", got)
	}
	if got := m.Counter(obs.L(MetricAccusationsTotal, "outcome", "compliant")).Value(); got != 1 {
		t.Errorf("compliant accusation count = %d, want 1", got)
	}
	if got := m.Counter(obs.L(MetricDisclosureTotal, "mode", poa.DisclosureCommit)).Value(); got != 1 {
		t.Errorf("commit disclosure count = %d, want 1", got)
	}
}

// TestDisclosureHTTPDoors drives the commit door and the reveal through
// the HTTP handler, including the error mappings (404 for unknown
// challenges, 403 for failed reveals and mode mismatches).
func TestDisclosureHTTPDoors(t *testing.T) {
	srv, id, keys := newDisclosureFixture(t, poa.DisclosureCommit)
	hs := httptest.NewServer(NewHandler(srv))
	defer hs.Close()

	decode := func(t *testing.T, resp *http.Response, out any) {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	p := signedTrace(t, keys, urbana, 0, 10, 10, time.Second)
	ct, sealed, otKeys := commitSubmission(t, srv, keys, p)
	var resp protocol.SubmitPoAResponse
	decode(t, postJSON(t, hs.URL+protocol.PathSubmitCommitPoA,
		protocol.SubmitCommitPoARequest{DroneID: id, EncryptedEnvelope: ct}), &resp)
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("HTTP commit verdict = %+v, want compliant", resp)
	}

	// A commit-mode drone knocking on the full door is a 403.
	if code := postJSON(t, hs.URL+protocol.PathSubmitPoA,
		protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)}).StatusCode; code != http.StatusForbidden {
		t.Errorf("full submission from commit-mode drone HTTP status = %d, want 403", code)
	}

	zoneID := mustRegisterZone(t, srv, geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100})
	acc, err := srv.HandleAccusation(id, zoneID, t0.Add(500*time.Millisecond))
	if err != nil || acc.Challenge == nil {
		t.Fatalf("accusation: %v / %+v", err, acc)
	}
	secrets := &operator.DisclosureSecrets{Mode: poa.DisclosureCommit, Sealed: sealed, Keys: otKeys}
	req, err := secrets.Answer(*acc.Challenge)
	if err != nil {
		t.Fatal(err)
	}

	// A tampered reveal maps to 403, an unknown challenge to 404.
	bad := req
	bad.Keys = [][]byte{req.Keys[0], req.Keys[0]}
	if code := postJSON(t, hs.URL+protocol.PathReveal, bad).StatusCode; code != http.StatusForbidden {
		t.Errorf("bad reveal HTTP status = %d, want 403", code)
	}
	unknown := req
	unknown.ChallengeID = "challenge-9999"
	if code := postJSON(t, hs.URL+protocol.PathReveal, unknown).StatusCode; code != http.StatusNotFound {
		t.Errorf("unknown challenge HTTP status = %d, want 404", code)
	}

	var final protocol.SubmitPoAResponse
	decode(t, postJSON(t, hs.URL+protocol.PathReveal, req), &final)
	if final.Verdict != protocol.VerdictViolation {
		t.Errorf("HTTP post-reveal verdict = %+v, want violation", final)
	}
}
