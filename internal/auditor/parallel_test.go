package auditor

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// newFixturePair builds two servers sharing one registered drone — one
// sequential (Workers: 1), one parallel — so the same PoA can be
// submitted to both and the responses compared field for field. Each
// server has its own encryption keypair, so the PoA must be encrypted
// per server (encryptFor) even though the plaintext is identical.
func newFixturePair(t *testing.T, workers int) (seq, par *Server, id string, keys droneKeys) {
	t.Helper()
	seq, seqID, seqKeys := newFixtureConfig(t, Config{
		Workers: 1,
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
	})
	par, err := NewServer(Config{
		Workers: workers,
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&seqKeys.op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := sigcrypto.MarshalPublicKey(&seqKeys.tee.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := par.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DroneID != seqID {
		t.Fatalf("fixture drone IDs diverge: %q vs %q", seqID, resp.DroneID)
	}
	return seq, par, seqID, seqKeys
}

// TestParallelVerdictsMatchSequential replays identical submissions
// against a Workers:1 server and a parallel one: every response —
// verdict, reason (including the first-failing-sample index), and
// insufficient-pair count — must be identical. This is the determinism
// guarantee of the parallel engine.
func TestParallelVerdictsMatchSequential(t *testing.T) {
	seq, par, id, keys := newFixturePair(t, 8)
	for _, srv := range []*Server{seq, par} {
		if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
			Owner: "bob", Zone: geo.GeoCircle{Center: urbana.Offset(0, 60), R: 30},
		}); err != nil {
			t.Fatal(err)
		}
	}

	forged := signedTrace(t, keys, urbana, 90, 10, 40, time.Second)
	forged.Samples[17].Sample.Pos.Lat += 0.01
	forged.Samples[31].Sample.Pos.Lat += 0.01

	cases := map[string]poa.PoA{
		"compliant":    signedTrace(t, keys, urbana.Offset(0, 5000), 90, 10, 40, time.Second),
		"insufficient": signedTrace(t, keys, urbana, 90, 10, 5, 20*time.Second),
		"forged":       forged,
		"infeasible":   signedTrace(t, keys, urbana, 90, 1000, 5, time.Second),
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := seq.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, seq, p)})
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, par, p)})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("parallel response diverges:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestParallelFirstFailureIndexIsLowest pins the reason string to the
// *lowest* forged index: even when workers race past sample 17, the
// reported failure must be the one a sequential scan finds first.
func TestParallelFirstFailureIndexIsLowest(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Workers: 8,
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
	})
	p := signedTrace(t, keys, urbana, 90, 10, 60, time.Second)
	for _, i := range []int{17, 18, 42, 59} {
		p.Samples[i].Sample.Pos.Lat += 0.01
	}
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Reason, "failed at sample 17") {
		t.Errorf("reason = %q, want first failure at sample 17", resp.Reason)
	}
}

// TestReplayRaceAcceptsExactlyOne hammers the server with concurrent
// submissions of the same ciphertext: the atomic digest claim must let
// exactly one through and reject the rest as replays, no matter how the
// goroutines interleave.
func TestReplayRaceAcceptsExactlyOne(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Workers: 4,
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
	})
	p := signedTrace(t, keys, urbana, 90, 10, 10, time.Second)
	ct := encryptFor(t, srv, p)

	const attempts = 16
	responses := make([]protocol.SubmitPoAResponse, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct})
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	compliant := 0
	for _, resp := range responses {
		switch resp.Verdict {
		case protocol.VerdictCompliant:
			compliant++
		case protocol.VerdictViolation:
			if !strings.Contains(resp.Reason, "replayed PoA") {
				t.Errorf("unexpected rejection reason %q", resp.Reason)
			}
		}
	}
	if compliant != 1 {
		t.Errorf("accepted %d copies of the same PoA, want exactly 1", compliant)
	}
	if srv.RetainedCount() != 1 {
		t.Errorf("retained = %d, want 1", srv.RetainedCount())
	}
}

// TestConcurrentMixedVerdicts interleaves valid and forged submissions
// with registrations and purges. Run under -race it exercises the
// verification pool and every store lock at once.
func TestConcurrentMixedVerdicts(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Workers: 4,
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
	})

	const flights = 12
	var wg sync.WaitGroup
	for i := 0; i < flights; i++ {
		// Distinct start points make every ciphertext unique.
		start := urbana.Offset(180, float64(100*i))
		good := signedTrace(t, keys, start, 90, 10, 20, time.Second)
		forged := signedTrace(t, keys, start, 270, 10, 20, time.Second)
		forged.Samples[3].Sample.Pos.Lat += 0.01
		goodCT := encryptFor(t, srv, good)
		forgedCT := encryptFor(t, srv, forged)

		wg.Add(3)
		go func() {
			defer wg.Done()
			resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: goodCT})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Verdict != protocol.VerdictCompliant {
				t.Errorf("valid trace rejected: %s", resp.Reason)
			}
		}()
		go func() {
			defer wg.Done()
			resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: forgedCT})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Verdict != protocol.VerdictViolation {
				t.Error("forged trace accepted")
			}
		}()
		go func(i int) {
			defer wg.Done()
			if i%3 == 0 {
				srv.PurgeExpired()
			}
			if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
				Owner: "owner",
				Zone:  geo.GeoCircle{Center: urbana.Offset(45, float64(20000+100*i)), R: 50},
			}); err != nil {
				t.Error(err)
			}
			srv.Status()
		}(i)
	}
	wg.Wait()

	if got := srv.RetainedCount(); got != flights {
		t.Errorf("retained = %d, want %d", got, flights)
	}
}

// TestNonceTTLExpiry verifies the zone-query nonce cache is bounded: a
// nonce blocks replays within its TTL, expires after it, and the
// PurgeExpired sweep physically removes stale entries.
func TestNonceTTLExpiry(t *testing.T) {
	clk := obs.NewFakeClock(t0)
	srv, _, _ := newFixtureConfig(t, Config{
		NonceTTL: time.Minute,
		Clock:    clk,
		Metrics:  obs.NewRegistry(nil),
	})

	if !srv.nonces.claim("n1", clk.Now()) {
		t.Fatal("fresh nonce rejected")
	}
	if srv.nonces.claim("n1", clk.Now()) {
		t.Fatal("replay inside TTL accepted")
	}
	clk.Advance(59 * time.Second)
	if srv.nonces.claim("n1", clk.Now()) {
		t.Fatal("replay at TTL-1s accepted")
	}
	clk.Advance(2 * time.Second)
	if !srv.nonces.claim("n1", clk.Now()) {
		t.Fatal("expired nonce still blocked")
	}

	// The sweep physically bounds the map.
	for i := 0; i < 10; i++ {
		srv.nonces.claim(fmt.Sprintf("bulk-%d", i), clk.Now())
	}
	clk.Advance(2 * time.Minute)
	srv.PurgeExpired()
	if n := srv.nonces.len(); n != 0 {
		t.Errorf("nonce cache holds %d entries after sweep, want 0", n)
	}
}

// TestPurgeExpiredSweepsDigests verifies the replay-digest set is bounded
// by the retention window: once the retained PoA it guards has aged out,
// the digest goes with it and the same trace becomes submittable again.
func TestPurgeExpiredSweepsDigests(t *testing.T) {
	clk := obs.NewFakeClock(t0)
	srv, id, keys := newFixtureConfig(t, Config{
		Retention: time.Hour,
		Clock:     clk,
		Metrics:   obs.NewRegistry(nil),
	})

	p := signedTrace(t, keys, urbana, 90, 10, 10, time.Second)
	ct := encryptFor(t, srv, p)
	if resp, _ := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct}); resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("first submission rejected: %s", resp.Reason)
	}
	if resp, _ := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct}); resp.Verdict != protocol.VerdictViolation {
		t.Fatal("replay inside retention accepted")
	}
	if n := srv.seen.len(); n != 1 {
		t.Fatalf("digest set holds %d entries, want 1", n)
	}

	clk.Advance(time.Hour)
	srv.PurgeExpired()
	if n := srv.seen.len(); n != 0 {
		t.Errorf("digest set holds %d entries after sweep, want 0", n)
	}
	if resp, _ := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct}); resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("resubmission after retention rejected: %s", resp.Reason)
	}
}

// TestFailedClaimIsReleased verifies the claim/release pairing: a
// submission that fails verification must release its digest claim, so
// the same ciphertext stays retryable and the digest set holds only
// accepted PoAs.
func TestFailedClaimIsReleased(t *testing.T) {
	srv, id, keys := newFixtureConfig(t, Config{
		Clock: obs.ClockFunc(func() time.Time { return t0 }),
	})
	// Insufficient trace: passes authenticity, fails sufficiency.
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "bob", Zone: geo.GeoCircle{Center: urbana.Offset(0, 60), R: 30},
	}); err != nil {
		t.Fatal(err)
	}
	p := signedTrace(t, keys, urbana, 90, 10, 5, 20*time.Second)
	ct := encryptFor(t, srv, p)
	for i := 0; i < 2; i++ {
		resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: ct})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Verdict != protocol.VerdictViolation || strings.Contains(resp.Reason, "replayed") {
			t.Fatalf("attempt %d: verdict %v (%s), want non-replay violation", i, resp.Verdict, resp.Reason)
		}
	}
	if n := srv.seen.len(); n != 0 {
		t.Errorf("digest set holds %d entries after failed submissions, want 0", n)
	}
}
