// Package auditor implements the AliDrone Server run by the authorized
// third party (e.g. a local FAA agent): the drone and NFZ registries, the
// zone query endpoint, and the Proof-of-Alibi verification pipeline
// (signature check → chronology → speed feasibility → sufficiency), plus
// the PoA retention store used to answer Zone Owner accusations after the
// fact (paper §IV-C2: "the AliDrone Server should save the PoAs for a
// couple of days").
//
// The verification hot path is parallel: per-sample signature checks and
// the sufficiency scan fan out across a bounded worker pool shared by all
// requests, and the server state is split into independently locked
// stores so submissions from different drones never serialize on a global
// lock (see DESIGN.md "Concurrency architecture").
package auditor

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/auditor/pipeline"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	otrace "repro/internal/obs/trace"
	"repro/internal/parallel"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
	"repro/internal/zone"
)

var (
	// ErrUnknownDrone is returned for operations naming an unregistered
	// drone ID.
	ErrUnknownDrone = errors.New("auditor: unknown drone id")
	// ErrUnknownZone is returned for accusations naming an unregistered
	// zone ID.
	ErrUnknownZone = errors.New("auditor: unknown zone id")
	// ErrNoPoA is returned when an accusation concerns a drone with no
	// retained PoA covering the incident time.
	ErrNoPoA = errors.New("auditor: no retained PoA covers the incident time")
	// ErrInvalidCylinder is returned when registering a malformed 3-D
	// zone.
	ErrInvalidCylinder = errors.New("auditor: invalid cylindrical zone")
)

// DroneRecord is one registered drone: (id_drone, D+, T+). T+ is a key
// ring, not a single key: rotation appends successor epochs and the
// previous key enters its acceptance window (see rotation.go).
type DroneRecord struct {
	ID          string
	OperatorPub *rsa.PublicKey // D+: verifies zone-query nonces
	// Suite is the signature suite negotiated at registration; every key
	// in the ring (and every rotation) stays within it.
	Suite string
	// Disclosure is the disclosure mode negotiated at registration
	// (poa.DisclosureFull/Sealed/Commit); the server enforces it at every
	// submission door.
	Disclosure string
	// TEEKeys is the T+ key ring in epoch order; the last entry is active.
	TEEKeys []TEEKey
}

// retainedPoA is a verified submission kept for later accusations. Seq is
// assigned by the retention store when the PoA is first added; WAL replay
// uses it to skip records whose effect is already in a loaded snapshot.
type retainedPoA struct {
	DroneID    string
	Samples    []poa.Sample
	SubmitTime time.Time
	Seq        uint64
}

// DefaultNonceTTL bounds the zone-query anti-replay cache: a nonce only
// needs to stay unique for as long as its signed query is plausibly in
// flight, not forever.
const DefaultNonceTTL = time.Hour

// Config parameterises the server.
type Config struct {
	// VMaxMS is the speed bound used in sufficiency checks (the FAA
	// 100 mph rule by default).
	VMaxMS float64
	// Mode selects the disjointness test for verification. The Auditor
	// defaults to the exact test: it is offline and can afford it.
	Mode poa.TestMode
	// EncKeyBits sizes the Auditor's PoA-encryption keypair.
	EncKeyBits int
	// Retention is how long verified PoAs are kept for accusations.
	Retention time.Duration
	// Workers sizes the verification worker pool shared by all parallel
	// stages (per-sample RSA/HMAC checks, sufficiency sharding). 0
	// selects GOMAXPROCS; 1 reproduces the historical sequential
	// pipeline exactly — the paper-fidelity configuration.
	Workers int
	// NonceTTL is how long zone-query nonces are remembered for replay
	// rejection. 0 selects DefaultNonceTTL; negative disables expiry
	// (the cache then grows without bound — test use only).
	NonceTTL time.Duration
	// Random supplies entropy (crypto/rand.Reader when nil).
	Random io.Reader
	// Clock supplies time (obs.System when nil) so retention expiry is
	// deterministically testable.
	Clock obs.Clock
	// Metrics, when set, receives the verification-pipeline and
	// retention-store metrics. Nil disables instrumentation at the cost
	// of one pointer comparison per call.
	Metrics *obs.Registry
	// Tracer, when set, records distributed-tracing spans for the
	// verification pipeline and WAL commits, continuing traces started by
	// submitting drones (see internal/obs/trace). Nil disables tracing.
	Tracer *otrace.Tracer
	// SLO, when set, receives sliding-window verdict-latency and
	// shed-rate observations (see obs.SLO). A cluster router shares one
	// tracker across its shards so the node-level summary is coherent.
	// Nil disables SLO tracking.
	SLO *obs.SLO
	// CompactEvery is the number of WAL records between automatic
	// snapshot compactions when a storage engine is attached (see
	// OpenServer). 0 selects DefaultCompactEvery; negative disables
	// automatic compaction (explicit Checkpoint calls only).
	CompactEvery int
	// RotationWindow is how long a retired TEE key epoch keeps verifying
	// PoAs after rotation (flights that straddled the rotation land and
	// submit under the old key). 0 selects DefaultRotationWindow;
	// negative closes retired epochs immediately.
	RotationWindow time.Duration
	// AllowedSuites restricts the signature suites drones may register
	// with (e.g. ["rsa2048", "ed25519"]). Empty admits every registered
	// suite.
	AllowedSuites []string
	// AllowedDisclosures restricts the disclosure modes drones may
	// register with (e.g. ["full", "commit"]). Empty admits every mode.
	AllowedDisclosures []string
	// MaxInflight bounds the verification requests admitted concurrently
	// (submissions and stream samples). 0 disables admission control —
	// the in-process/test default; the alidrone-auditor binary defaults
	// it to DefaultInflightPerWorker × the worker pool size.
	MaxInflight int
	// QueueDepth is the per-drone fairness-queue budget used when the
	// in-flight budget is exhausted: up to this many requests per drone
	// wait for a slot, the rest are shed with protocol.ErrOverloaded.
	// 0 selects pipeline.DefaultQueueDepth; negative disables queueing
	// (budget exhausted → shed immediately).
	QueueDepth int
	// RetryAfter is the backoff hint attached to shed requests (the
	// Retry-After header). 0 selects pipeline.DefaultRetryAfter.
	RetryAfter time.Duration
	// Logger receives the server's structured operational log lines
	// (e.g. failed WAL appends during retention sweeps). Nil disables.
	Logger *olog.Logger
	// EncryptionKey, when set, is used as the PoA-encryption keypair
	// instead of generating one. Every shard of a cluster node (and every
	// node of a cluster) must share one key so a drone's ciphertext
	// decrypts on whichever shard owns it.
	EncryptionKey *rsa.PrivateKey
	// ShardTag, when non-empty, is folded into issued session and stream
	// IDs ("session-<tag>-0001") so shards of a cluster never issue
	// colliding IDs. Single-node servers leave it empty and keep the
	// historical formats.
	ShardTag string
	// SimVerifyCost, when positive, sleeps that long inside the admission
	// slot of every submission — a benchmark-only stand-in for a fixed
	// per-node verification budget. On a single-core box a real CPU-bound
	// pipeline cannot show cluster scale-out (all nodes share the core);
	// an off-CPU wait overlaps across nodes, so the cluster benchmark's
	// 4-node-vs-1-node ratio honestly measures that the routing layer
	// adds no cross-node serialization. Never set outside benchmarks.
	SimVerifyCost time.Duration
}

// DefaultInflightPerWorker scales the admission budget from the worker
// pool: each worker can have a few submissions in flight (decrypt, JSON
// decode and store commits overlap with another request's pool time)
// before queueing sets in.
const DefaultInflightPerWorker = 4

// Server is the AliDrone Server. Its state lives in independently locked
// stores (see stores.go) so concurrent submissions from different drones
// contend only on data they actually share.
type Server struct {
	cfg    Config
	encKey *rsa.PrivateKey
	pool   *parallel.Pool

	// Staged verification pipeline (see stages.go): the stage registry,
	// the instrumented runner, the per-entry-point stage sequences, and
	// the admission controller gating them all.
	registry       *pipeline.Registry
	runner         *pipeline.Runner
	admission      *pipeline.Admission
	sigBatcher     *pipeline.VerifyBatcher
	seqSubmit      []pipeline.Stage
	seqBatch       []pipeline.Stage
	seqMAC         []pipeline.Stage
	seqStreamSig   []pipeline.Stage
	seqStreamPair  []pipeline.Stage
	seqStreamClose []pipeline.Stage
	seqAccuse      []pipeline.Stage
	seqSealed      []pipeline.Stage
	seqCommit      []pipeline.Stage

	drones      *droneStore
	zones       *zone.Registry
	nonces      *nonceStore
	seen        *digestStore // accepted-PoA digests, for replay detection
	retained    *retentionStore
	disclosures *disclosureStore // retained sealed/commit submissions
	challenges  *challengeStore  // outstanding selective-disclosure challenges
	sessions    *sessionStore
	zones3D     *zone3DStore
	streams     *streamStore

	// Durability (nil/zero when running purely in memory, e.g. tests).
	// store receives one typed record per committed mutation; walSince
	// counts records since the last snapshot; compacting serialises
	// inline auto-compaction (see wal.go).
	store        storage.Store
	walSince     atomic.Uint64
	compacting   atomic.Bool
	compactEvery uint64

	// wireConns tracks the live binary-transport connections (maintained
	// by WireServer, reported by Status).
	wireConns atomic.Int64

	// verdict holds the pre-resolved verdict-latency sinks (nil when
	// neither Metrics nor SLO is configured).
	verdict *verdictObs
}

// NewServer creates an AliDrone Server with the given configuration.
func NewServer(cfg Config) (*Server, error) {
	if cfg.VMaxMS <= 0 {
		cfg.VMaxMS = geo.MaxDroneSpeedMPS
	}
	if cfg.Mode == 0 {
		cfg.Mode = poa.Exact
	}
	if cfg.EncKeyBits == 0 {
		cfg.EncKeyBits = sigcrypto.KeySize1024
	}
	if cfg.Retention == 0 {
		cfg.Retention = 48 * time.Hour
	}
	if cfg.NonceTTL == 0 {
		cfg.NonceTTL = DefaultNonceTTL
	}
	if cfg.Random == nil {
		cfg.Random = rand.Reader
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.System
	}
	key := cfg.EncryptionKey
	if key == nil {
		var err error
		key, err = sigcrypto.GenerateKeyPair(cfg.Random, cfg.EncKeyBits)
		if err != nil {
			return nil, fmt.Errorf("auditor keypair: %w", err)
		}
	}
	s := &Server{
		cfg:         cfg,
		encKey:      key,
		pool:        parallel.NewPool(cfg.Workers),
		drones:      newDroneStore(),
		zones:       zone.NewRegistry(),
		nonces:      newNonceStore(cfg.NonceTTL),
		seen:        newDigestStore(),
		retained:    &retentionStore{},
		disclosures: &disclosureStore{},
		challenges:  newChallengeStore(),
		sessions:    newSessionStore(),
		zones3D:     newZone3DStore(),
		streams:     newStreamStore(),
	}
	s.sessions.tag = cfg.ShardTag
	s.streams.tag = cfg.ShardTag
	s.challenges.tag = cfg.ShardTag
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge(MetricVerifyWorkers).Set(float64(s.pool.Size()))
		busy := cfg.Metrics.Gauge(MetricVerifyWorkersBusy)
		s.pool.OnBusy = func(delta int) { busy.Add(float64(delta)) }
	}
	s.sigBatcher = &pipeline.VerifyBatcher{Pool: s.pool}
	s.buildPipeline()
	s.verdict = newVerdictObs(cfg)
	s.admission = pipeline.NewAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.RetryAfter)
	if (cfg.Metrics != nil || cfg.SLO != nil) && s.admission != nil {
		// Registry handles are nil-safe, so one instrument call covers
		// every combination of Metrics/SLO being present.
		inflight := cfg.Metrics.Gauge(MetricAdmissionInflight)
		queued := cfg.Metrics.Gauge(MetricAdmissionQueued)
		shed := cfg.Metrics.Counter(MetricAdmissionShedTotal)
		admitted := cfg.Metrics.Counter(MetricAdmissionAdmittedTotal)
		slo := cfg.SLO
		s.admission.Instrument(
			func(n int) { inflight.Set(float64(n)) },
			func(n int) { queued.Set(float64(n)) },
			func() { shed.Inc(); slo.RecordShed() },
			func() { admitted.Inc(); slo.RecordAdmitted() },
		)
	}
	return s, nil
}

// WALSince returns the WAL records appended since the last snapshot
// compaction — the durable backlog the fleet status endpoint reports
// per shard.
func (s *Server) WALSince() uint64 { return s.walSince.Load() }

// MaxInflight returns the admission controller's in-flight budget (0 when
// admission control is disabled).
func (s *Server) MaxInflight() int { return s.admission.Max() }

// Workers returns the size of the verification worker pool.
func (s *Server) Workers() int { return s.pool.Size() }

// Status summarises the server's operational state.
func (s *Server) Status() protocol.StatusResponse {
	return protocol.StatusResponse{
		Drones:          s.drones.len(),
		Zones:           s.zones.Len(),
		Zones3D:         s.zones3D.len(),
		RetainedPoAs:    s.retained.len(),
		Commitments:     s.disclosures.len(),
		OpenStreams:     s.streams.len(),
		Sessions:        s.sessions.len(),
		WireConnections: int(s.wireConns.Load()),
	}
}

// EncryptionPub returns the Auditor public key drones encrypt PoAs to.
func (s *Server) EncryptionPub() *rsa.PublicKey { return &s.encKey.PublicKey }

// EncryptionKey returns the full PoA-encryption keypair. The cluster
// router uses it to share one key across shards and serve it to joining
// peers; nothing else should need the private half.
func (s *Server) EncryptionKey() *rsa.PrivateKey { return s.encKey }

// Ready implements the Backend readiness probe. A Server is ready as
// soon as it exists: OpenServer finishes recovery before returning it.
func (s *Server) Ready() error { return nil }

// wireConnDelta adjusts the live wire-connection count (WireBackend).
func (s *Server) wireConnDelta(d int64) { s.wireConns.Add(d) }

// Zones exposes the NFZ registry (zone owners register through it or via
// the protocol endpoint).
func (s *Server) Zones() *zone.Registry { return s.zones }

// RegisterDrone implements protocol task 0.
func (s *Server) RegisterDrone(req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	return s.RegisterDroneCtx(context.Background(), req)
}

// RegisterDroneCtx is RegisterDrone under a caller context (trace
// propagation into the WAL commit).
func (s *Server) RegisterDroneCtx(ctx context.Context, req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	rec, err := s.parseRegistration(req)
	if err != nil {
		return protocol.RegisterDroneResponse{}, err
	}
	id := s.drones.register(rec)
	if err := s.wal(ctx, recDroneRegistered, walDrone{
		ID: id, OperatorPub: req.OperatorPub, TEEPub: req.TEEPub,
		Suite: rec.Suite, Disclosure: rec.Disclosure,
	}); err != nil {
		return protocol.RegisterDroneResponse{}, err
	}
	return protocol.RegisterDroneResponse{DroneID: id}, nil
}

// RegisterDroneWithID files a registration under a caller-chosen ID. The
// cluster routing layer issues drone IDs ring-side — the ID determines
// the owning node, so it must exist before the record is placed — and
// then files the record here on the owner. Single-node deployments keep
// issuing sequential IDs through RegisterDroneCtx.
func (s *Server) RegisterDroneWithID(ctx context.Context, id string, req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	if id == "" {
		return protocol.RegisterDroneResponse{}, errors.New("auditor: empty drone id")
	}
	rec, err := s.parseRegistration(req)
	if err != nil {
		return protocol.RegisterDroneResponse{}, err
	}
	rec.ID = id
	if !s.drones.create(rec) {
		return protocol.RegisterDroneResponse{}, fmt.Errorf("auditor: drone id %q already registered", id)
	}
	if err := s.wal(ctx, recDroneRegistered, walDrone{
		ID: id, OperatorPub: req.OperatorPub, TEEPub: req.TEEPub,
		Suite: rec.Suite, Disclosure: rec.Disclosure,
	}); err != nil {
		return protocol.RegisterDroneResponse{}, err
	}
	return protocol.RegisterDroneResponse{DroneID: id}, nil
}

// parseRegistration validates a registration request and builds the
// unfiled record (ID unassigned).
func (s *Server) parseRegistration(req protocol.RegisterDroneRequest) (DroneRecord, error) {
	opPub, err := sigcrypto.UnmarshalPublicKey(req.OperatorPub)
	if err != nil {
		return DroneRecord{}, fmt.Errorf("operator key: %w", err)
	}
	teeKey, err := sigcrypto.ParsePublicKey(req.TEEPub)
	if err != nil {
		return DroneRecord{}, fmt.Errorf("tee key: %w", err)
	}
	suite := teeKey.SuiteID()
	if req.Suite != "" && req.Suite != suite {
		return DroneRecord{}, fmt.Errorf(
			"auditor: requested suite %q does not match the key envelope (%s)", req.Suite, suite)
	}
	if err := s.suiteAllowed(suite); err != nil {
		return DroneRecord{}, err
	}
	mode, err := poa.NormalizeDisclosure(req.Disclosure)
	if err != nil {
		return DroneRecord{}, fmt.Errorf("auditor: %w", err)
	}
	if err := s.disclosureAllowed(mode); err != nil {
		return DroneRecord{}, err
	}
	return DroneRecord{OperatorPub: opPub, Suite: suite, Disclosure: mode, TEEKeys: []TEEKey{{Pub: teeKey}}}, nil
}

// suiteAllowed enforces Config.AllowedSuites at registration time; an
// empty list admits every suite the binary registered.
func (s *Server) suiteAllowed(suite string) error {
	if len(s.cfg.AllowedSuites) == 0 {
		return nil
	}
	for _, a := range s.cfg.AllowedSuites {
		if a == suite {
			return nil
		}
	}
	return fmt.Errorf("auditor: signature suite %q is not accepted here (allowed: %v)", suite, s.cfg.AllowedSuites)
}

// disclosureAllowed enforces Config.AllowedDisclosures at registration
// time; an empty list admits every mode.
func (s *Server) disclosureAllowed(mode string) error {
	if len(s.cfg.AllowedDisclosures) == 0 {
		return nil
	}
	for _, a := range s.cfg.AllowedDisclosures {
		if a == mode {
			return nil
		}
	}
	return fmt.Errorf("auditor: disclosure mode %q is not accepted here (allowed: %v)", mode, s.cfg.AllowedDisclosures)
}

// ErrDisclosureMismatch is returned when a submission door does not match
// the drone's registered disclosure mode.
var ErrDisclosureMismatch = errors.New("auditor: submission door does not match the drone's disclosure mode")

// requireDisclosure gates a submission door on the drone's registered
// disclosure mode: a drone that negotiated commitments must not leak a
// plaintext trace through the full doors, and a full-mode drone cannot
// smuggle an unjudgeable sealed proof past the pipeline.
func requireDisclosure(rec DroneRecord, mode string) error {
	got := rec.Disclosure
	if got == "" {
		got = poa.DisclosureFull
	}
	if got != mode {
		return fmt.Errorf("%w: drone %s registered %q, this door accepts %q", ErrDisclosureMismatch, rec.ID, got, mode)
	}
	return nil
}

// RegisterZone implements protocol task 1. Ownership proofs are accepted
// at face value — verifying property records is orthogonal to the paper.
func (s *Server) RegisterZone(req protocol.RegisterZoneRequest) (protocol.RegisterZoneResponse, error) {
	id, err := s.zones.Register(req.Owner, req.Zone)
	if err != nil {
		return protocol.RegisterZoneResponse{}, err
	}
	return protocol.RegisterZoneResponse{ZoneID: id}, nil
}

// RegisterPolygonZone implements the §VII-B2 extension: a polygonal
// property is converted to its smallest enclosing circle once at
// registration (linear-time), so the PoA geometry stays circular.
func (s *Server) RegisterPolygonZone(req protocol.RegisterPolygonZoneRequest) (protocol.RegisterZoneResponse, error) {
	if len(req.Vertices) < 3 {
		return protocol.RegisterZoneResponse{}, fmt.Errorf("auditor: polygon needs >= 3 vertices, got %d", len(req.Vertices))
	}
	for _, v := range req.Vertices {
		if !v.Valid() {
			return protocol.RegisterZoneResponse{}, fmt.Errorf("auditor: invalid vertex %v", v)
		}
	}
	// Project around the vertex centroid, enclose, and register.
	var lat, lon float64
	for _, v := range req.Vertices {
		lat += v.Lat
		lon += v.Lon
	}
	n := float64(len(req.Vertices))
	pr := geo.NewProjection(geo.LatLon{Lat: lat / n, Lon: lon / n})
	pg := geo.Polygon{Vertices: make([]geo.Point, len(req.Vertices))}
	for i, v := range req.Vertices {
		pg.Vertices[i] = pr.ToLocal(v)
	}
	id, err := s.zones.RegisterPolygon(req.Owner, pr, pg)
	if err != nil {
		return protocol.RegisterZoneResponse{}, err
	}
	return protocol.RegisterZoneResponse{ZoneID: id}, nil
}

// ZoneQuery implements protocol tasks 2-3: verify the signed nonce against
// the registered drone, reject replays, and return the zones intersecting
// the navigation area.
func (s *Server) ZoneQuery(req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error) {
	return s.ZoneQueryCtx(context.Background(), req)
}

// ZoneQueryCtx is ZoneQuery under a caller context.
func (s *Server) ZoneQueryCtx(ctx context.Context, req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.ZoneQueryResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := protocol.VerifyZoneQuery(req, rec.OperatorPub); err != nil {
		return protocol.ZoneQueryResponse{}, err
	}
	now := s.cfg.Clock.Now()
	if !s.nonces.claim(req.Nonce, now) {
		return protocol.ZoneQueryResponse{}, fmt.Errorf("%w: replayed", protocol.ErrBadNonce)
	}
	if err := s.wal(ctx, recNonceSeen, nonceSnapshot{Nonce: req.Nonce, Seen: now}); err != nil {
		return protocol.ZoneQueryResponse{}, err
	}
	if !req.Area.Valid() {
		return protocol.ZoneQueryResponse{}, fmt.Errorf("auditor: invalid query area %+v", req.Area)
	}
	return protocol.ZoneQueryResponse{Zones: s.zones.QueryRect(req.Area)}, nil
}

// SubmitPoA implements protocol task 4: decrypt, authenticate and verify a
// Proof-of-Alibi, retaining it for later accusations when it verifies.
func (s *Server) SubmitPoA(req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitPoACtx(context.Background(), req)
}

// SubmitPoACtx is SubmitPoA under a caller context: the verification
// stages and WAL commit become child spans of the context's trace, and a
// cancelled context aborts verification with the context error — never a
// violation verdict, since no check actually failed.
func (s *Server) SubmitPoACtx(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.submitPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
		s.countDisclosure(poa.DisclosureFull)
		s.observeVerdict(DoorSubmit, start)
	}
	return resp, err
}

func (s *Server) submitPoA(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureFull); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if err := s.admission.Acquire(ctx, req.DroneID); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer s.admission.Release()
	s.simVerifyWait(ctx)
	sub := &pipeline.Submission{
		DroneID:    req.DroneID,
		Ciphertext: req.EncryptedPoA,
		Keys:       s.ring(rec),
		Suite:      rec.Suite,
	}
	return s.runSubmission(ctx, sub, s.seqSubmit)
}

// simVerifyWait sleeps Config.SimVerifyCost inside the admission slot —
// the benchmark-only fixed verification budget (see the Config field for
// why). A zero cost (every production configuration) returns instantly.
func (s *Server) simVerifyWait(ctx context.Context) {
	if s.cfg.SimVerifyCost <= 0 {
		return
	}
	t := time.NewTimer(s.cfg.SimVerifyCost)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// runSubmission executes a stage sequence and settles the replay-digest
// claim: a submission that does not commit (violation verdict or internal
// error, including a failed digest WAL append) releases its claim, so a
// later honest submission of the same bytes is never shadowed by a failed
// one.
func (s *Server) runSubmission(ctx context.Context, sub *pipeline.Submission, seq []pipeline.Stage) (protocol.SubmitPoAResponse, error) {
	resp, err := s.runner.Run(ctx, sub, seq)
	if sub.DigestClaimed && (err != nil || resp.Verdict != protocol.VerdictCompliant) {
		s.seen.release(sub.Digest)
	}
	return resp, err
}

// isCtxErr reports whether err is a context cancellation/deadline error.
// An aborted verification must surface as an error, never as a violation
// verdict: no check failed, the caller just went away.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// zonesForTrace pulls the zones whose boundary could matter for a trace:
// everything within the trace bounding box expanded by the maximum travel
// budget between consecutive samples. The lookup goes through the zone
// registry's grid index, so it scales with the zones near the trace, not
// with registry size.
func (s *Server) zonesForTrace(alibi []poa.Sample) []geo.GeoCircle {
	minLat, maxLat := alibi[0].Pos.Lat, alibi[0].Pos.Lat
	minLon, maxLon := alibi[0].Pos.Lon, alibi[0].Pos.Lon
	var maxGap float64
	for i, sm := range alibi {
		minLat = min(minLat, sm.Pos.Lat)
		maxLat = max(maxLat, sm.Pos.Lat)
		minLon = min(minLon, sm.Pos.Lon)
		maxLon = max(maxLon, sm.Pos.Lon)
		if i > 0 {
			gap := sm.Time.Sub(alibi[i-1].Time).Seconds() * s.cfg.VMaxMS
			maxGap = max(maxGap, gap)
		}
	}
	rect := geo.Rect{MinLat: minLat, MinLon: minLon, MaxLat: maxLat, MaxLon: maxLon}
	rect = rect.Expand(maxGap + 1)
	return zone.Circles(s.zones.QueryRect(rect))
}

// retain stores a verified alibi for the configured retention window and
// logs it; the mutation is committed before the append so a snapshot
// captured between the two still covers it (replay dedups on Seq).
func (s *Server) retain(ctx context.Context, droneID string, alibi []poa.Sample) error {
	r, n := s.retained.add(retainedPoA{
		DroneID:    droneID,
		Samples:    alibi,
		SubmitTime: s.cfg.Clock.Now(),
	})
	s.cfg.Metrics.Gauge(MetricRetainedPoAs).Set(float64(n))
	return s.wal(ctx, recPoARetained, retainedSnapshot(r))
}

// PurgeExpired drops retained PoAs older than the retention window and
// returns how many were removed. A PoA expires exactly at SubmitTime +
// Retention: a purge run at that instant removes it. The sweep also
// expires the replay-digest set (same retention cutoff) and the
// zone-query nonce cache (NonceTTL), so neither map grows without bound
// under sustained traffic.
func (s *Server) PurgeExpired() int { return s.PurgeExpiredCtx(context.Background()) }

// PurgeExpiredCtx is PurgeExpired under a caller context: the retention
// sweeper threads its run context through, so a sweeper shutdown cancels
// the purge's WAL append instead of leaving it on a background context.
func (s *Server) PurgeExpiredCtx(ctx context.Context) int {
	now := s.cfg.Clock.Now()
	cutoff := now.Add(-s.cfg.Retention)
	removed, kept := s.retained.purge(cutoff)
	s.cfg.Metrics.Gauge(MetricRetainedPoAs).Set(float64(kept))
	s.cfg.Metrics.Counter(MetricEvictedPoAsTotal).Add(uint64(removed))
	if n, _ := s.disclosures.purge(cutoff); n > 0 {
		s.cfg.Metrics.Counter(MetricEvictedPoAsTotal).Add(uint64(n))
		removed += n
	}

	swept := 0
	if n := s.seen.sweep(cutoff); n > 0 {
		s.cfg.Metrics.Counter(MetricExpiredDigestsTotal).Add(uint64(n))
		swept += n
	}
	if n := s.nonces.sweep(now); n > 0 {
		s.cfg.Metrics.Counter(MetricExpiredNoncesTotal).Add(uint64(n))
		swept += n
	}
	if removed+swept > 0 {
		// Log the sweep with its commit-time cutoffs so the expiry
		// schedule survives a restart. The in-memory purge stands either
		// way — an unlogged purge merely replays as a no-op sweep — but a
		// failed append means durable state is behind, so it is surfaced
		// in the structured log on top of the WAL-error metric.
		if err := s.wal(ctx, recPurge, walPurge{Cutoff: cutoff, Now: now}); err != nil {
			s.cfg.Logger.Warn(ctx, "retention purge WAL append failed",
				"err", err, "removed", removed, "swept", swept)
		}
	}
	return removed
}

// RetainedCount returns the number of PoAs currently retained.
func (s *Server) RetainedCount() int { return s.retained.len() }

// HandleAccusation resolves a Zone Owner report "(zone, drone, time)": it
// re-checks every retained sample pair spanning the incident instant
// against the accused zone through the shared sufficiency stage. A
// compliant verdict proves the drone could not have been in the zone at
// that time — so *any* spanning pair that exonerates decides the case,
// even when an earlier retained PoA for the same drone is too coarse to
// rule the zone out. Only when every spanning pair fails does the
// accusation stand.
func (s *Server) HandleAccusation(droneID, zoneID string, at time.Time) (protocol.SubmitPoAResponse, error) {
	return s.HandleAccusationCtx(context.Background(), droneID, zoneID, at)
}

// HandleAccusationCtx is HandleAccusation under a caller context. The
// resolution runs inside a "verify.accusation" span and lands in the
// accusation-outcome counter: compliant, violation, or no_poa when no
// retained proof covers the instant. A disclosure-required response is
// pending, not an outcome — it is counted when the reveal settles it.
func (s *Server) HandleAccusationCtx(ctx context.Context, droneID, zoneID string, at time.Time) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	actx, sp := s.cfg.Tracer.StartSpan(ctx, "verify.accusation")
	sp.SetAttr("drone", droneID)
	sp.SetAttr("zone", zoneID)
	resp, err := s.handleAccusation(actx, droneID, zoneID, at)
	sp.SetError(err)
	sp.End()
	switch {
	case errors.Is(err, ErrNoPoA):
		s.countAccusation("no_poa")
	case err == nil && resp.Verdict != protocol.VerdictDisclosureRequired:
		s.countAccusation(string(resp.Verdict))
	}
	if err == nil {
		s.observeVerdict(DoorAccuse, start)
	}
	return resp, err
}

func (s *Server) handleAccusation(ctx context.Context, droneID, zoneID string, at time.Time) (protocol.SubmitPoAResponse, error) {
	z, ok := s.zones.Get(zoneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownZone, zoneID)
	}
	if _, known := s.drones.get(droneID); !known {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, droneID)
	}

	spanning := false
	for _, r := range s.retained.byDrone(droneID) {
		for i := 0; i+1 < len(r.Samples); i++ {
			s1, s2 := r.Samples[i], r.Samples[i+1]
			if at.Before(s1.Time) || at.After(s2.Time) {
				continue
			}
			spanning = true
			sub := &pipeline.Submission{
				DroneID: droneID,
				Samples: []poa.Sample{s1, s2},
				Zones:   []geo.GeoCircle{z.Circle},
			}
			resp, err := s.runner.Run(ctx, sub, s.seqAccuse)
			if err != nil {
				return protocol.SubmitPoAResponse{}, err
			}
			if resp.Verdict == protocol.VerdictCompliant {
				return resp, nil
			}
		}
	}

	// Sealed/commit proofs hide positions, so the accusation cannot be
	// settled server-side: issue a selective-disclosure challenge for the
	// spanning pair and let the operator's reveal decide it.
	if ch, ok := s.challengeDisclosure(droneID, zoneID, at); ok {
		return protocol.SubmitPoAResponse{
			Verdict:   protocol.VerdictDisclosureRequired,
			Reason:    "retained proof hides positions; selective disclosure of the spanning pair is required",
			Challenge: &ch,
		}, nil
	}

	if spanning {
		return protocol.SubmitPoAResponse{
			Verdict: protocol.VerdictViolation,
			Reason:  "retained alibi cannot rule out presence in the accused zone",
		}, nil
	}
	return protocol.SubmitPoAResponse{}, ErrNoPoA
}

// challengeDisclosure scans the drone's retained disclosures for one whose
// clear timestamps span the accused instant and opens a challenge for the
// spanning pair. The most recent spanning submission wins: it supersedes
// earlier uploads of the same flight.
func (s *Server) challengeDisclosure(droneID, zoneID string, at time.Time) (protocol.DisclosureChallenge, bool) {
	recs := s.disclosures.byDrone(droneID)
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		pair, err := privacy.FindPairTimes(r.Times, at)
		if err != nil {
			continue
		}
		ch := protocol.DisclosureChallenge{
			DroneID:   droneID,
			ZoneID:    zoneID,
			Mode:      r.Mode,
			At:        at,
			PairIndex: pair,
		}
		ch.ChallengeID = s.challenges.add(challengeRecord{
			DroneID:       droneID,
			ZoneID:        zoneID,
			Mode:          r.Mode,
			At:            at,
			PairIndex:     pair,
			DisclosureSeq: r.Seq,
		})
		return ch, true
	}
	return protocol.DisclosureChallenge{}, false
}
