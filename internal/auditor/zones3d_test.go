package auditor

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// signedTrace3D builds a TEE-signed PoA with altitude.
func signedTrace3D(t *testing.T, keys droneKeys, start geo.LatLon, bearing, speed, alt float64, n int, gap time.Duration) poa.PoA {
	t.Helper()
	var p poa.PoA
	for i := 0; i < n; i++ {
		s := poa.Sample{
			Pos:       start.Offset(bearing, speed*float64(i)*gap.Seconds()),
			AltMeters: alt,
			Time:      t0.Add(time.Duration(i) * gap),
		}.Canon()
		sig, err := sigcrypto.Sign(keys.tee, s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		p.Append(poa.SignedSample{Sample: s, Sig: sig})
	}
	return p
}

func TestRegisterZone3DValidation(t *testing.T) {
	srv, _, _ := newFixture(t)
	bad := []poa.CylinderZone{
		{Center: geo.LatLon{Lat: 91}, R: 10, AltMax: 100},
		{Center: urbana, R: 0, AltMax: 100},
		{Center: urbana, R: 10, AltMin: 100, AltMax: 50},
	}
	for _, z := range bad {
		if _, err := srv.RegisterZone3D("o", z); !errors.Is(err, ErrInvalidCylinder) {
			t.Errorf("RegisterZone3D(%+v) err = %v, want ErrInvalidCylinder", z, err)
		}
	}
	id, err := srv.RegisterZone3D("o", poa.CylinderZone{Center: urbana, R: 50, AltMin: 0, AltMax: 120})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" || len(srv.Zones3D()) != 1 {
		t.Error("valid cylinder not registered")
	}
}

func TestSubmit3DHighOverflightCompliant(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Cylinder 0-120 m over a house directly under the flight line.
	z := poa.CylinderZone{Center: urbana.Offset(90, 150), R: 50, AltMin: 0, AltMax: 120}
	if _, err := srv.RegisterZone3D("alice", z); err != nil {
		t.Fatal(err)
	}

	// Dense 1 s trace at 400 m altitude straight over the cylinder.
	p := signedTrace3D(t, keys, urbana, 90, 10, 400, 40, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("high overflight verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}

func TestSubmit3DLowPassViolation(t *testing.T) {
	srv, id, keys := newFixture(t)
	z := poa.CylinderZone{Center: urbana.Offset(90, 150), R: 50, AltMin: 0, AltMax: 120}
	if _, err := srv.RegisterZone3D("alice", z); err != nil {
		t.Fatal(err)
	}

	// Same horizontal profile at 60 m: inside the protected band.
	p := signedTrace3D(t, keys, urbana, 90, 10, 60, 40, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("low pass verdict = %v, want violation", resp.Verdict)
	}
	if resp.InsufficientPairs == 0 {
		t.Error("expected 3-D insufficient pairs to be reported")
	}
}

func TestSubmit3DNoAltitudeTreatedAsGroundLevel(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Cylinder starting at the ground: a trace without altitude (alt 0)
	// passing through it must be treated as a violation (conservative).
	z := poa.CylinderZone{Center: urbana.Offset(90, 150), R: 50, AltMin: 0, AltMax: 120}
	if _, err := srv.RegisterZone3D("alice", z); err != nil {
		t.Fatal(err)
	}
	p := signedTrace(t, keys, urbana, 90, 10, 40, time.Second) // alt = 0
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Fatalf("ground-level pass verdict = %v, want violation", resp.Verdict)
	}
}

func TestSubmit3DElevatedZoneIgnoresGroundTraffic(t *testing.T) {
	srv, id, keys := newFixture(t)
	// Protected band 200-400 m (e.g. an approach corridor): ground-level
	// traffic below it is fine when the samples are dense enough that
	// the ellipsoid cannot climb into the band.
	z := poa.CylinderZone{Center: urbana.Offset(90, 150), R: 50, AltMin: 200, AltMax: 400}
	if _, err := srv.RegisterZone3D("faa", z); err != nil {
		t.Fatal(err)
	}
	p := signedTrace3D(t, keys, urbana, 90, 10, 5, 40, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("under-corridor pass verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}

func TestRegisterPolygonZone(t *testing.T) {
	srv, _, _ := newFixture(t)

	// A 60x80 m rectangular property: SEC radius 50 m.
	verts := []geo.LatLon{
		urbana.Offset(90, 0).Offset(0, 0),
		urbana.Offset(90, 60),
		urbana.Offset(90, 60).Offset(0, 80),
		urbana.Offset(0, 80),
	}
	resp, err := srv.RegisterPolygonZone(protocol.RegisterPolygonZoneRequest{
		Owner: "alice", Vertices: verts, OwnershipProof: "deed",
	})
	if err != nil {
		t.Fatal(err)
	}
	z, ok := srv.Zones().Get(resp.ZoneID)
	if !ok {
		t.Fatal("polygon zone not registered")
	}
	if z.Circle.R < 48 || z.Circle.R > 52 {
		t.Errorf("SEC radius = %v, want ~50", z.Circle.R)
	}
	// The circle must cover every vertex (small slack: boundary vertices
	// re-measured with haversine land within centimetres of R).
	for i, v := range verts {
		if d := z.Circle.BoundaryDistMeters(v); d > 0.05 {
			t.Errorf("vertex %d is %.3f m outside the enclosing circle", i, d)
		}
	}

	// Validation.
	if _, err := srv.RegisterPolygonZone(protocol.RegisterPolygonZoneRequest{
		Owner: "x", Vertices: verts[:2],
	}); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	if _, err := srv.RegisterPolygonZone(protocol.RegisterPolygonZoneRequest{
		Owner: "x", Vertices: []geo.LatLon{{Lat: 91}, {Lat: 0}, {Lat: 1}},
	}); err == nil {
		t.Error("invalid vertex accepted")
	}
}
