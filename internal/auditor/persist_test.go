package auditor

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	srv, droneID, keys := newFixture(t)
	zoneID, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterZone3D("bob", poa.CylinderZone{Center: urbana.Offset(0, 8000), R: 50, AltMax: 120}); err != nil {
		t.Fatal(err)
	}

	// Submit a compliant PoA so retention + replay state is non-trivial.
	p := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %v", err, resp.Verdict)
	}

	path := filepath.Join(t.TempDir(), "auditor-state.json")
	if err := srv.SaveState(path); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadServer(Config{
		Random: rand.New(rand.NewSource(1)),
		Clock:  obs.ClockFunc(func() time.Time { return t0 }),
	}, path)
	if err != nil {
		t.Fatal(err)
	}

	// The encryption key survives: old ciphertext still decrypts, so a
	// resubmission is caught as a replay.
	resp, err = restored.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("replay after restore verdict = %v, want violation", resp.Verdict)
	}

	// Registered drone and zones survive.
	if restored.RetainedCount() != 1 {
		t.Errorf("retained after restore = %d, want 1", restored.RetainedCount())
	}
	if _, ok := restored.Zones().Get(zoneID); !ok {
		t.Error("zone lost across restore")
	}
	if len(restored.Zones3D()) != 1 {
		t.Error("3-D zone lost across restore")
	}

	// Accusations still answerable from the restored retention store.
	acc, err := restored.HandleAccusation(droneID, zoneID, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictCompliant {
		t.Errorf("accusation after restore = %v", acc.Verdict)
	}

	// New registrations continue the ID sequences without collisions.
	id2, err := restored.Zones().Register("carol", geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 50})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == zoneID {
		t.Error("zone ID sequence restarted")
	}
}

func TestLoadServerErrors(t *testing.T) {
	if _, err := LoadServer(Config{}, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing state file accepted")
	}
}

// TestLoadServerRejectsCorruptSnapshots feeds damaged state files to the
// loader: every one must come back as a clean error — no panic, no
// half-restored server.
func TestLoadServerRejectsCorruptSnapshots(t *testing.T) {
	srv, _, _ := newFixture(t)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := srv.SaveState(path); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":         {},
		"garbage":       []byte("\x00\xff\x1fnot json at all"),
		"truncated":     valid[:len(valid)/2],
		"wrong type":    []byte(`[1,2,3]`),
		"no key":        []byte(`{"drones":[]}`),
		"bad key":       []byte(`{"encKey":"AAAA"}`),
		"bad drone key": []byte(`{"encKey":"` + snapshotField(t, valid, "encKey") + `","drones":[{"id":"drone-0001","operatorPub":"!!","teePub":"!!"}]}`),
		"bad digest":    []byte(`{"encKey":"` + snapshotField(t, valid, "encKey") + `","poaDigests":[{"digest":"zz","seen":"2018-06-01T15:00:00Z"}]}`),
	}
	for name, data := range cases {
		if _, err := loadServerBytes(Config{Random: rand.New(rand.NewSource(1))}, data); err == nil {
			t.Errorf("%s snapshot accepted", name)
		}
	}
}

// snapshotField extracts one top-level string field from serialised
// snapshot JSON.
func snapshotField(t *testing.T, data []byte, field string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	s, ok := m[field].(string)
	if !ok {
		t.Fatalf("snapshot field %q missing", field)
	}
	return s
}

// FuzzLoadSnapshot throws arbitrary bytes at the snapshot loader. The
// invariant is the satellite requirement: corrupt input yields an error,
// never a panic, and an accepted input yields a serviceable server.
func FuzzLoadSnapshot(f *testing.F) {
	srv, err := NewServer(Config{Random: rand.New(rand.NewSource(1)), EncKeyBits: 512})
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "state.json")
	if err := srv.SaveState(path); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"encKey":"AAAA","retained":[{"seq":18446744073709551615}]}`))
	f.Add([]byte(`{"zones":[{"id":"zone-9999","circle":{"center":{"lat":1e308,"lon":-1e308},"r":1}}]}`))
	f.Add([]byte("\x00\x01\x02garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Small key: the fuzz loop pays one keygen per exec.
		cfg := Config{Random: rand.New(rand.NewSource(2)), EncKeyBits: 512}
		srv, err := loadServerBytes(cfg, data)
		if err != nil {
			return
		}
		// Accepted snapshots must produce a server that answers.
		_ = srv.Status()
		if err := srv.SaveState(filepath.Join(t.TempDir(), "resave.json")); err != nil {
			t.Fatalf("accepted snapshot cannot re-save: %v", err)
		}
	})
}
