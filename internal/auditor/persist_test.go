package auditor

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	srv, droneID, keys := newFixture(t)
	zoneID, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterZone3D("bob", poa.CylinderZone{Center: urbana.Offset(0, 8000), R: 50, AltMax: 120}); err != nil {
		t.Fatal(err)
	}

	// Submit a compliant PoA so retention + replay state is non-trivial.
	p := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %v", err, resp.Verdict)
	}

	path := filepath.Join(t.TempDir(), "auditor-state.json")
	if err := srv.SaveState(path); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadServer(Config{
		Random: rand.New(rand.NewSource(1)),
		Clock:  obs.ClockFunc(func() time.Time { return t0 }),
	}, path)
	if err != nil {
		t.Fatal(err)
	}

	// The encryption key survives: old ciphertext still decrypts, so a
	// resubmission is caught as a replay.
	resp, err = restored.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("replay after restore verdict = %v, want violation", resp.Verdict)
	}

	// Registered drone and zones survive.
	if restored.RetainedCount() != 1 {
		t.Errorf("retained after restore = %d, want 1", restored.RetainedCount())
	}
	if _, ok := restored.Zones().Get(zoneID); !ok {
		t.Error("zone lost across restore")
	}
	if len(restored.Zones3D()) != 1 {
		t.Error("3-D zone lost across restore")
	}

	// Accusations still answerable from the restored retention store.
	acc, err := restored.HandleAccusation(droneID, zoneID, t0.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Verdict != protocol.VerdictCompliant {
		t.Errorf("accusation after restore = %v", acc.Verdict)
	}

	// New registrations continue the ID sequences without collisions.
	id2, err := restored.Zones().Register("carol", geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 50})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == zoneID {
		t.Error("zone ID sequence restarted")
	}
}

func TestLoadServerErrors(t *testing.T) {
	if _, err := LoadServer(Config{}, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing state file accepted")
	}
}
