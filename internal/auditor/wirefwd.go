package auditor

// wireForwarder is the router's binary-transport peer client: when the
// owning node advertises a wire address, a mis-routed submission travels
// to it as a single Forward frame on a pooled, version-negotiated
// connection instead of a full HTTP round trip. The forwarder dials at
// wire.LatestVersion and falls back to Version1 when the peer is an
// older build — a Version1 peer simply never sees the traceparent field
// (the trace breaks at the hop, nothing else does).

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/wire"
)

// errWireUnavailable marks failures before any Forward frame was written
// — dial, handshake, version refusal. Only these are safe to retry over
// HTTP: after a write the frame may already be in the owner's pipeline,
// and a second delivery would trip its replay detection.
var errWireUnavailable = errors.New("auditor: peer wire transport unavailable")

// wireForwarder pools one connection per peer wire address.
type wireForwarder struct {
	dialTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*fwdConn
}

func newWireForwarder() *wireForwarder {
	return &wireForwarder{dialTimeout: 5 * time.Second, conns: make(map[string]*fwdConn)}
}

// Close tears down every pooled connection.
func (f *wireForwarder) Close() {
	f.mu.Lock()
	conns := f.conns
	f.conns = make(map[string]*fwdConn)
	f.mu.Unlock()
	for _, fc := range conns {
		fc.fail(errors.New("auditor: wire forwarder closed"))
	}
}

// Submit forwards one submission to the owner's wire door and waits for
// its ack. ok=false reports the wire transport unusable before anything
// was sent — the caller may fall back to HTTP.
func (f *wireForwarder) Submit(ctx context.Context, wireAddr string, req protocol.SubmitPoARequest,
	traceParent string) (protocol.SubmitPoAResponse, error, bool) {
	fc, err := f.conn(wireAddr)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %v", errWireUnavailable, err), false
	}
	ack, err := fc.forward(ctx, req.DroneID, req.EncryptedPoA, traceParent)
	if err != nil {
		f.evict(wireAddr, fc)
		return protocol.SubmitPoAResponse{}, err, true
	}
	resp, err := respFromAck(req.DroneID, ack)
	return resp, err, true
}

// conn returns the pooled connection for addr, dialing on first use.
func (f *wireForwarder) conn(addr string) (*fwdConn, error) {
	f.mu.Lock()
	fc := f.conns[addr]
	f.mu.Unlock()
	if fc != nil && !fc.dead() {
		return fc, nil
	}
	nfc, err := dialFwd(addr, f.dialTimeout)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if cur := f.conns[addr]; cur != nil && !cur.dead() {
		// A concurrent dial won; use it and drop ours.
		f.mu.Unlock()
		nfc.fail(errors.New("auditor: duplicate forwarder dial"))
		return cur, nil
	}
	f.conns[addr] = nfc
	f.mu.Unlock()
	return nfc, nil
}

// evict drops a failed connection from the pool (if still current).
func (f *wireForwarder) evict(addr string, fc *fwdConn) {
	f.mu.Lock()
	if f.conns[addr] == fc {
		delete(f.conns, addr)
	}
	f.mu.Unlock()
}

// fwdConn is one live, handshaken connection to a peer's wire listener.
type fwdConn struct {
	c       net.Conn
	version byte

	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan wire.Ack
	err     error
}

// dialFwd establishes and handshakes one forwarder connection, trying
// the latest protocol version first and redialing at Version1 when the
// peer refuses it.
func dialFwd(addr string, timeout time.Duration) (*fwdConn, error) {
	fc, err := dialFwdVersion(addr, wire.LatestVersion, timeout)
	if err == nil || !errors.Is(err, wire.ErrUnknownVersion) {
		return fc, err
	}
	return dialFwdVersion(addr, wire.Version1, timeout)
}

func dialFwdVersion(addr string, version byte, timeout time.Duration) (*fwdConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(c, 32<<10)
	br := bufio.NewReaderSize(c, 32<<10)
	_ = c.SetDeadline(time.Now().Add(timeout))
	if _, err := bw.Write(wire.EncodeHelloV(nil, version)); err != nil {
		c.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	_, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
	if err != nil {
		c.Close()
		return nil, err
	}
	typ, body, err := wire.SplitType(data)
	if err != nil {
		c.Close()
		return nil, err
	}
	switch typ {
	case wire.TypeHelloAck:
		ack, err := wire.DecodeHelloAck(body)
		if err != nil {
			c.Close()
			return nil, err
		}
		if !wire.SupportedVersion(ack.Version) || ack.Version > version {
			c.Close()
			return nil, fmt.Errorf("wire forward handshake: peer accepted version %d, proposed %d", ack.Version, version)
		}
		_ = c.SetDeadline(time.Time{})
		fc := &fwdConn{c: c, version: ack.Version, bw: bw, pending: make(map[uint64]chan wire.Ack)}
		go fc.readLoop(br)
		return fc, nil
	case wire.TypeError:
		we, derr := wire.DecodeError(body)
		c.Close()
		if derr == nil && strings.Contains(we.Message, wire.ErrUnknownVersion.Error()) {
			return nil, fmt.Errorf("%w: peer refused version %d", wire.ErrUnknownVersion, version)
		}
		return nil, fmt.Errorf("wire forward handshake: peer error %q", we.Message)
	default:
		c.Close()
		return nil, fmt.Errorf("wire forward handshake: unexpected frame type %#x", typ)
	}
}

// forward writes one Forward frame and waits for its ack.
func (fc *fwdConn) forward(ctx context.Context, droneID string, ciphertext []byte, traceParent string) (wire.Ack, error) {
	ch := make(chan wire.Ack, 1)
	fc.mu.Lock()
	if fc.err != nil {
		err := fc.err
		fc.mu.Unlock()
		return wire.Ack{}, err
	}
	fc.seq++
	seq := fc.seq
	fc.pending[seq] = ch
	fc.mu.Unlock()

	frame := wire.EncodeForwardV(nil, fc.version, wire.Forward{
		Seq: seq, DroneID: droneID, Ciphertext: ciphertext, TraceParent: traceParent,
	})
	fc.wmu.Lock()
	_, werr := fc.bw.Write(frame)
	if werr == nil {
		werr = fc.bw.Flush()
	}
	fc.wmu.Unlock()
	if werr != nil {
		fc.fail(werr)
		return wire.Ack{}, werr
	}
	select {
	case ack, ok := <-ch:
		if !ok {
			fc.mu.Lock()
			err := fc.err
			fc.mu.Unlock()
			if err == nil {
				err = errors.New("auditor: wire forward connection lost")
			}
			return wire.Ack{}, err
		}
		return ack, nil
	case <-ctx.Done():
		fc.mu.Lock()
		delete(fc.pending, seq)
		fc.mu.Unlock()
		return wire.Ack{}, ctx.Err()
	}
}

// readLoop dispatches acks to their waiting forwards until the
// connection dies; any error fails every pending forward.
func (fc *fwdConn) readLoop(br *bufio.Reader) {
	for {
		version, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
		if err != nil {
			fc.fail(fmt.Errorf("auditor: wire forward read: %w", err))
			return
		}
		if !wire.SupportedVersion(version) {
			fc.fail(fmt.Errorf("auditor: wire forward peer switched to version %d", version))
			return
		}
		typ, body, err := wire.SplitType(data)
		if err != nil {
			fc.fail(err)
			return
		}
		switch typ {
		case wire.TypeAck:
			acks, err := wire.DecodeAcks(body)
			if err != nil {
				fc.fail(err)
				return
			}
			fc.mu.Lock()
			for _, a := range acks {
				if ch, ok := fc.pending[a.Seq]; ok {
					delete(fc.pending, a.Seq)
					ch <- a
				}
			}
			fc.mu.Unlock()
		case wire.TypeError:
			we, derr := wire.DecodeError(body)
			msg := "peer protocol error"
			if derr == nil {
				msg = we.Message
			}
			fc.fail(fmt.Errorf("auditor: wire forward peer error: %s", msg))
			return
		default:
			fc.fail(fmt.Errorf("auditor: wire forward: unexpected frame type %#x", typ))
			return
		}
	}
}

// dead reports whether the connection has failed.
func (fc *fwdConn) dead() bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.err != nil
}

// fail closes the connection and releases every pending waiter.
func (fc *fwdConn) fail(err error) {
	fc.mu.Lock()
	if fc.err == nil {
		fc.err = err
	}
	pending := fc.pending
	fc.pending = make(map[uint64]chan wire.Ack)
	fc.mu.Unlock()
	fc.c.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// respFromAck maps a wire ack back onto the HTTP door's response/error
// contract, so verdicts, overload backoff and the 421 misrouted
// semantics survive the binary hop unchanged.
func respFromAck(droneID string, ack wire.Ack) (protocol.SubmitPoAResponse, error) {
	switch ack.Status {
	case wire.StatusCompliant, wire.StatusViolation:
		verdict := protocol.VerdictViolation
		if ack.Status == wire.StatusCompliant {
			verdict = protocol.VerdictCompliant
		}
		return protocol.SubmitPoAResponse{
			Verdict:           verdict,
			Reason:            ack.Reason,
			InsufficientPairs: int(ack.InsufficientPairs),
		}, nil
	case wire.StatusOverloaded:
		return protocol.SubmitPoAResponse{}, &protocol.OverloadedError{
			RetryAfter: time.Duration(ack.RetryAfterMS) * time.Millisecond,
		}
	default:
		if strings.Contains(ack.Reason, "misrouted") {
			return protocol.SubmitPoAResponse{}, &protocol.MisroutedError{DroneID: droneID}
		}
		return protocol.SubmitPoAResponse{}, fmt.Errorf("auditor: wire forward rejected: %s", ack.Reason)
	}
}
