package auditor

import (
	"crypto/rsa"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// suiteKeys is the suite-parameterised analogue of droneKeys: the operator
// key stays RSA (operator identity is outside the suite registry), the
// TEE sign key belongs to the suite under test.
type suiteKeys struct {
	op  *rsa.PrivateKey
	tee sigcrypto.PrivateKey
}

// newSuiteFixture builds a server with one drone registered under the
// given signature suite.
func newSuiteFixture(t *testing.T, suiteID string) (*Server, string, suiteKeys) {
	t.Helper()
	return newSuiteFixtureConfig(t, suiteID, Config{
		Clock:   obs.ClockFunc(func() time.Time { return t0 }),
		Metrics: obs.NewRegistry(nil),
	})
}

// newSuiteFixtureConfig is newSuiteFixture with an explicit config.
func newSuiteFixtureConfig(t *testing.T, suiteID string, cfg Config) (*Server, string, suiteKeys) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	if cfg.Random == nil {
		cfg.Random = rng
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, keys := registerSuiteDrone(t, srv, suiteID, rng)
	return srv, id, keys
}

// registerSuiteDrone registers one more drone under suiteID.
func registerSuiteDrone(t *testing.T, srv *Server, suiteID string, rng *rand.Rand) (string, suiteKeys) {
	t.Helper()
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := sigcrypto.SuiteByID(suiteID)
	if err != nil {
		t.Fatal(err)
	}
	teeKey, err := suite.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	teePub, err := teeKey.Public().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: teePub, Suite: suiteID})
	if err != nil {
		t.Fatal(err)
	}
	return resp.DroneID, suiteKeys{op: op, tee: teeKey}
}

// suiteSignedTrace builds a trace signed sample-by-sample with the suite
// key at epoch 0.
func suiteSignedTrace(t *testing.T, key sigcrypto.PrivateKey, start geo.LatLon, bearing, speed float64, n int, gap time.Duration) poa.PoA {
	t.Helper()
	var p poa.PoA
	for i := 0; i < n; i++ {
		s := poa.Sample{
			Pos:  start.Offset(bearing, speed*float64(i)*gap.Seconds()),
			Time: t0.Add(time.Duration(i) * gap),
		}.Canon()
		sig, err := key.Sign(s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		p.Append(poa.SignedSample{Sample: s, Sig: sig})
	}
	return p
}

// suiteBatchEnvelope seals a trace in the §VII-A1b batch envelope under
// the suite key.
func suiteBatchEnvelope(t *testing.T, srv *Server, key sigcrypto.PrivateKey, p poa.PoA) []byte {
	t.Helper()
	samples := p.Alibi()
	sig, err := key.Sign(poa.MarshalBatch(samples))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(poa.BatchPoA{Samples: samples, Sig: sig})
	if err != nil {
		t.Fatal(err)
	}
	return encryptBytes(t, srv, data)
}

// TestCrossSuiteVerdictParity extends the entry-point parity property
// across signature suites: the same trace against the same zone yields
// the same verdict through every door — submit, batch, MAC, stream and
// accusation — whether the drone registered with RSA-2048 or Ed25519.
func TestCrossSuiteVerdictParity(t *testing.T) {
	cases := []struct {
		name string
		n    int
		gap  time.Duration
		zone geo.GeoCircle
		want protocol.Verdict
	}{
		{
			name: "compliant",
			n:    10, gap: time.Second,
			zone: geo.GeoCircle{Center: urbana.Offset(90, 5000), R: 100},
			want: protocol.VerdictCompliant,
		},
		{
			name: "violating",
			n:    10, gap: time.Second,
			zone: geo.GeoCircle{Center: urbana.Offset(0, 50), R: 100},
			want: protocol.VerdictViolation,
		},
	}
	for _, suiteID := range []string{sigcrypto.SuiteRSA2048, sigcrypto.SuiteEd25519} {
		for _, tc := range cases {
			t.Run(suiteID+"/"+tc.name, func(t *testing.T) {
				verdicts := map[string]protocol.Verdict{}
				trace := func(keys suiteKeys) poa.PoA {
					return suiteSignedTrace(t, keys.tee, urbana, 0, 10, tc.n, tc.gap)
				}

				{ // regular per-sample-signed path
					srv, id, keys := newSuiteFixture(t, suiteID)
					mustRegisterZone(t, srv, tc.zone)
					resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, trace(keys))})
					if err != nil {
						t.Fatal(err)
					}
					verdicts["submit"] = resp.Verdict
				}

				{ // batch envelope
					srv, id, keys := newSuiteFixture(t, suiteID)
					mustRegisterZone(t, srv, tc.zone)
					resp, err := srv.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: id, EncryptedBatch: suiteBatchEnvelope(t, srv, keys.tee, trace(keys))})
					if err != nil {
						t.Fatal(err)
					}
					verdicts["batch"] = resp.Verdict
				}

				{ // symmetric (MAC) envelope — suite-independent by design,
					// but it must behave identically for a suite-registered drone
					srv, id, keys := newSuiteFixture(t, suiteID)
					mustRegisterZone(t, srv, tc.zone)
					key := []byte("0123456789abcdef0123456789abcdef")
					sess, err := srv.StartSession(protocol.StartSessionRequest{DroneID: id, WrappedKey: encryptBytes(t, srv, key)})
					if err != nil {
						t.Fatal(err)
					}
					resp, err := srv.SubmitMACPoA(protocol.SubmitMACPoARequest{DroneID: id, SessionID: sess.SessionID, EncryptedPoA: macEnvelope(t, srv, key, trace(keys))})
					if err != nil {
						t.Fatal(err)
					}
					verdicts["mac"] = resp.Verdict
				}

				{ // real-time stream path
					srv, id, keys := newSuiteFixture(t, suiteID)
					mustRegisterZone(t, srv, tc.zone)
					open, err := srv.OpenStream(protocol.OpenStreamRequest{DroneID: id})
					if err != nil {
						t.Fatal(err)
					}
					for _, ss := range trace(keys).Samples {
						if _, err := srv.StreamSample(protocol.StreamSampleRequest{StreamID: open.StreamID, Sample: ss}); err != nil {
							t.Fatal(err)
						}
					}
					resp, err := srv.CloseStream(protocol.CloseStreamRequest{StreamID: open.StreamID})
					if err != nil {
						t.Fatal(err)
					}
					verdicts["stream"] = resp.Verdict
				}

				{ // accusation re-check over the retained trace
					srv, id, keys := newSuiteFixture(t, suiteID)
					resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, trace(keys))})
					if err != nil || resp.Verdict != protocol.VerdictCompliant {
						t.Fatalf("pre-accusation submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
					}
					zoneID := mustRegisterZone(t, srv, tc.zone)
					mid := t0.Add(tc.gap / 2)
					acc, err := srv.HandleAccusation(id, zoneID, mid)
					if err != nil {
						t.Fatal(err)
					}
					verdicts["accusation"] = acc.Verdict
				}

				for path, v := range verdicts {
					if v != tc.want {
						t.Errorf("%s verdict = %v, want %v", path, v, tc.want)
					}
				}
			})
		}
	}
}

// TestMixedFleetVerification registers an RSA-2048 drone and an Ed25519
// drone on the same server and checks both verify under their own key —
// and that swapping the traces (an Ed25519-signed trace submitted by the
// RSA drone) is a violation, not a pass or an internal error.
func TestMixedFleetVerification(t *testing.T) {
	srv, rsaID, rsaKeys := newSuiteFixture(t, sigcrypto.SuiteRSA2048)
	rng := rand.New(rand.NewSource(99))
	edID, edKeys := registerSuiteDrone(t, srv, sigcrypto.SuiteEd25519, rng)

	rsaTrace := suiteSignedTrace(t, rsaKeys.tee, urbana, 0, 10, 10, time.Second)
	edTrace := suiteSignedTrace(t, edKeys.tee, urbana.Offset(90, 200), 0, 10, 10, time.Second)

	for _, tc := range []struct {
		name  string
		drone string
		trace poa.PoA
		want  protocol.Verdict
	}{
		{"rsa drone, rsa trace", rsaID, rsaTrace, protocol.VerdictCompliant},
		{"ed25519 drone, ed25519 trace", edID, edTrace, protocol.VerdictCompliant},
		{"rsa drone, ed25519 trace", rsaID, edTrace, protocol.VerdictViolation},
		{"ed25519 drone, rsa trace", edID, rsaTrace, protocol.VerdictViolation},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: tc.drone, EncryptedPoA: encryptFor(t, srv, tc.trace)})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Verdict != tc.want {
				t.Errorf("verdict = %v (%s), want %v", resp.Verdict, resp.Reason, tc.want)
			}
		})
	}
}

// TestRegisterDroneSuiteNegotiation covers the registration-time suite
// rules: envelope mismatch and disallowed suites are rejected.
func TestRegisterDroneSuiteNegotiation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	op, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&op.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := sigcrypto.SuiteByID(sigcrypto.SuiteEd25519)
	if err != nil {
		t.Fatal(err)
	}
	edKey, err := suite.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	edPub, err := edKey.Public().Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("suite mismatch rejected", func(t *testing.T) {
		srv, err := NewServer(Config{Random: rng})
		if err != nil {
			t.Fatal(err)
		}
		_, err = srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: edPub, Suite: sigcrypto.SuiteRSA2048})
		if err == nil {
			t.Fatal("registering an ed25519 key as rsa2048 succeeded")
		}
	})

	t.Run("disallowed suite rejected", func(t *testing.T) {
		srv, err := NewServer(Config{Random: rng, AllowedSuites: []string{sigcrypto.SuiteRSA2048}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: edPub}); err == nil {
			t.Fatal("registering a disallowed suite succeeded")
		}
	})

	t.Run("allowed suite accepted", func(t *testing.T) {
		srv, err := NewServer(Config{Random: rng, AllowedSuites: []string{sigcrypto.SuiteEd25519}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.RegisterDrone(protocol.RegisterDroneRequest{OperatorPub: opPub, TEEPub: edPub})
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := srv.drones.get(resp.DroneID)
		if !ok || rec.Suite != sigcrypto.SuiteEd25519 {
			t.Fatalf("record suite = %q, want ed25519", rec.Suite)
		}
	})
}
