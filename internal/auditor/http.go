package auditor

import (
	"bytes"
	"context"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// compile-time check: the server implements the protocol surface,
// including the optional key-rotation extension.
var (
	_ protocol.API         = (*Server)(nil)
	_ protocol.RotationAPI = (*Server)(nil)
	_ Backend              = (*Server)(nil)
)

// Backend is the verification surface the HTTP transport serves: every
// protocol endpoint plus the operational introspection the handler
// mounts next to them. A single-node *Server implements it directly;
// the cluster *Router implements it by routing each call to the owning
// shard — local or remote — so the transport layer is identical either
// way. This interface IS the tentpole refactor: "one Server = one
// shard", with everything above it backend-agnostic.
type Backend interface {
	RegisterDroneCtx(ctx context.Context, req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error)
	RegisterZone(req protocol.RegisterZoneRequest) (protocol.RegisterZoneResponse, error)
	RegisterPolygonZone(req protocol.RegisterPolygonZoneRequest) (protocol.RegisterZoneResponse, error)
	ZoneQueryCtx(ctx context.Context, req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error)
	SubmitPoACtx(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error)
	SubmitBatchPoACtx(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error)
	StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error)
	SubmitMACPoACtx(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error)
	SubmitSealedPoACtx(ctx context.Context, req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error)
	SubmitCommitPoACtx(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error)
	RevealCtx(ctx context.Context, req protocol.RevealRequest) (protocol.SubmitPoAResponse, error)
	RotateKeyCtx(ctx context.Context, req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error)
	OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error)
	StreamSampleCtx(ctx context.Context, req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error)
	CloseStreamCtx(ctx context.Context, req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error)
	HandleAccusationCtx(ctx context.Context, droneID, zoneID string, at time.Time) (protocol.SubmitPoAResponse, error)
	EncryptionPub() *rsa.PublicKey
	Zones() *zone.Registry
	Status() protocol.StatusResponse
	Metrics() *obs.Registry
	Tracer() *otrace.Tracer
	// Ready distinguishes liveness from readiness: nil once the backend
	// can serve verdicts (shards recovered, ring joined). A bare Server
	// is ready as soon as it exists — recovery happens in OpenServer
	// before anything can reach it.
	Ready() error
}

// HandlerOptions configures the operational side of the HTTP transport.
// The zero value mounts the bare protocol surface.
type HandlerOptions struct {
	// Collector, when set, is mounted at PathDebugTraces for JSONL trace
	// dumps. It should be the same collector the server's Tracer sinks to.
	Collector *otrace.RingCollector
	// Logger receives the handler's structured log lines (slow requests).
	// Nil disables them.
	Logger *olog.Logger
	// Slow is the latency threshold above which a request is logged with
	// its trace ID (the slow-request log). Zero disables it.
	Slow time.Duration
}

// Handler exposes a Backend over HTTP with JSON bodies. Register it on
// any mux or serve it directly. The same handler fronts a single-node
// Server and a cluster Router; routing is the backend's concern.
type Handler struct {
	srv  Backend
	mux  *http.ServeMux
	opts HandlerOptions

	// Readiness transition log, once per flip: probes hit /readyz every
	// few seconds, so logging every 503 would drown the reason the line
	// exists — pinpointing *when* a node fell out of (or came back into)
	// rotation and why.
	readyMu    sync.Mutex
	readyKnown bool
	readyOK    bool
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps a backend with default (zero) options.
func NewHandler(srv Backend) *Handler {
	return NewHandlerOpts(srv, HandlerOptions{})
}

// NewHandlerOpts wraps a backend with explicit operational options.
func NewHandlerOpts(srv Backend, opts HandlerOptions) *Handler {
	h := &Handler{srv: srv, mux: http.NewServeMux(), opts: opts}
	h.handle(protocol.PathRegisterDrone, post(h.registerDrone))
	h.handle(protocol.PathRegisterZone, post(h.registerZone))
	h.handle(protocol.PathRegisterPolygonZone, post(h.registerPolygonZone))
	h.handle(protocol.PathZoneQuery, post(h.zoneQuery))
	h.handle(protocol.PathSubmitPoA, post(h.submitPoA))
	h.handle(protocol.PathSubmitBatchPoA, post(h.submitBatchPoA))
	h.handle(protocol.PathStartSession, post(h.startSession))
	h.handle(protocol.PathSubmitMACPoA, post(h.submitMACPoA))
	h.handle(protocol.PathSubmitSealedPoA, post(h.submitSealedPoA))
	h.handle(protocol.PathSubmitCommitPoA, post(h.submitCommitPoA))
	h.handle(protocol.PathReveal, post(h.reveal))
	h.handle(protocol.PathAccuse, post(h.accuse))
	h.handle(protocol.PathRotateKey, post(h.rotateKey))
	h.handle(protocol.PathStreamOpen, post(h.streamOpen))
	h.handle(protocol.PathStreamSample, post(h.streamSample))
	h.handle(protocol.PathStreamClose, post(h.streamClose))
	h.handle(protocol.PathAuditorPub, h.auditorPub)
	h.handle(protocol.PathPublicZones, h.publicZones)
	h.handle(protocol.PathStatus, h.status)
	h.mux.HandleFunc(PathMetrics, h.metrics)
	h.mux.HandleFunc(PathHealthz, h.healthz)
	h.mux.HandleFunc(PathReadyz, h.readyz)
	if opts.Collector != nil {
		h.mux.Handle(PathDebugTraces, opts.Collector)
	}
	if cb, ok := srv.(clusterBackend); ok {
		h.registerClusterRoutes(cb)
	}
	return h
}

// handle registers an endpoint wrapped in the per-endpoint request
// counter and latency histogram, the server-side trace span — continuing
// the submitter's trace when the request carries a traceparent header —
// and the slow-request log. The operational endpoints (/metrics,
// /healthz, /debug/traces) are registered bare so scrapes do not count
// as traffic.
func (h *Handler) handle(path string, fn http.HandlerFunc) {
	reg := h.srv.Metrics()
	tr := h.srv.Tracer()
	if reg == nil && tr == nil && h.opts.Slow <= 0 {
		h.mux.HandleFunc(path, fn)
		return
	}
	requests := reg.Counter(obs.L(MetricHTTPRequestsTotal, "path", path))
	latency := reg.Histogram(obs.L(MetricHTTPRequestSeconds, "path", path), obs.DurationBuckets)
	clock := reg.Clock()
	h.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		ctx, sp := tr.StartRemote(r.Context(), r.Header.Get(protocol.HeaderTraceParent), "auditor "+path)
		sp.SetAttr("path", path)
		if ctx != r.Context() {
			r = r.WithContext(ctx)
		}
		start := clock.Now()
		fn(w, r)
		dur := clock.Now().Sub(start)
		latency.Observe(dur.Seconds())
		sp.End()
		if h.opts.Slow > 0 && dur >= h.opts.Slow {
			h.opts.Logger.Warn(ctx, "slow request", "path", path, "ms", dur.Milliseconds())
		}
	})
}

// metrics serves the Prometheus text exposition of the server registry.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	reg := h.srv.Metrics()
	if reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WriteText(w)
}

// healthz is the liveness probe: the server answers as soon as it serves.
func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// readyz is the readiness probe: 200 once the backend can actually serve
// verdicts (shards recovered, ring joined), 503 with the reason until
// then. Liveness (/healthz) stays green the whole time so a slow-joining
// node is redialed, not restarted.
func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	err := h.srv.Ready()
	h.logReadyTransition(r.Context(), err)
	if err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready: " + err.Error() + "\n"))
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

// logReadyTransition logs readiness flips exactly once per transition:
// the reason when the backend stops being ready, the recovery when it
// returns. Steady-state probes stay silent.
func (h *Handler) logReadyTransition(ctx context.Context, err error) {
	ok := err == nil
	h.readyMu.Lock()
	flipped := !h.readyKnown || h.readyOK != ok
	h.readyKnown, h.readyOK = true, ok
	h.readyMu.Unlock()
	if !flipped {
		return
	}
	if ok {
		h.opts.Logger.Info(ctx, "readiness: ready")
	} else {
		h.opts.Logger.Warn(ctx, "readiness: not ready", "reason", err.Error())
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(protocol.ForwardedHeader) != "" {
		// A peer already forwarded this request once; mark the context so
		// the backend raises ErrMisrouted instead of forwarding again.
		r = r.WithContext(withForwarded(r.Context()))
	}
	h.mux.ServeHTTP(w, r)
}

// forwardedCtxKey marks a request context as having crossed one
// node-to-node forward already (the single-hop guard's memory).
type forwardedCtxKey struct{}

// withForwarded marks ctx as belonging to an already-forwarded request.
func withForwarded(ctx context.Context) context.Context {
	return context.WithValue(ctx, forwardedCtxKey{}, true)
}

// isForwarded reports whether the request behind ctx was already
// forwarded once between auditor nodes.
func isForwarded(ctx context.Context) bool {
	v, _ := ctx.Value(forwardedCtxKey{}).(bool)
	return v
}

// post restricts an endpoint to the POST method.
func post(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		fn(w, r)
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// remoteError carries a peer's HTTP failure back through the node that
// forwarded to it, preserving the peer's status code so the client sees
// the same answer it would have gotten talking to the owner directly.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string { return e.msg }

// statusFor maps server errors onto HTTP statuses.
func statusFor(err error) int {
	var rerr *remoteError
	switch {
	case errors.As(err, &rerr):
		return rerr.status
	case errors.Is(err, protocol.ErrMisrouted):
		// Routing disagreement past the single-hop guard: the client's
		// cluster map is stale; refresh and retry elsewhere.
		return http.StatusMisdirectedRequest
	case errors.Is(err, ErrUnknownDrone), errors.Is(err, ErrUnknownZone),
		errors.Is(err, ErrNoPoA), errors.Is(err, ErrUnknownSession),
		errors.Is(err, ErrUnknownStream), errors.Is(err, ErrUnknownChallenge):
		return http.StatusNotFound
	case errors.Is(err, protocol.ErrBadNonce), errors.Is(err, protocol.ErrBadSignature),
		errors.Is(err, sigcrypto.ErrBadHandover), errors.Is(err, ErrBadReveal),
		errors.Is(err, ErrDisclosureMismatch):
		return http.StatusForbidden
	case errors.Is(err, protocol.ErrOverloaded):
		// Load shed by the admission controller: nothing about the
		// submission was judged, the client should retry after backoff.
		return http.StatusTooManyRequests
	case isCtxErr(err):
		// The client went away (or timed out) mid-verification; nothing
		// was wrong with the request itself.
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleJSON decodes the request, runs fn under the request context and
// encodes the response.
func handleJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(context.Context, Req) (Resp, error)) {
	var req Req
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON: " + err.Error()})
		return
	}
	resp, err := fn(r.Context(), req)
	if err != nil {
		var over *protocol.OverloadedError
		if errors.As(err, &over) {
			secs := int(over.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set(protocol.RetryAfterHeader, strconv.Itoa(secs))
		}
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// dropCtx adapts a context-less server method to handleJSON's shape, for
// endpoints whose implementation has no context-aware work.
func dropCtx[Req, Resp any](fn func(Req) (Resp, error)) func(context.Context, Req) (Resp, error) {
	return func(_ context.Context, req Req) (Resp, error) { return fn(req) }
}

// respBufPool recycles response-encode buffers: encoding into a pooled
// buffer instead of the ResponseWriter both drops the per-response
// allocation and lets us set Content-Length, which keeps keep-alive
// framing cheap (no chunked encoding for these small bodies).
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer respBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Nothing was written yet, so the failure is still reportable.
		http.Error(w, "encode response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func (h *Handler) registerDrone(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.RegisterDroneCtx)
}

func (h *Handler) registerZone(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, dropCtx(h.srv.RegisterZone))
}

func (h *Handler) registerPolygonZone(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, dropCtx(h.srv.RegisterPolygonZone))
}

func (h *Handler) zoneQuery(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.ZoneQueryCtx)
}

func (h *Handler) submitPoA(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.SubmitPoACtx)
}

func (h *Handler) submitBatchPoA(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.SubmitBatchPoACtx)
}

func (h *Handler) startSession(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, dropCtx(h.srv.StartSession))
}

func (h *Handler) submitMACPoA(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.SubmitMACPoACtx)
}

func (h *Handler) submitSealedPoA(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.SubmitSealedPoACtx)
}

func (h *Handler) submitCommitPoA(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.SubmitCommitPoACtx)
}

func (h *Handler) reveal(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.RevealCtx)
}

func (h *Handler) rotateKey(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.RotateKeyCtx)
}

func (h *Handler) streamOpen(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, dropCtx(h.srv.OpenStream))
}

func (h *Handler) streamSample(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.StreamSampleCtx)
}

func (h *Handler) streamClose(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, h.srv.CloseStreamCtx)
}

func (h *Handler) accuse(w http.ResponseWriter, r *http.Request) {
	handleJSON(w, r, func(ctx context.Context, req protocol.AccusationRequest) (protocol.SubmitPoAResponse, error) {
		return h.srv.HandleAccusationCtx(ctx, req.DroneID, req.ZoneID, req.At)
	})
}

// publicZones is the unauthenticated B4UFLY-style lookup:
// GET /v1/zones?lat=..&lon=..&radiusMeters=.. lists nearby no-fly zones so
// operators can check an area before filing a flight.
func (h *Handler) publicZones(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
	radius, err3 := strconv.ParseFloat(q.Get("radiusMeters"), 64)
	if err1 != nil || err2 != nil || err3 != nil || radius <= 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "need lat, lon and positive radiusMeters"})
		return
	}
	center := geo.LatLon{Lat: lat, Lon: lon}
	if !center.Valid() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid coordinates"})
		return
	}
	rect := geo.NewRect(center, center).Expand(radius)
	writeJSON(w, http.StatusOK, protocol.ZoneQueryResponse{Zones: h.srv.Zones().QueryRect(rect)})
}

// status reports operational counters.
func (h *Handler) status(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, h.srv.Status())
}

// auditorPubResponse carries the Auditor's PoA-encryption public key.
type auditorPubResponse struct {
	EncryptionPub string `json:"encryptionPub"`
}

func (h *Handler) auditorPub(w http.ResponseWriter, r *http.Request) {
	pub, err := sigcrypto.MarshalPublicKey(h.srv.EncryptionPub())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, auditorPubResponse{EncryptionPub: pub})
}
