package auditor

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"repro/internal/auditor/pipeline"
	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
)

// This file implements the sealed and commit disclosure doors and the
// accusation-time selective-disclosure round-trip (paper §VII-B3 and
// DESIGN.md §13): sealed submissions retain encrypted entries, commit
// submissions retain only a TEE-signed Merkle commitment, and a reveal
// opens exactly the two samples spanning an accused instant.

var (
	// ErrUnknownChallenge is returned for reveals naming a challenge the
	// server never issued (or already settled).
	ErrUnknownChallenge = errors.New("auditor: unknown challenge id")
	// ErrBadReveal is returned when a reveal fails verification: wrong key
	// count, entries that do not open, signatures or Merkle paths that do
	// not verify. The challenge stays open so the operator can retry.
	ErrBadReveal = errors.New("auditor: reveal failed verification")
)

var _ protocol.DisclosureAPI = (*Server)(nil)

// SubmitSealedPoA accepts a sealed-mode PoA: positions encrypted under
// operator-retained one-time keys, timestamps clear. Every check the
// server can run without positions runs here; the proof is retained and
// judged only under accusation.
func (s *Server) SubmitSealedPoA(req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitSealedPoACtx(context.Background(), req)
}

// SubmitSealedPoACtx is SubmitSealedPoA under a caller context.
func (s *Server) SubmitSealedPoACtx(ctx context.Context, req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.submitSealedPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
		s.countDisclosure(poa.DisclosureSealed)
		s.observeVerdict(DoorSealed, start)
	}
	return resp, err
}

func (s *Server) submitSealedPoA(ctx context.Context, req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureSealed); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if err := s.admission.Acquire(ctx, req.DroneID); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer s.admission.Release()
	sub := &pipeline.Submission{
		DroneID:    req.DroneID,
		Ciphertext: req.EncryptedPoA,
		Keys:       s.ring(rec),
		Suite:      rec.Suite,
	}
	resp, err := s.runSubmission(ctx, sub, s.seqSealed)
	if err == nil && resp.Verdict == protocol.VerdictCompliant {
		// Every runnable check passed, but positions stayed hidden:
		// compliance is undecidable until an accusation forces disclosure.
		resp.Verdict = protocol.VerdictRetained
	}
	return resp, err
}

// SubmitCommitPoA accepts a commit-mode PoA: the TEE-signed envelope
// carrying the Merkle root, clear timestamps and zone clearance
// predicates — no position anywhere in the payload. Compliance is judged
// from the signed predicates alone.
func (s *Server) SubmitCommitPoA(req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	return s.SubmitCommitPoACtx(context.Background(), req)
}

// SubmitCommitPoACtx is SubmitCommitPoA under a caller context.
func (s *Server) SubmitCommitPoACtx(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.submitCommitPoA(ctx, req)
	if err == nil {
		s.countVerdict(resp)
		s.countDisclosure(poa.DisclosureCommit)
		s.observeVerdict(DoorCommit, start)
	}
	return resp, err
}

func (s *Server) submitCommitPoA(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureCommit); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if err := s.admission.Acquire(ctx, req.DroneID); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer s.admission.Release()
	sub := &pipeline.Submission{
		DroneID:    req.DroneID,
		Ciphertext: req.EncryptedEnvelope,
		Keys:       s.ring(rec),
		Suite:      rec.Suite,
	}
	return s.runSubmission(ctx, sub, s.seqCommit)
}

// Reveal settles a selective-disclosure challenge: the operator discloses
// the two one-time keys (and, in commit mode, the two sealed entries with
// their Merkle authentication paths) for the pair spanning the accused
// instant, and the auditor decides the compliance question from exactly
// those two samples — never seeing any other position.
func (s *Server) Reveal(req protocol.RevealRequest) (protocol.SubmitPoAResponse, error) {
	return s.RevealCtx(context.Background(), req)
}

// RevealCtx is Reveal under a caller context. A settled verdict resolves
// the challenge and lands in the accusation-outcome counter; a failed
// reveal counts bad_reveal and leaves the challenge open for retry.
func (s *Server) RevealCtx(ctx context.Context, req protocol.RevealRequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	rctx, sp := s.cfg.Tracer.StartSpan(ctx, "verify.accusation")
	sp.SetAttr("drone", req.DroneID)
	sp.SetAttr("challenge", req.ChallengeID)
	resp, err := s.reveal(rctx, req)
	sp.SetError(err)
	sp.End()
	switch {
	case err == nil:
		s.countAccusation(string(resp.Verdict))
		s.observeVerdict(DoorAccuse, start)
	case errors.Is(err, ErrBadReveal):
		s.countAccusation("bad_reveal")
	}
	return resp, err
}

func (s *Server) reveal(_ context.Context, req protocol.RevealRequest) (protocol.SubmitPoAResponse, error) {
	ch, ok := s.challenges.get(req.ChallengeID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownChallenge, req.ChallengeID)
	}
	if ch.DroneID != req.DroneID {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: challenge belongs to another drone", ErrUnknownChallenge)
	}
	rec, ok := s.disclosures.bySeq(ch.DisclosureSeq)
	if !ok || rec.DroneID != req.DroneID {
		// The retained disclosure aged out of the retention window while
		// the challenge was outstanding.
		s.challenges.resolve(req.ChallengeID)
		return protocol.SubmitPoAResponse{}, ErrNoPoA
	}
	z, ok := s.zones.Get(ch.ZoneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownZone, ch.ZoneID)
	}
	drec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}

	if len(req.Keys) != 2 {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: got %d keys, want exactly 2", ErrBadReveal, len(req.Keys))
	}
	p := ch.PairIndex

	var e1, e2 privacy.SealedSample
	switch ch.Mode {
	case poa.DisclosureSealed:
		// The auditor retained the entries at submission; the reveal
		// carries keys only.
		if len(req.Entries) != 0 || len(req.Proofs) != 0 {
			return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: sealed challenge takes keys only", ErrBadReveal)
		}
		if p+1 >= len(rec.Entries) {
			return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: challenge pair out of range", ErrBadReveal)
		}
		e1, e2 = rec.Entries[p], rec.Entries[p+1]
	case poa.DisclosureCommit:
		var err error
		if e1, e2, err = s.verifyCommitReveal(rec, req, p); err != nil {
			return protocol.SubmitPoAResponse{}, err
		}
	default:
		return protocol.SubmitPoAResponse{}, fmt.Errorf("auditor: challenge has unknown mode %q", ch.Mode)
	}

	compliant, err := s.judgeReveal(drec, rec, e1, e2, req.Keys[0], req.Keys[1], z.Circle)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %v", ErrBadReveal, err)
	}
	s.challenges.resolve(req.ChallengeID)
	if compliant {
		return protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant}, nil
	}
	return protocol.SubmitPoAResponse{
		Verdict: protocol.VerdictViolation,
		Reason:  "disclosed pair cannot rule out presence in the accused zone",
	}, nil
}

// verifyCommitReveal authenticates a commit-mode reveal against the
// retained commitment: exactly two entries whose public timestamps match
// the committed pair, each hashing to the leaf of a Merkle proof that
// verifies against the signed root at the challenged index over the
// committed leaf count. The explicit Index and Leaves checks matter — a
// proof can be structurally valid under a lied leaf count, so the walk
// alone is not sufficient.
func (s *Server) verifyCommitReveal(rec retainedDisclosure, req protocol.RevealRequest, p int) (privacy.SealedSample, privacy.SealedSample, error) {
	var zero privacy.SealedSample
	bad := func(format string, args ...any) (privacy.SealedSample, privacy.SealedSample, error) {
		return zero, zero, fmt.Errorf("%w: %s", ErrBadReveal, fmt.Sprintf(format, args...))
	}
	if len(req.Entries) != 2 || len(req.Proofs) != 2 {
		return bad("commit challenge needs exactly 2 entries and 2 proofs, got %d/%d", len(req.Entries), len(req.Proofs))
	}
	if p+1 >= len(rec.Times) {
		return bad("challenge pair out of range")
	}
	if len(rec.Root) != 32 {
		return bad("retained root is %d bytes", len(rec.Root))
	}
	var root [32]byte
	copy(root[:], rec.Root)
	for i := 0; i < 2; i++ {
		entry := req.Entries[i]
		if !entry.Time.Equal(rec.Times[p+i]) {
			return bad("entry %d timestamp %v does not match committed %v", i, entry.Time, rec.Times[p+i])
		}
		proof, err := poa.DecodeMerkleProof(req.Proofs[i])
		if err != nil {
			return bad("proof %d: %v", i, err)
		}
		if proof.Index != p+i {
			return bad("proof %d authenticates leaf %d, challenge demands %d", i, proof.Index, p+i)
		}
		if proof.Leaves != len(rec.Times) {
			return bad("proof %d claims %d leaves, commitment has %d", i, proof.Leaves, len(rec.Times))
		}
		leaf := poa.LeafHash(entry.LeafBytes())
		if !bytes.Equal(leaf[:], proof.Leaf[:]) {
			return bad("entry %d does not hash to the proven leaf", i)
		}
		if err := poa.VerifyMerkleProof(root, proof); err != nil {
			return bad("proof %d: %v", i, err)
		}
	}
	return req.Entries[0], req.Entries[1], nil
}

// judgeReveal opens the disclosed pair and decides compliance. Commit
// reveals verify under the envelope's committed signing epoch; sealed
// entries carry no epoch, so the sealed path tries the drone's ring
// newest-first (a flight that straddled a rotation verifies under the
// retired key inside its acceptance window).
func (s *Server) judgeReveal(drec DroneRecord, rec retainedDisclosure, e1, e2 privacy.SealedSample, k1, k2 []byte, z geo.GeoCircle) (bool, error) {
	if rec.Mode == poa.DisclosureCommit {
		pub, err := s.ring(drec).KeyFor(rec.KeyEpoch)
		if err != nil {
			return false, err
		}
		return privacy.JudgeAccusation(e1, e2, k1, k2, pub, z, s.cfg.VMaxMS, s.cfg.Mode)
	}
	var lastErr error
	for i := len(drec.TEEKeys) - 1; i >= 0; i-- {
		pub, err := s.ring(drec).KeyFor(drec.TEEKeys[i].Epoch)
		if err != nil {
			lastErr = err
			continue
		}
		compliant, err := privacy.JudgeAccusation(e1, e2, k1, k2, pub, z, s.cfg.VMaxMS, s.cfg.Mode)
		if err != nil {
			lastErr = err
			continue
		}
		return compliant, nil
	}
	if lastErr == nil {
		lastErr = errors.New("drone has no verification keys")
	}
	return false, lastErr
}
