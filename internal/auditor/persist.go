package auditor

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
	"repro/internal/zone"
)

// snapshot is the JSON state file of a server: everything needed to
// restart the Auditor without re-registering the fleet. The private
// encryption key is included — the file must be protected like a key file
// (written 0600). Nonces and replay digests carry their first-seen times
// so a restored server keeps expiring them on the original schedule.
type snapshot struct {
	EncKey     string             `json:"encKey"`
	Drones     []droneSnapshot    `json:"drones"`
	NextDrone  int                `json:"nextDrone"`
	Zones      []zone.NFZ         `json:"zones"`
	Zones3D    []cylinderRecord   `json:"zones3d"`
	NextZone3D int                `json:"nextZone3d"`
	Retained   []retainedSnapshot `json:"retained"`
	Nonces     []nonceSnapshot    `json:"nonces"`
	PoADigests []digestSnapshot   `json:"poaDigests"`
	// Disclosures holds the retained sealed/commit submissions awaiting
	// possible accusation; absent in pre-disclosure snapshots.
	Disclosures []disclosureSnapshot `json:"disclosures,omitempty"`
}

// droneSnapshot serialises a registered drone. TEEPub remains the active
// key so legacy state files round-trip; Keys carries the full rotation
// ring and is absent in legacy snapshots (restore then treats TEEPub as
// the sole epoch-0 key).
type droneSnapshot struct {
	ID          string           `json:"id"`
	OperatorPub string           `json:"operatorPub"`
	TEEPub      string           `json:"teePub"`
	Suite       string           `json:"suite,omitempty"`
	Disclosure  string           `json:"disclosure,omitempty"`
	Keys        []teeKeySnapshot `json:"keys,omitempty"`
}

// teeKeySnapshot serialises one entry of the T+ key ring.
type teeKeySnapshot struct {
	Pub       string    `json:"pub"`
	Epoch     int       `json:"epoch"`
	RetiredAt time.Time `json:"retiredAt"`
}

// retainedSnapshot serialises one retained alibi. Seq is absent from
// legacy (pre-WAL) state files; zero means "always restore".
type retainedSnapshot struct {
	DroneID    string       `json:"droneId"`
	Samples    []poa.Sample `json:"samples"`
	SubmitTime time.Time    `json:"submitTime"`
	Seq        uint64       `json:"seq,omitempty"`
}

// nonceSnapshot serialises one zone-query nonce with its first-seen time.
type nonceSnapshot struct {
	Nonce string    `json:"nonce"`
	Seen  time.Time `json:"seen"`
}

// digestSnapshot serialises one replay-detection digest with its claim
// time.
type digestSnapshot struct {
	Digest string    `json:"digest"`
	Seen   time.Time `json:"seen"`
}

// disclosureSnapshot serialises one retained sealed/commit submission.
// Field order and types mirror retainedDisclosure exactly, so the two
// convert directly (the same pattern as retainedSnapshot/retainedPoA).
type disclosureSnapshot struct {
	DroneID    string                 `json:"droneId"`
	Mode       string                 `json:"mode"`
	Times      []time.Time            `json:"times"`
	Root       []byte                 `json:"root,omitempty"`
	KeyEpoch   int                    `json:"keyEpoch,omitempty"`
	Entries    []privacy.SealedSample `json:"entries,omitempty"`
	SubmitTime time.Time              `json:"submitTime"`
	Seq        uint64                 `json:"seq,omitempty"`
}

// buildSnapshot captures the server's durable state. Each store is read
// under its own lock; no store lock is held across another store's, so
// the capture can run concurrently with submissions (each mutation is
// either fully captured here or replayed from the WAL — see wal.go).
func (s *Server) buildSnapshot() (snapshot, error) {
	var snap snapshot
	drones := s.drones.all()
	s.drones.mu.RLock()
	snap.NextDrone = s.drones.next
	s.drones.mu.RUnlock()
	for _, rec := range drones {
		opPub, err := sigcrypto.MarshalPublicKey(rec.OperatorPub)
		if err != nil {
			return snapshot{}, fmt.Errorf("save state: %w", err)
		}
		ds := droneSnapshot{ID: rec.ID, OperatorPub: opPub, Suite: rec.Suite, Disclosure: rec.Disclosure}
		for _, k := range rec.TEEKeys {
			pub, err := k.Pub.Marshal()
			if err != nil {
				return snapshot{}, fmt.Errorf("save state: %w", err)
			}
			ds.Keys = append(ds.Keys, teeKeySnapshot{Pub: pub, Epoch: k.Epoch, RetiredAt: k.RetiredAt})
		}
		if active := rec.ActiveKey(); active.Pub != nil {
			if ds.TEEPub, err = active.Pub.Marshal(); err != nil {
				return snapshot{}, fmt.Errorf("save state: %w", err)
			}
		}
		snap.Drones = append(snap.Drones, ds)
	}
	for _, r := range s.retained.all() {
		snap.Retained = append(snap.Retained, retainedSnapshot(r))
	}
	for _, r := range s.disclosures.all() {
		snap.Disclosures = append(snap.Disclosures, disclosureSnapshot(r))
	}
	snap.Nonces = s.nonces.all()
	for _, e := range s.seen.all() {
		snap.PoADigests = append(snap.PoADigests, digestSnapshot{
			Digest: hex.EncodeToString(e.digest[:]),
			Seen:   e.seen,
		})
	}
	snap.Zones3D = s.zones3D.all()
	s.zones3D.mu.RLock()
	snap.NextZone3D = s.zones3D.next
	s.zones3D.mu.RUnlock()

	snap.Zones = s.zones.All()
	encKey, err := sigcrypto.MarshalPrivateKey(s.encKey)
	if err != nil {
		return snapshot{}, fmt.Errorf("save state: %w", err)
	}
	snap.EncKey = encKey
	return snap, nil
}

// snapshotBytes serialises the current state; it is the capture function
// handed to storage.Store.Snapshot.
func (s *Server) snapshotBytes() ([]byte, error) {
	snap, err := s.buildSnapshot()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("save state: %w", err)
	}
	return data, nil
}

// SaveState writes the server's full state to path (mode 0600: it holds
// the private encryption key). Sessions and open streams are deliberately
// ephemeral and not persisted. The replace is crash-safe: the temp file
// and the directory entry are both fsynced before SaveState returns, so a
// power cut leaves either the old state or the new — never a torn or
// unlinked file.
func (s *Server) SaveState(path string) error {
	data, err := s.snapshotBytes()
	if err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(path, data, 0o600, true); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	return nil
}

// Sweeper is the retention housekeeping loop: it periodically purges
// expired PoAs from the retention store and (optionally) checkpoints the
// server state file. Expiry itself is computed against the server's
// injectable clock, so tests drive the Ticks channel and a fake clock
// instead of sleeping.
type Sweeper struct {
	Server *Server
	// StatePath, when non-empty, is checkpointed after every sweep.
	StatePath string
	// Interval is the production tick period (ignored when Ticks set).
	Interval time.Duration
	// Ticks overrides the internal time.Ticker; tests send on it to
	// trigger sweeps deterministically.
	Ticks <-chan time.Time
	// Logf receives housekeeping log lines (nil = silent).
	Logf func(format string, args ...any)
	// AfterSweep, when set, is called with the purge count after every
	// sweep completes (including zero-purge sweeps).
	AfterSweep func(purged int)
}

// RunOnce performs a single sweep: purge, checkpoint, notify.
func (sw *Sweeper) RunOnce() int { return sw.RunOnceCtx(context.Background()) }

// RunOnceCtx is RunOnce under a caller context: the purge's WAL append
// runs under it, so tearing down the sweeper cancels in-flight
// housekeeping I/O instead of orphaning it on a background context.
func (sw *Sweeper) RunOnceCtx(ctx context.Context) int {
	purged := sw.Server.PurgeExpiredCtx(ctx)
	if purged > 0 && sw.Logf != nil {
		sw.Logf("purged %d expired PoAs", purged)
	}
	if sw.StatePath != "" {
		if err := sw.Server.SaveState(sw.StatePath); err != nil && sw.Logf != nil {
			// The serving path must not die because the disk hiccuped.
			sw.Logf("state checkpoint failed: %v", err)
		}
	}
	if sw.AfterSweep != nil {
		sw.AfterSweep(purged)
	}
	return purged
}

// Run sweeps on every tick until stop closes or ctx is cancelled.
func (sw *Sweeper) Run(ctx context.Context, stop <-chan struct{}) {
	ticks := sw.Ticks
	if ticks == nil {
		t := time.NewTicker(sw.Interval)
		defer t.Stop()
		ticks = t.C
	}
	for {
		select {
		case <-ticks:
			sw.RunOnceCtx(ctx)
		case <-stop:
			return
		case <-ctx.Done():
			return
		}
	}
}

// LoadServer restores a server from a state file written by SaveState.
// The config's key size is ignored (the persisted key wins).
func LoadServer(cfg Config, path string) (*Server, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load state: %w", err)
	}
	return loadServerBytes(cfg, data)
}

// loadServerBytes restores a server from serialised snapshot bytes —
// whether they came from a legacy monolithic state file or the storage
// engine's latest compacted snapshot. On any decode or restore error the
// half-built server is discarded and a clean error returned; a corrupt
// snapshot never yields a partially restored server.
func loadServerBytes(cfg Config, data []byte) (*Server, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("load state: %w", err)
	}

	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	key, err := sigcrypto.UnmarshalPrivateKey(snap.EncKey)
	if err != nil {
		return nil, fmt.Errorf("load state: enc key: %w", err)
	}
	srv.encKey = key

	for _, d := range snap.Drones {
		rec, err := decodeDroneSnapshot(d)
		if err != nil {
			return nil, fmt.Errorf("load state: %w", err)
		}
		srv.drones.restore(rec, snap.NextDrone)
	}

	if err := srv.zones.Import(snap.Zones); err != nil {
		return nil, fmt.Errorf("load state: %w", err)
	}
	for _, z := range snap.Zones3D {
		srv.zones3D.restore(z, snap.NextZone3D)
	}

	for _, r := range snap.Retained {
		srv.retained.restore(retainedPoA(r))
	}
	for _, r := range snap.Disclosures {
		srv.disclosures.restore(retainedDisclosure(r))
	}
	// Re-seed the retention gauge so a scrape right after a restart
	// reflects the restored store instead of reporting no data until
	// the next submission or sweep.
	cfg.Metrics.Gauge(MetricRetainedPoAs).Set(float64(srv.retained.len()))
	for _, n := range snap.Nonces {
		srv.nonces.restore(n)
	}
	for _, d := range snap.PoADigests {
		raw, err := hex.DecodeString(d.Digest)
		if err != nil || len(raw) != 32 {
			return nil, fmt.Errorf("load state: bad PoA digest %q", d.Digest)
		}
		var dg [32]byte
		copy(dg[:], raw)
		srv.seen.restore(dg, d.Seen)
	}
	return srv, nil
}

// decodeDroneSnapshot rebuilds one registered drone from its snapshot
// (shared by state-file restore and cluster shard handoff).
func decodeDroneSnapshot(d droneSnapshot) (DroneRecord, error) {
	opPub, err := sigcrypto.UnmarshalPublicKey(d.OperatorPub)
	if err != nil {
		return DroneRecord{}, fmt.Errorf("drone %s: %w", d.ID, err)
	}
	var keys []TEEKey
	for _, k := range d.Keys {
		pub, err := sigcrypto.ParsePublicKey(k.Pub)
		if err != nil {
			return DroneRecord{}, fmt.Errorf("drone %s: %w", d.ID, err)
		}
		keys = append(keys, TEEKey{Pub: pub, Epoch: k.Epoch, RetiredAt: k.RetiredAt})
	}
	if len(keys) == 0 {
		// Legacy snapshot: TEEPub is the sole epoch-0 key.
		pub, err := sigcrypto.ParsePublicKey(d.TEEPub)
		if err != nil {
			return DroneRecord{}, fmt.Errorf("drone %s: %w", d.ID, err)
		}
		keys = []TEEKey{{Pub: pub}}
	}
	suite := d.Suite
	if suite == "" {
		suite = keys[len(keys)-1].Pub.SuiteID()
	}
	mode, err := poa.NormalizeDisclosure(d.Disclosure)
	if err != nil {
		return DroneRecord{}, fmt.Errorf("drone %s: %w", d.ID, err)
	}
	return DroneRecord{ID: d.ID, OperatorPub: opPub, Suite: suite, Disclosure: mode, TEEKeys: keys}, nil
}

// OpenServer recovers a server from a storage engine and attaches it, so
// every subsequent mutation is logged durably. Recovery is snapshot +
// WAL-tail replay; see internal/storage for the on-disk contract.
//
// legacyState, when non-empty, names a pre-WAL monolithic state file
// (SaveState's output). It is the migration path: if the store is empty
// but the legacy file exists, the server loads from it and immediately
// compacts it into the store. The legacy file is left in place untouched.
//
// A fresh store (no snapshot, no WAL) gets an initial snapshot before
// OpenServer returns: the just-generated encryption key must be durable
// before any drone encrypts a PoA to it.
func OpenServer(cfg Config, st storage.Store, legacyState string) (*Server, error) {
	snapBytes, tail, err := st.Recover()
	if err != nil {
		return nil, fmt.Errorf("open server: %w", err)
	}
	if snapBytes == nil && len(tail) > 0 {
		return nil, errors.New("open server: state dir has WAL records but no snapshot")
	}

	var srv *Server
	switch {
	case snapBytes != nil:
		if srv, err = loadServerBytes(cfg, snapBytes); err != nil {
			return nil, fmt.Errorf("open server: %w", err)
		}
	case legacyState != "":
		if _, statErr := os.Stat(legacyState); statErr == nil {
			if srv, err = LoadServer(cfg, legacyState); err != nil {
				return nil, fmt.Errorf("open server: migrate %s: %w", legacyState, err)
			}
		}
	}
	if srv == nil {
		if srv, err = NewServer(cfg); err != nil {
			return nil, err
		}
	}

	for i, rec := range tail {
		if err := srv.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("open server: replay WAL record %d: %w", i, err)
		}
	}
	if len(tail) > 0 {
		cfg.Metrics.Gauge(storage.MetricRecoveryReplayedRecords).Set(float64(len(tail)))
		cfg.Metrics.Gauge(MetricRetainedPoAs).Set(float64(srv.retained.len()))
	}

	srv.attachStore(st)
	if snapBytes == nil {
		if err := srv.Checkpoint(); err != nil {
			return nil, fmt.Errorf("open server: initial snapshot: %w", err)
		}
	}
	return srv, nil
}
