package auditor

// Cluster observability end-to-end: fleet-merged metrics under
// concurrent scrapes, the fleet status snapshot, and the trace-stitching
// contract — one mis-routed wire submission produces ONE contiguous
// trace spanning both nodes.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// scrapeFleet GETs one node's /cluster/metrics and parses the merged
// exposition.
func scrapeFleet(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + protocol.PathClusterMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", protocol.PathClusterMetrics, resp.StatusCode)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("fleet exposition does not parse: %v", err)
	}
	return exp
}

// TestClusterFleetMetrics: after traffic through both doors, any node's
// /cluster/metrics serves the fleet-merged verdict latency histogram per
// door, with per-node series under a node label, and concurrent scrapes
// of both nodes race-cleanly.
func TestClusterFleetMetrics(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	rng := rand.New(rand.NewSource(11))

	// Enough drones that both nodes own at least one, so every node has
	// verdict observations of its own.
	for i := 0; i < 6; i++ {
		droneID, keys := tc.registerDrone(t, 0, rng)
		trace := signedTrace(t, keys, urbana, 90, 10, 3, time.Second)
		status, sr := tc.submitVia(t, i%2, protocol.SubmitPoARequest{
			DroneID:      droneID,
			EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
		})
		if status != http.StatusOK || sr.Verdict != protocol.VerdictCompliant {
			t.Fatalf("submit %d: HTTP %d verdict %q", i, status, sr.Verdict)
		}
	}

	exp := scrapeFleet(t, tc.url(0))
	// The aggregate verdict histogram exists per door and is the exact
	// bucket sum of the per-node series.
	agg := exp.FindHistogram(MetricVerdictLatencySeconds, "door", DoorSubmit)
	if agg == nil {
		t.Fatalf("fleet exposition lacks %s{door=%q}", MetricVerdictLatencySeconds, DoorSubmit)
	}
	if agg.Count != 6 {
		t.Errorf("aggregate verdict count = %d, want 6", agg.Count)
	}
	var perNode uint64
	for _, id := range []string{"node-0", "node-1"} {
		h := exp.FindHistogram(MetricVerdictLatencySeconds, "door", DoorSubmit, "node", id)
		if h == nil {
			t.Fatalf("fleet exposition lacks per-node verdict histogram for %s", id)
		}
		perNode += h.Count
	}
	if perNode != agg.Count {
		t.Errorf("per-node counts sum to %d, aggregate says %d", perNode, agg.Count)
	}
	// Quantiles are answerable from the merged buckets (the p50/p99
	// dashboards read): with observations present they must be finite.
	if p99 := agg.Quantile(0.99); p99 < 0 {
		t.Errorf("p99 from merged buckets = %v", p99)
	}

	// Concurrent scrapes of both nodes (each scrape itself scrapes the
	// peer) must be race-clean and always well-formed.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		for node := 0; node < 2; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				for k := 0; k < 3; k++ {
					e := scrapeFleet(t, tc.url(node))
					if e.FindHistogram(MetricVerdictLatencySeconds, "door", DoorSubmit) == nil {
						t.Errorf("concurrent scrape of node %d lost the verdict histogram", node)
						return
					}
				}
			}(node)
		}
	}
	wg.Wait()
}

// TestClusterStatusEndpoint: /cluster/status on any node aggregates
// every member's fragment — shard counts, ring version, SLO summary —
// and an unreachable peer degrades to an Err entry instead of failing
// the snapshot.
func TestClusterStatusEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, 2, nil)
	rng := rand.New(rand.NewSource(12))
	droneID, keys := tc.registerDrone(t, 0, rng)
	trace := signedTrace(t, keys, urbana, 90, 10, 3, time.Second)
	status, _ := tc.submitVia(t, tc.ownerIndex(t, droneID), protocol.SubmitPoARequest{
		DroneID:      droneID,
		EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
	})
	if status != http.StatusOK {
		t.Fatalf("submit: HTTP %d", status)
	}

	fetch := func(node int) protocol.ClusterStatusResponse {
		resp, err := http.Get(tc.url(node) + protocol.PathClusterStatus)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", protocol.PathClusterStatus, resp.StatusCode)
		}
		var st protocol.ClusterStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := fetch(0)
	if st.FetchedFrom != "node-0" || len(st.Nodes) != 2 {
		t.Fatalf("snapshot from %q with %d nodes, want node-0 with 2", st.FetchedFrom, len(st.Nodes))
	}
	ownerID := tc.nodes[tc.ownerIndex(t, droneID)].ID
	for _, n := range st.Nodes {
		if n.Err != "" {
			t.Fatalf("node %s unreachable: %s", n.ID, n.Err)
		}
		if n.State != "alive" {
			t.Errorf("node %s state %q, want alive", n.ID, n.State)
		}
		if len(n.Shards) != 2 {
			t.Errorf("node %s reports %d shards, want 2", n.ID, len(n.Shards))
		}
		if n.RingVersion == 0 {
			t.Errorf("node %s reports ring version 0", n.ID)
		}
		var drones int
		for _, sh := range n.Shards {
			drones += sh.Drones
		}
		if n.ID == ownerID {
			if drones != 1 {
				t.Errorf("owner %s reports %d drones, want 1", n.ID, drones)
			}
			if len(n.SLO) == 0 {
				t.Errorf("owner %s has no SLO summary", n.ID)
			} else {
				var s obs.SLOSummary
				if err := json.Unmarshal(n.SLO, &s); err != nil {
					t.Errorf("owner SLO summary does not parse: %v", err)
				} else if s.Doors[DoorSubmit].Count == 0 {
					t.Errorf("owner SLO summary lost the submit observation: %+v", s)
				}
			}
		}
	}

	// A dead peer degrades the snapshot, never kills it.
	tc.servers[1].Close()
	st = fetch(0)
	var sawErr bool
	for _, n := range st.Nodes {
		if n.ID == "node-1" && n.Err != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("dead peer not reported with Err in the degraded snapshot")
	}
}

// wireTraceCluster is a two-node cluster with the binary wire transport
// listening on both nodes, always-sample tracers sinking into one shared
// collector, and per-node storage engines (so wal.append spans exist).
type wireTraceCluster struct {
	*testCluster
	collector *otrace.RingCollector
}

func newWireTraceCluster(t *testing.T) *wireTraceCluster {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	encKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	collector := otrace.NewRingCollector(4096)
	tc := &testCluster{encKey: encKey}
	wtc := &wireTraceCluster{testCluster: tc, collector: collector}

	listeners := make([]net.Listener, 2)
	wireLis := make([]net.Listener, 2)
	for i := 0; i < 2; i++ {
		if listeners[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if wireLis[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, cluster.Node{
			ID:       fmt.Sprintf("node-%d", i),
			Addr:     listeners[i].Addr().String(),
			WireAddr: wireLis[i].Addr().String(),
		})
	}
	for i := 0; i < 2; i++ {
		r, err := NewRouter(RouterConfig{
			Self:     tc.nodes[i],
			Seeds:    tc.nodes,
			Shards:   2,
			StateDir: t.TempDir(),
			Server: Config{
				Metrics:       obs.NewRegistry(nil),
				Tracer:        otrace.New(otrace.Options{Sample: 1, Sink: collector}),
				EncryptionKey: encKey,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.routers = append(tc.routers, r)
		hs := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: NewHandler(r)},
		}
		hs.Start()
		tc.servers = append(tc.servers, hs)
		ws := NewWireServer(r, WireOptions{})
		go func() { _ = ws.Serve(wireLis[i]) }()
		t.Cleanup(func() { _ = ws.Close() })
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			tc.servers[i].Close()
			tc.routers[i].Close()
		}
	})
	return wtc
}

// TestClusterWireForwardSingleTrace is the trace-stitching contract: a
// submission entering at the non-owner, forwarded over the binary wire
// transport, yields ONE trace whose spans cover the routing node (HTTP
// door, cluster.forward) and the owner (wire.forward, verify.*,
// wal.append) — every span reachable from the root through recorded
// parents.
func TestClusterWireForwardSingleTrace(t *testing.T) {
	wtc := newWireTraceCluster(t)
	tc := wtc.testCluster
	rng := rand.New(rand.NewSource(22))

	droneID, keys := tc.registerDrone(t, 0, rng)
	nonOwner := 1 - tc.ownerIndex(t, droneID)

	trace := signedTrace(t, keys, urbana, 90, 10, 3, time.Second)
	status, sr := tc.submitVia(t, nonOwner, protocol.SubmitPoARequest{
		DroneID:      droneID,
		EncryptedPoA: encryptPoA(t, tc.routers[0].EncryptionPub(), trace),
	})
	if status != http.StatusOK || sr.Verdict != protocol.VerdictCompliant {
		t.Fatalf("forwarded submit: HTTP %d verdict %q (%s)", status, sr.Verdict, sr.Reason)
	}

	// Locate the forward's trace via its cluster.forward span, then pull
	// every span that shares the trace ID.
	var fwdSpan *otrace.SpanRecord
	for _, r := range wtc.collector.Snapshot() {
		if r.Name == "cluster.forward" {
			r := r
			fwdSpan = &r
		}
	}
	if fwdSpan == nil {
		t.Fatal("no cluster.forward span recorded")
	}
	spans := wtc.collector.Trace(fwdSpan.TraceID)

	byName := make(map[string][]otrace.SpanRecord)
	byID := make(map[string]otrace.SpanRecord)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.SpanID] = s
	}
	for _, want := range []string{
		"auditor " + protocol.PathSubmitPoA, // routing node's HTTP door
		"cluster.forward",                   // routing decision
		"wire.forward",                      // owner's wire receive
		"wal.append",                        // owner's durable commit
	} {
		if len(byName[want]) == 0 {
			t.Errorf("trace %s lacks a %q span; has %v", fwdSpan.TraceID, want, names(spans))
		}
	}
	var sawVerify bool
	for name := range byName {
		if strings.HasPrefix(name, "verify.") {
			sawVerify = true
		}
	}
	if !sawVerify {
		t.Errorf("trace %s has no verify.* stage spans; has %v", fwdSpan.TraceID, names(spans))
	}
	// The forward went over the wire, not the HTTP fallback.
	wantAttr(t, *fwdSpan, "transport", "wire")
	wantAttr(t, *fwdSpan, "drone", droneID)

	// Contiguity: every non-root span's parent is a recorded span of the
	// same trace. (wire.forward's parent is the remote cluster.forward,
	// recorded on the routing node — same collector here.)
	roots := 0
	for _, s := range spans {
		if s.Parent == "" {
			roots++
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %q has unrecorded parent %s — trace is torn", s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want exactly 1: %v", roots, names(spans))
	}
}

// names lists span names for failure messages.
func names(spans []otrace.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// wantAttr asserts one span attribute.
func wantAttr(t *testing.T, s otrace.SpanRecord, key, want string) {
	t.Helper()
	for _, a := range s.Attrs {
		if a.K == key {
			if a.V != want {
				t.Errorf("span %q attr %s = %q, want %q", s.Name, key, a.V, want)
			}
			return
		}
	}
	t.Errorf("span %q lacks attr %s", s.Name, key)
}
