package auditor

// Fleet federation: any cluster node can answer for the whole fleet.
// GET /cluster/metrics scrapes every peer's /metrics, merges the series
// (exact bucket addition — every histogram uses a fixed layout) and
// serves the aggregate plus per-node series under a node label.
// GET /cluster/status aggregates each node's JSON status fragment.
// A peer that cannot be scraped is skipped and counted, never fatal:
// a degraded fleet view from a live node beats no view at all.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// MetricClusterScrapeErrorsTotal counts peer scrape failures during
// fleet metric/status aggregation, labelled peer=<node id>.
const MetricClusterScrapeErrorsTotal = "alidrone_cluster_scrape_errors_total"

// nodeStatus builds this node's own status fragment: its shards, ring
// view, handoff progress and SLO summary.
func (r *Router) nodeStatus() protocol.ClusterNodeStatus {
	st := protocol.ClusterNodeStatus{
		ID:              r.cfg.Self.ID,
		Addr:            r.cfg.Self.Addr,
		State:           cluster.StateAlive.String(),
		RingVersion:     r.Map().Version,
		WireConnections: int(r.wireConns.Load()),
	}
	for _, sh := range r.shards {
		s := sh.Status()
		st.Shards = append(st.Shards, protocol.ClusterShardStatus{
			Shard:        sh.cfg.ShardTag,
			Drones:       s.Drones,
			RetainedPoAs: s.RetainedPoAs,
			OpenStreams:  s.OpenStreams,
			Sessions:     s.Sessions,
			WALSince:     sh.WALSince(),
		})
	}
	r.handoffMu.Lock()
	if len(r.handoffsSeen) > 0 {
		st.HandoffsSeen = make(map[string]uint64, len(r.handoffsSeen))
		for from, v := range r.handoffsSeen {
			st.HandoffsSeen[from] = v
		}
	}
	r.handoffMu.Unlock()
	if r.slo != nil {
		if js, err := json.Marshal(r.slo.Summary()); err == nil {
			st.SLO = js
		}
	}
	return st
}

// clusterStatus aggregates the fleet status: this node's own fragment
// plus every ring member's, fetched concurrently. An unreachable peer
// appears with its Err set and the membership state this node observes.
func (r *Router) clusterStatus(ctx context.Context) protocol.ClusterStatusResponse {
	m := r.Map()
	resp := protocol.ClusterStatusResponse{
		FetchedFrom: r.cfg.Self.ID,
		RingVersion: m.Version,
	}
	nodes := make([]protocol.ClusterNodeStatus, len(m.Nodes))
	var wg sync.WaitGroup
	for i, n := range m.Nodes {
		if n.ID == r.cfg.Self.ID {
			nodes[i] = r.nodeStatus()
			continue
		}
		wg.Add(1)
		go func(i int, n cluster.Node) {
			defer wg.Done()
			st, err := r.fetchNodeStatus(ctx, n)
			if err != nil {
				r.countScrapeError(n.ID)
				st = protocol.ClusterNodeStatus{ID: n.ID, Addr: n.Addr, Err: err.Error()}
			}
			// The aggregator's membership view, not the peer's self-report
			// (a node always reports itself alive).
			st.State = r.membership.State(n.ID).String()
			nodes[i] = st
		}(i, n)
	}
	wg.Wait()
	resp.Nodes = nodes
	return resp
}

// fetchNodeStatus retrieves one peer's status fragment.
func (r *Router) fetchNodeStatus(ctx context.Context, n cluster.Node) (protocol.ClusterNodeStatus, error) {
	body, err := r.clusterGet(ctx, n.Addr, protocol.PathClusterNodeStatus)
	if err != nil {
		return protocol.ClusterNodeStatus{}, err
	}
	var st protocol.ClusterNodeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return protocol.ClusterNodeStatus{}, fmt.Errorf("node status from %s: %w", n.ID, err)
	}
	return st, nil
}

// fleetMetrics writes the fleet-merged exposition: this node's registry
// rendered directly (no HTTP self-call, so aggregation can never
// recurse) plus every peer's /metrics scrape, all merged through
// obs.MergeFleet. Unreachable peers are skipped and counted.
func (r *Router) fleetMetrics(ctx context.Context, w io.Writer) error {
	reg := r.cfg.Server.Metrics
	if reg == nil {
		return fmt.Errorf("metrics disabled on %s", r.cfg.Self.ID)
	}
	exps := make(map[string]*obs.Exposition)
	var mu sync.Mutex

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		return err
	}
	self, err := obs.ParseExposition(&buf)
	if err != nil {
		return fmt.Errorf("own exposition: %w", err)
	}
	exps[r.cfg.Self.ID] = self

	var wg sync.WaitGroup
	for _, n := range r.Map().Nodes {
		if n.ID == r.cfg.Self.ID {
			continue
		}
		wg.Add(1)
		go func(n cluster.Node) {
			defer wg.Done()
			body, err := r.clusterGet(ctx, n.Addr, PathMetrics)
			if err == nil {
				var exp *obs.Exposition
				if exp, err = obs.ParseExposition(bytes.NewReader(body)); err == nil {
					mu.Lock()
					exps[n.ID] = exp
					mu.Unlock()
					return
				}
			}
			r.countScrapeError(n.ID)
			r.log.Warn(ctx, "fleet metrics scrape failed", "peer", n.ID, "err", err.Error())
		}(n)
	}
	wg.Wait()

	return obs.MergeFleet(exps).WriteText(w)
}

// clusterGet performs one node-to-node GET and slurps the body.
func (r *Router) clusterGet(ctx context.Context, addr, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("%s %s: %s", path, addr, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// countScrapeError bumps the per-peer scrape failure counter.
func (r *Router) countScrapeError(peer string) {
	if reg := r.cfg.Server.Metrics; reg != nil {
		reg.Counter(obs.L(MetricClusterScrapeErrorsTotal, "peer", peer)).Inc()
	}
}
