package auditor

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/auditor/pipeline"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// This file declares the verification pipeline once: every check the
// AliDrone Server performs is a pipeline.Stage registered here, and the
// batch submission path, the alternative envelopes, the real-time stream
// path and the accusation re-check are just different Sequence calls over
// the same registry (see DESIGN.md "Pipeline architecture"). Adding a
// check means adding a stage and naming it in the sequences that want it
// — not editing three hand-rolled copies of the pipeline.

// Registry keys. Distinct keys may share a metric label: all three
// signature envelopes report as stage="signature".
const (
	keyDecrypt     = "decrypt"
	keyDecodePoA   = "decode.poa"
	keyDecodeBatch = "decode.batch"
	keyReplayClaim = "replay.claim"
	keySigSamples  = "signature.samples"
	keySigBatch    = "signature.batch"
	keySigMAC      = "signature.mac"
	keyMinSamples  = "minsamples"
	keyChronology  = "chronology"
	keySpeed       = "speed"
	keySufficiency = "sufficiency"
	keyZones3D     = "zones3d"
	keyRetain      = "retain"
	keyCommit      = "commit"

	// Disclosure-mode stages (sealed and commit submissions).
	keyDecodeSealed     = "decode.sealed"
	keyDecodeCommit     = "decode.commit"
	keySigRoot          = "signature.root"
	keySealedStructure  = "structure.sealed"
	keyCommitStructure  = "structure.commit"
	keyPredicates       = "predicates"
	keyRetainDisclosure = "retain.disclosure"
)

// buildPipeline constructs the stage registry, the runner and the
// per-entry-point sequences. Called once from NewServer.
func (s *Server) buildPipeline() {
	r := pipeline.NewRegistry()

	r.Add(keyDecrypt, pipeline.Stage{Name: StageDecrypt, Run: s.stageDecrypt})
	r.Add(keyDecodePoA, pipeline.Stage{Name: StageDecode, Run: s.stageDecodePoA})
	r.Add(keyDecodeBatch, pipeline.Stage{Name: StageDecode, Run: s.stageDecodeBatch})
	r.Add(keyReplayClaim, pipeline.Stage{Name: StageReplay, Run: s.stageReplayClaim})
	r.Add(keySigSamples, pipeline.Stage{Name: StageSignature, Run: s.stageSignatureSamples})
	r.Add(keySigBatch, pipeline.Stage{Name: StageSignature, Run: s.stageSignatureBatch})
	r.Add(keySigMAC, pipeline.Stage{Name: StageSignature, Run: s.stageSignatureMAC})
	r.Add(keyMinSamples, pipeline.Stage{Name: StageMinSamples, Run: stageMinSamples})
	r.Add(keyChronology, pipeline.Stage{Name: StageChronology, Run: stageChronology})
	r.Add(keySpeed, pipeline.Stage{Name: StageSpeed, Run: s.stageSpeed})
	r.Add(keySufficiency, pipeline.Stage{Name: StageSufficiency, Run: s.stageSufficiency})
	r.Add(keyZones3D, pipeline.Stage{Name: StageZones3D, Run: s.stageZones3D})
	r.Add(keyRetain, pipeline.Stage{Name: StageRetain, Run: s.stageRetain})
	r.Add(keyCommit, pipeline.Stage{Name: StageCommit, Run: s.stageCommitDigest})
	r.Add(keyDecodeSealed, pipeline.Stage{Name: StageDecode, Run: stageDecodeSealed})
	r.Add(keyDecodeCommit, pipeline.Stage{Name: StageDecode, Run: stageDecodeCommit})
	r.Add(keySigRoot, pipeline.Stage{Name: StageSignature, Run: s.stageSignatureRoot})
	r.Add(keySealedStructure, pipeline.Stage{Name: StageStructure, Run: stageSealedStructure})
	r.Add(keyCommitStructure, pipeline.Stage{Name: StageStructure, Run: s.stageCommitStructure})
	r.Add(keyPredicates, pipeline.Stage{Name: StagePredicates, Run: s.stagePredicates})
	r.Add(keyRetainDisclosure, pipeline.Stage{Name: StageRetain, Run: s.stageRetainDisclosure})

	s.registry = r
	s.runner = &pipeline.Runner{
		Metrics:            s.cfg.Metrics,
		Tracer:             s.cfg.Tracer,
		MetricStageSeconds: MetricVerifyStageSeconds,
		MetricStageTotal:   MetricVerifyStageTotal,
	}

	// The alibi core shared by every envelope: the paper's §IV-C pipeline
	// (chronology → speed feasibility → sufficiency) plus the §VII-B1 3-D
	// extension and retention for later accusations.
	alibi := []string{keyMinSamples, keyChronology, keySpeed, keySufficiency, keyZones3D, keyRetain}

	s.seqSubmit = r.Sequence(append([]string{keyDecrypt, keyDecodePoA, keyReplayClaim, keySigSamples}, append(alibi, keyCommit)...)...)
	s.seqBatch = r.Sequence(append([]string{keyDecrypt, keyDecodeBatch, keySigBatch}, alibi...)...)
	s.seqMAC = r.Sequence(append([]string{keyDecrypt, keyDecodePoA, keySigMAC}, alibi...)...)
	s.seqStreamSig = r.Sequence(keySigSamples)
	s.seqStreamPair = r.Sequence(keySigSamples, keyChronology, keySpeed, keySufficiency)
	s.seqStreamClose = r.Sequence(keyZones3D, keyRetain)
	s.seqAccuse = r.Sequence(keySufficiency)

	// Disclosure-mode doors share the registry/admission machinery: sealed
	// submissions retain without judging (positions are hidden; every check
	// the server can run without them still runs), commit submissions are
	// judged from the signed predicates alone.
	s.seqSealed = r.Sequence(keyDecrypt, keyDecodeSealed, keyReplayClaim, keySealedStructure,
		keyRetainDisclosure, keyCommit)
	s.seqCommit = r.Sequence(keyDecrypt, keyDecodeCommit, keyReplayClaim, keySigRoot,
		keyCommitStructure, keyPredicates, keyRetainDisclosure, keyCommit)
}

// stageDecrypt opens the encrypted envelope with the Auditor's private
// key. Undecryptable bytes are a violation: the submitter did not encrypt
// to the Auditor, so the content is unverifiable by construction.
func (s *Server) stageDecrypt(_ context.Context, sub *pipeline.Submission) error {
	plaintext, err := sigcrypto.Decrypt(s.encKey, sub.Ciphertext)
	if err != nil {
		return pipeline.Violationf("undecryptable PoA: %v", err)
	}
	sub.Plaintext = plaintext
	return nil
}

// stageDecodePoA parses the per-sample-signed envelope (regular and MAC
// modes) and extracts the bare alibi trace.
func (s *Server) stageDecodePoA(_ context.Context, sub *pipeline.Submission) error {
	var p poa.PoA
	if err := json.Unmarshal(sub.Plaintext, &p); err != nil {
		return pipeline.Violationf("malformed PoA: %v", err)
	}
	sub.PoA = p
	sub.Samples = p.Alibi()
	return nil
}

// stageDecodeBatch parses the batch envelope (§VII-A1b): bare samples
// plus one signature over the canonical batch encoding.
func (s *Server) stageDecodeBatch(_ context.Context, sub *pipeline.Submission) error {
	var batch poa.BatchPoA
	if err := json.Unmarshal(sub.Plaintext, &batch); err != nil {
		return pipeline.Violationf("malformed batch PoA: %v", err)
	}
	sub.Samples = batch.Samples
	sub.BatchSig = batch.Sig
	sub.BatchEpoch = batch.KeyEpoch
	return nil
}

// stageReplayClaim atomically claims the plaintext digest before
// verification — claim-check-set as one step — so two concurrent
// submissions of the same bytes cannot both pass the check and both be
// accepted; the loser of the claim race is rejected here. The entry point
// releases a claim whose submission does not commit, keeping failed
// submissions resubmittable.
func (s *Server) stageReplayClaim(_ context.Context, sub *pipeline.Submission) error {
	sub.Digest = sha256.Sum256(sub.Plaintext)
	sub.DigestSeen = s.cfg.Clock.Now()
	if !s.seen.claim(sub.Digest, sub.DigestSeen) {
		return &pipeline.Violation{Reason: "replayed PoA: this trace was already reported"}
	}
	sub.DigestClaimed = true
	return nil
}

// stageSignatureSamples checks every per-sample TEE signature (goal G3)
// against the registered T+ key ring, resolving each sample's key by its
// rotation epoch and verifying through the shared VerifyBatcher so the
// checks amortise across this submission's samples and across
// admission-queued submissions.
func (s *Server) stageSignatureSamples(ctx context.Context, sub *pipeline.Submission) error {
	samples := sub.PoA.Samples
	items := make([]pipeline.VerifyItem, len(samples))
	for i, ss := range samples {
		key, err := sub.Keys.KeyFor(ss.KeyEpoch)
		if err != nil {
			return classifySigError(fmt.Errorf("sample %d: %w", i, err))
		}
		items[i] = pipeline.VerifyItem{Key: key, Msg: ss.Sample.Marshal(), Sig: ss.Sig}
	}
	idx, err := s.timedSigVerify(sub.Suite, func() (int, error) {
		return s.sigBatcher.Verify(ctx, items)
	})
	if err != nil {
		if isCtxErr(err) {
			return err
		}
		return classifySigError(fmt.Errorf("signature check failed at sample %d: %w", idx, err))
	}
	return nil
}

// stageSignatureBatch checks the single batch signature over the exact
// canonical batch encoding under the T+ key of the epoch the batch was
// sealed under.
func (s *Server) stageSignatureBatch(ctx context.Context, sub *pipeline.Submission) error {
	key, err := sub.Keys.KeyFor(sub.BatchEpoch)
	if err != nil {
		return classifySigError(fmt.Errorf("batch key: %w", err))
	}
	_, err = s.timedSigVerify(sub.Suite, func() (int, error) {
		return s.sigBatcher.Verify(ctx, []pipeline.VerifyItem{
			{Key: key, Msg: poa.MarshalBatch(sub.Samples), Sig: sub.BatchSig},
		})
	})
	if err != nil {
		if isCtxErr(err) {
			return err
		}
		return classifySigError(fmt.Errorf("batch signature verification failed: %w", err))
	}
	return nil
}

// classifySigError applies the pipeline classification contract to a
// signature-path error: typed authenticity failures (bad signature,
// unknown or expired key epoch) are violation verdicts; anything else —
// store faults, malformed batches — is an internal error and the verdict
// is withheld.
func classifySigError(err error) error {
	if protocol.IsVerdictError(err) {
		return &pipeline.Violation{Reason: err.Error()}
	}
	return err
}

// timedSigVerify wraps a signature verification under the per-suite
// latency histogram, so RSA and Ed25519 drone fleets are observable
// separately (Table II's verification axis).
func (s *Server) timedSigVerify(suite string, fn func() (int, error)) (int, error) {
	if suite == "" {
		suite = "unknown"
	}
	reg := s.cfg.Metrics
	sp := reg.StartSpan(reg.Histogram(obs.L(MetricSigVerifySeconds, "suite", suite), obs.DurationBuckets))
	idx, err := fn()
	sp.End()
	return idx, err
}

// stageSignatureMAC checks every sample's HMAC tag under the flight's
// session key. The checks are independent per sample, so they fan out
// across the worker pool exactly like the RSA path; FirstError keeps the
// reported index deterministic (the lowest failing sample).
func (s *Server) stageSignatureMAC(ctx context.Context, sub *pipeline.Submission) error {
	samples := sub.PoA.Samples
	_, err := s.pool.FirstErrorCtx(ctx, len(samples), func(i int) error {
		if err := sigcrypto.VerifyMAC(sub.MACKey, samples[i].Sample.Marshal(), samples[i].Sig); err != nil {
			return fmt.Errorf("MAC verification failed at sample %d", i)
		}
		return nil
	})
	if err != nil {
		if isCtxErr(err) {
			return err
		}
		return &pipeline.Violation{Reason: err.Error()}
	}
	return nil
}

// stageMinSamples rejects traces that constrain nothing: a single sample
// (or none) pins the drone at isolated instants only.
func stageMinSamples(_ context.Context, sub *pipeline.Submission) error {
	if len(sub.Samples) < 2 {
		return &pipeline.Violation{Reason: "PoA has fewer than two samples"}
	}
	return nil
}

// stageChronology verifies strict time ordering of the trace.
func stageChronology(_ context.Context, sub *pipeline.Submission) error {
	if err := poa.CheckChronology(sub.Samples); err != nil {
		return &pipeline.Violation{Reason: err.Error()}
	}
	return nil
}

// stageSpeed verifies physical flyability: every consecutive pair must be
// reachable under the speed bound, or the trace itself is impossible — a
// strong forgery signal.
func (s *Server) stageSpeed(_ context.Context, sub *pipeline.Submission) error {
	if err := poa.SpeedFeasible(sub.Samples, s.cfg.VMaxMS); err != nil {
		return &pipeline.Violation{Reason: err.Error()}
	}
	return nil
}

// stageSufficiency checks the paper's eq. 1 over the zones near the trace
// (or the pinned zone set of an accusation re-check): every consecutive
// pair's travel ellipse must be disjoint from every zone.
func (s *Server) stageSufficiency(_ context.Context, sub *pipeline.Submission) error {
	zones := sub.Zones
	if zones == nil {
		zones = s.zonesForTrace(sub.Samples)
	}
	rep, err := poa.VerifySufficiencyPool(sub.Samples, zones, s.cfg.VMaxMS, s.cfg.Mode, s.pool)
	if err != nil {
		return &pipeline.Violation{Reason: err.Error()}
	}
	sub.Report = rep
	if !rep.Sufficient() {
		return &pipeline.Violation{
			Reason:            "insufficient alibi: the drone may have entered a no-fly zone",
			InsufficientPairs: rep.InsufficientPairs(),
		}
	}
	return nil
}

// stageZones3D checks the trace against the §VII-B1 cylindrical zones
// with the travel-ellipsoid test. A no-op when none are registered.
func (s *Server) stageZones3D(_ context.Context, sub *pipeline.Submission) error {
	zones := s.Zones3D()
	if len(zones) == 0 {
		return nil
	}
	rep, err := poa.VerifySufficiency3D(sub.Samples, zones, s.cfg.VMaxMS)
	if err != nil {
		return &pipeline.Violation{Reason: err.Error()}
	}
	if !rep.Sufficient() {
		return &pipeline.Violation{
			Reason:            "insufficient alibi: the drone may have entered a 3-D no-fly region",
			InsufficientPairs: rep.InsufficientPairs(),
		}
	}
	return nil
}

// stageRetain stores the verified alibi for the accusation window and
// WAL-logs it. A retention failure is an internal error, never a verdict:
// a verdict the server cannot make durable is not issued.
func (s *Server) stageRetain(ctx context.Context, sub *pipeline.Submission) error {
	return s.retain(ctx, sub.DroneID, sub.Samples)
}

// stageCommitDigest makes the replay-digest claim durable. It runs last,
// so the WAL records the accepted history only and a crashed verification
// leaves the trace resubmittable.
func (s *Server) stageCommitDigest(ctx context.Context, sub *pipeline.Submission) error {
	if !sub.DigestClaimed {
		return nil
	}
	return s.wal(ctx, recDigestClaimed, digestSnapshot{
		Digest: hex.EncodeToString(sub.Digest[:]),
		Seen:   sub.DigestSeen,
	})
}

// stageDecodeSealed parses a sealed-mode plaintext: the JSON SealedPoA
// with clear timestamps and position ciphertexts.
func stageDecodeSealed(_ context.Context, sub *pipeline.Submission) error {
	var sp privacy.SealedPoA
	if err := json.Unmarshal(sub.Plaintext, &sp); err != nil {
		return pipeline.Violationf("malformed sealed PoA: %v", err)
	}
	sub.Sealed = sp
	return nil
}

// stageDecodeCommit parses a commit-mode plaintext: the compact binary
// envelope (Merkle root, clear timestamps, area, predicates, signature).
func stageDecodeCommit(_ context.Context, sub *pipeline.Submission) error {
	env, err := privacy.DecodeCommitEnvelope(sub.Plaintext)
	if err != nil {
		return pipeline.Violationf("malformed commit envelope: %v", err)
	}
	sub.Envelope = &env
	return nil
}

// stageSignatureRoot verifies the TEE vault signature over the commit
// envelope's canonical signing bytes under the key of the envelope's
// rotation epoch. Everything the predicate check trusts — timestamps,
// root, area, speed bound, clearances — is covered by this one signature.
func (s *Server) stageSignatureRoot(ctx context.Context, sub *pipeline.Submission) error {
	env := sub.Envelope
	key, err := sub.Keys.KeyFor(env.KeyEpoch)
	if err != nil {
		return classifySigError(fmt.Errorf("envelope key: %w", err))
	}
	_, err = s.timedSigVerify(sub.Suite, func() (int, error) {
		return s.sigBatcher.Verify(ctx, []pipeline.VerifyItem{
			{Key: key, Msg: env.SigningBytes(), Sig: env.Sig},
		})
	})
	if err != nil {
		if isCtxErr(err) {
			return err
		}
		return classifySigError(fmt.Errorf("envelope signature verification failed: %w", err))
	}
	return nil
}

// stageSealedStructure checks everything a sealed submission exposes:
// at least two entries, chronological public timestamps, and no entry
// missing its nonce, ciphertext or signature. Positions stay hidden, so
// no compliance verdict is possible here — the submission is retained
// and judged only under accusation.
func stageSealedStructure(_ context.Context, sub *pipeline.Submission) error {
	entries := sub.Sealed.Entries
	if len(entries) < 2 {
		return &pipeline.Violation{Reason: "sealed PoA has fewer than two entries"}
	}
	for i, e := range entries {
		if len(e.Nonce) == 0 || len(e.Ciphertext) == 0 || len(e.Sig) == 0 {
			return pipeline.Violationf("sealed entry %d is incomplete", i)
		}
		if i > 0 && !e.Time.After(entries[i-1].Time) {
			return &pipeline.Violation{Reason: poa.ErrNotChronological.Error()}
		}
	}
	return nil
}

// stageCommitStructure checks the signed envelope's internal consistency:
// enough samples, chronological timestamps, a well-formed root and area,
// and a speed bound at least as fast as the auditor's own — a slower
// bound would make the clearances optimistic instead of conservative.
func (s *Server) stageCommitStructure(_ context.Context, sub *pipeline.Submission) error {
	env := sub.Envelope
	if len(env.Times) < 2 {
		return &pipeline.Violation{Reason: "commit envelope has fewer than two samples"}
	}
	if len(env.Root) != 32 {
		return pipeline.Violationf("commit envelope root is %d bytes, want 32", len(env.Root))
	}
	for i := 1; i < len(env.Times); i++ {
		if !env.Times[i].After(env.Times[i-1]) {
			return &pipeline.Violation{Reason: poa.ErrNotChronological.Error()}
		}
	}
	if !env.Area.Valid() {
		return pipeline.Violationf("commit envelope area %+v is invalid", env.Area)
	}
	if env.VMaxMS < s.cfg.VMaxMS {
		return pipeline.Violationf("commit envelope speed bound %.1f m/s is below the required %.1f m/s",
			env.VMaxMS, s.cfg.VMaxMS)
	}
	return nil
}

// stagePredicates judges a commit submission from its signed clearance
// predicates: every registered zone the flight area could have reached
// must carry a predicate with positive clearance — the paper's
// conservative sufficiency test holding for every sample pair, proven
// without the auditor seeing a single position. A zone the envelope has
// no predicate for cannot be ruled out, so it is a violation, exactly as
// an insufficient pair would be on the plaintext path.
func (s *Server) stagePredicates(_ context.Context, sub *pipeline.Submission) error {
	env := sub.Envelope
	if s.zones3D.len() > 0 {
		// Predicates are zone-relative over circular zones; a commitment
		// proves nothing about cylindrical regions (see DESIGN.md §13).
		return &pipeline.Violation{Reason: "commit-mode PoA cannot rule out 3-D no-fly regions"}
	}
	insufficient := 0
	for _, z := range zone.Circles(s.zones.QueryRect(env.Area)) {
		pred, ok := findPredicate(env.Predicates, z)
		if !ok {
			return pipeline.Violationf(
				"commit envelope lacks a predicate for the zone at (%.5f, %.5f)", z.Center.Lat, z.Center.Lon)
		}
		if !pred.Sufficient() {
			insufficient++
		}
	}
	if insufficient > 0 {
		return &pipeline.Violation{
			Reason:            "insufficient alibi: the drone may have entered a no-fly zone",
			InsufficientPairs: insufficient,
		}
	}
	return nil
}

// findPredicate locates the predicate whose zone geometry matches z
// exactly. Predicates are computed drone-side over the zone-query
// response, so an honest flight carries a bit-identical circle.
func findPredicate(preds []privacy.ZonePredicate, z geo.GeoCircle) (privacy.ZonePredicate, bool) {
	for _, p := range preds {
		if p.Zone.Center.Lat == z.Center.Lat && p.Zone.Center.Lon == z.Center.Lon && p.Zone.R == z.R {
			return p, true
		}
	}
	return privacy.ZonePredicate{}, false
}

// stageRetainDisclosure stores the sealed entries (sealed mode) or the
// signed commitment (commit mode) for the accusation window and WAL-logs
// the retention, mirroring stageRetain's durability contract.
func (s *Server) stageRetainDisclosure(ctx context.Context, sub *pipeline.Submission) error {
	rec := retainedDisclosure{
		DroneID:    sub.DroneID,
		SubmitTime: s.cfg.Clock.Now(),
	}
	if sub.Envelope != nil {
		rec.Mode = poa.DisclosureCommit
		rec.Times = sub.Envelope.Times
		rec.Root = sub.Envelope.Root
		rec.KeyEpoch = sub.Envelope.KeyEpoch
	} else {
		rec.Mode = poa.DisclosureSealed
		rec.Entries = sub.Sealed.Entries
		rec.Times = make([]time.Time, len(sub.Sealed.Entries))
		for i, e := range sub.Sealed.Entries {
			rec.Times[i] = e.Time
		}
	}
	r, _ := s.disclosures.add(rec)
	return s.wal(ctx, recDisclosureRetained, disclosureSnapshot(r))
}
