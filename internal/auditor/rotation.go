package auditor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// DefaultRotationWindow is the acceptance window for PoAs signed under a
// retired key epoch when Config.RotationWindow is zero: long enough for a
// flight that straddled a rotation to land and submit, short enough that a
// stolen retired key goes stale quickly.
const DefaultRotationWindow = 15 * time.Minute

// TEEKey is one entry in a drone's TEE key ring: the verification key of
// one rotation epoch. RetiredAt is zero while the key is active and set to
// the Auditor-clock instant the key was rotated out; retired keys verify
// PoAs only inside the rotation acceptance window.
type TEEKey struct {
	Pub       sigcrypto.PublicKey
	Epoch     int
	RetiredAt time.Time
}

// ActiveKey returns the newest (active) key of the ring. Records always
// hold at least one key.
func (r DroneRecord) ActiveKey() TEEKey {
	if len(r.TEEKeys) == 0 {
		return TEEKey{}
	}
	return r.TEEKeys[len(r.TEEKeys)-1]
}

// droneKeyRing is the protocol.KeyRing view of a record's key list, frozen
// at the submission's admission instant so one submission sees one
// consistent acceptance decision per epoch.
type droneKeyRing struct {
	keys   []TEEKey
	now    time.Time
	window time.Duration
}

// KeyFor implements protocol.KeyRing.
func (r droneKeyRing) KeyFor(epoch int) (sigcrypto.PublicKey, error) {
	for _, k := range r.keys {
		if k.Epoch != epoch {
			continue
		}
		if !k.RetiredAt.IsZero() && r.now.After(k.RetiredAt.Add(r.window)) {
			return nil, fmt.Errorf("%w: epoch %d retired at %s", protocol.ErrEpochExpired,
				epoch, k.RetiredAt.UTC().Format(time.RFC3339))
		}
		return k.Pub, nil
	}
	return nil, fmt.Errorf("%w: %d", protocol.ErrUnknownEpoch, epoch)
}

// ring builds the key-ring view of a drone record against the server's
// injectable clock.
func (s *Server) ring(rec DroneRecord) protocol.KeyRing {
	return droneKeyRing{keys: rec.TEEKeys, now: s.cfg.Clock.Now(), window: s.rotationWindow()}
}

func (s *Server) rotationWindow() time.Duration {
	if s.cfg.RotationWindow != 0 {
		return s.cfg.RotationWindow
	}
	return DefaultRotationWindow
}

// RotateKey accepts a TEE key handover: the drone's next verification key,
// vouched for by the outgoing key's signature. See RotateKeyCtx.
func (s *Server) RotateKey(req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error) {
	return s.RotateKeyCtx(context.Background(), req)
}

// RotateKeyCtx validates and applies a key rotation: the handover must
// name the requesting drone, succeed the currently active epoch, keep the
// negotiated suite, and verify under the outgoing (active) key. On success
// the old key enters its acceptance window and the new key becomes active,
// durably (WAL record recKeyRotated).
func (s *Server) RotateKeyCtx(ctx context.Context, req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.RotateKeyResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	h := req.Handover
	if h.DroneID != req.DroneID {
		return protocol.RotateKeyResponse{}, fmt.Errorf("%w: handover names %q, request names %q",
			sigcrypto.ErrBadHandover, h.DroneID, req.DroneID)
	}
	active := rec.ActiveKey()
	if h.OldEpoch != active.Epoch {
		return protocol.RotateKeyResponse{}, fmt.Errorf("%w: outgoing epoch %d is not the active epoch %d",
			sigcrypto.ErrBadHandover, h.OldEpoch, active.Epoch)
	}
	newPub, err := sigcrypto.ParsePublicKey(h.NewPub)
	if err != nil {
		return protocol.RotateKeyResponse{}, fmt.Errorf("%w: new key: %v", sigcrypto.ErrBadHandover, err)
	}
	if newPub.SuiteID() != rec.Suite {
		return protocol.RotateKeyResponse{}, fmt.Errorf("%w: rotation changes suite from %s to %s",
			sigcrypto.ErrBadHandover, rec.Suite, newPub.SuiteID())
	}
	if err := sigcrypto.VerifyHandover(h, active.Pub); err != nil {
		return protocol.RotateKeyResponse{}, err
	}
	now := s.cfg.Clock.Now()
	if _, err := s.drones.rotate(req.DroneID, h.OldEpoch, TEEKey{Pub: newPub, Epoch: h.NewEpoch}, now); err != nil {
		return protocol.RotateKeyResponse{}, err
	}
	if err := s.wal(ctx, recKeyRotated, walRotation{
		DroneID:   req.DroneID,
		OldEpoch:  h.OldEpoch,
		NewEpoch:  h.NewEpoch,
		NewPub:    h.NewPub,
		RetiredAt: now,
	}); err != nil {
		return protocol.RotateKeyResponse{}, err
	}
	s.cfg.Metrics.Counter(obs.L(MetricKeyRotationsTotal, "suite", rec.Suite)).Inc()
	return protocol.RotateKeyResponse{Epoch: h.NewEpoch}, nil
}

// rotate retires the active key (stamping RetiredAt) and appends the
// successor, copy-on-write so concurrent readers of the record never see a
// half-updated ring. The epoch check runs under the store lock, so two
// racing rotations cannot both succeed off the same outgoing epoch.
func (st *droneStore) rotate(id string, oldEpoch int, newKey TEEKey, retiredAt time.Time) (DroneRecord, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.m[id]
	if !ok {
		return DroneRecord{}, fmt.Errorf("%w: %q", ErrUnknownDrone, id)
	}
	if len(rec.TEEKeys) == 0 || rec.TEEKeys[len(rec.TEEKeys)-1].Epoch != oldEpoch {
		return DroneRecord{}, fmt.Errorf("%w: outgoing epoch %d is not active", sigcrypto.ErrBadHandover, oldEpoch)
	}
	keys := make([]TEEKey, len(rec.TEEKeys), len(rec.TEEKeys)+1)
	copy(keys, rec.TEEKeys)
	keys[len(keys)-1].RetiredAt = retiredAt
	keys = append(keys, newKey)
	rec.TEEKeys = keys
	st.m[id] = rec
	return rec, nil
}

// applyRotation replays a rotation record idempotently: a record whose
// epoch is already in the ring (the snapshot covered it) is a no-op.
func (st *droneStore) applyRotation(id string, newKey TEEKey, retiredAt time.Time) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.m[id]
	if !ok {
		return fmt.Errorf("rotation for unknown drone %q", id)
	}
	if len(rec.TEEKeys) > 0 && rec.TEEKeys[len(rec.TEEKeys)-1].Epoch >= newKey.Epoch {
		return nil
	}
	keys := make([]TEEKey, len(rec.TEEKeys), len(rec.TEEKeys)+1)
	copy(keys, rec.TEEKeys)
	if len(keys) > 0 {
		keys[len(keys)-1].RetiredAt = retiredAt
	}
	keys = append(keys, newKey)
	rec.TEEKeys = keys
	st.m[id] = rec
	return nil
}
