package auditor

// The cluster-internal HTTP surface: the doors auditor nodes use among
// themselves. They are registered only when the handler's backend is a
// cluster node (the Router), so a single-node auditor exposes exactly
// the surface it always did.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// clusterBackend is the extra surface a routing backend exposes to the
// transports: the cluster map, gossip, and the cluster-internal doors.
// Only *Router implements it; the assertion in NewHandlerOpts (and the
// wire read loop) is how cluster routes light up.
type clusterBackend interface {
	Backend
	clusterMapJSON() ([]byte, error)
	gossipExchange(digestJSON []byte) ([]byte, error)
	clusterRegister(ctx context.Context, req protocol.ClusterRegisterRequest) (protocol.RegisterDroneResponse, error)
	clusterZoneImport(zs []zone.NFZ) error
	clusterHandoff(ctx context.Context, req protocol.ClusterHandoffRequest) error
	clusterKey() (protocol.ClusterKeyResponse, error)
	nodeStatus() protocol.ClusterNodeStatus
	clusterStatus(ctx context.Context) protocol.ClusterStatusResponse
	fleetMetrics(ctx context.Context, w io.Writer) error
}

var _ clusterBackend = (*Router)(nil)

// registerClusterRoutes mounts the cluster-internal doors. They are
// registered bare (no per-endpoint request metrics): node-to-node
// chatter is not client traffic.
func (h *Handler) registerClusterRoutes(cb clusterBackend) {
	h.mux.HandleFunc(protocol.PathClusterMap, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		js, err := cb.clusterMapJSON()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(js)
	})
	h.mux.HandleFunc(protocol.PathClusterGossip, post(func(w http.ResponseWriter, r *http.Request) {
		digest, err := readBody(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		reply, err := cb.gossipExchange(digest)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(reply)
	}))
	h.mux.HandleFunc(protocol.PathClusterRegister, post(func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, cb.clusterRegister)
	}))
	h.mux.HandleFunc(protocol.PathClusterZone, post(func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(_ context.Context, zs []zone.NFZ) (struct{}, error) {
			return struct{}{}, cb.clusterZoneImport(zs)
		})
	}))
	h.mux.HandleFunc(protocol.PathClusterHandoff, post(func(w http.ResponseWriter, r *http.Request) {
		// The install continues the sender's rebalance trace, so one
		// rebalance reads as export → stream → install across nodes.
		ctx, sp := h.srv.Tracer().StartRemote(r.Context(),
			r.Header.Get(protocol.HeaderTraceParent), "cluster.handoff.install")
		r = r.WithContext(ctx)
		handleJSON(w, r, func(ctx context.Context, req protocol.ClusterHandoffRequest) (struct{}, error) {
			sp.SetAttr("from", req.From)
			err := cb.clusterHandoff(ctx, req)
			sp.SetError(err)
			return struct{}{}, err
		})
		sp.End()
	}))
	h.mux.HandleFunc(protocol.PathClusterKey, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp, err := cb.clusterKey()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	h.mux.HandleFunc(protocol.PathClusterMetrics, get(func(w http.ResponseWriter, r *http.Request) {
		// Merge into a buffer first so a mid-aggregation failure can still
		// answer with a clean 500 instead of a torn exposition.
		var buf bytes.Buffer
		if err := cb.fleetMetrics(r.Context(), &buf); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	}))
	h.mux.HandleFunc(protocol.PathClusterStatus, get(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cb.clusterStatus(r.Context()))
	}))
	h.mux.HandleFunc(protocol.PathClusterNodeStatus, get(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cb.nodeStatus())
	}))
}

// get restricts an endpoint to the GET method.
func get(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		fn(w, r)
	}
}

// readBody slurps a small request body (gossip digests).
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(io.LimitReader(r.Body, 64<<10))
}

// ---- Router's clusterBackend implementation ----

// clusterMapJSON serialises the current map for /cluster/map and the
// wire TypeClusterMap reply.
func (r *Router) clusterMapJSON() ([]byte, error) {
	return json.Marshal(r.membership.Map())
}

// gossipExchange merges one peer digest and answers with ours — the
// receive half of the anti-entropy exchange. A contact also proves the
// sender alive, which is what lets a restarted node rejoin.
func (r *Router) gossipExchange(digestJSON []byte) ([]byte, error) {
	var d cluster.Digest
	if err := json.Unmarshal(digestJSON, &d); err != nil {
		return nil, err
	}
	r.membership.Merge(d)
	r.joined.Store(true)
	return json.Marshal(r.membership.Digest())
}

// clusterRegister files a router-issued registration locally — the
// receiver IS the owner the sender routed to, so this door never
// forwards (and therefore never loops).
func (r *Router) clusterRegister(ctx context.Context, req protocol.ClusterRegisterRequest) (protocol.RegisterDroneResponse, error) {
	return r.localShard(req.DroneID).RegisterDroneWithID(ctx, req.DroneID, req.Req)
}

// clusterZoneImport replicates peer-registered zones into every local
// shard. Import is Restore-based (idempotent, no re-broadcast), so a
// zone bouncing between peers converges instead of echoing.
func (r *Router) clusterZoneImport(zs []zone.NFZ) error {
	var firstErr error
	for _, sh := range r.shards {
		for _, z := range zs {
			if err := sh.Zones().Restore(z); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// clusterKey serves the shared PoA encryption key to a joining node.
// Cluster-internal: production deployments must front this with an
// authenticated channel (DESIGN.md §11).
func (r *Router) clusterKey() (protocol.ClusterKeyResponse, error) {
	enc, err := sigcrypto.MarshalPrivateKey(r.shards[0].EncryptionKey())
	if err != nil {
		return protocol.ClusterKeyResponse{}, err
	}
	return protocol.ClusterKeyResponse{EncKey: enc}, nil
}
