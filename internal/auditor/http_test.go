package auditor

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// httpFixture serves a registered-drone server over httptest.
func httpFixture(t *testing.T) (*httptest.Server, *Server, string, droneKeys) {
	t.Helper()
	srv, droneID, keys := newFixture(t)
	hs := httptest.NewServer(NewHandler(srv))
	t.Cleanup(hs.Close)
	return hs, srv, droneID, keys
}

// postJSON is a minimal test client.
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPStatusMapping(t *testing.T) {
	hs, _, droneID, _ := httpFixture(t)

	t.Run("unknown drone is 404", func(t *testing.T) {
		resp := postJSON(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{DroneID: "drone-999"})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("bad signature is 403", func(t *testing.T) {
		nonce := "00112233445566778899aabbccddeeff"
		resp := postJSON(t, hs.URL+protocol.PathZoneQuery, protocol.ZoneQueryRequest{
			DroneID: droneID, Nonce: nonce, Sig: []byte("bogus"),
			Area: geo.NewRect(geo.LatLon{Lat: 40, Lon: -89}, geo.LatLon{Lat: 41, Lon: -88}),
		})
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("malformed JSON is 400", func(t *testing.T) {
		resp, err := http.Post(hs.URL+protocol.PathRegisterDrone, "application/json",
			bytes.NewReader([]byte("{not json")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("GET on POST endpoint is 405", func(t *testing.T) {
		resp, err := http.Get(hs.URL + protocol.PathSubmitPoA)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("unknown session is 404", func(t *testing.T) {
		resp := postJSON(t, hs.URL+protocol.PathSubmitMACPoA, protocol.SubmitMACPoARequest{
			DroneID: droneID, SessionID: "session-999",
		})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
	t.Run("unknown stream is 404", func(t *testing.T) {
		resp := postJSON(t, hs.URL+protocol.PathStreamSample, protocol.StreamSampleRequest{StreamID: "stream-999"})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d", resp.StatusCode)
		}
	})
}

func TestHTTPFullCycle(t *testing.T) {
	hs, srv, droneID, keys := httpFixture(t)

	// Register a zone over HTTP.
	resp := postJSON(t, hs.URL+protocol.PathRegisterZone, protocol.RegisterZoneRequest{
		Owner: "alice", Zone: geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register zone status = %d", resp.StatusCode)
	}
	// Register a polygon zone over HTTP.
	resp = postJSON(t, hs.URL+protocol.PathRegisterPolygonZone, protocol.RegisterPolygonZoneRequest{
		Owner: "bob", Vertices: []geo.LatLon{
			urbana.Offset(180, 3000), urbana.Offset(180, 3000).Offset(90, 50),
			urbana.Offset(180, 3000).Offset(45, 70),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register polygon status = %d", resp.StatusCode)
	}

	// Submit a PoA over HTTP.
	p := signedTrace(t, keys, urbana, 90, 10, 20, time.Second)
	plaintext, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sigcrypto.Encrypt(nil, srv.EncryptionPub(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{
		DroneID: droneID, EncryptedPoA: ct,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var verdict protocol.SubmitPoAResponse
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", verdict.Verdict, verdict.Reason)
	}

	// Status endpoint reflects it all.
	sresp, err := http.Get(hs.URL + protocol.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status protocol.StatusResponse
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Drones != 1 || status.Zones != 2 || status.RetainedPoAs != 1 {
		t.Errorf("status = %+v", status)
	}
	if presp, err := http.Post(hs.URL+protocol.PathStatus, "", nil); err == nil {
		presp.Body.Close()
		if presp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST status endpoint = %d", presp.StatusCode)
		}
	}

	// Fetch the auditor public key.
	kresp, err := http.Get(hs.URL + protocol.PathAuditorPub)
	if err != nil {
		t.Fatal(err)
	}
	defer kresp.Body.Close()
	var kb struct {
		EncryptionPub string `json:"encryptionPub"`
	}
	if err := json.NewDecoder(kresp.Body).Decode(&kb); err != nil {
		t.Fatal(err)
	}
	pub, err := sigcrypto.UnmarshalPublicKey(kb.EncryptionPub)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(srv.EncryptionPub().N) != 0 {
		t.Error("published key mismatch")
	}
}
