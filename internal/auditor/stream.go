package auditor

import (
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// ErrUnknownStream is returned for operations on a stream that was never
// opened or was already closed.
var ErrUnknownStream = errors.New("auditor: unknown stream id")

var _ protocol.StreamAPI = (*Server)(nil)

// streamState is one in-flight real-time audit.
type streamState struct {
	DroneID  string
	Samples  []poa.Sample
	Violated bool
	Reason   string
}

// OpenStream starts a real-time audit for a registered drone.
func (s *Server) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.drones[req.DroneID]; !ok {
		return protocol.OpenStreamResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	s.nextStream++
	id := fmt.Sprintf("stream-%04d", s.nextStream)
	if s.streams == nil {
		s.streams = make(map[string]*streamState)
	}
	s.streams[id] = &streamState{DroneID: req.DroneID}
	return protocol.OpenStreamResponse{StreamID: id}, nil
}

// StreamSample verifies one incoming signed sample incrementally:
// signature, chronology against the previous sample, physical flyability
// of the new pair, and pair sufficiency against the zones near the pair.
// The first failing check marks the whole stream violated — the real-time
// property the mode exists for.
func (s *Server) StreamSample(req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	s.mu.Lock()
	st, ok := s.streams[req.StreamID]
	var rec DroneRecord
	if ok {
		rec = s.drones[st.DroneID]
	}
	s.mu.Unlock()
	if !ok {
		return protocol.StreamSampleResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	if st.Violated {
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: st.Reason}, nil
	}

	flag := func(reason string) (protocol.StreamSampleResponse, error) {
		s.mu.Lock()
		st.Violated = true
		st.Reason = reason
		s.mu.Unlock()
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: reason}, nil
	}

	sample := req.Sample.Sample
	if err := sigcrypto.Verify(rec.TEEPub, sample.Marshal(), req.Sample.Sig); err != nil {
		return flag("sample signature verification failed")
	}

	s.mu.Lock()
	var prev *poa.Sample
	if n := len(st.Samples); n > 0 {
		p := st.Samples[n-1]
		prev = &p
	}
	s.mu.Unlock()

	if prev != nil {
		if !sample.Time.After(prev.Time) {
			return flag("sample out of chronological order")
		}
		pair := []poa.Sample{*prev, sample}
		if err := poa.SpeedFeasible(pair, s.cfg.VMaxMS); err != nil {
			return flag(err.Error())
		}
		zones := s.zonesForPair(*prev, sample)
		for _, z := range zones {
			if !poa.PairSufficient(*prev, sample, z, s.cfg.VMaxMS, s.cfg.Mode) {
				return flag("pair insufficient: the drone may have entered a no-fly zone")
			}
		}
	}

	s.mu.Lock()
	st.Samples = append(st.Samples, sample)
	s.mu.Unlock()
	return protocol.StreamSampleResponse{Verdict: protocol.VerdictCompliant}, nil
}

// CloseStream finalises the flight: a violated stream stays a violation;
// a clean stream with at least two samples is retained like a submitted
// PoA.
func (s *Server) CloseStream(req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	s.mu.Lock()
	st, ok := s.streams[req.StreamID]
	if ok {
		delete(s.streams, req.StreamID)
	}
	s.mu.Unlock()
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	if st.Violated {
		return violation(st.Reason), nil
	}
	if len(st.Samples) < 2 {
		return violation("stream ended with fewer than two samples"), nil
	}
	if resp3d := s.verify3D(st.Samples); resp3d != nil {
		return *resp3d, nil
	}
	s.retain(st.DroneID, st.Samples)
	return protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant}, nil
}

// zonesForPair pulls the zones whose boundary could matter for one sample
// pair.
func (s *Server) zonesForPair(a, b poa.Sample) []geo.GeoCircle {
	rect := geo.NewRect(a.Pos, b.Pos)
	budget := b.Time.Sub(a.Time).Seconds() * s.cfg.VMaxMS
	return zone.Circles(s.zones.QueryRect(rect.Expand(budget + 1)))
}
