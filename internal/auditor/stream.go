package auditor

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/auditor/pipeline"
	"repro/internal/poa"
	"repro/internal/protocol"
)

// ErrUnknownStream is returned for operations on a stream that was never
// opened or was already closed.
var ErrUnknownStream = errors.New("auditor: unknown stream id")

var _ protocol.StreamAPI = (*Server)(nil)

// streamState is one in-flight real-time audit. Its own lock serializes
// sample processing per stream (samples within a flight are ordered)
// while distinct streams proceed fully in parallel.
type streamState struct {
	mu       sync.Mutex
	DroneID  string
	Samples  []poa.Sample
	Violated bool
	Reason   string
}

// OpenStream starts a real-time audit for a registered drone.
func (s *Server) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	rec, ok := s.drones.get(req.DroneID)
	if !ok {
		return protocol.OpenStreamResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	if err := requireDisclosure(rec, poa.DisclosureFull); err != nil {
		return protocol.OpenStreamResponse{}, err
	}
	return protocol.OpenStreamResponse{StreamID: s.streams.open(req.DroneID)}, nil
}

// StreamSample verifies one incoming signed sample incrementally through
// the shared pipeline stages: signature, then chronology, flyability and
// pair sufficiency of the (previous, new) pair. The first failing check
// marks the whole stream violated — the real-time property the mode
// exists for.
func (s *Server) StreamSample(req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	return s.StreamSampleCtx(context.Background(), req)
}

// StreamSampleCtx is StreamSample under a caller context: an aborted check
// surfaces as the context error, never as a stream violation.
func (s *Server) StreamSampleCtx(ctx context.Context, req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	st, ok := s.streams.get(req.StreamID)
	if !ok {
		return protocol.StreamSampleResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	rec, _ := s.drones.get(st.DroneID)
	if err := s.admission.Acquire(ctx, st.DroneID); err != nil {
		return protocol.StreamSampleResponse{}, err
	}
	defer s.admission.Release()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Violated {
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: st.Reason}, nil
	}

	// The signature stage sees a one-sample PoA; the pair stages see the
	// (previous, new) window — the incremental slice of the same checks
	// the batch path runs over the whole trace.
	sample := req.Sample.Sample
	sub := &pipeline.Submission{
		DroneID: st.DroneID,
		PoA:     poa.PoA{Samples: []poa.SignedSample{req.Sample}},
		Keys:    s.ring(rec),
		Suite:   rec.Suite,
	}
	seq := s.seqStreamSig
	if n := len(st.Samples); n > 0 {
		sub.Samples = []poa.Sample{st.Samples[n-1], sample}
		seq = s.seqStreamPair
	}
	resp, err := s.runner.Run(ctx, sub, seq)
	if err != nil {
		return protocol.StreamSampleResponse{}, err
	}
	if resp.Verdict != protocol.VerdictCompliant {
		st.Violated = true
		st.Reason = resp.Reason
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: resp.Reason}, nil
	}

	st.Samples = append(st.Samples, sample)
	return protocol.StreamSampleResponse{Verdict: protocol.VerdictCompliant}, nil
}

// CloseStream finalises the flight: a violated stream stays a violation;
// a clean stream with at least two samples runs the closing stages (3-D
// zones, retention) and is kept like a submitted PoA.
func (s *Server) CloseStream(req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	return s.CloseStreamCtx(context.Background(), req)
}

// CloseStreamCtx is CloseStream under a caller context.
func (s *Server) CloseStreamCtx(ctx context.Context, req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	start := s.verdictStart()
	resp, err := s.closeStream(ctx, req)
	if err == nil {
		s.observeVerdict(DoorStream, start)
	}
	return resp, err
}

func (s *Server) closeStream(ctx context.Context, req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	st, ok := s.streams.remove(req.StreamID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Violated {
		return protocol.SubmitPoAResponse{Verdict: protocol.VerdictViolation, Reason: st.Reason}, nil
	}
	if len(st.Samples) < 2 {
		return protocol.SubmitPoAResponse{Verdict: protocol.VerdictViolation, Reason: "stream ended with fewer than two samples"}, nil
	}
	sub := &pipeline.Submission{DroneID: st.DroneID, Samples: st.Samples}
	return s.runner.Run(ctx, sub, s.seqStreamClose)
}
