package auditor

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// ErrUnknownStream is returned for operations on a stream that was never
// opened or was already closed.
var ErrUnknownStream = errors.New("auditor: unknown stream id")

var _ protocol.StreamAPI = (*Server)(nil)

// streamState is one in-flight real-time audit. Its own lock serializes
// sample processing per stream (samples within a flight are ordered)
// while distinct streams proceed fully in parallel.
type streamState struct {
	mu       sync.Mutex
	DroneID  string
	Samples  []poa.Sample
	Violated bool
	Reason   string
}

// OpenStream starts a real-time audit for a registered drone.
func (s *Server) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	if _, ok := s.drones.get(req.DroneID); !ok {
		return protocol.OpenStreamResponse{}, fmt.Errorf("%w: %q", ErrUnknownDrone, req.DroneID)
	}
	return protocol.OpenStreamResponse{StreamID: s.streams.open(req.DroneID)}, nil
}

// StreamSample verifies one incoming signed sample incrementally:
// signature, chronology against the previous sample, physical flyability
// of the new pair, and pair sufficiency against the zones near the pair.
// The first failing check marks the whole stream violated — the real-time
// property the mode exists for.
func (s *Server) StreamSample(req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	st, ok := s.streams.get(req.StreamID)
	if !ok {
		return protocol.StreamSampleResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	rec, _ := s.drones.get(st.DroneID)

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Violated {
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: st.Reason}, nil
	}

	flag := func(reason string) (protocol.StreamSampleResponse, error) {
		st.Violated = true
		st.Reason = reason
		return protocol.StreamSampleResponse{Verdict: protocol.VerdictViolation, Reason: reason}, nil
	}

	sample := req.Sample.Sample
	if err := sigcrypto.Verify(rec.TEEPub, sample.Marshal(), req.Sample.Sig); err != nil {
		return flag("sample signature verification failed")
	}

	if n := len(st.Samples); n > 0 {
		prev := st.Samples[n-1]
		if !sample.Time.After(prev.Time) {
			return flag("sample out of chronological order")
		}
		pair := []poa.Sample{prev, sample}
		if err := poa.SpeedFeasible(pair, s.cfg.VMaxMS); err != nil {
			return flag(err.Error())
		}
		for _, z := range s.zonesForPair(prev, sample) {
			if !poa.PairSufficient(prev, sample, z, s.cfg.VMaxMS, s.cfg.Mode) {
				return flag("pair insufficient: the drone may have entered a no-fly zone")
			}
		}
	}

	st.Samples = append(st.Samples, sample)
	return protocol.StreamSampleResponse{Verdict: protocol.VerdictCompliant}, nil
}

// CloseStream finalises the flight: a violated stream stays a violation;
// a clean stream with at least two samples is retained like a submitted
// PoA.
func (s *Server) CloseStream(req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	st, ok := s.streams.remove(req.StreamID)
	if !ok {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("%w: %q", ErrUnknownStream, req.StreamID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Violated {
		return violation(st.Reason), nil
	}
	if len(st.Samples) < 2 {
		return violation("stream ended with fewer than two samples"), nil
	}
	if resp3d := s.verify3D(st.Samples); resp3d != nil {
		return *resp3d, nil
	}
	if err := s.retain(context.Background(), st.DroneID, st.Samples); err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	return protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant}, nil
}

// zonesForPair pulls the zones whose boundary could matter for one sample
// pair.
func (s *Server) zonesForPair(a, b poa.Sample) []geo.GeoCircle {
	rect := geo.NewRect(a.Pos, b.Pos)
	budget := b.Time.Sub(a.Time).Seconds() * s.cfg.VMaxMS
	return zone.Circles(s.zones.QueryRect(rect.Expand(budget + 1)))
}
