package auditor

// The binary wire door: a persistent, multiplexed TCP transport for PoA
// submissions (DESIGN.md §10). One long-lived connection per drone
// carries many pipelined submissions; verdicts travel back as coalesced
// ack frames. Everything behind the framing is the same staged pipeline
// and admission control the HTTP door uses — this is the sixth
// verdict-parity entry point, not a second verification path.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// WireOptions configures the binary transport listener.
type WireOptions struct {
	// Logger receives connection-lifecycle and protocol-error lines.
	Logger *olog.Logger
	// MaxFrameBytes bounds one inbound frame payload; 0 means
	// wire.MaxMessageBytes.
	MaxFrameBytes int
	// MaxPipeline bounds the submissions one connection may have in
	// flight in the verification pipeline; past it the reader stops
	// consuming frames and TCP backpressure reaches the client. 0 means
	// 64. (The admission controller still applies on top — a shed
	// submission occupies its pipeline slot only long enough to produce
	// an overload ack.)
	MaxPipeline int
}

// wireMetrics holds the transport's counters, resolved once at
// construction: the per-frame path must not pay a registry lookup (and
// an obs.L render) per increment.
type wireMetrics struct {
	connections   *obs.Gauge
	connsTotal    *obs.Counter
	rxFrames      *obs.Counter
	txFrames      *obs.Counter
	rxBytes       *obs.Counter
	txBytes       *obs.Counter
	submissions   *obs.Counter
	errors        *obs.Counter
	ackCompliant  *obs.Counter
	ackViolation  *obs.Counter
	ackOverloaded *obs.Counter
	ackError      *obs.Counter
}

func newWireMetrics(reg *obs.Registry) wireMetrics {
	return wireMetrics{
		connections:   reg.Gauge(MetricWireConnections),
		connsTotal:    reg.Counter(MetricWireConnectionsTotal),
		rxFrames:      reg.Counter(obs.L(MetricWireFramesTotal, "dir", "rx")),
		txFrames:      reg.Counter(obs.L(MetricWireFramesTotal, "dir", "tx")),
		rxBytes:       reg.Counter(obs.L(MetricWireBytesTotal, "dir", "rx")),
		txBytes:       reg.Counter(obs.L(MetricWireBytesTotal, "dir", "tx")),
		submissions:   reg.Counter(MetricWireSubmissionsTotal),
		errors:        reg.Counter(MetricWireErrorsTotal),
		ackCompliant:  reg.Counter(obs.L(MetricWireAcksTotal, "status", "compliant")),
		ackViolation:  reg.Counter(obs.L(MetricWireAcksTotal, "status", "violation")),
		ackOverloaded: reg.Counter(obs.L(MetricWireAcksTotal, "status", "overloaded")),
		ackError:      reg.Counter(obs.L(MetricWireAcksTotal, "status", "error")),
	}
}

// ackCounter returns the counter for one ack status.
func (m *wireMetrics) ackCounter(status byte) *obs.Counter {
	switch status {
	case wire.StatusCompliant:
		return m.ackCompliant
	case wire.StatusViolation:
		return m.ackViolation
	case wire.StatusOverloaded:
		return m.ackOverloaded
	default:
		return m.ackError
	}
}

// WireBackend is what the binary transport needs from a backend: the
// operations it carries, connection accounting and the metrics registry.
// Both the single-node *Server and the cluster *Router satisfy it (the
// unexported method keeps the set closed to this package).
type WireBackend interface {
	SubmitPoACtx(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error)
	SubmitCommitPoACtx(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error)
	RegisterDroneCtx(ctx context.Context, req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error)
	Metrics() *obs.Registry
	Tracer() *otrace.Tracer
	wireConnDelta(d int64)
}

var _ WireBackend = (*Server)(nil)

// WireServer serves the binary transport for one auditor backend.
type WireServer struct {
	srv  WireBackend
	opts WireOptions
	met  wireMetrics

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup // accept loop + per-connection handlers
}

// NewWireServer wraps srv with a binary transport. Call Serve with a
// listener to start accepting.
func NewWireServer(srv WireBackend, opts WireOptions) *WireServer {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = wire.MaxMessageBytes
	}
	if opts.MaxPipeline <= 0 {
		opts.MaxPipeline = 64
	}
	return &WireServer{
		srv:   srv,
		opts:  opts,
		met:   newWireMetrics(srv.Metrics()),
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on lis until Close. It returns nil after a
// Close-triggered shutdown and the accept error otherwise.
func (ws *WireServer) Serve(lis net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		lis.Close()
		return errors.New("auditor: wire server closed")
	}
	ws.lis = lis
	ws.mu.Unlock()

	for {
		c, err := lis.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			c.Close()
			return nil
		}
		ws.conns[c] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()

		ws.met.connsTotal.Inc()
		go ws.handleConn(c)
	}
}

// Close stops accepting, closes every live connection and waits for the
// handlers to drain.
func (ws *WireServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	lis := ws.lis
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	ws.wg.Wait()
	return nil
}

// forget removes a finished connection from the live set.
func (ws *WireServer) forget(c net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, c)
	ws.mu.Unlock()
}

// wireConn serialises frame writes on one connection. The ack writer
// owns the steady-state traffic; handshake and error frames go through
// the same lock.
type wireConn struct {
	c   net.Conn
	met *wireMetrics

	wmu sync.Mutex
	bw  *bufio.Writer
}

// writeFrame writes one pre-encoded frame (or frame sequence) and
// optionally flushes.
func (wc *wireConn) writeFrame(frame []byte, flush bool) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if _, err := wc.bw.Write(frame); err != nil {
		return err
	}
	if flush {
		if err := wc.bw.Flush(); err != nil {
			return err
		}
	}
	wc.met.txFrames.Inc()
	wc.met.txBytes.Add(uint64(len(frame)))
	return nil
}

// sendError emits a fatal protocol error frame; the caller closes the
// connection after it.
func (wc *wireConn) sendError(msg string) {
	_ = wc.writeFrame(wire.EncodeError(nil, wire.WireError{Message: msg}), true)
}

// handleConn runs one connection: handshake, then a read loop spawning
// per-submission pipeline calls, with a writer goroutine coalescing
// their acks.
func (ws *WireServer) handleConn(c net.Conn) {
	defer ws.wg.Done()
	defer ws.forget(c)
	defer c.Close()

	log := ws.opts.Logger
	ws.srv.wireConnDelta(1)
	ws.met.connections.Add(1)
	defer func() {
		ws.srv.wireConnDelta(-1)
		ws.met.connections.Add(-1)
	}()

	// The connection context cancels in-flight verifications when the
	// client goes away — the wire equivalent of an aborted HTTP request.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	br := bufio.NewReaderSize(c, 64<<10)
	wc := &wireConn{c: c, met: &ws.met, bw: bufio.NewWriterSize(c, 64<<10)}

	if !ws.handshake(br, wc) {
		return
	}

	// Acks flow from the per-submission goroutines to the writer, which
	// coalesces whatever is ready into one frame per flush.
	acks := make(chan wire.Ack, 256)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		ws.ackWriter(wc, acks)
	}()

	// pipelineSlots bounds this connection's in-flight submissions;
	// acquiring in the read loop turns overrun into TCP backpressure.
	pipelineSlots := make(chan struct{}, ws.opts.MaxPipeline)
	var submitWG sync.WaitGroup

	ws.readLoop(ctx, br, wc, acks, pipelineSlots, &submitWG)

	// Unblock in-flight verifications, let their acks drain, then stop
	// the writer.
	cancel()
	submitWG.Wait()
	close(acks)
	writerWG.Wait()
	log.Debug(ctx, "wire connection closed", "remote", c.RemoteAddr().String())
}

// handshake enforces the Hello/HelloAck exchange and version agreement.
func (ws *WireServer) handshake(br *bufio.Reader, wc *wireConn) bool {
	version, data, err := wire.ReadFrame(br, ws.opts.MaxFrameBytes)
	if err != nil {
		ws.met.errors.Inc()
		return false
	}
	ws.met.rxFrames.Inc()
	ws.met.rxBytes.Add(uint64(wire.HeaderBytes + 1 + len(data)))
	typ, body, err := wire.SplitType(data)
	if err != nil || typ != wire.TypeHello {
		ws.met.errors.Inc()
		wc.sendError("expected hello")
		return false
	}
	if !wire.SupportedVersion(version) {
		// Version negotiation: the server names the version it speaks so
		// a newer client can downgrade and redial.
		ws.met.errors.Inc()
		wc.sendError(wire.ErrUnknownVersion.Error())
		return false
	}
	if _, err := wire.DecodeHello(body); err != nil {
		ws.met.errors.Inc()
		wc.sendError(err.Error())
		return false
	}
	// Echo the client's version: every version this build supports it
	// speaks in full, so the dialer's proposal is always accepted.
	return wc.writeFrame(wire.EncodeHelloAck(nil, wire.HelloAck{Version: version}), true) == nil
}

// readLoop consumes frames until EOF or a protocol error, dispatching
// submissions into the pipeline.
func (ws *WireServer) readLoop(ctx context.Context, br *bufio.Reader, wc *wireConn,
	acks chan<- wire.Ack, pipelineSlots chan struct{}, submitWG *sync.WaitGroup) {
	log := ws.opts.Logger
	for {
		version, data, err := wire.ReadFrame(br, ws.opts.MaxFrameBytes)
		if err != nil {
			if err != io.EOF {
				// A torn frame is expected when a client dies mid-write;
				// CRC or length failures mean a confused peer. Either way
				// the stream is unreadable from here.
				ws.met.errors.Inc()
				log.Debug(ctx, "wire read error", "err", err.Error())
				if errors.Is(err, wire.ErrBadCRC) || errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrEmptyFrame) {
					wc.sendError(err.Error())
				}
			}
			return
		}
		ws.met.rxFrames.Inc()
		ws.met.rxBytes.Add(uint64(wire.HeaderBytes + 1 + len(data)))
		if !wire.SupportedVersion(version) {
			ws.met.errors.Inc()
			wc.sendError(wire.ErrUnknownVersion.Error())
			return
		}
		typ, body, err := wire.SplitType(data)
		if err != nil {
			ws.met.errors.Inc()
			wc.sendError(err.Error())
			return
		}
		switch typ {
		case wire.TypeSubmit:
			sub, err := wire.DecodeSubmit(body)
			if err != nil {
				ws.met.errors.Inc()
				wc.sendError(err.Error())
				return
			}
			select {
			case pipelineSlots <- struct{}{}:
			case <-ctx.Done():
				return
			}
			ws.met.submissions.Inc()
			submitWG.Add(1)
			go func() {
				defer submitWG.Done()
				defer func() { <-pipelineSlots }()
				sctx, sp := ws.srv.Tracer().StartSpan(ctx, "wire.submit")
				sp.SetAttr("drone", sub.DroneID)
				resp, err := ws.srv.SubmitPoACtx(sctx, protocol.SubmitPoARequest{
					DroneID:      sub.DroneID,
					EncryptedPoA: sub.Ciphertext,
				})
				sp.SetError(err)
				sp.End()
				select {
				case acks <- ackFor(sub.Seq, resp, err):
				case <-ctx.Done():
				}
			}()
		case wire.TypeSubmitCommit:
			// A commit-mode submission: same shape as a submit, but the
			// payload is the encrypted TEE-signed commitment envelope and
			// verification runs the commit pipeline.
			sub, err := wire.DecodeSubmitCommit(body)
			if err != nil {
				ws.met.errors.Inc()
				wc.sendError(err.Error())
				return
			}
			select {
			case pipelineSlots <- struct{}{}:
			case <-ctx.Done():
				return
			}
			ws.met.submissions.Inc()
			submitWG.Add(1)
			go func() {
				defer submitWG.Done()
				defer func() { <-pipelineSlots }()
				sctx, sp := ws.srv.Tracer().StartSpan(ctx, "wire.submit-commit")
				sp.SetAttr("drone", sub.DroneID)
				resp, err := ws.srv.SubmitCommitPoACtx(sctx, protocol.SubmitCommitPoARequest{
					DroneID:           sub.DroneID,
					EncryptedEnvelope: sub.Ciphertext,
				})
				sp.SetError(err)
				sp.End()
				select {
				case acks <- ackFor(sub.Seq, resp, err):
				case <-ctx.Done():
				}
			}()
		case wire.TypeForward:
			// A peer's single-hop forward: same payload as a submit, but the
			// context is marked forwarded so a routing backend executes it
			// locally (or raises ErrMisrouted) instead of forwarding again.
			// From Version2 the frame carries the forwarder's traceparent,
			// so the owner-side span continues the routing node's trace.
			fwd, err := wire.DecodeForwardV(version, body)
			if err != nil {
				ws.met.errors.Inc()
				wc.sendError(err.Error())
				return
			}
			select {
			case pipelineSlots <- struct{}{}:
			case <-ctx.Done():
				return
			}
			ws.met.submissions.Inc()
			submitWG.Add(1)
			go func() {
				defer submitWG.Done()
				defer func() { <-pipelineSlots }()
				sctx, sp := ws.srv.Tracer().StartRemote(withForwarded(ctx), fwd.TraceParent, "wire.forward")
				sp.SetAttr("drone", fwd.DroneID)
				resp, err := ws.srv.SubmitPoACtx(sctx, protocol.SubmitPoARequest{
					DroneID:      fwd.DroneID,
					EncryptedPoA: fwd.Ciphertext,
				})
				sp.SetError(err)
				sp.End()
				select {
				case acks <- ackFor(fwd.Seq, resp, err):
				case <-ctx.Done():
				}
			}()
		case wire.TypeClusterMap:
			cb, ok := ws.srv.(clusterBackend)
			if !ok {
				ws.met.errors.Inc()
				wc.sendError("cluster map: not a cluster node")
				return
			}
			js, err := cb.clusterMapJSON()
			if err != nil {
				wc.sendError("cluster map: " + err.Error())
				return
			}
			if wc.writeFrame(wire.EncodeClusterMap(nil, js), true) != nil {
				return
			}
		case wire.TypeGossip:
			cb, ok := ws.srv.(clusterBackend)
			if !ok {
				ws.met.errors.Inc()
				wc.sendError("gossip: not a cluster node")
				return
			}
			digest, err := wire.DecodeGossip(body)
			if err != nil {
				ws.met.errors.Inc()
				wc.sendError(err.Error())
				return
			}
			reply, err := cb.gossipExchange(digest)
			if err != nil {
				wc.sendError("gossip: " + err.Error())
				return
			}
			if wc.writeFrame(wire.EncodeGossip(nil, reply), true) != nil {
				return
			}
		case wire.TypeRegister:
			// Registration is rare and order-sensitive (the drone needs
			// its ID before submitting), so it runs synchronously.
			r, err := wire.DecodeRegister(body)
			if err != nil {
				ws.met.errors.Inc()
				wc.sendError(err.Error())
				return
			}
			resp, err := ws.srv.RegisterDroneCtx(ctx, protocol.RegisterDroneRequest{
				OperatorPub: r.OperatorPub,
				TEEPub:      r.TEEPub,
				Suite:       r.Suite,
				Disclosure:  r.Disclosure,
			})
			if err != nil {
				wc.sendError("register: " + err.Error())
				return
			}
			if wc.writeFrame(wire.EncodeRegisterAck(nil, wire.RegisterAck{DroneID: resp.DroneID}), true) != nil {
				return
			}
		case wire.TypeHello:
			ws.met.errors.Inc()
			wc.sendError("duplicate hello")
			return
		default:
			ws.met.errors.Inc()
			wc.sendError(wire.ErrUnknownType.Error())
			return
		}
	}
}

// ackWriter drains the ack channel, coalescing every ack available at
// flush time into a single frame — under pipelined load many verdicts
// share one write and one TCP segment.
func (ws *WireServer) ackWriter(wc *wireConn, acks <-chan wire.Ack) {
	batch := make([]wire.Ack, 0, wire.MaxAcksPerFrame)
	var buf []byte
	var dead bool // conn failed: keep draining so submitters never block
	for a := range acks {
		batch = append(batch[:0], a)
	coalesce:
		for len(batch) < wire.MaxAcksPerFrame {
			select {
			case more, ok := <-acks:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
			default:
				break coalesce
			}
		}
		for _, b := range batch {
			ws.met.ackCounter(b.Status).Inc()
		}
		if dead {
			continue
		}
		var err error
		buf, err = wire.EncodeAcks(buf[:0], batch)
		if err != nil {
			continue // unreachable: batch is 1..MaxAcksPerFrame
		}
		if wc.writeFrame(buf, true) != nil {
			dead = true
			wc.c.Close() // unblock the read loop
		}
	}
}

// ackFor converts a pipeline outcome into its wire ack, mapping the
// typed overload error onto the 429/Retry-After equivalent.
func ackFor(seq uint64, resp protocol.SubmitPoAResponse, err error) wire.Ack {
	ack := wire.Ack{Seq: seq}
	if err == nil {
		ack.Status = wire.StatusViolation
		if resp.Verdict == protocol.VerdictCompliant {
			ack.Status = wire.StatusCompliant
		}
		ack.Reason = resp.Reason
		if resp.InsufficientPairs > 0 && resp.InsufficientPairs <= 1<<16-1 {
			ack.InsufficientPairs = uint16(resp.InsufficientPairs)
		}
		return ack
	}
	var over *protocol.OverloadedError
	if errors.As(err, &over) {
		ack.Status = wire.StatusOverloaded
		ack.RetryAfterMS = uint32(over.RetryAfter / time.Millisecond)
		ack.Reason = protocol.ErrOverloaded.Error()
		return ack
	}
	ack.Status = wire.StatusError
	ack.Reason = err.Error()
	return ack
}
