package auditor

// Key-rotation tests: the acceptance window for retired epochs (keyed by
// the injectable clock), handover validation, the HTTP status mapping,
// and durability of rotations across WAL recovery including kill-points
// cut inside the rotation record.

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// newSuiteKey generates one fresh private key of the given suite.
func newSuiteKey(t *testing.T, suiteID string, seed int64) sigcrypto.PrivateKey {
	t.Helper()
	suite, err := sigcrypto.SuiteByID(suiteID)
	if err != nil {
		t.Fatal(err)
	}
	key, err := suite.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// signedHandover builds a handover from oldEpoch to oldEpoch+1 vouched
// for by the outgoing key.
func signedHandover(t *testing.T, droneID string, oldEpoch int, outgoing sigcrypto.PrivateKey, next sigcrypto.PublicKey, at time.Time) sigcrypto.Handover {
	t.Helper()
	pub, err := next.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h := sigcrypto.Handover{
		DroneID:  droneID,
		OldEpoch: oldEpoch,
		NewEpoch: oldEpoch + 1,
		NewPub:   pub,
		At:       at,
	}
	if err := sigcrypto.SignHandover(&h, outgoing); err != nil {
		t.Fatal(err)
	}
	return h
}

// epochTrace signs a trace under the given key, stamping every sample
// with the key's rotation epoch. Sample times start at `start` so the
// trace stays fresh as tests advance the clock.
func epochTrace(t *testing.T, key sigcrypto.PrivateKey, epoch int, start time.Time, n int, gap time.Duration) poa.PoA {
	t.Helper()
	var p poa.PoA
	for i := 0; i < n; i++ {
		s := poa.Sample{
			Pos:  urbana.Offset(90, 10*float64(i)*gap.Seconds()),
			Time: start.Add(time.Duration(i) * gap),
		}.Canon()
		sig, err := key.Sign(s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		p.Append(poa.SignedSample{Sample: s, Sig: sig, KeyEpoch: epoch})
	}
	return p
}

func submitVerdict(t *testing.T, srv *Server, id string, p poa.PoA) protocol.SubmitPoAResponse {
	t.Helper()
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: id, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRotationAcceptanceWindow is the core rotation property: after a
// rotation, PoAs signed under the retired epoch verify while the
// Auditor clock is inside the acceptance window, and are rejected as
// violations — not internal errors — once the window closes. The new
// epoch keeps verifying throughout, and an epoch the Auditor never saw
// is rejected outright.
func TestRotationAcceptanceWindow(t *testing.T) {
	clock := &mutableClock{t: t0}
	srv, id, keys := newSuiteFixtureConfig(t, sigcrypto.SuiteEd25519, Config{
		Clock:   clock,
		Metrics: obs.NewRegistry(nil),
	})

	next := newSuiteKey(t, sigcrypto.SuiteEd25519, 7)
	h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
	resp, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h})
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if resp.Epoch != 1 {
		t.Fatalf("active epoch = %d, want 1", resp.Epoch)
	}

	// Inside the window: a flight that straddled the rotation submits
	// samples signed under the retired epoch-0 key.
	clock.Set(t0.Add(5 * time.Minute))
	old := submitVerdict(t, srv, id, epochTrace(t, keys.tee, 0, t0.Add(time.Minute), 10, time.Second))
	if old.Verdict != protocol.VerdictCompliant {
		t.Fatalf("old-epoch PoA inside window: %v (%s)", old.Verdict, old.Reason)
	}

	// Past the window: the same epoch is now a violation with an
	// explanatory reason, not an internal error.
	clock.Set(t0.Add(DefaultRotationWindow + time.Minute))
	expired := submitVerdict(t, srv, id, epochTrace(t, keys.tee, 0, t0.Add(16*time.Minute), 10, time.Second))
	if expired.Verdict != protocol.VerdictViolation {
		t.Fatalf("old-epoch PoA past window: %v (%s)", expired.Verdict, expired.Reason)
	}
	if !strings.Contains(expired.Reason, "acceptance window") {
		t.Errorf("expiry reason %q does not name the acceptance window", expired.Reason)
	}

	// The active epoch is unaffected by the old key's expiry.
	fresh := submitVerdict(t, srv, id, epochTrace(t, next, 1, t0.Add(17*time.Minute), 10, time.Second))
	if fresh.Verdict != protocol.VerdictCompliant {
		t.Fatalf("new-epoch PoA: %v (%s)", fresh.Verdict, fresh.Reason)
	}

	// An epoch the Auditor has no key for.
	unknown := submitVerdict(t, srv, id, epochTrace(t, next, 9, t0.Add(18*time.Minute), 10, time.Second))
	if unknown.Verdict != protocol.VerdictViolation || !strings.Contains(unknown.Reason, "unknown key epoch") {
		t.Fatalf("unknown-epoch PoA: %v (%s)", unknown.Verdict, unknown.Reason)
	}
}

// TestRotationBatchEnvelopeWindow runs the same window property through
// the §VII-A1b batch-seal door, which resolves the key from the
// envelope's KeyEpoch rather than per sample.
func TestRotationBatchEnvelopeWindow(t *testing.T) {
	clock := &mutableClock{t: t0}
	srv, id, keys := newSuiteFixtureConfig(t, sigcrypto.SuiteEd25519, Config{
		Clock:   clock,
		Metrics: obs.NewRegistry(nil),
	})
	next := newSuiteKey(t, sigcrypto.SuiteEd25519, 8)
	h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
	if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); err != nil {
		t.Fatal(err)
	}

	seal := func(key sigcrypto.PrivateKey, epoch int, start time.Time) []byte {
		samples := epochTrace(t, key, epoch, start, 10, time.Second).Alibi()
		sig, err := key.Sign(poa.MarshalBatch(samples))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(poa.BatchPoA{Samples: samples, Sig: sig, KeyEpoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		return encryptBytes(t, srv, data)
	}

	clock.Set(t0.Add(time.Minute))
	resp, err := srv.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: id, EncryptedBatch: seal(keys.tee, 0, t0)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("old-epoch batch inside window: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}

	clock.Set(t0.Add(DefaultRotationWindow + time.Minute))
	resp, err = srv.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: id, EncryptedBatch: seal(keys.tee, 0, t0.Add(16*time.Minute))})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation || !strings.Contains(resp.Reason, "acceptance window") {
		t.Fatalf("old-epoch batch past window: %v (%s)", resp.Verdict, resp.Reason)
	}

	resp, err = srv.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: id, EncryptedBatch: seal(next, 1, t0.Add(17*time.Minute))})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("new-epoch batch: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}
}

// TestRotationHandoverRejections enumerates the ways a handover must
// fail: every doctored record is refused with ErrBadHandover and the
// ring stays at epoch 0.
func TestRotationHandoverRejections(t *testing.T) {
	newFix := func(t *testing.T) (*Server, string, suiteKeys, sigcrypto.PrivateKey) {
		srv, id, keys := newSuiteFixture(t, sigcrypto.SuiteEd25519)
		return srv, id, keys, newSuiteKey(t, sigcrypto.SuiteEd25519, 11)
	}

	t.Run("not signed by outgoing key", func(t *testing.T) {
		srv, id, _, next := newFix(t)
		// The successor key vouches for itself — exactly what a
		// compromised normal world would try.
		h := signedHandover(t, id, 0, next, next.Public(), t0)
		_, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h})
		if !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("tampered signature", func(t *testing.T) {
		srv, id, keys, next := newFix(t)
		h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
		h.Sig[0] ^= 0x01
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("wrong outgoing epoch", func(t *testing.T) {
		srv, id, keys, next := newFix(t)
		h := signedHandover(t, id, 3, keys.tee, next.Public(), t0)
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("epoch skip", func(t *testing.T) {
		srv, id, keys, next := newFix(t)
		h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
		h.NewEpoch = 2 // breaks the signature too, but the structural check fires first
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("suite change", func(t *testing.T) {
		srv, id, keys, _ := newFix(t)
		rsaNext := newSuiteKey(t, sigcrypto.SuiteRSA1024, 12)
		h := signedHandover(t, id, 0, keys.tee, rsaNext.Public(), t0)
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("drone id mismatch", func(t *testing.T) {
		srv, id, keys, next := newFix(t)
		h := signedHandover(t, "drone-9999", 0, keys.tee, next.Public(), t0)
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); !errors.Is(err, sigcrypto.ErrBadHandover) {
			t.Fatalf("err = %v, want ErrBadHandover", err)
		}
	})

	t.Run("unknown drone", func(t *testing.T) {
		srv, _, keys, next := newFix(t)
		h := signedHandover(t, "drone-9999", 0, keys.tee, next.Public(), t0)
		if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: "drone-9999", Handover: h}); !errors.Is(err, ErrUnknownDrone) {
			t.Fatalf("err = %v, want ErrUnknownDrone", err)
		}
	})

	// In every rejection case the ring must still be the single
	// manufacture-time key.
	srv, id, keys, next := newFix(t)
	h := signedHandover(t, id, 0, next, next.Public(), t0)
	_, _ = srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h})
	rec, _ := srv.drones.get(id)
	if len(rec.TEEKeys) != 1 || rec.ActiveKey().Epoch != 0 {
		t.Fatalf("ring mutated by rejected handover: %+v", rec.TEEKeys)
	}
	if v := submitVerdict(t, srv, id, epochTrace(t, keys.tee, 0, t0, 5, time.Second)); v.Verdict != protocol.VerdictCompliant {
		t.Fatalf("epoch-0 PoA after rejected handover: %v (%s)", v.Verdict, v.Reason)
	}
}

// TestRotationHTTPStatus checks the transport mapping: a bad handover is
// the client's fault and maps to 403, a good one returns the new epoch.
func TestRotationHTTPStatus(t *testing.T) {
	srv, id, keys := newSuiteFixture(t, sigcrypto.SuiteEd25519)
	hs := httptest.NewServer(NewHandler(srv))
	defer hs.Close()

	next := newSuiteKey(t, sigcrypto.SuiteEd25519, 13)
	post := func(h sigcrypto.Handover) *http.Response {
		body, err := json.Marshal(protocol.RotateKeyRequest{DroneID: id, Handover: h})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+protocol.PathRotateKey, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	bad := signedHandover(t, id, 0, next, next.Public(), t0) // self-vouched
	resp := post(bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bad handover status = %d, want 403", resp.StatusCode)
	}

	good := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
	resp = post(good)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good handover status = %d, want 200", resp.StatusCode)
	}
	var rk protocol.RotateKeyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rk); err != nil || rk.Epoch != 1 {
		t.Fatalf("rotate response = %+v (err %v), want epoch 1", rk, err)
	}
}

// TestRotationSurvivesRecovery rotates on a WAL-backed server, restarts
// it, and checks the full ring — retired epoch inside its window and the
// active epoch — came back, and that the window expiry still applies
// after the restart.
func TestRotationSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	srv, st := openStoreServer(t, dir, recoveryConfig(clock))
	id, keys := registerSuiteDrone(t, srv, sigcrypto.SuiteEd25519, rand.New(rand.NewSource(44)))

	next := newSuiteKey(t, sigcrypto.SuiteEd25519, 14)
	h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
	if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	clock.Set(t0.Add(5 * time.Minute))
	srv2, st2 := openStoreServer(t, dir, recoveryConfig(clock))
	defer st2.Close()

	rec, ok := srv2.drones.get(id)
	if !ok || rec.ActiveKey().Epoch != 1 || len(rec.TEEKeys) != 2 {
		t.Fatalf("recovered ring = %+v", rec.TEEKeys)
	}
	if rec.TEEKeys[0].RetiredAt.IsZero() {
		t.Fatal("recovered retired key has no RetiredAt")
	}

	if v := submitVerdict(t, srv2, id, epochTrace(t, keys.tee, 0, t0.Add(time.Minute), 5, time.Second)); v.Verdict != protocol.VerdictCompliant {
		t.Fatalf("old epoch after restart, inside window: %v (%s)", v.Verdict, v.Reason)
	}
	if v := submitVerdict(t, srv2, id, epochTrace(t, next, 1, t0.Add(2*time.Minute), 5, time.Second)); v.Verdict != protocol.VerdictCompliant {
		t.Fatalf("active epoch after restart: %v (%s)", v.Verdict, v.Reason)
	}

	clock.Set(t0.Add(DefaultRotationWindow + time.Minute))
	v := submitVerdict(t, srv2, id, epochTrace(t, keys.tee, 0, t0.Add(16*time.Minute), 5, time.Second))
	if v.Verdict != protocol.VerdictViolation || !strings.Contains(v.Reason, "acceptance window") {
		t.Fatalf("old epoch after restart, past window: %v (%s)", v.Verdict, v.Reason)
	}
}

// TestRotationKillPoints cuts the WAL at and inside the rotation record:
// a crash before the record committed recovers to epoch 0 (and the
// rotation can be retried), a crash after recovers to epoch 1.
func TestRotationKillPoints(t *testing.T) {
	dir := t.TempDir()
	clock := &mutableClock{t: t0}
	srv, st := openStoreServer(t, dir, recoveryConfig(clock))
	id, keys := registerSuiteDrone(t, srv, sigcrypto.SuiteEd25519, rand.New(rand.NewSource(45)))
	next := newSuiteKey(t, sigcrypto.SuiteEd25519, 15)
	h := signedHandover(t, id, 0, keys.tee, next.Public(), t0)
	if _, err := srv.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	seg := activeSegment(t, dir)
	kinds, ends := walFrames(t, seg)
	rotAt := -1
	for i, k := range kinds {
		if k == recKeyRotated {
			rotAt = i
		}
	}
	if rotAt < 1 {
		t.Fatalf("no key-rotated frame in %v", kinds)
	}

	cuts := []struct {
		name      string
		len       int64
		wantEpoch int
	}{
		{"before rotation record", ends[rotAt-1], 0},
		{"inside rotation record", ends[rotAt] - 3, 0},
		{"after rotation record", ends[rotAt], 1},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			cutDir := t.TempDir()
			copyDir(t, dir, cutDir)
			cutSeg := filepath.Join(cutDir, filepath.Base(seg))
			if err := os.Truncate(cutSeg, cut.len); err != nil {
				t.Fatal(err)
			}
			srv2, st2 := openStoreServer(t, cutDir, recoveryConfig(clock))
			defer st2.Close()
			rec, ok := srv2.drones.get(id)
			if !ok {
				t.Fatal("drone lost in recovery")
			}
			if rec.ActiveKey().Epoch != cut.wantEpoch {
				t.Fatalf("active epoch = %d, want %d", rec.ActiveKey().Epoch, cut.wantEpoch)
			}
			if cut.wantEpoch == 0 {
				// The lost rotation can simply be retried.
				if _, err := srv2.RotateKey(protocol.RotateKeyRequest{DroneID: id, Handover: h}); err != nil {
					t.Fatalf("re-rotate after truncated WAL: %v", err)
				}
			}
		})
	}
}
