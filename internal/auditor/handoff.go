package auditor

// Shard handoff: when the ring changes (a node joins, or a map learned
// via gossip reassigns drones), the previous owner streams its shard
// snapshots to the new owners so verification state — drone records,
// retained PoAs, replay digests, nonces, zones — survives the move.
//
// The protocol is deliberately coarse: the source sends every local
// shard's full snapshot to every peer, and each receiver imports only
// the entries the current ring assigns to it, then checkpoints the
// touched shards before acknowledging. A checkpointed import is durable
// on the new owner — that checkpoint, not a per-record WAL append, is
// the durability carrier for moved state (the kill-point recovery test
// exercises exactly this). The source keeps its copy: a mis-routed
// request still answers there until clients refresh their map, and the
// single-hop guard turns any residual disagreement into a 421 rather
// than a loop.

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/protocol"
)

// Rebalance exports every local shard's snapshot and streams the bundle
// to every alive peer. Receivers filter by ownership, so sending to all
// peers is correct (if wasteful) under any ring disagreement. It is
// invoked automatically when the membership map changes and can be
// called explicitly (tests, an operator-triggered drain).
func (r *Router) Rebalance(ctx context.Context) error {
	m := r.membership.Map()
	peers := r.membership.Peers()
	if len(peers) == 0 {
		return nil
	}
	clock := r.clock
	start := clock.Now()

	// One rebalance = one trace: the export span roots it, each peer
	// stream is a child, and the peer's install — continuing via the
	// traceparent clusterPost injects — hangs underneath its stream.
	ectx, esp := r.tracer().StartSpan(ctx, "cluster.handoff.export")
	esp.SetAttr("mapVersion", fmt.Sprint(m.Version))

	// Hold the handoff lock only for the export: streaming to peers under
	// it would deadlock two nodes rebalancing toward each other (each
	// POST waits on an import that waits on the sender's own lock).
	r.handoffMu.Lock()
	states := make([]json.RawMessage, 0, len(r.shards))
	for i, sh := range r.shards {
		data, err := sh.snapshotBytes()
		if err != nil {
			r.handoffMu.Unlock()
			esp.SetError(err)
			esp.End()
			return fmt.Errorf("cluster: handoff export shard %d: %w", i, err)
		}
		states = append(states, data)
	}
	r.handoffMu.Unlock()
	esp.End()
	req := protocol.ClusterHandoffRequest{From: r.cfg.Self.ID, MapVersion: m.Version, State: states}

	var firstErr error
	for _, peer := range peers {
		sctx, ssp := r.tracer().StartSpan(ectx, "cluster.handoff.stream")
		ssp.SetAttr("peer", peer.ID)
		_, err := clusterPost[struct{}](sctx, r.client, peer.Addr, protocol.PathClusterHandoff, req, false)
		ssp.SetError(err)
		ssp.End()
		if err != nil {
			r.log.Warn(ctx, "handoff failed", "peer", peer.ID, "err", err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if r.handoffSeconds != nil {
		r.handoffSeconds.Observe(clock.Now().Sub(start).Seconds())
	}
	return firstErr
}

// clusterHandoff imports the slice of a peer's state that the current
// ring assigns to this node, checkpoints the touched shards, and only
// then acknowledges. Re-deliveries of the same (source, map version)
// are dropped so repeated rebalance rounds never duplicate retained
// PoAs.
func (r *Router) clusterHandoff(ctx context.Context, req protocol.ClusterHandoffRequest) error {
	r.handoffMu.Lock()
	defer r.handoffMu.Unlock()

	if req.MapVersion <= r.handoffsSeen[req.From] {
		return nil
	}
	clock := r.clock
	start := clock.Now()

	touched := make(map[int]bool)
	for i, raw := range req.State {
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("cluster: handoff from %s: shard %d: %w", req.From, i, err)
		}
		if err := r.importSnapshot(snap, touched); err != nil {
			return fmt.Errorf("cluster: handoff from %s: shard %d: %w", req.From, i, err)
		}
	}
	for sh := range touched {
		if err := r.shards[sh].Checkpoint(); err != nil {
			return fmt.Errorf("cluster: handoff checkpoint shard %d: %w", sh, err)
		}
	}
	r.handoffsSeen[req.From] = req.MapVersion
	if r.handoffSeconds != nil {
		r.handoffSeconds.Observe(clock.Now().Sub(start).Seconds())
	}
	r.log.Info(ctx, "handoff imported", "from", req.From, "mapVersion", req.MapVersion)
	return nil
}

// importSnapshot files one source shard's state into the local shards.
// Drone-keyed state (records, retained PoAs) goes only to drones this
// node owns under the current ring; zones, replay digests and nonces
// are safety-relevant on every shard and are imported everywhere —
// over-approximating the replay set can only reject a replay that
// would otherwise slip through, never a fresh submission.
func (r *Router) importSnapshot(snap snapshot, touched map[int]bool) error {
	for _, d := range snap.Drones {
		if _, isLocal := r.owner(d.ID); !isLocal {
			continue
		}
		rec, err := decodeDroneSnapshot(d)
		if err != nil {
			return err
		}
		sh := r.shardFor(d.ID)
		r.shards[sh].drones.restore(rec, 0)
		touched[sh] = true
	}
	for _, rt := range snap.Retained {
		if _, isLocal := r.owner(rt.DroneID); !isLocal {
			continue
		}
		sh := r.shardFor(rt.DroneID)
		// add (not restore) re-stamps the sequence number under the new
		// shard's counter; source-side sequence numbers are meaningless
		// here.
		r.shards[sh].retained.add(retainedPoA{
			DroneID:    rt.DroneID,
			Samples:    rt.Samples,
			SubmitTime: rt.SubmitTime,
		})
		touched[sh] = true
	}
	for _, z := range snap.Zones {
		for sh, srv := range r.shards {
			if err := srv.zones.Restore(z); err != nil {
				return err
			}
			touched[sh] = true
		}
	}
	for _, z := range snap.Zones3D {
		for sh, srv := range r.shards {
			srv.zones3D.restore(z, 0)
			touched[sh] = true
		}
	}
	for _, n := range snap.Nonces {
		for sh, srv := range r.shards {
			srv.nonces.restore(n)
			touched[sh] = true
		}
	}
	for _, dg := range snap.PoADigests {
		raw, err := hex.DecodeString(dg.Digest)
		if err != nil || len(raw) != 32 {
			return fmt.Errorf("bad PoA digest %q", dg.Digest)
		}
		var d [32]byte
		copy(d[:], raw)
		for sh, srv := range r.shards {
			srv.seen.restore(d, dg.Seen)
			touched[sh] = true
		}
	}
	return nil
}
