package auditor

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// scrape fetches and returns the /metrics exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of one exact series line from an
// exposition body, or -1 when absent.
func metricValue(body, series string) float64 {
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " (.+)$")
	m := re.FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return -1
	}
	return v
}

// TestMetricsEndpointExposition submits one compliant and one violating
// PoA over HTTP, then checks the exposition reports the per-stage
// verification pipeline, verdict counters, retention gauge and
// per-endpoint request counts in the documented format.
func TestMetricsEndpointExposition(t *testing.T) {
	hs, srv, droneID, keys := httpFixture(t)
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "bob", Zone: geo.GeoCircle{Center: urbana.Offset(0, 60), R: 30},
	}); err != nil {
		t.Fatal(err)
	}

	// Compliant: dense 1 s trace. Violating: sparse 20 s gaps.
	good := signedTrace(t, keys, urbana, 90, 10, 30, time.Second)
	bad := signedTrace(t, keys, urbana, 90, 10, 5, 20*time.Second)
	resp := postJSON(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{
		DroneID: droneID, EncryptedPoA: encryptFor(t, srv, good),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good submit status = %d", resp.StatusCode)
	}
	resp = postJSON(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{
		DroneID: droneID, EncryptedPoA: encryptFor(t, srv, bad),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bad submit status = %d", resp.StatusCode)
	}

	body := scrape(t, hs.URL)

	wantSeries := map[string]float64{
		`alidrone_auditor_verify_stage_seconds_count{stage="signature"}`:         2,
		`alidrone_auditor_verify_stage_seconds_count{stage="chronology"}`:        2,
		`alidrone_auditor_verify_stage_seconds_count{stage="speed"}`:             2,
		`alidrone_auditor_verify_stage_seconds_count{stage="sufficiency"}`:       2,
		`alidrone_auditor_verify_stage_total{result="pass",stage="signature"}`:   2,
		`alidrone_auditor_verify_stage_total{result="pass",stage="sufficiency"}`: 1,
		`alidrone_auditor_verify_stage_total{result="fail",stage="sufficiency"}`: 1,
		`alidrone_auditor_submissions_total{verdict="compliant"}`:                1,
		`alidrone_auditor_submissions_total{verdict="violation"}`:                1,
		`alidrone_auditor_retained_poas`:                                         1,
		`alidrone_auditor_http_requests_total{path="/v1/submit-poa"}`:            2,
		`alidrone_auditor_http_request_seconds_count{path="/v1/submit-poa"}`:     2,
	}
	for series, want := range wantSeries {
		if got := metricValue(body, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	// Stage timings are non-zero: RSA signature verification takes real
	// time, so the stage-seconds sum must be positive.
	if sum := metricValue(body, `alidrone_auditor_verify_stage_seconds_sum{stage="signature"}`); sum <= 0 {
		t.Errorf("signature stage sum = %v, want > 0", sum)
	}
}

func TestHealthz(t *testing.T) {
	hs, _, _, _ := httpFixture(t)
	resp, err := http.Get(hs.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Errorf("healthz body = %q", body)
	}
	if presp, err := http.Post(hs.URL+PathHealthz, "", nil); err == nil {
		presp.Body.Close()
		if presp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST healthz = %d", presp.StatusCode)
		}
	}
}

// TestMetricsDisabled: a server without a registry serves 404 on /metrics
// but still answers /healthz.
func TestMetricsDisabled(t *testing.T) {
	srv, err := NewServer(Config{Clock: obs.ClockFunc(func() time.Time { return t0 })})
	if err != nil {
		t.Fatal(err)
	}
	hs := newTestHTTPServer(t, srv)
	resp, err := http.Get(hs + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /metrics status = %d, want 404", resp.StatusCode)
	}
	hresp, err := http.Get(hs + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", hresp.StatusCode)
	}
}

// TestMetricsConcurrentScrape hammers /metrics while submissions are in
// flight; under -race this guards the scrape path against data races.
func TestMetricsConcurrentScrape(t *testing.T) {
	hs, srv, droneID, keys := httpFixture(t)
	// A zone near the trace makes the sparse 20 s-gap trace insufficient,
	// so every submission is a violation — violations are never recorded
	// for replay detection, which keeps the same ciphertext resubmittable.
	if _, err := srv.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "bob", Zone: geo.GeoCircle{Center: urbana.Offset(0, 60), R: 30},
	}); err != nil {
		t.Fatal(err)
	}
	p := signedTrace(t, keys, urbana, 90, 10, 5, 20*time.Second)
	ct := encryptFor(t, srv, p)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp := postJSONNoFatal(t, hs.URL+protocol.PathSubmitPoA, protocol.SubmitPoARequest{
					DroneID: droneID, EncryptedPoA: ct,
				})
				if resp != nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(hs.URL + PathMetrics)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	body := scrape(t, hs.URL)
	if got := metricValue(body, `alidrone_auditor_submissions_total{verdict="violation"}`); got != 15 {
		t.Errorf("violations = %v, want 15", got)
	}
}

// TestRetentionExpiryExactWindow pins the expiry boundary with a fake
// clock: one nanosecond before SubmitTime+Retention the PoA is kept, at
// exactly SubmitTime+Retention it is purged. No sleeping involved.
func TestRetentionExpiryExactWindow(t *testing.T) {
	clock := obs.NewFakeClock(t0)
	reg := obs.NewRegistry(clock)
	srv, droneID, keys := retentionFixture(t, clock, reg, 48*time.Hour)

	p := signedTrace(t, keys, urbana, 90, 10, 10, time.Second)
	resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)})
	if err != nil || resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("submit: %v / %v (%s)", err, resp.Verdict, resp.Reason)
	}

	clock.Set(t0.Add(48*time.Hour - time.Nanosecond))
	if removed := srv.PurgeExpired(); removed != 0 {
		t.Fatalf("purged %d one nanosecond before the window closed", removed)
	}
	if srv.RetainedCount() != 1 {
		t.Fatal("PoA lost before expiry")
	}

	clock.Set(t0.Add(48 * time.Hour))
	if removed := srv.PurgeExpired(); removed != 1 {
		t.Fatalf("purged %d at exactly the retention window, want 1", removed)
	}
	if srv.RetainedCount() != 0 {
		t.Fatal("PoA survived past expiry")
	}
	if got := reg.Gauge(MetricRetainedPoAs).Value(); got != 0 {
		t.Errorf("retained gauge = %v, want 0", got)
	}
	if got := reg.Counter(MetricEvictedPoAsTotal).Value(); got != 1 {
		t.Errorf("evicted counter = %v, want 1", got)
	}
}

// TestSweeperDeterministic drives the housekeeping loop through an
// injected tick channel and fake clock: no real timers, no sleeps.
func TestSweeperDeterministic(t *testing.T) {
	clock := obs.NewFakeClock(t0)
	srv, droneID, keys := retentionFixture(t, clock, nil, time.Hour)

	p := signedTrace(t, keys, urbana, 90, 10, 10, time.Second)
	if _, err := srv.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID, EncryptedPoA: encryptFor(t, srv, p)}); err != nil {
		t.Fatal(err)
	}

	ticks := make(chan time.Time)
	swept := make(chan int, 1)
	statePath := filepath.Join(t.TempDir(), "state.json")
	sw := &Sweeper{
		Server:     srv,
		StatePath:  statePath,
		Ticks:      ticks,
		AfterSweep: func(purged int) { swept <- purged },
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sw.Run(context.Background(), stop) }()

	// Tick before expiry: nothing purged, but state checkpointed.
	ticks <- clock.Now()
	if purged := <-swept; purged != 0 {
		t.Errorf("premature purge of %d PoAs", purged)
	}
	if _, err := LoadServer(Config{Clock: clock}, statePath); err != nil {
		t.Errorf("checkpoint unreadable: %v", err)
	}

	// Advance past the retention window; the next tick purges.
	clock.Advance(2 * time.Hour)
	ticks <- clock.Now()
	if purged := <-swept; purged != 1 {
		t.Errorf("purged %d, want 1", purged)
	}
	if srv.RetainedCount() != 0 {
		t.Error("retention store not emptied")
	}

	close(stop)
	<-done
}

// retentionFixture is newFixture with an explicit clock, registry and
// retention window.
func retentionFixture(t *testing.T, clock obs.Clock, reg *obs.Registry, retention time.Duration) (*Server, string, droneKeys) {
	t.Helper()
	srv, droneID, keys := newFixtureConfig(t, Config{Clock: clock, Metrics: reg, Retention: retention})
	return srv, droneID, keys
}

// postJSONNoFatal is postJSON without t.Fatal, safe in goroutines.
func postJSONNoFatal(t *testing.T, url string, body any) *http.Response {
	data, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Error(err)
		return nil
	}
	return resp
}

// newTestHTTPServer serves a handler over httptest and returns the base
// URL (split out so fixtures can build servers with custom configs).
func newTestHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	hs := httptest.NewServer(NewHandler(srv))
	t.Cleanup(hs.Close)
	return hs.URL
}
