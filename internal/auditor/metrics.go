package auditor

import (
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
)

// Operational endpoints served next to the protocol API.
const (
	// PathMetrics serves the Prometheus text exposition of the server's
	// metrics registry.
	PathMetrics = "/metrics"
	// PathHealthz is the liveness probe.
	PathHealthz = "/healthz"
	// PathReadyz is the readiness probe: 200 once the backend can serve
	// verdicts (shards recovered, cluster ring joined), 503 until then.
	// Operator clients treat a non-ready node as a redial target.
	PathReadyz = protocol.PathReadyz
	// PathDebugTraces dumps the span ring buffer as JSONL (when a
	// collector is mounted — see HandlerOptions and the -debug-addr flag).
	PathDebugTraces = "/debug/traces"
)

// Metric names exported by the auditor. The per-stage series mirror the
// paper's §V evaluation: what bench_test.go measures offline, a running
// server reports live (see README "Observability").
const (
	// MetricVerifyStageSeconds is a histogram of per-stage verification
	// latency, labelled stage=signature|chronology|speed|sufficiency.
	MetricVerifyStageSeconds = "alidrone_auditor_verify_stage_seconds"
	// MetricVerifyStageTotal counts stage outcomes, labelled
	// stage=... and result=pass|fail.
	MetricVerifyStageTotal = "alidrone_auditor_verify_stage_total"
	// MetricSubmissionsTotal counts PoA submissions by final verdict,
	// labelled verdict=compliant|violation.
	MetricSubmissionsTotal = "alidrone_auditor_submissions_total"
	// MetricRetainedPoAs gauges the current retention-store size.
	MetricRetainedPoAs = "alidrone_auditor_retained_poas"
	// MetricEvictedPoAsTotal counts PoAs dropped by retention expiry.
	MetricEvictedPoAsTotal = "alidrone_auditor_evicted_poas_total"
	// MetricHTTPRequestsTotal counts requests per endpoint, labelled
	// path=<endpoint path>.
	MetricHTTPRequestsTotal = "alidrone_auditor_http_requests_total"
	// MetricHTTPRequestSeconds is the per-endpoint latency histogram,
	// labelled path=<endpoint path>.
	MetricHTTPRequestSeconds = "alidrone_auditor_http_request_seconds"
	// MetricVerifyWorkers gauges the configured size of the verification
	// worker pool.
	MetricVerifyWorkers = "alidrone_auditor_verify_workers"
	// MetricVerifyWorkersBusy gauges how many pool workers are currently
	// executing a verification shard.
	MetricVerifyWorkersBusy = "alidrone_auditor_verify_workers_busy"
	// MetricExpiredNoncesTotal counts zone-query nonces dropped by TTL
	// expiry.
	MetricExpiredNoncesTotal = "alidrone_auditor_expired_nonces_total"
	// MetricExpiredDigestsTotal counts replay-detection digests dropped
	// when they aged out of the retention window.
	MetricExpiredDigestsTotal = "alidrone_auditor_expired_digests_total"
	// MetricWALErrorsTotal counts failed write-ahead-log appends and
	// compactions. Nonzero means the in-memory state has run ahead of the
	// durable state — a page-the-operator condition.
	MetricWALErrorsTotal = "alidrone_auditor_wal_errors_total"
	// MetricAdmissionInflight gauges the verification requests currently
	// admitted past the admission controller.
	MetricAdmissionInflight = "alidrone_auditor_admission_inflight"
	// MetricAdmissionQueued gauges the requests waiting in the per-drone
	// fairness queues for an in-flight slot.
	MetricAdmissionQueued = "alidrone_auditor_admission_queued"
	// MetricAdmissionShedTotal counts requests shed with ErrOverloaded
	// because both the in-flight budget and the drone's queue were full.
	MetricAdmissionShedTotal = "alidrone_auditor_admission_shed_total"
	// MetricAdmissionAdmittedTotal counts requests admitted past the
	// controller (immediately or after queueing).
	MetricAdmissionAdmittedTotal = "alidrone_auditor_admission_admitted_total"
	// MetricSigVerifySeconds is a histogram of signature-verification
	// latency per submission, labelled suite=rsa2048|ed25519|... — the
	// live counterpart of Table II's verification column, split by the
	// drone's negotiated signature suite.
	MetricSigVerifySeconds = "alidrone_auditor_sig_verify_seconds"
	// MetricKeyRotationsTotal counts accepted TEE key rotations, labelled
	// suite=....
	MetricKeyRotationsTotal = "alidrone_auditor_key_rotations_total"
	// MetricWireConnections gauges the live binary-transport connections.
	MetricWireConnections = "alidrone_auditor_wire_connections"
	// MetricWireConnectionsTotal counts connections accepted by the wire
	// listener over its lifetime.
	MetricWireConnectionsTotal = "alidrone_auditor_wire_connections_total"
	// MetricWireFramesTotal counts frames moved over the binary
	// transport, labelled dir=rx|tx. With ack coalescing, tx stays well
	// below the ack count under load.
	MetricWireFramesTotal = "alidrone_auditor_wire_frames_total"
	// MetricWireBytesTotal counts bytes moved over the binary transport,
	// labelled dir=rx|tx.
	MetricWireBytesTotal = "alidrone_auditor_wire_bytes_total"
	// MetricWireSubmissionsTotal counts PoA submissions arriving through
	// the wire door (the binary counterpart of the /v1/poa request count).
	MetricWireSubmissionsTotal = "alidrone_auditor_wire_submissions_total"
	// MetricWireAcksTotal counts submission acks sent, labelled
	// status=compliant|violation|overloaded|error.
	MetricWireAcksTotal = "alidrone_auditor_wire_acks_total"
	// MetricWireErrorsTotal counts connections torn down on protocol
	// errors (bad CRC, unknown version/type, malformed messages).
	MetricWireErrorsTotal = "alidrone_auditor_wire_errors_total"
	// MetricClusterNodes gauges the nodes in this node's current cluster
	// map (alive + suspect; dead nodes have left the ring).
	MetricClusterNodes = "alidrone_cluster_nodes"
	// MetricClusterForwardsTotal counts submissions this node forwarded to
	// the owning node because they arrived mis-routed, labelled
	// dir=out (we forwarded) | in (we executed a peer's forward).
	MetricClusterForwardsTotal = "alidrone_cluster_forwards_total"
	// MetricClusterHandoffSeconds is a histogram of shard-handoff
	// durations: exporting, streaming and importing one node's state after
	// a ring change.
	MetricClusterHandoffSeconds = "alidrone_cluster_handoff_seconds"
	// MetricVerdictLatencySeconds is the end-to-end verdict latency
	// histogram — admission wait through commit — labelled door=submit|
	// batch|mac|stream|accuse on one family and shard=<shard tag> on the
	// other, so a fleet scrape can quote p50/p99 per client door and
	// locate a slow shard.
	MetricVerdictLatencySeconds = "alidrone_auditor_verdict_latency_seconds"
	// MetricSLOPrefix prefixes the sliding-window SLO gauges
	// (<prefix>_latency_seconds{door,q}, <prefix>_shed_ratio,
	// <prefix>_window_seconds) — the recent-window counterparts of the
	// cumulative histograms above.
	MetricSLOPrefix = "alidrone_auditor_slo"
	// MetricDisclosureTotal counts accepted submissions by disclosure
	// mode, labelled mode=full|sealed|commit.
	MetricDisclosureTotal = "alidrone_auditor_disclosure_total"
	// MetricAccusationsTotal counts accusation resolutions by outcome,
	// labelled outcome=compliant|violation|no_poa|bad_reveal. A
	// disclosure-required response is pending, not an outcome; its
	// resolution is counted when the reveal settles it.
	MetricAccusationsTotal = "alidrone_auditor_accusations_total"
)

// Verdict door labels: the client entry points that end in a verdict.
const (
	DoorSubmit = "submit"
	DoorBatch  = "batch"
	DoorMAC    = "mac"
	DoorStream = "stream"
	DoorAccuse = "accuse"
	DoorSealed = "sealed"
	DoorCommit = "commit"
)

// Verification pipeline stage labels (the stage= label of the
// MetricVerifyStage* series), in pipeline order.
const (
	StageDecrypt     = "decrypt"
	StageDecode      = "decode"
	StageReplay      = "replay"
	StageSignature   = "signature"
	StageMinSamples  = "samples"
	StageChronology  = "chronology"
	StageSpeed       = "speed"
	StageSufficiency = "sufficiency"
	StageZones3D     = "zones3d"
	StageRetain      = "retain"
	StageCommit      = "commit"
	StageStructure   = "structure"
	StagePredicates  = "predicates"
)

// Metrics returns the server's metrics registry (nil when disabled).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *otrace.Tracer { return s.cfg.Tracer }

// countVerdict records the final verdict of one PoA submission. Retained
// (sealed-mode) and disclosure-required responses count under their own
// verdict labels rather than folding into "violation": neither concludes
// anything about compliance.
func (s *Server) countVerdict(resp protocol.SubmitPoAResponse) {
	verdict := string(resp.Verdict)
	if verdict == "" {
		verdict = "violation"
	}
	s.cfg.Metrics.Counter(obs.L(MetricSubmissionsTotal, "verdict", verdict)).Inc()
}

// countDisclosure records one accepted submission's disclosure mode.
func (s *Server) countDisclosure(mode string) {
	s.cfg.Metrics.Counter(obs.L(MetricDisclosureTotal, "mode", mode)).Inc()
}

// countAccusation records one settled accusation outcome.
func (s *Server) countAccusation(outcome string) {
	s.cfg.Metrics.Counter(obs.L(MetricAccusationsTotal, "outcome", outcome)).Inc()
}

// verdictObs holds the pre-resolved verdict-latency sinks: histograms
// are looked up once at construction, not per verdict, so the hot path
// pays two histogram observes and two SLO observes — nothing else (the
// slo_observe_overhead benchmark gate holds this to ≤5%).
type verdictObs struct {
	clock obs.Clock
	door  map[string]*obs.Histogram
	shard *obs.Histogram
	label string // shard label (ShardTag, or "single" standalone)
	slo   *obs.SLO
}

// newVerdictObs builds the verdict sinks; nil when nothing is listening.
func newVerdictObs(cfg Config) *verdictObs {
	if cfg.Metrics == nil && cfg.SLO == nil {
		return nil
	}
	label := cfg.ShardTag
	if label == "" {
		label = "single"
	}
	v := &verdictObs{
		clock: cfg.Clock,
		door:  make(map[string]*obs.Histogram, 5),
		label: label,
		slo:   cfg.SLO,
	}
	for _, door := range []string{DoorSubmit, DoorBatch, DoorMAC, DoorStream, DoorAccuse, DoorSealed, DoorCommit} {
		v.door[door] = cfg.Metrics.Histogram(
			obs.L(MetricVerdictLatencySeconds, "door", door), obs.DurationBuckets)
	}
	v.shard = cfg.Metrics.Histogram(
		obs.L(MetricVerdictLatencySeconds, "shard", label), obs.DurationBuckets)
	return v
}

// verdictStart stamps the entry time of a verdict-producing call (zero
// when verdict observation is disabled, so the clock is never touched).
func (s *Server) verdictStart() time.Time {
	if s.verdict == nil {
		return time.Time{}
	}
	return s.verdict.clock.Now()
}

// observeVerdict records one settled verdict's end-to-end latency into
// the per-door and per-shard histograms and the SLO window.
func (s *Server) observeVerdict(door string, start time.Time) {
	v := s.verdict
	if v == nil || start.IsZero() {
		return
	}
	el := v.clock.Now().Sub(start).Seconds()
	v.door[door].Observe(el)
	v.shard.Observe(el)
	v.slo.ObserveDoor(door, el)
	v.slo.ObserveShard(v.label, el)
}
