package auditor

import (
	"context"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
)

// Operational endpoints served next to the protocol API.
const (
	// PathMetrics serves the Prometheus text exposition of the server's
	// metrics registry.
	PathMetrics = "/metrics"
	// PathHealthz is the liveness probe.
	PathHealthz = "/healthz"
	// PathDebugTraces dumps the span ring buffer as JSONL (when a
	// collector is mounted — see HandlerOptions and the -debug-addr flag).
	PathDebugTraces = "/debug/traces"
)

// Metric names exported by the auditor. The per-stage series mirror the
// paper's §V evaluation: what bench_test.go measures offline, a running
// server reports live (see README "Observability").
const (
	// MetricVerifyStageSeconds is a histogram of per-stage verification
	// latency, labelled stage=signature|chronology|speed|sufficiency.
	MetricVerifyStageSeconds = "alidrone_auditor_verify_stage_seconds"
	// MetricVerifyStageTotal counts stage outcomes, labelled
	// stage=... and result=pass|fail.
	MetricVerifyStageTotal = "alidrone_auditor_verify_stage_total"
	// MetricSubmissionsTotal counts PoA submissions by final verdict,
	// labelled verdict=compliant|violation.
	MetricSubmissionsTotal = "alidrone_auditor_submissions_total"
	// MetricRetainedPoAs gauges the current retention-store size.
	MetricRetainedPoAs = "alidrone_auditor_retained_poas"
	// MetricEvictedPoAsTotal counts PoAs dropped by retention expiry.
	MetricEvictedPoAsTotal = "alidrone_auditor_evicted_poas_total"
	// MetricHTTPRequestsTotal counts requests per endpoint, labelled
	// path=<endpoint path>.
	MetricHTTPRequestsTotal = "alidrone_auditor_http_requests_total"
	// MetricHTTPRequestSeconds is the per-endpoint latency histogram,
	// labelled path=<endpoint path>.
	MetricHTTPRequestSeconds = "alidrone_auditor_http_request_seconds"
	// MetricVerifyWorkers gauges the configured size of the verification
	// worker pool.
	MetricVerifyWorkers = "alidrone_auditor_verify_workers"
	// MetricVerifyWorkersBusy gauges how many pool workers are currently
	// executing a verification shard.
	MetricVerifyWorkersBusy = "alidrone_auditor_verify_workers_busy"
	// MetricExpiredNoncesTotal counts zone-query nonces dropped by TTL
	// expiry.
	MetricExpiredNoncesTotal = "alidrone_auditor_expired_nonces_total"
	// MetricExpiredDigestsTotal counts replay-detection digests dropped
	// when they aged out of the retention window.
	MetricExpiredDigestsTotal = "alidrone_auditor_expired_digests_total"
	// MetricWALErrorsTotal counts failed write-ahead-log appends and
	// compactions. Nonzero means the in-memory state has run ahead of the
	// durable state — a page-the-operator condition.
	MetricWALErrorsTotal = "alidrone_auditor_wal_errors_total"
)

// Verification pipeline stage labels, in pipeline order.
const (
	StageSignature   = "signature"
	StageChronology  = "chronology"
	StageSpeed       = "speed"
	StageSufficiency = "sufficiency"
)

// Metrics returns the server's metrics registry (nil when disabled).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *otrace.Tracer { return s.cfg.Tracer }

// stage runs one verification stage under its latency histogram,
// pass/fail counters and a "verify.<stage>" trace span, so a submission's
// trace shows the same pipeline decomposition the metrics aggregate.
// With neither a registry nor a tracer configured this reduces to
// fn(ctx).
func (s *Server) stage(ctx context.Context, name string, fn func(context.Context) error) error {
	reg := s.cfg.Metrics
	if reg == nil && s.cfg.Tracer == nil {
		return fn(ctx)
	}
	tctx, tsp := s.cfg.Tracer.StartSpan(ctx, "verify."+name)
	sp := reg.StartSpan(reg.Histogram(obs.L(MetricVerifyStageSeconds, "stage", name), obs.DurationBuckets))
	err := fn(tctx)
	sp.End()
	tsp.SetError(err)
	tsp.End()
	result := "pass"
	if err != nil {
		result = "fail"
	}
	reg.Counter(obs.L(MetricVerifyStageTotal, "stage", name, "result", result)).Inc()
	return err
}

// countVerdict records the final verdict of one PoA submission.
func (s *Server) countVerdict(resp protocol.SubmitPoAResponse) {
	verdict := "violation"
	if resp.Verdict == protocol.VerdictCompliant {
		verdict = "compliant"
	}
	s.cfg.Metrics.Counter(obs.L(MetricSubmissionsTotal, "verdict", verdict)).Inc()
}
