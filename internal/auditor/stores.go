package auditor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/poa"
	"repro/internal/privacy"
)

// This file holds the server's state stores. Historically every field sat
// behind one Server.mu, which serialized concurrent submissions from
// unrelated drones; the stores below are locked independently (and the
// replay-digest set is sharded) so the only contention left between two
// submissions is genuine contention on the same data.
//
// Lock ordering: no store method calls into another store, so no two
// store locks are ever held at once and lock-order cycles are impossible
// by construction.

// droneStore is the registered-drone registry: (id_drone, D+, T+).
type droneStore struct {
	mu   sync.RWMutex
	m    map[string]DroneRecord
	next int
}

func newDroneStore() *droneStore { return &droneStore{m: make(map[string]DroneRecord)} }

// register issues the next drone ID and files the record under it.
func (st *droneStore) register(rec DroneRecord) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	rec.ID = fmt.Sprintf("drone-%04d", st.next)
	st.m[rec.ID] = rec
	return rec.ID
}

func (st *droneStore) get(id string) (DroneRecord, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	rec, ok := st.m[id]
	return rec, ok
}

func (st *droneStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// all returns every record sorted by ID (deterministic persistence).
func (st *droneStore) all() []DroneRecord {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]DroneRecord, 0, len(st.m))
	for _, rec := range st.m {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// create files a record under a caller-chosen ID — the cluster routing
// layer issues drone IDs ring-side and files them on the owning shard.
// It returns false when the ID is already taken.
func (st *droneStore) create(rec DroneRecord) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[rec.ID]; ok {
		return false
	}
	st.m[rec.ID] = rec
	return true
}

// restore files a record under its persisted ID and bumps the sequence.
func (st *droneStore) restore(rec DroneRecord, next int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[rec.ID] = rec
	if next > st.next {
		st.next = next
	}
}

// nonceStore is the zone-query anti-replay cache. Entries carry the time
// they were first seen so they can expire after the configured TTL —
// without expiry the map grows forever under sustained traffic.
type nonceStore struct {
	mu  sync.Mutex
	m   map[string]time.Time
	ttl time.Duration
}

func newNonceStore(ttl time.Duration) *nonceStore {
	return &nonceStore{m: make(map[string]time.Time), ttl: ttl}
}

// claim records the nonce as used. It returns false — a replay — when
// the nonce is already present and has not yet expired.
func (st *nonceStore) claim(nonce string, now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seen, ok := st.m[nonce]; ok && (st.ttl <= 0 || now.Sub(seen) < st.ttl) {
		return false
	}
	st.m[nonce] = now
	return true
}

// sweep drops every expired nonce and returns how many were removed.
func (st *nonceStore) sweep(now time.Time) int {
	if st.ttl <= 0 {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := 0
	for n, seen := range st.m {
		if now.Sub(seen) >= st.ttl {
			delete(st.m, n)
			removed++
		}
	}
	return removed
}

func (st *nonceStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// all returns the live entries sorted by nonce (deterministic persistence).
func (st *nonceStore) all() []nonceSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]nonceSnapshot, 0, len(st.m))
	for n, seen := range st.m {
		out = append(out, nonceSnapshot{Nonce: n, Seen: seen})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nonce < out[j].Nonce })
	return out
}

func (st *nonceStore) restore(n nonceSnapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[n.Nonce] = n.Seen
}

// digestShards is the shard count of the replay-detection set. Shard
// selection keys on the first digest byte; SHA-256 output is uniform, so
// shards load-balance regardless of the submission pattern.
const digestShards = 32

// digestStore is the sharded set of accepted-PoA digests, for replay
// detection. claim is atomic — the digest is reserved *before*
// verification runs, closing the check-then-set window in which two
// concurrent submissions of the same PoA could both be accepted.
type digestStore struct {
	shards [digestShards]struct {
		mu sync.Mutex
		m  map[[32]byte]time.Time
	}
}

func newDigestStore() *digestStore {
	st := &digestStore{}
	for i := range st.shards {
		st.shards[i].m = make(map[[32]byte]time.Time)
	}
	return st
}

// claim atomically reserves a digest. It returns false when the digest
// is already present (a replay, or a concurrent duplicate in flight).
func (st *digestStore) claim(d [32]byte, now time.Time) bool {
	sh := &st.shards[d[0]%digestShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[d]; ok {
		return false
	}
	sh.m[d] = now
	return true
}

// release frees a claimed digest — called when the claimed submission
// fails verification, so a later honest submission of the same bytes is
// not shadowed by a failed one.
func (st *digestStore) release(d [32]byte) {
	sh := &st.shards[d[0]%digestShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.m, d)
}

// sweep drops digests claimed at or before the cutoff and returns how
// many were removed. A replayed PoA older than the retention window has
// no retained counterpart to contradict, so keeping its digest buys
// nothing.
func (st *digestStore) sweep(cutoff time.Time) int {
	removed := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for d, seen := range sh.m {
			if !seen.After(cutoff) {
				delete(sh.m, d)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

func (st *digestStore) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// all returns the live digests sorted lexically (deterministic
// persistence).
func (st *digestStore) all() []digestEntry {
	var out []digestEntry
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for d, seen := range sh.m {
			out = append(out, digestEntry{digest: d, seen: seen})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		for b := 0; b < 32; b++ {
			if out[i].digest[b] != out[j].digest[b] {
				return out[i].digest[b] < out[j].digest[b]
			}
		}
		return false
	})
	return out
}

func (st *digestStore) restore(d [32]byte, seen time.Time) {
	sh := &st.shards[d[0]%digestShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[d] = seen
}

// digestEntry is one replay-set member with its claim time.
type digestEntry struct {
	digest [32]byte
	seen   time.Time
}

// retentionStore holds verified PoAs for the accusation window. seq is a
// monotonic counter stamped onto every added PoA; WAL replay uses it to
// recognise records whose effect is already in a restored snapshot.
type retentionStore struct {
	mu   sync.RWMutex
	poas []retainedPoA
	seq  uint64
}

// add stamps the next sequence number onto r, appends it, and returns the
// stamped record along with the new store size.
func (st *retentionStore) add(r retainedPoA) (retainedPoA, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	r.Seq = st.seq
	st.poas = append(st.poas, r)
	return r, len(st.poas)
}

// purge drops PoAs submitted at or before the cutoff; returns how many
// were removed and how many remain.
func (st *retentionStore) purge(cutoff time.Time) (removed, kept int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	remaining := st.poas[:0]
	for _, r := range st.poas {
		if r.SubmitTime.After(cutoff) {
			remaining = append(remaining, r)
		} else {
			removed++
		}
	}
	st.poas = remaining
	return removed, len(remaining)
}

func (st *retentionStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.poas)
}

// byDrone returns the retained PoAs of one drone, in submission order.
func (st *retentionStore) byDrone(droneID string) []retainedPoA {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []retainedPoA
	for _, r := range st.poas {
		if r.DroneID == droneID {
			out = append(out, r)
		}
	}
	return out
}

// all returns every retained PoA in submission order.
func (st *retentionStore) all() []retainedPoA {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]retainedPoA(nil), st.poas...)
}

// restore re-files a persisted PoA. Records whose sequence number is not
// beyond the store's high-water mark are already present (snapshot overlap
// during WAL replay) and are skipped; legacy seq-0 entries from pre-WAL
// snapshots always restore.
func (st *retentionStore) restore(r retainedPoA) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.Seq != 0 && r.Seq <= st.seq {
		return
	}
	st.poas = append(st.poas, r)
	if r.Seq > st.seq {
		st.seq = r.Seq
	}
}

// retainedDisclosure is one retained sealed/commit submission awaiting
// possible accusation. Sealed mode keeps the entries themselves (reveal
// then needs only the two keys); commit mode keeps just the signed
// commitment — timestamps, root, epoch — and the entries arrive with the
// reveal, authenticated by their Merkle paths. Field order matches
// disclosureSnapshot so the two convert directly.
type retainedDisclosure struct {
	DroneID    string
	Mode       string // poa.DisclosureSealed or poa.DisclosureCommit
	Times      []time.Time
	Root       []byte
	KeyEpoch   int
	Entries    []privacy.SealedSample
	SubmitTime time.Time
	Seq        uint64
}

// disclosureStore holds retained sealed/commit submissions for the
// accusation window, mirroring retentionStore's Seq-dedup restore
// contract so WAL replay over a snapshot stays idempotent.
type disclosureStore struct {
	mu   sync.RWMutex
	recs []retainedDisclosure
	seq  uint64
}

// add stamps the next sequence number onto r, appends it, and returns the
// stamped record along with the new store size.
func (st *disclosureStore) add(r retainedDisclosure) (retainedDisclosure, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	r.Seq = st.seq
	st.recs = append(st.recs, r)
	return r, len(st.recs)
}

// purge drops records submitted at or before the cutoff; returns how many
// were removed and how many remain.
func (st *disclosureStore) purge(cutoff time.Time) (removed, kept int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	remaining := st.recs[:0]
	for _, r := range st.recs {
		if r.SubmitTime.After(cutoff) {
			remaining = append(remaining, r)
		} else {
			removed++
		}
	}
	st.recs = remaining
	return removed, len(remaining)
}

func (st *disclosureStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.recs)
}

// byDrone returns one drone's retained disclosures, in submission order.
func (st *disclosureStore) byDrone(droneID string) []retainedDisclosure {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []retainedDisclosure
	for _, r := range st.recs {
		if r.DroneID == droneID {
			out = append(out, r)
		}
	}
	return out
}

// bySeq returns the record with the given sequence number.
func (st *disclosureStore) bySeq(seq uint64) (retainedDisclosure, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, r := range st.recs {
		if r.Seq == seq {
			return r, true
		}
	}
	return retainedDisclosure{}, false
}

// all returns every record in submission order.
func (st *disclosureStore) all() []retainedDisclosure {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]retainedDisclosure(nil), st.recs...)
}

// restore re-files a persisted record, skipping sequence numbers already
// covered by a loaded snapshot (WAL replay overlap).
func (st *disclosureStore) restore(r retainedDisclosure) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.Seq != 0 && r.Seq <= st.seq {
		return
	}
	st.recs = append(st.recs, r)
	if r.Seq > st.seq {
		st.seq = r.Seq
	}
}

// challengeRecord is one outstanding selective-disclosure challenge.
// Challenges are deliberately ephemeral, like sessions and open streams:
// a restart voids them and the zone owner re-accuses.
type challengeRecord struct {
	DroneID       string
	ZoneID        string
	Mode          string
	At            time.Time
	PairIndex     int
	DisclosureSeq uint64 // Seq of the retained disclosure it challenges
}

// challengeStore holds outstanding disclosure challenges by ID.
type challengeStore struct {
	mu   sync.Mutex
	tag  string
	m    map[string]challengeRecord
	next int
}

func newChallengeStore() *challengeStore { return &challengeStore{m: make(map[string]challengeRecord)} }

func (st *challengeStore) add(rec challengeRecord) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := taggedID("challenge", st.tag, st.next)
	st.m[id] = rec
	return id
}

func (st *challengeStore) get(id string) (challengeRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.m[id]
	return rec, ok
}

// resolve removes a settled challenge (verdict reached). A failed reveal
// leaves the challenge open so the operator can retry.
func (st *challengeStore) resolve(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.m, id)
}

// taggedID renders an issued ID, folding in the shard tag when the
// server runs as one shard of a cluster so IDs issued by different
// shards never collide ("session-0007" vs "session-a-s1-0007").
func taggedID(prefix, tag string, n int) string {
	if tag == "" {
		return fmt.Sprintf("%s-%04d", prefix, n)
	}
	return fmt.Sprintf("%s-%s-%04d", prefix, tag, n)
}

// sessionStore holds the §VII-A1a symmetric flight sessions.
type sessionStore struct {
	mu   sync.RWMutex
	tag  string
	m    map[string]sessionRecord
	next int
}

func newSessionStore() *sessionStore { return &sessionStore{m: make(map[string]sessionRecord)} }

func (st *sessionStore) add(rec sessionRecord) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := taggedID("session", st.tag, st.next)
	st.m[id] = rec
	return id
}

func (st *sessionStore) get(id string) (sessionRecord, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	rec, ok := st.m[id]
	return rec, ok
}

func (st *sessionStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// zone3DStore holds the §VII-B1 cylindrical no-fly regions.
type zone3DStore struct {
	mu   sync.RWMutex
	m    map[string]cylinderRecord
	next int
}

func newZone3DStore() *zone3DStore { return &zone3DStore{m: make(map[string]cylinderRecord)} }

func (st *zone3DStore) add(owner string, z poa.CylinderZone) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := fmt.Sprintf("zone3d-%04d", st.next)
	st.m[id] = cylinderRecord{ID: id, Owner: owner, Zone: z}
	return id
}

func (st *zone3DStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// zones returns the bare cylinder geometry (verification hot path).
func (st *zone3DStore) zones() []poa.CylinderZone {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]poa.CylinderZone, 0, len(st.m))
	for _, r := range st.m {
		out = append(out, r.Zone)
	}
	return out
}

// all returns every record sorted by ID (deterministic persistence).
func (st *zone3DStore) all() []cylinderRecord {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]cylinderRecord, 0, len(st.m))
	for _, r := range st.m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (st *zone3DStore) restore(rec cylinderRecord, next int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[rec.ID] = rec
	if next > st.next {
		st.next = next
	}
}

// streamStore holds the in-flight real-time audits. Each streamState has
// its own lock so per-sample verification serializes per stream (samples
// are ordered within a flight) while distinct streams proceed in
// parallel.
type streamStore struct {
	mu   sync.Mutex
	tag  string
	m    map[string]*streamState
	next int
}

func newStreamStore() *streamStore { return &streamStore{m: make(map[string]*streamState)} }

func (st *streamStore) open(droneID string) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := taggedID("stream", st.tag, st.next)
	st.m[id] = &streamState{DroneID: droneID}
	return id
}

func (st *streamStore) get(id string) (*streamState, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	return s, ok
}

func (st *streamStore) remove(id string) (*streamState, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if ok {
		delete(st.m, id)
	}
	return s, ok
}

func (st *streamStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}
