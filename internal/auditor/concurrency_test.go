package auditor

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/protocol"
)

// TestConcurrentProtocolTraffic hammers the server from many goroutines
// mixing registrations, queries, submissions and status reads — run under
// -race this validates the locking discipline.
func TestConcurrentProtocolTraffic(t *testing.T) {
	srv, droneID, keys := newFixture(t)
	if _, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers*4)

	// Zone registrations.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := srv.RegisterZone(protocol.RegisterZoneRequest{
					Owner: fmt.Sprintf("owner-%d", w),
					Zone:  geo.GeoCircle{Center: urbana.Offset(float64(w*20+i), 20000), R: 50},
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Zone queries with fresh nonces.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				nonce, err := protocol.NewNonce(rng)
				if err != nil {
					errCh <- err
					return
				}
				req := protocol.ZoneQueryRequest{
					DroneID: droneID,
					Area:    geo.NewRect(urbana.Offset(225, 8000), urbana.Offset(45, 8000)),
					Nonce:   nonce,
				}
				if err := protocol.SignZoneQuery(&req, keys.op); err != nil {
					errCh <- err
					return
				}
				if _, err := srv.ZoneQuery(req); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(100 + w))
	}

	// PoA submissions (distinct traces so replay detection stays quiet).
	// Build and encrypt on the test goroutine (t.Fatal is not legal from
	// workers), submit concurrently.
	ciphertexts := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		p := signedTrace(t, keys, urbana.Offset(float64(w*7), float64(100+w*10)), 90, 10, 10, time.Second)
		ciphertexts[w] = encryptFor(t, srv, p)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			resp, err := srv.SubmitPoA(protocol.SubmitPoARequest{
				DroneID: droneID, EncryptedPoA: ciphertexts[w],
			})
			if err != nil {
				errCh <- err
				return
			}
			if resp.Verdict != protocol.VerdictCompliant {
				errCh <- fmt.Errorf("worker %d: verdict %v (%s)", w, resp.Verdict, resp.Reason)
			}
		}(w)
	}

	// Status reads while everything churns.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = srv.Status()
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := srv.Status()
	if st.Zones != 1+workers*20 {
		t.Errorf("zones = %d, want %d", st.Zones, 1+workers*20)
	}
	if st.RetainedPoAs != workers {
		t.Errorf("retained = %d, want %d", st.RetainedPoAs, workers)
	}
}

// TestStatusCounters sanity-checks the status snapshot.
func TestStatusCounters(t *testing.T) {
	srv, droneID, _ := newFixture(t)
	st := srv.Status()
	if st.Drones != 1 || st.Zones != 0 || st.RetainedPoAs != 0 {
		t.Errorf("initial status = %+v", st)
	}
	if _, err := srv.OpenStream(protocol.OpenStreamRequest{DroneID: droneID}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Status().OpenStreams; got != 1 {
		t.Errorf("open streams = %d", got)
	}
}
