package auditor

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/poa"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
	"repro/internal/zone"
)

// The auditor's WAL schema. Every durable state mutation — and only
// committed ones — emits exactly one typed record at its commit point:
//
//	drone registered, zone registered (circular or polygon-enclosed),
//	3-D zone registered, PoA retained, zone-query nonce claimed,
//	accepted-PoA replay digest claimed, retention purge.
//
// Sessions and open streams stay deliberately ephemeral, exactly as in
// the legacy whole-state snapshot. Replay-digest claims that *fail*
// verification are released before commit and never logged, so the WAL
// records the accepted history only.
//
// Replay is idempotent: applying a record whose effect is already in the
// loaded snapshot is a no-op (keyed stores overwrite by key; retained
// PoAs carry a monotonic sequence number; purges are cutoff-driven).
// That tolerance is what lets the storage engine capture snapshots
// concurrently with new appends — see internal/storage.
const (
	recDroneRegistered    byte = 1
	recZoneRegistered     byte = 2
	recZone3DRegistered   byte = 3
	recPoARetained        byte = 4
	recNonceSeen          byte = 5
	recDigestClaimed      byte = 6
	recPurge              byte = 7
	recKeyRotated         byte = 8
	recDisclosureRetained byte = 9
)

// DefaultCompactEvery is the number of WAL records between automatic
// snapshot compactions when Config.CompactEvery is zero.
const DefaultCompactEvery = 4096

// walDrone is the payload of recDroneRegistered. Suite is empty in
// pre-rotation records; replay then infers it from the key envelope.
type walDrone struct {
	ID          string `json:"id"`
	OperatorPub string `json:"operatorPub"`
	TEEPub      string `json:"teePub"`
	Suite       string `json:"suite,omitempty"`
	// Disclosure is the negotiated disclosure mode; empty in pre-disclosure
	// records and normalises to full on replay.
	Disclosure string `json:"disclosure,omitempty"`
}

// walRotation is the payload of recKeyRotated: the accepted handover's
// effect (new active key, retirement instant of the old one). The
// handover itself was already verified at commit time, so replay applies
// the outcome without re-checking signatures.
type walRotation struct {
	DroneID   string    `json:"droneId"`
	OldEpoch  int       `json:"oldEpoch"`
	NewEpoch  int       `json:"newEpoch"`
	NewPub    string    `json:"newPub"`
	RetiredAt time.Time `json:"retiredAt"`
}

// walPurge is the payload of recPurge: the sweep is replayed with the
// cutoffs computed at commit time, not recovery time, so a restart keeps
// expiring retained PoAs, digests and nonces on the original schedule.
type walPurge struct {
	Cutoff time.Time `json:"cutoff"` // retention cutoff (PoAs + digests)
	Now    time.Time `json:"now"`    // sweep instant (nonce TTL)
}

// walKindName names a record kind for trace attributes.
func walKindName(kind byte) string {
	switch kind {
	case recDroneRegistered:
		return "drone-registered"
	case recZoneRegistered:
		return "zone-registered"
	case recZone3DRegistered:
		return "zone3d-registered"
	case recPoARetained:
		return "poa-retained"
	case recNonceSeen:
		return "nonce-seen"
	case recDigestClaimed:
		return "digest-claimed"
	case recPurge:
		return "purge"
	case recKeyRotated:
		return "key-rotated"
	case recDisclosureRetained:
		return "disclosure-retained"
	default:
		return fmt.Sprintf("kind-%d", kind)
	}
}

// wal appends one typed record to the attached store, durable at return.
// With no store attached it is a no-op. The append runs under a
// "wal.append" child span of whatever the context carries, so a traced
// submission shows its durability cost (and group-commit role — see
// FileStore.Append). Crossing the compaction threshold triggers an
// inline snapshot compaction (one writer pays the amortised cost;
// concurrent writers skip past the CAS).
func (s *Server) wal(ctx context.Context, kind byte, v any) error {
	if s.store == nil {
		return nil
	}
	wctx, sp := s.cfg.Tracer.StartSpan(ctx, "wal.append")
	sp.SetAttr("kind", walKindName(kind))
	data, err := json.Marshal(v)
	if err == nil {
		err = s.store.Append(wctx, storage.Record{Kind: kind, Data: data})
	}
	sp.SetError(err)
	sp.End()
	if err != nil {
		s.cfg.Metrics.Counter(MetricWALErrorsTotal).Inc()
		return fmt.Errorf("auditor: wal append: %w", err)
	}
	if n := s.walSince.Add(1); n >= s.compactEvery && s.compacting.CompareAndSwap(false, true) {
		defer s.compacting.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.cfg.Metrics.Counter(MetricWALErrorsTotal).Inc()
		}
	}
	return nil
}

// Checkpoint writes a compacted snapshot through the attached store,
// truncating the WAL it covers. No-op without a store.
func (s *Server) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Snapshot(s.snapshotBytes); err != nil {
		return fmt.Errorf("auditor: checkpoint: %w", err)
	}
	s.walSince.Store(0)
	return nil
}

// attachStore wires the storage engine into the server's mutation
// points. Called once, before the server starts serving.
func (s *Server) attachStore(st storage.Store) {
	s.store = st
	s.compactEvery = uint64(DefaultCompactEvery)
	switch {
	case s.cfg.CompactEvery > 0:
		s.compactEvery = uint64(s.cfg.CompactEvery)
	case s.cfg.CompactEvery < 0:
		s.compactEvery = ^uint64(0) // never auto-compact
	}
	// Zones can be registered through the exposed registry as well as the
	// protocol endpoint; the registry hook catches both paths.
	// The registry hook has no request context to inherit; zone
	// registrations log under their own (unparented) WAL span.
	s.zones.SetOnAdd(func(z zone.NFZ) error {
		return s.wal(context.Background(), recZoneRegistered, z)
	})
}

// applyRecord replays one WAL record onto the in-memory state. Every
// branch is idempotent over the snapshot the record may already be part
// of, and none recomputes verification — the WAL records verdicts the
// server already committed.
func (s *Server) applyRecord(rec storage.Record) error {
	switch rec.Kind {
	case recDroneRegistered:
		var d walDrone
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return fmt.Errorf("drone record: %w", err)
		}
		opPub, err := sigcrypto.UnmarshalPublicKey(d.OperatorPub)
		if err != nil {
			return fmt.Errorf("drone record %s: operator key: %w", d.ID, err)
		}
		teeKey, err := sigcrypto.ParsePublicKey(d.TEEPub)
		if err != nil {
			return fmt.Errorf("drone record %s: tee key: %w", d.ID, err)
		}
		suite := d.Suite
		if suite == "" {
			suite = teeKey.SuiteID()
		}
		mode, err := poa.NormalizeDisclosure(d.Disclosure)
		if err != nil {
			return fmt.Errorf("drone record %s: %w", d.ID, err)
		}
		s.drones.restore(DroneRecord{
			ID:          d.ID,
			OperatorPub: opPub,
			Suite:       suite,
			Disclosure:  mode,
			TEEKeys:     []TEEKey{{Pub: teeKey}},
		}, seqFromID(d.ID, "drone-%04d"))
	case recZoneRegistered:
		var z zone.NFZ
		if err := json.Unmarshal(rec.Data, &z); err != nil {
			return fmt.Errorf("zone record: %w", err)
		}
		if err := s.zones.Restore(z); err != nil {
			return fmt.Errorf("zone record: %w", err)
		}
	case recZone3DRegistered:
		var z cylinderRecord
		if err := json.Unmarshal(rec.Data, &z); err != nil {
			return fmt.Errorf("zone3d record: %w", err)
		}
		s.zones3D.restore(z, seqFromID(z.ID, "zone3d-%04d"))
	case recPoARetained:
		var r retainedSnapshot
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fmt.Errorf("retained record: %w", err)
		}
		s.retained.restore(retainedPoA(r))
	case recNonceSeen:
		var n nonceSnapshot
		if err := json.Unmarshal(rec.Data, &n); err != nil {
			return fmt.Errorf("nonce record: %w", err)
		}
		s.nonces.restore(n)
	case recDigestClaimed:
		var d digestSnapshot
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return fmt.Errorf("digest record: %w", err)
		}
		raw, err := hex.DecodeString(d.Digest)
		if err != nil || len(raw) != 32 {
			return fmt.Errorf("digest record: bad digest %q", d.Digest)
		}
		var dg [32]byte
		copy(dg[:], raw)
		s.seen.restore(dg, d.Seen)
	case recPurge:
		var p walPurge
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return fmt.Errorf("purge record: %w", err)
		}
		s.retained.purge(p.Cutoff)
		s.disclosures.purge(p.Cutoff)
		s.seen.sweep(p.Cutoff)
		s.nonces.sweep(p.Now)
	case recKeyRotated:
		var r walRotation
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fmt.Errorf("rotation record: %w", err)
		}
		newPub, err := sigcrypto.ParsePublicKey(r.NewPub)
		if err != nil {
			return fmt.Errorf("rotation record %s: new key: %w", r.DroneID, err)
		}
		if err := s.drones.applyRotation(r.DroneID, TEEKey{Pub: newPub, Epoch: r.NewEpoch}, r.RetiredAt); err != nil {
			return fmt.Errorf("rotation record: %w", err)
		}
	case recDisclosureRetained:
		var d disclosureSnapshot
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			return fmt.Errorf("disclosure record: %w", err)
		}
		s.disclosures.restore(retainedDisclosure(d))
	default:
		return fmt.Errorf("unknown WAL record kind %d", rec.Kind)
	}
	return nil
}

// seqFromID recovers the issue counter from a formatted store ID so
// replayed registrations keep the sequence monotonic.
func seqFromID(id, format string) int {
	var n int
	if _, err := fmt.Sscanf(id, format, &n); err != nil {
		return 0
	}
	return n
}
