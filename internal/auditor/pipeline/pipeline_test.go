package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
)

func pass(name string) Stage {
	return Stage{Name: name, Run: func(context.Context, *Submission) error { return nil }}
}

func TestRegistryComposesSequencesByKey(t *testing.T) {
	r := NewRegistry()
	r.Add("a", pass("a"))
	r.Add("b.one", pass("b"))
	r.Add("b.two", pass("b")) // distinct keys may share a metric label

	seq := r.Sequence("b.two", "a")
	if len(seq) != 2 || seq[0].Name != "b" || seq[1].Name != "a" {
		t.Fatalf("sequence = %v", seq)
	}
	if got := len(r.Keys()); got != 3 {
		t.Errorf("keys = %d, want 3", got)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Add("a", pass("a"))
	expectPanic("duplicate key", func() { r.Add("a", pass("other")) })
	expectPanic("empty key", func() { r.Add("", pass("x")) })
	expectPanic("no run func", func() { r.Add("y", Stage{Name: "y"}) })
	expectPanic("unknown key", func() { r.Sequence("a", "missing") })
}

func TestRunnerClassifiesOutcomes(t *testing.T) {
	boom := errors.New("boom")
	tests := []struct {
		name    string
		stage   Stage
		verdict protocol.Verdict
		reason  string
		pairs   int
		err     error
	}{
		{"all pass", pass("x"), protocol.VerdictCompliant, "", 0, nil},
		{"violation is a verdict", Stage{Name: "x", Run: func(context.Context, *Submission) error {
			return &Violation{Reason: "bad trace", InsufficientPairs: 3}
		}}, protocol.VerdictViolation, "bad trace", 3, nil},
		{"internal error withholds the verdict", Stage{Name: "x", Run: func(context.Context, *Submission) error {
			return boom
		}}, "", "", 0, boom},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var r Runner
			resp, err := r.Run(context.Background(), &Submission{}, []Stage{tt.stage})
			if !errors.Is(err, tt.err) {
				t.Fatalf("err = %v, want %v", err, tt.err)
			}
			if resp.Verdict != tt.verdict || resp.Reason != tt.reason || resp.InsufficientPairs != tt.pairs {
				t.Errorf("resp = %+v", resp)
			}
		})
	}
}

func TestRunnerStopsAtFirstFailure(t *testing.T) {
	var ran []string
	record := func(name string, err error) Stage {
		return Stage{Name: name, Run: func(context.Context, *Submission) error {
			ran = append(ran, name)
			return err
		}}
	}
	var r Runner
	resp, err := r.Run(context.Background(), &Submission{}, []Stage{
		record("first", nil),
		record("second", &Violation{Reason: "stop here"}),
		record("third", nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("verdict = %v", resp.Verdict)
	}
	if strings.Join(ran, ",") != "first,second" {
		t.Errorf("ran = %v, want first,second", ran)
	}
}

func TestRunnerInstrumentsStages(t *testing.T) {
	reg := obs.NewRegistry(nil)
	r := Runner{
		Metrics:            reg,
		MetricStageSeconds: "stage_seconds",
		MetricStageTotal:   "stage_total",
	}
	var hooks []string
	r.OnStage = func(_ context.Context, stage string, _ *Submission) { hooks = append(hooks, stage) }

	stages := []Stage{pass("sig"), {Name: "suff", Run: func(context.Context, *Submission) error {
		return &Violation{Reason: "no"}
	}}}
	if _, err := r.Run(context.Background(), &Submission{}, stages); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`stage_total{result="pass",stage="sig"} 1`,
		`stage_total{result="fail",stage="suff"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Join(hooks, ",") != "sig,suff" {
		t.Errorf("OnStage hooks = %v", hooks)
	}
}
