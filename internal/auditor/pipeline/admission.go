package pipeline

import (
	"context"
	"sync"
	"time"

	"repro/internal/protocol"
)

// DefaultRetryAfter is the backoff hint attached to shed requests when
// the admission controller has no better estimate.
const DefaultRetryAfter = time.Second

// DefaultQueueDepth is the per-drone waiter budget when admission is
// enabled with an unspecified queue depth.
const DefaultQueueDepth = 16

// Admission is the load gate in front of the verification pipeline: a
// bounded in-flight budget plus a per-drone fairness queue. When the
// budget is exhausted a request waits in its drone's queue (so one chatty
// drone cannot starve the rest — released slots are handed out
// round-robin across drones, not FIFO across requests), and when that
// drone's queue is also full the request is shed immediately with a typed
// overload error the transport maps to 429 + Retry-After.
//
// A nil *Admission admits everything; entry points never guard the calls.
type Admission struct {
	max        int           // in-flight budget
	depth      int           // per-drone waiter budget
	retryAfter time.Duration // backoff hint attached to shed requests

	mu       sync.Mutex
	inflight int
	waiting  int
	queues   map[string][]chan struct{} // per-drone FIFO of waiters
	order    []string                   // drones with waiters, round-robin
	rr       int                        // next drone index in order

	// Gauges/counters (nil-safe via obs semantics is not assumed here;
	// the hooks are plain funcs set once at construction).
	onInflight func(n int) // in-flight gauge
	onQueued   func(n int) // queued-waiter gauge
	onShed     func()      // shed counter
	onAdmitted func()      // admitted counter
}

// NewAdmission builds an admission controller. maxInflight <= 0 returns
// nil — admission disabled, every request admitted immediately.
// queueDepth semantics: 0 selects DefaultQueueDepth, negative disables
// queueing entirely (budget exhausted → shed immediately). retryAfter 0
// selects DefaultRetryAfter.
func NewAdmission(maxInflight, queueDepth int, retryAfter time.Duration) *Admission {
	if maxInflight <= 0 {
		return nil
	}
	switch {
	case queueDepth == 0:
		queueDepth = DefaultQueueDepth
	case queueDepth < 0:
		queueDepth = 0
	}
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &Admission{
		max:        maxInflight,
		depth:      queueDepth,
		retryAfter: retryAfter,
		queues:     make(map[string][]chan struct{}),
	}
}

// Instrument attaches the admission gauges and counters. Any hook may be
// nil. Call before serving.
func (a *Admission) Instrument(inflight, queued func(n int), shed, admitted func()) {
	if a == nil {
		return
	}
	a.onInflight = inflight
	a.onQueued = queued
	a.onShed = shed
	a.onAdmitted = admitted
}

// Max returns the in-flight budget (0 for a nil controller).
func (a *Admission) Max() int {
	if a == nil {
		return 0
	}
	return a.max
}

// Acquire admits one request for the given drone, blocking in the
// drone's fairness queue when the budget is exhausted. It returns a
// *protocol.OverloadedError (matching protocol.ErrOverloaded) when the
// request must be shed, or ctx.Err() when the caller gave up while
// queued. A nil error means the caller holds one in-flight slot and must
// Release it exactly once.
func (a *Admission) Acquire(ctx context.Context, droneID string) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		n := a.inflight
		a.mu.Unlock()
		a.gauge(a.onInflight, n)
		a.count(a.onAdmitted)
		return nil
	}
	if a.depth == 0 || len(a.queues[droneID]) >= a.depth {
		a.mu.Unlock()
		a.count(a.onShed)
		return &protocol.OverloadedError{RetryAfter: a.retryAfter}
	}
	ready := make(chan struct{})
	if len(a.queues[droneID]) == 0 {
		a.order = append(a.order, droneID)
	}
	a.queues[droneID] = append(a.queues[droneID], ready)
	a.waiting++
	w := a.waiting
	a.mu.Unlock()
	a.gauge(a.onQueued, w)

	select {
	case <-ready:
		// The releasing request transferred its slot to us; inflight was
		// never decremented.
		a.count(a.onAdmitted)
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.dequeue(droneID, ready) {
			a.waiting--
			w := a.waiting
			a.mu.Unlock()
			a.gauge(a.onQueued, w)
			return ctx.Err()
		}
		// Lost the race: a Release already granted us the slot. Pass it
		// on so the budget is not leaked.
		a.mu.Unlock()
		a.Release()
		return ctx.Err()
	}
}

// Release returns one in-flight slot. If a waiter is queued the slot is
// transferred directly — round-robin across drones — instead of being
// freed and re-contended.
func (a *Admission) Release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if ready, ok := a.grant(); ok {
		a.waiting--
		w := a.waiting
		a.mu.Unlock()
		a.gauge(a.onQueued, w)
		close(ready)
		return
	}
	a.inflight--
	n := a.inflight
	a.mu.Unlock()
	a.gauge(a.onInflight, n)
}

// grant pops the next waiter in round-robin drone order. Caller holds
// a.mu.
func (a *Admission) grant() (chan struct{}, bool) {
	for len(a.order) > 0 {
		if a.rr >= len(a.order) {
			a.rr = 0
		}
		drone := a.order[a.rr]
		q := a.queues[drone]
		if len(q) == 0 {
			// Drained (waiters cancelled); drop the drone from rotation.
			delete(a.queues, drone)
			a.order = append(a.order[:a.rr], a.order[a.rr+1:]...)
			continue
		}
		ready := q[0]
		q = q[1:]
		if len(q) == 0 {
			delete(a.queues, drone)
			a.order = append(a.order[:a.rr], a.order[a.rr+1:]...)
		} else {
			a.queues[drone] = q
			a.rr++
		}
		return ready, true
	}
	return nil, false
}

// dequeue removes a specific waiter from a drone's queue; false means the
// waiter was already granted. Caller holds a.mu.
func (a *Admission) dequeue(droneID string, ready chan struct{}) bool {
	q := a.queues[droneID]
	for i, ch := range q {
		if ch == ready {
			a.queues[droneID] = append(q[:i:i], q[i+1:]...)
			if len(a.queues[droneID]) == 0 {
				delete(a.queues, droneID)
				for j, d := range a.order {
					if d == droneID {
						a.order = append(a.order[:j], a.order[j+1:]...)
						if a.rr > j {
							a.rr--
						}
						break
					}
				}
			}
			return true
		}
	}
	return false
}

// Inflight returns the currently admitted request count (diagnostics).
func (a *Admission) Inflight() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Queued returns the currently waiting request count (diagnostics).
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

func (a *Admission) gauge(fn func(int), n int) {
	if fn != nil {
		fn(n)
	}
}

func (a *Admission) count(fn func()) {
	if fn != nil {
		fn()
	}
}
