// Package pipeline is the auditor's staged verification framework: every
// verification step is a Stage with one uniform signature, declared once
// in a Registry, and executed by a Runner that handles naming, metrics,
// trace spans and verdict-vs-error classification in a single place.
//
// The paper's AliDrone Server is one logical pipeline (signature →
// chronology → speed feasibility → sufficiency, §IV-C); historically the
// batch submission path, the real-time stream path and the accusation
// re-check each hand-rolled their own copy of that sequence. The package
// exists so all entry points compose the same stages from the same
// registry and a new envelope or check is one Stage, not three edits.
//
// Classification contract: a stage returns
//
//   - nil — the check passed, the runner proceeds to the next stage;
//   - *Violation — the submission failed a compliance check; the runner
//     stops and reports a violation verdict (a result, not an error);
//   - any other error — an internal failure (cancelled context, storage
//     unavailable); the runner stops and surfaces the error. No verdict
//     is issued, because no check actually concluded anything.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
)

// Violation marks a stage failure that is a verdict, not an internal
// error: the submission conclusively failed a compliance check.
type Violation struct {
	Reason string
	// InsufficientPairs carries the failed-pair count when the verdict
	// was reached by the sufficiency check (the paper's Fig 8-(c)
	// quantity); zero otherwise.
	InsufficientPairs int
}

// Error implements error so stages return violations through the uniform
// signature.
func (v *Violation) Error() string { return v.Reason }

// Violationf builds a Violation from a format string.
func Violationf(format string, args ...any) *Violation {
	return &Violation{Reason: fmt.Sprintf(format, args...)}
}

// Submission is the unit of work flowing through the pipeline. Entry
// points populate the fields their envelope provides (ciphertext, a
// decoded trace, a session key); stages progressively fill in the rest.
type Submission struct {
	// DroneID names the submitting drone (already resolved by the entry
	// point — unknown drones never enter the pipeline).
	DroneID string

	// Ciphertext is the encrypted envelope as received; the decrypt
	// stage produces Plaintext from it.
	Ciphertext []byte
	// Plaintext is the decrypted envelope; the decode stages produce
	// the typed PoA / sample trace from it.
	Plaintext []byte

	// PoA is the per-sample-signed envelope (regular and MAC modes).
	PoA poa.PoA
	// BatchSig is the single trace signature of the batch envelope, and
	// BatchEpoch the key rotation epoch it was sealed under.
	BatchSig   []byte
	BatchEpoch int
	// Keys resolves the drone's registered TEE verification keys T+ by
	// rotation epoch (the whole ring, so traces spanning a rotation
	// verify correctly).
	Keys protocol.KeyRing
	// Suite names the drone's negotiated signature suite, labelling the
	// signature-verify metrics.
	Suite string
	// MACKey is the flight-session HMAC key (symmetric mode only).
	MACKey []byte

	// Samples is the bare alibi trace the compliance stages verify.
	Samples []poa.Sample

	// Sealed is the decoded sealed-mode PoA (sealed disclosure
	// submissions only), filled by the sealed decode stage.
	Sealed privacy.SealedPoA
	// Envelope is the decoded commit-mode envelope (commit disclosure
	// submissions only), filled by the commit decode stage.
	Envelope *privacy.CommitEnvelope

	// Zones, when non-nil, overrides the zone set the sufficiency stage
	// checks against (the accusation re-check pins it to the single
	// accused zone); nil means "look up the zones near the trace".
	Zones []geo.GeoCircle
	// Report is the sufficiency report, filled by the sufficiency stage.
	Report poa.Report

	// Digest is the replay-detection digest of Plaintext; DigestClaimed
	// records that the replay stage atomically claimed it (the entry
	// point releases the claim when the submission does not commit).
	Digest        [32]byte
	DigestClaimed bool
	// DigestSeen is the claim timestamp logged with the commit.
	DigestSeen time.Time
}

// Stage is one named verification step. Run inspects and advances the
// submission; the Runner wraps it with metrics, tracing and verdict
// classification, so implementations contain only the check itself.
type Stage struct {
	Name string
	Run  func(ctx context.Context, sub *Submission) error
}

// Registry is the declare-once stage catalogue. Entry points compose
// their sequences from it by key, so the pipeline order is data, not
// duplicated control flow. The key identifies the implementation; the
// stage's Name is the metric/span label, and several keys may share one
// label (the three signature envelopes all report as stage="signature").
type Registry struct {
	stages map[string]Stage
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{stages: make(map[string]Stage)} }

// Add files a stage under key. Registering two stages with the same key
// is a programming error and panics at construction time.
func (r *Registry) Add(key string, st Stage) {
	if key == "" || st.Name == "" || st.Run == nil {
		panic("pipeline: stage needs a key, a name and a Run func")
	}
	if _, dup := r.stages[key]; dup {
		panic("pipeline: duplicate stage " + key)
	}
	r.stages[key] = st
}

// Sequence resolves an ordered stage list by key. Unknown keys panic:
// sequences are composed at server construction, not per request.
func (r *Registry) Sequence(keys ...string) []Stage {
	seq := make([]Stage, len(keys))
	for i, k := range keys {
		st, ok := r.stages[k]
		if !ok {
			panic("pipeline: unknown stage " + k)
		}
		seq[i] = st
	}
	return seq
}

// Keys returns the registered stage keys (unordered), for diagnostics.
func (r *Registry) Keys() []string {
	out := make([]string, 0, len(r.stages))
	for k := range r.stages {
		out = append(out, k)
	}
	return out
}

// Runner executes stage sequences under uniform instrumentation: each
// stage runs inside a "verify.<stage>" trace span and a per-stage latency
// histogram with pass/fail counters, exactly once, no matter which entry
// point composed the sequence.
type Runner struct {
	// Metrics receives the per-stage series (nil disables).
	Metrics *obs.Registry
	// Tracer records the per-stage spans (nil disables).
	Tracer *otrace.Tracer
	// MetricStageSeconds and MetricStageTotal name the per-stage series.
	MetricStageSeconds string
	MetricStageTotal   string
	// OnStage, when set, is invoked before each stage runs. It exists
	// for tests that need to stall or observe the pipeline
	// deterministically; production servers leave it nil.
	OnStage func(ctx context.Context, stage string, sub *Submission)
}

// Run executes the stages in order over sub and classifies the outcome:
// all stages pass → compliant verdict; a stage returns *Violation → the
// violation verdict (nil error); anything else → the error, verdict
// withheld.
func (r *Runner) Run(ctx context.Context, sub *Submission, stages []Stage) (protocol.SubmitPoAResponse, error) {
	for _, st := range stages {
		err := r.runStage(ctx, st, sub)
		if err == nil {
			continue
		}
		var v *Violation
		if errors.As(err, &v) {
			return protocol.SubmitPoAResponse{
				Verdict:           protocol.VerdictViolation,
				Reason:            v.Reason,
				InsufficientPairs: v.InsufficientPairs,
			}, nil
		}
		return protocol.SubmitPoAResponse{}, err
	}
	return protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant}, nil
}

// runStage executes one stage under its latency histogram, pass/fail
// counters and a "verify.<stage>" trace span, so a submission's trace
// shows the same decomposition the metrics aggregate. With neither a
// registry nor a tracer configured this reduces to st.Run(ctx, sub).
func (r *Runner) runStage(ctx context.Context, st Stage, sub *Submission) error {
	if r.OnStage != nil {
		r.OnStage(ctx, st.Name, sub)
	}
	reg := r.Metrics
	if reg == nil && r.Tracer == nil {
		return st.Run(ctx, sub)
	}
	tctx, tsp := r.Tracer.StartSpan(ctx, "verify."+st.Name)
	sp := reg.StartSpan(reg.Histogram(obs.L(r.MetricStageSeconds, "stage", st.Name), obs.DurationBuckets))
	err := st.Run(tctx, sub)
	sp.End()
	tsp.SetError(err)
	tsp.End()
	result := "pass"
	if err != nil {
		result = "fail"
	}
	reg.Counter(obs.L(r.MetricStageTotal, "result", result, "stage", st.Name)).Inc()
	return err
}
