package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestNilAdmissionAdmitsEverything(t *testing.T) {
	var a *Admission
	if a = NewAdmission(0, 0, 0); a != nil {
		t.Fatal("maxInflight 0 should disable admission")
	}
	if err := a.Acquire(context.Background(), "drone-1"); err != nil {
		t.Fatal(err)
	}
	a.Release()
	if a.Max() != 0 || a.Inflight() != 0 || a.Queued() != 0 {
		t.Error("nil accessors should be zero")
	}
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	// queueDepth < 0: no queueing, excess requests shed immediately.
	a := NewAdmission(2, -1, 3*time.Second)
	ctx := context.Background()
	if err := a.Acquire(ctx, "d1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, "d2"); err != nil {
		t.Fatal(err)
	}

	err := a.Acquire(ctx, "d3")
	if !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var over *protocol.OverloadedError
	if !errors.As(err, &over) || over.RetryAfter != 3*time.Second {
		t.Errorf("overload error = %#v, want RetryAfter 3s", err)
	}

	a.Release()
	if err := a.Acquire(ctx, "d3"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	a.Release()
	a.Release()
	if n := a.Inflight(); n != 0 {
		t.Errorf("inflight = %d after all releases", n)
	}
}

func TestAdmissionQueueTransfersSlot(t *testing.T) {
	a := NewAdmission(1, 4, 0)
	ctx := context.Background()
	if err := a.Acquire(ctx, "d1"); err != nil {
		t.Fatal(err)
	}

	granted := make(chan error, 1)
	go func() { granted <- a.Acquire(ctx, "d2") }()
	waitQueued(t, a, 1)

	a.Release() // transfers the slot, inflight never dips
	if err := <-granted; err != nil {
		t.Fatal(err)
	}
	if n := a.Inflight(); n != 1 {
		t.Errorf("inflight = %d, want 1 (slot transferred)", n)
	}
	a.Release()
}

func TestAdmissionShedsWhenDroneQueueFull(t *testing.T) {
	a := NewAdmission(1, 1, 0)
	ctx := context.Background()
	if err := a.Acquire(ctx, "noisy"); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx, "noisy") }()
	waitQueued(t, a, 1)

	// Same drone, queue full: shed. Another drone still gets a queue slot.
	if err := a.Acquire(ctx, "noisy"); !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatalf("third noisy acquire = %v, want ErrOverloaded", err)
	}
	other := make(chan error, 1)
	go func() { other <- a.Acquire(ctx, "polite") }()
	waitQueued(t, a, 2)

	a.Release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	a.Release()
	if err := <-other; err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestAdmissionRoundRobinAcrossDrones(t *testing.T) {
	a := NewAdmission(1, 4, 0)
	ctx := context.Background()
	if err := a.Acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}

	// Enqueue, in order: b1, b2 (drone B), then c1 (drone C). Fairness
	// means releases grant B, then C, then B again — not B, B, C.
	grants := make(chan string, 3)
	enqueue := func(label, drone string) {
		go func() {
			if err := a.Acquire(ctx, drone); err != nil {
				t.Error(err)
			}
			grants <- label
		}()
	}
	enqueue("b1", "B")
	waitQueued(t, a, 1)
	enqueue("b2", "B")
	waitQueued(t, a, 2)
	enqueue("c1", "C")
	waitQueued(t, a, 3)

	a.Release()
	order := []string{<-grants}
	a.Release()
	order = append(order, <-grants)
	a.Release()
	order = append(order, <-grants)
	a.Release()

	if order[0] != "b1" || order[1] != "c1" || order[2] != "b2" {
		t.Errorf("grant order = %v, want [b1 c1 b2] (round-robin across drones)", order)
	}
}

func TestAdmissionCancelledWaiterLeavesNoLeak(t *testing.T) {
	a := NewAdmission(1, 4, 0)
	if err := a.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() { waited <- a.Acquire(ctx, "giver-upper") }()
	waitQueued(t, a, 1)

	cancel()
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	waitQueued(t, a, 0)

	// The budget must be intact: release the holder and admit again.
	a.Release()
	if n := a.Inflight(); n != 0 {
		t.Fatalf("inflight = %d after release, want 0", n)
	}
	if err := a.Acquire(context.Background(), "next"); err != nil {
		t.Fatalf("budget leaked: %v", err)
	}
	a.Release()
}

func TestAdmissionInstrumentHooks(t *testing.T) {
	a := NewAdmission(1, -1, 0)
	var inflight, queued int
	var shed, admitted int
	a.Instrument(
		func(n int) { inflight = n },
		func(n int) { queued = n },
		func() { shed++ },
		func() { admitted++ },
	)
	ctx := context.Background()
	if err := a.Acquire(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, "d"); !errors.Is(err, protocol.ErrOverloaded) {
		t.Fatal(err)
	}
	a.Release()
	if admitted != 1 || shed != 1 || inflight != 0 || queued != 0 {
		t.Errorf("hooks: admitted=%d shed=%d inflight=%d queued=%d", admitted, shed, inflight, queued)
	}
}

// waitQueued spins until the waiter count reaches want — enqueueing
// happens on goroutines, so tests must observe the queue, not race it.
func waitQueued(t *testing.T, a *Admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Queued() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", a.Queued(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
