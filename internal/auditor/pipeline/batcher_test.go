package pipeline

// VerifyBatcher tests: the batcher must be observationally identical to
// a sequential loop of Verify — same lowest failing index, same typed
// error — under every span layout (mixed keys, long single-key runs) and
// under heavy concurrency through the shared pool.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sigcrypto"
)

// batchKeys generates one private key per suite ID given, reusing a
// deterministic stream.
func batchKeys(t testing.TB, suiteIDs ...string) []sigcrypto.PrivateKey {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	keys := make([]sigcrypto.PrivateKey, len(suiteIDs))
	for i, id := range suiteIDs {
		suite, err := sigcrypto.SuiteByID(id)
		if err != nil {
			t.Fatal(err)
		}
		keys[i], err = suite.GenerateKey(rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// signedItems builds n valid items cycling through the given keys, so
// consecutive items alternate keys when more than one key is supplied —
// exercising the span-splitting paths.
func signedItems(t testing.TB, keys []sigcrypto.PrivateKey, n int) []VerifyItem {
	t.Helper()
	items := make([]VerifyItem, n)
	for i := range items {
		key := keys[i%len(keys)]
		msg := fmt.Appendf(nil, "item %d", i)
		sig, err := key.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = VerifyItem{Key: key.Public(), Msg: msg, Sig: sig}
	}
	return items
}

// loopOfVerify is the reference the batcher must match.
func loopOfVerify(items []VerifyItem) (int, error) {
	for i, it := range items {
		if err := it.Key.Verify(it.Msg, it.Sig); err != nil {
			return i, err
		}
	}
	return -1, nil
}

func TestVerifyBatcherAgreesWithLoop(t *testing.T) {
	keysets := map[string][]sigcrypto.PrivateKey{
		"one ed25519 key":  batchKeys(t, sigcrypto.SuiteEd25519),
		"one rsa key":      batchKeys(t, sigcrypto.SuiteRSA1024),
		"alternating keys": batchKeys(t, sigcrypto.SuiteEd25519, sigcrypto.SuiteRSA1024, sigcrypto.SuiteEd25519),
	}
	pools := map[string]*parallel.Pool{"pool-4": parallel.NewPool(4), "pool-1": parallel.NewPool(1)}

	for keysName, keys := range keysets {
		for poolName, pool := range pools {
			b := &VerifyBatcher{Pool: pool}
			prefix := keysName + "/" + poolName + "/"

			check := func(name string, items []VerifyItem) {
				t.Run(prefix+name, func(t *testing.T) {
					wantIdx, wantErr := loopOfVerify(items)
					gotIdx, gotErr := b.Verify(context.Background(), items)
					if gotIdx != wantIdx || (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("batcher = (%d, %v), loop = (%d, %v)", gotIdx, gotErr, wantIdx, wantErr)
					}
					if gotErr != nil && !errors.Is(gotErr, sigcrypto.ErrBadSignature) {
						t.Fatalf("batcher error %v is not typed ErrBadSignature", gotErr)
					}
				})
			}

			valid := signedItems(t, keys, 24)
			check("all valid", valid)
			check("empty", nil)
			check("singleton", valid[:1])

			tamper := func(n, at int, f func(*VerifyItem)) []VerifyItem {
				items := signedItems(t, keys, n)
				f(&items[at])
				return items
			}
			check("one tampered sig", tamper(24, 7, func(it *VerifyItem) {
				it.Sig = append([]byte(nil), it.Sig...)
				it.Sig[0] ^= 0x01
			}))
			check("one tampered msg", tamper(24, 13, func(it *VerifyItem) {
				it.Msg = append([]byte(nil), it.Msg...)
				it.Msg[0] ^= 0x01
			}))
			check("first invalid", tamper(24, 0, func(it *VerifyItem) { it.Sig = []byte("garbage") }))
			check("last invalid", tamper(24, 23, func(it *VerifyItem) { it.Sig = []byte("garbage") }))
		}
	}
}

// TestVerifyBatcherLowestIndexDeterminism plants several bad items; the
// reported index must always be the lowest one regardless of which span
// or worker finds its failure first.
func TestVerifyBatcherLowestIndexDeterminism(t *testing.T) {
	keys := batchKeys(t, sigcrypto.SuiteEd25519)
	b := &VerifyBatcher{Pool: parallel.NewPool(8)}
	for round := 0; round < 20; round++ {
		items := signedItems(t, keys, 64)
		for _, at := range []int{11, 30, 31, 60} {
			items[at].Sig = []byte("bad")
		}
		idx, err := b.Verify(context.Background(), items)
		if idx != 11 || err == nil {
			t.Fatalf("round %d: idx = %d (err %v), want 11", round, idx, err)
		}
	}
}

// TestVerifyBatcherConcurrentStress drives many goroutines through one
// batcher so leaders drain followers' queues (run under -race in make
// check). Every caller must still get its own batch's result.
func TestVerifyBatcherConcurrentStress(t *testing.T) {
	keys := batchKeys(t, sigcrypto.SuiteEd25519, sigcrypto.SuiteRSA1024)
	b := &VerifyBatcher{Pool: parallel.NewPool(4)}

	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			items := signedItems(t, keys, 8+c%5)
			wantIdx := -1
			if c%3 == 0 { // a third of the batches carry one bad signature
				wantIdx = c % len(items)
				items[wantIdx].Sig = []byte("tampered")
			}
			idx, err := b.Verify(context.Background(), items)
			if idx != wantIdx || (err == nil) != (wantIdx == -1) {
				errs[c] = fmt.Errorf("caller %d: got (%d, %v), want idx %d", c, idx, err, wantIdx)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestVerifyBatcherCancelledFollower cancels a follower's context while
// a leader holds the queue; the follower must return the context error
// promptly and the batcher must stay usable.
func TestVerifyBatcherCancelledFollower(t *testing.T) {
	keys := batchKeys(t, sigcrypto.SuiteEd25519)
	b := &VerifyBatcher{Pool: parallel.NewPool(2)}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if idx, err := b.Verify(ctx, signedItems(t, keys, 4)); !errors.Is(err, context.Canceled) && err != nil {
		// A pre-cancelled context may still win the race and verify; all
		// that is required is no deadlock and a coherent result.
		t.Logf("pre-cancelled verify returned (%d, %v)", idx, err)
	}
	if idx, err := b.Verify(context.Background(), signedItems(t, keys, 4)); idx != -1 || err != nil {
		t.Fatalf("batcher unusable after cancellation: (%d, %v)", idx, err)
	}
}
