package pipeline

import (
	"context"
	"sync"

	"repro/internal/parallel"
	"repro/internal/sigcrypto"
)

// VerifyItem is one signature check: sig over msg under a resolved
// verification key.
type VerifyItem struct {
	Key sigcrypto.PublicKey
	Msg []byte
	Sig []byte
}

// VerifyBatcher amortises signature verification across a submission's
// samples and across admission-queued submissions, with the same
// group-leader pattern the storage WAL uses for group commit: the first
// caller to arrive becomes the leader and drains every queued batch in one
// dispatch loop over the shared worker pool, so concurrent submissions
// coalesce instead of contending for pool slots one sample at a time.
// Within a batch, contiguous same-key runs collapse into single
// Suite.BatchVerify calls.
//
// The result contract matches parallel.FirstError: the reported index is
// the lowest failing item of the caller's batch — identical to a
// sequential loop of Verify — or -1 with a nil error when all verify.
type VerifyBatcher struct {
	// Pool fans verification across workers; nil verifies sequentially.
	Pool *parallel.Pool

	mu      sync.Mutex
	queue   []*verifyJob
	leading bool
}

type verifyJob struct {
	ctx   context.Context
	items []VerifyItem
	idx   int
	err   error
	done  chan struct{}
}

// Verify checks every item, returning the lowest failing index with its
// error, or (-1, nil) when all signatures are valid. It blocks until a
// leader has executed the batch or ctx is cancelled.
func (b *VerifyBatcher) Verify(ctx context.Context, items []VerifyItem) (int, error) {
	if len(items) == 0 {
		return -1, nil
	}
	job := &verifyJob{ctx: ctx, items: items, idx: -1, done: make(chan struct{})}

	b.mu.Lock()
	b.queue = append(b.queue, job)
	if b.leading {
		// A leader is draining; it will pick this job up.
		b.mu.Unlock()
		select {
		case <-job.done:
			return job.idx, job.err
		case <-ctx.Done():
			// The leader still executes the job; this caller stops
			// waiting for the result.
			return -1, ctx.Err()
		}
	}
	b.leading = true
	for {
		if len(b.queue) == 0 {
			b.leading = false
			b.mu.Unlock()
			break
		}
		batch := b.queue
		b.queue = nil
		b.mu.Unlock()
		for _, j := range batch {
			j.idx, j.err = verifyItems(j.ctx, b.Pool, j.items)
			close(j.done)
		}
		b.mu.Lock()
	}
	return job.idx, job.err
}

// keySpan is a contiguous run of items under one key — the unit handed to
// Suite.BatchVerify.
type keySpan struct {
	lo, hi int // [lo, hi)
}

// verifyItems performs the actual checks for one batch: contiguous
// same-key runs become Suite.BatchVerify calls, runs are capped so a
// single long trace still fans across the pool, and FirstErrorCtx keeps
// the lowest-failing-index determinism across spans (spans are contiguous
// and ordered, so the lowest failing span's internal index is the global
// lowest failing item).
func verifyItems(ctx context.Context, pool *parallel.Pool, items []VerifyItem) (int, error) {
	n := len(items)
	if n == 0 {
		return -1, nil
	}
	// Cap span length so one submission still spreads over the workers:
	// aim for about two spans per worker.
	limit := (n + 2*pool.Size() - 1) / (2 * pool.Size())
	if limit < 1 {
		limit = 1
	}
	var spans []keySpan
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && hi-lo < limit && items[hi].Key.Equal(items[lo].Key) {
			hi++
		}
		spans = append(spans, keySpan{lo: lo, hi: hi})
		lo = hi
	}
	fails := make([]int, len(spans))
	si, err := pool.FirstErrorCtx(ctx, len(spans), func(i int) error {
		sp := spans[i]
		off, err := verifySpan(items[sp.lo:sp.hi])
		if err != nil {
			fails[i] = sp.lo + off
		}
		return err
	})
	if err != nil {
		if si < 0 {
			return -1, err // context cancellation
		}
		return fails[si], err
	}
	return -1, nil
}

// verifySpan checks one single-key run through the key's suite
// BatchVerify, returning the failing offset within the span. Keys whose
// suite is not registered (legacy RSA keys at non-standard modulus sizes)
// fall back to a plain verify loop.
func verifySpan(items []VerifyItem) (int, error) {
	key := items[0].Key
	if suite, err := sigcrypto.SuiteByID(key.SuiteID()); err == nil {
		msgs := make([][]byte, len(items))
		sigs := make([][]byte, len(items))
		for i, it := range items {
			msgs[i], sigs[i] = it.Msg, it.Sig
		}
		off, err := suite.BatchVerify(key, msgs, sigs)
		if err != nil && off < 0 {
			off = 0
		}
		return off, err
	}
	for i, it := range items {
		if err := key.Verify(it.Msg, it.Sig); err != nil {
			return i, err
		}
	}
	return -1, nil
}
