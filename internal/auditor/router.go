package auditor

// Router is the cluster front layer of the tentpole refactor: one
// auditor process owns N local shard Servers and a membership view of
// its peers, and every drone-keyed operation is routed — by consistent
// hash over the drone ID — to the shard that owns it, locally or on a
// remote node. The transports (HTTP handler, wire server) are backend
// agnostic: they serve a Router exactly as they serve a bare Server.
//
// Routing is two-level:
//
//	drone ID ──ring──▶ owning node ──fnv mod shards──▶ local shard
//
// A request that lands on a non-owner is forwarded once to the owner
// with protocol.ForwardedHeader set; a forwarded request landing on
// another non-owner answers ErrMisrouted (421) instead of forwarding
// again, so routing disagreement during a membership change can never
// loop (DESIGN.md §11).

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/storage"
	"repro/internal/zone"
)

// Router implements Backend and WireBackend over a set of local shards
// plus the cluster's remote nodes.
var (
	_ Backend     = (*Router)(nil)
	_ WireBackend = (*Router)(nil)
)

// RouterConfig parameterises one cluster node.
type RouterConfig struct {
	// Self identifies this node: its ID on the ring and the addresses
	// peers and clients reach it at.
	Self cluster.Node
	// Seeds are the peers contacted at bootstrap (self is implied).
	Seeds []cluster.Node
	// Shards is the number of local shard Servers (default 1).
	Shards int
	// StateDir, when non-empty, gives every shard a file-backed store at
	// <StateDir>/shard-<i>. Empty runs all shards in memory.
	StateDir string
	// Server is the per-shard configuration template. Its EncryptionKey,
	// ShardTag and Metrics/Tracer/Clock/Random fields are managed by the
	// router: the key is shared across shards (fetched from a seed when
	// joining an existing cluster), the tag is derived from Self.ID and
	// the shard index.
	Server Config
	// VNodes is the virtual-node count per node on the ring (0 selects
	// cluster.DefaultVNodes).
	VNodes int
	// SuspectAfter/DeadAfter tune failure detection (0 selects the
	// cluster package defaults).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// GossipInterval paces the membership loop started by Run (0 selects
	// cluster.DefaultGossipInterval).
	GossipInterval time.Duration
	// Logger receives routing and handoff log lines. Nil disables.
	Logger *olog.Logger
	// HTTPClient performs node-to-node calls (forwards, gossip, handoff).
	// Nil selects a client with a 10 s timeout.
	HTTPClient *http.Client

	// keyFetchAttempts overrides the seed key-fetch retry count (0 keeps
	// the default; tests use 1 to fail fast).
	keyFetchAttempts int
}

// streamRoute remembers where an open stream lives: on a local shard or
// on a peer node. Stream IDs are shard-tagged, so the map never aliases.
type streamRoute struct {
	local bool
	shard int
	node  string // owning node ID when !local
	addr  string // owning node address when !local
}

// Router fronts N local shard Servers and the cluster's remote nodes.
type Router struct {
	cfg        RouterConfig
	shards     []*Server
	stores     []storage.Store
	membership *cluster.Membership
	client     *http.Client
	log        *olog.Logger
	clock      obs.Clock

	streams   sync.Map // stream ID → streamRoute
	wireConns atomic.Int64
	joined    atomic.Bool
	fwd       *wireForwarder
	slo       *obs.SLO // shared across shards; nil when untracked

	// handoffMu serialises outgoing rebalances and incoming handoff
	// imports; handoffsSeen dedups re-deliveries per (source, map
	// version) so repeated rebalance rounds never duplicate state.
	handoffMu    sync.Mutex
	handoffsSeen map[string]uint64

	// Cluster metrics, nil when Config.Server.Metrics is nil.
	nodesGauge     *obs.Gauge
	forwardsOut    *obs.Counter
	forwardsIn     *obs.Counter
	handoffSeconds *obs.Histogram
}

// NewRouter opens (or creates) every local shard and joins the cluster
// membership. It does not start the gossip loop — call Run, or drive
// Gossiper rounds manually in tests.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("auditor: router needs a node ID")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	r := &Router{
		cfg:    cfg,
		client: cfg.HTTPClient,
		// Every line this node logs carries its identity, so interleaved
		// multi-node output (tests, co-located processes) is attributable.
		log:          cfg.Logger.With("node", cfg.Self.ID),
		fwd:          newWireForwarder(),
		handoffsSeen: make(map[string]uint64),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 10 * time.Second}
	}
	if reg := cfg.Server.Metrics; reg != nil {
		r.nodesGauge = reg.Gauge(MetricClusterNodes)
		r.forwardsOut = reg.Counter(obs.L(MetricClusterForwardsTotal, "dir", "out"))
		r.forwardsIn = reg.Counter(obs.L(MetricClusterForwardsTotal, "dir", "in"))
		r.handoffSeconds = reg.Histogram(MetricClusterHandoffSeconds, obs.DurationBuckets)
	}

	// The PoA encryption key must be cluster-wide: a drone encrypts to
	// one public key and its submissions may verify on any node. The
	// first node generates it; a joining node fetches it from a seed
	// (seed-first bootstrap — documented in DESIGN.md §11). A fresh
	// joiner that cannot reach any seed must NOT fall back to generating
	// its own key — the cluster would silently diverge and every
	// forwarded submission fail to decrypt — so it retries long enough
	// to cover seeds booting at the same moment, then refuses to start.
	// A node restarting with shard state skips the fetch: its persisted
	// key wins over any config or fetched key regardless.
	scfg := cfg.Server
	scfg.Logger = scfg.Logger.With("node", cfg.Self.ID)
	// One SLO tracker shared by every shard: the node-level summary (and
	// the fleet status endpoint) wants coherent per-door windows, while
	// the shard= dimension inside the tracker keeps shards tellable
	// apart.
	if scfg.SLO == nil && scfg.Metrics != nil {
		scfg.SLO = obs.NewSLO(obs.SLOOptions{Clock: scfg.Clock})
		scfg.SLO.Register(scfg.Metrics, MetricSLOPrefix)
	}
	r.slo = scfg.SLO
	if scfg.EncryptionKey == nil && !soleNode(cfg.Self, cfg.Seeds) && !hasShardState(cfg.StateDir) {
		key, err := r.fetchClusterKeyRetry(cfg.Seeds)
		if err != nil {
			return nil, fmt.Errorf("auditor: joining cluster without the shared PoA key: %w", err)
		}
		scfg.EncryptionKey = key
	}

	for i := 0; i < cfg.Shards; i++ {
		sc := scfg
		sc.ShardTag = fmt.Sprintf("%s-s%d", cfg.Self.ID, i)
		var (
			srv *Server
			st  storage.Store
			err error
		)
		if cfg.StateDir != "" {
			st, err = storage.OpenFileStore(
				filepath.Join(cfg.StateDir, fmt.Sprintf("shard-%d", i)),
				storage.Options{Metrics: sc.Metrics})
			if err != nil {
				r.closeStores()
				return nil, fmt.Errorf("auditor: shard %d store: %w", i, err)
			}
			srv, err = OpenServer(sc, st, "")
		} else {
			srv, err = NewServer(sc)
		}
		if err != nil {
			if st != nil {
				st.Close()
			}
			r.closeStores()
			return nil, fmt.Errorf("auditor: shard %d: %w", i, err)
		}
		r.shards = append(r.shards, srv)
		r.stores = append(r.stores, st)
		if i == 0 {
			// Shard 0 settles the key (a persisted key wins over the
			// config); every later shard reuses it.
			scfg.EncryptionKey = srv.EncryptionKey()
		}
	}

	clock := cfg.Server.Clock
	if clock == nil {
		clock = obs.System
	}
	r.clock = clock
	r.membership = cluster.NewMembership(cluster.MembershipConfig{
		Self:         cfg.Self,
		Seeds:        cfg.Seeds,
		Clock:        clock,
		VNodes:       cfg.VNodes,
		SuspectAfter: cfg.SuspectAfter,
		DeadAfter:    cfg.DeadAfter,
		OnChange:     r.onMapChange,
	})
	r.onMapChange(r.membership.Map())
	// A single-node cluster is joined by definition; with seeds, the
	// first successful gossip exchange flips readiness.
	if soleNode(cfg.Self, cfg.Seeds) {
		r.joined.Store(true)
	}
	return r, nil
}

// soleNode reports whether the seed list names nobody but self.
func soleNode(self cluster.Node, seeds []cluster.Node) bool {
	for _, s := range seeds {
		if s.ID != self.ID {
			return false
		}
	}
	return true
}

// hasShardState reports whether a previous run left shard state under
// dir. Such a node restores its persisted encryption key, so it must
// not block startup on a seed fetch — its peers may all be down.
func hasShardState(dir string) bool {
	if dir == "" {
		return false
	}
	entries, err := os.ReadDir(filepath.Join(dir, "shard-0"))
	return err == nil && len(entries) > 0
}

// fetchClusterKeyRetry cycles the seeds for the cluster encryption key,
// retrying long enough to cover seeds that are starting up at the same
// moment as this node.
func (r *Router) fetchClusterKeyRetry(seeds []cluster.Node) (*rsa.PrivateKey, error) {
	const pause = 250 * time.Millisecond
	attempts := r.cfg.keyFetchAttempts
	if attempts <= 0 {
		attempts = 20
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		for _, seed := range seeds {
			if seed.ID == r.cfg.Self.ID {
				continue
			}
			key, err := r.fetchClusterKey(seed)
			if err == nil {
				return key, nil
			}
			lastErr = err
			if a == 0 {
				r.log.Warn(context.Background(), "cluster key fetch failed; retrying",
					"seed", seed.ID, "err", err.Error())
			}
		}
		time.Sleep(pause)
	}
	return nil, lastErr
}

// closeStores closes every opened shard store (constructor failure and
// Close paths).
func (r *Router) closeStores() {
	for _, st := range r.stores {
		if st != nil {
			st.Close()
		}
	}
}

// Close closes every shard's backing store and the pooled forward
// connections. The router itself holds no goroutines — Run exits with
// its context.
func (r *Router) Close() error {
	r.fwd.Close()
	r.closeStores()
	return nil
}

// Membership exposes the cluster membership (tests and the gossip loop).
func (r *Router) Membership() *cluster.Membership { return r.membership }

// Map returns the current cluster map.
func (r *Router) Map() *cluster.Map { return r.membership.Map() }

// Shard returns local shard i (tests, per-shard housekeeping).
func (r *Router) Shard(i int) *Server { return r.shards[i] }

// NumShards returns the local shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Checkpoint snapshots every local shard (shutdown flush).
func (r *Router) Checkpoint() error {
	var firstErr error
	for i, sh := range r.shards {
		if err := sh.Checkpoint(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Run drives the gossip loop until ctx ends.
func (r *Router) Run(ctx context.Context) {
	g := r.Gossiper()
	g.Run(ctx)
}

// Gossiper builds the membership gossiper wired to this router's
// node-to-node transport.
func (r *Router) Gossiper() *cluster.Gossiper {
	return &cluster.Gossiper{
		M:        r.membership,
		Exchange: r.exchange,
		Interval: r.cfg.GossipInterval,
		OnError: func(peer cluster.Node, err error) {
			r.log.Debug(context.Background(), "gossip exchange failed",
				"peer", peer.ID, "err", err.Error())
		},
	}
}

// exchange performs one gossip round trip with a peer over HTTP.
func (r *Router) exchange(ctx context.Context, peer cluster.Node, d cluster.Digest) (cluster.Digest, error) {
	reply, err := clusterPost[cluster.Digest](ctx, r.client, peer.Addr, protocol.PathClusterGossip, d, false)
	if err != nil {
		return cluster.Digest{}, err
	}
	r.joined.Store(true)
	return reply, nil
}

// onMapChange tracks the map in metrics and rebalances state toward new
// owners in the background.
func (r *Router) onMapChange(m *cluster.Map) {
	if r.nodesGauge != nil {
		r.nodesGauge.Set(float64(len(m.Nodes)))
	}
	if len(m.Nodes) > 1 && m.Version > 1 {
		go func() {
			if err := r.Rebalance(context.Background()); err != nil {
				r.log.Warn(context.Background(), "rebalance failed", "err", err.Error())
			}
		}()
	}
}

// Ready implements the Backend readiness probe: shards are recovered at
// construction, so readiness is purely "has this node joined the ring".
// The reason string travels in the /readyz 503 body, so probes and
// operators see why the node is not serving yet.
func (r *Router) Ready() error {
	if !r.joined.Load() {
		return errors.New("ring not joined (no successful gossip exchange yet)")
	}
	return nil
}

// shardFor maps a drone ID onto a local shard index.
func (r *Router) shardFor(droneID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(droneID))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// localShard returns the shard owning droneID on this node.
func (r *Router) localShard(droneID string) *Server {
	return r.shards[r.shardFor(droneID)]
}

// owner resolves the owning node for a drone ID under the current map.
func (r *Router) owner(droneID string) (cluster.Node, bool) {
	n, ok := r.membership.Map().Owner(droneID)
	if !ok {
		return r.cfg.Self, true // empty ring: everything is local
	}
	return n, n.ID == r.cfg.Self.ID
}

// countForward bumps the forward counters (nil-safe).
func (r *Router) countForward(out bool) {
	switch {
	case out && r.forwardsOut != nil:
		r.forwardsOut.Inc()
	case !out && r.forwardsIn != nil:
		r.forwardsIn.Inc()
	}
}

// routeDrone routes one drone-keyed call: local shard when this node
// owns the drone, a single-hop forward to the owner otherwise. A
// forwarded request that still lands on a non-owner raises ErrMisrouted
// instead of hopping again.
func routeDrone[Resp any](ctx context.Context, r *Router, droneID, path string, req any,
	local func(*Server) (Resp, error)) (Resp, error) {
	return routeDroneVia(ctx, r, droneID, local,
		func(fctx context.Context, owner cluster.Node) (Resp, error) {
			otrace.FromContext(fctx).SetAttr("transport", "http")
			return clusterPost[Resp](fctx, r.client, owner.Addr, path, req, true)
		})
}

// routeDroneVia is routeDrone with a caller-chosen remote transport (the
// submission door prefers the binary wire when the owner serves one).
// The remote branch runs inside a cluster.forward span, so a forwarded
// request is one contiguous trace: the routing node records the hop, the
// owner — receiving the span's traceparent — continues underneath it
// through verify.* down to wal.append.
func routeDroneVia[Resp any](ctx context.Context, r *Router, droneID string,
	local func(*Server) (Resp, error),
	remote func(context.Context, cluster.Node) (Resp, error)) (Resp, error) {
	owner, isLocal := r.owner(droneID)
	if isLocal {
		if isForwarded(ctx) {
			r.countForward(false)
		}
		return local(r.localShard(droneID))
	}
	var zero Resp
	if isForwarded(ctx) {
		return zero, &protocol.MisroutedError{DroneID: droneID, Owner: owner.ID}
	}
	r.countForward(true)
	fctx, sp := r.tracer().StartSpan(ctx, "cluster.forward")
	sp.SetAttr("drone", droneID)
	sp.SetAttr("owner", owner.ID)
	resp, err := remote(fctx, owner)
	sp.SetError(err)
	sp.End()
	return resp, err
}

// tracer returns the shared tracer (nil when tracing is disabled).
func (r *Router) tracer() *otrace.Tracer { return r.cfg.Server.Tracer }

// clusterPost performs one node-to-node POST, decoding the peer's JSON
// reply. Error replies come back as remoteError so the originating door
// reports the peer's status code unchanged.
func clusterPost[Resp any](ctx context.Context, client *http.Client, addr, path string, req any, forwarded bool) (Resp, error) {
	var zero Resp
	body, err := json.Marshal(req)
	if err != nil {
		return zero, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return zero, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the active trace across the hop: the receiving door calls
	// StartRemote with this header, so forwarded work — submissions,
	// gossip-triggered handoffs — stays one contiguous trace.
	if tp := otrace.HeaderFromContext(ctx); tp != "" {
		hreq.Header.Set(protocol.HeaderTraceParent, tp)
	}
	if forwarded {
		hreq.Header.Set(protocol.ForwardedHeader, "1")
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return zero, fmt.Errorf("cluster: %s %s: %w", path, addr, err)
	}
	// Drain the tail (encoders append a newline the JSON decoder never
	// reads) so the keep-alive connection returns to the pool instead of
	// lingering half-read.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&eb)
		msg := eb.Error
		if msg == "" {
			msg = resp.Status
		}
		return zero, &remoteError{status: resp.StatusCode, msg: msg}
	}
	var out Resp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return zero, fmt.Errorf("cluster: %s reply from %s: %w", path, addr, err)
	}
	return out, nil
}

// fetchClusterKey retrieves the shared PoA encryption key from a seed.
func (r *Router) fetchClusterKey(seed cluster.Node) (*rsa.PrivateKey, error) {
	resp, err := r.client.Get("http://" + seed.Addr + protocol.PathClusterKey)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster key: %s", resp.Status)
	}
	var kr protocol.ClusterKeyResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&kr); err != nil {
		return nil, err
	}
	return sigcrypto.UnmarshalPrivateKey(kr.EncKey)
}

// newDroneID issues a routing-friendly random drone ID. The router —
// not the shard — issues IDs, because the ID determines the owning node
// and must exist before the record is placed anywhere.
func (r *Router) newDroneID() (string, error) {
	rnd := r.cfg.Server.Random
	if rnd == nil {
		rnd = rand.Reader
	}
	var b [8]byte
	if _, err := io.ReadFull(rnd, b[:]); err != nil {
		return "", fmt.Errorf("auditor: drone id entropy: %w", err)
	}
	return "drone-" + hex.EncodeToString(b[:]), nil
}

// ---- Backend implementation ----

// RegisterDroneCtx issues a ring-routed drone ID and files the
// registration on the owning node.
func (r *Router) RegisterDroneCtx(ctx context.Context, req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	id, err := r.newDroneID()
	if err != nil {
		return protocol.RegisterDroneResponse{}, err
	}
	owner, isLocal := r.owner(id)
	if isLocal {
		return r.localShard(id).RegisterDroneWithID(ctx, id, req)
	}
	// The cluster-register door always executes locally on the receiver,
	// so no forwarded marker is needed (it can never hop again).
	return clusterPost[protocol.RegisterDroneResponse](ctx, r.client, owner.Addr,
		protocol.PathClusterRegister, protocol.ClusterRegisterRequest{DroneID: id, Req: req}, false)
}

// RegisterZone registers the zone on shard 0 (which issues the ID and
// journals it), mirrors it into the other local shards, and broadcasts
// it to every alive peer. Zones are replicated everywhere — they are
// read on every submission's sufficiency check, and the zone set is
// tiny next to the PoA stream.
func (r *Router) RegisterZone(req protocol.RegisterZoneRequest) (protocol.RegisterZoneResponse, error) {
	resp, err := r.shards[0].RegisterZone(req)
	if err != nil {
		return resp, err
	}
	r.replicateZone(resp.ZoneID)
	return resp, nil
}

// RegisterPolygonZone is RegisterZone for the polygon door.
func (r *Router) RegisterPolygonZone(req protocol.RegisterPolygonZoneRequest) (protocol.RegisterZoneResponse, error) {
	resp, err := r.shards[0].RegisterPolygonZone(req)
	if err != nil {
		return resp, err
	}
	r.replicateZone(resp.ZoneID)
	return resp, nil
}

// replicateZone copies one just-registered zone from shard 0 into the
// remaining local shards and to every alive peer (best-effort: a peer
// that misses the broadcast converges at the next handoff).
func (r *Router) replicateZone(zoneID string) {
	z, ok := r.shards[0].Zones().Get(zoneID)
	if !ok {
		return
	}
	for _, sh := range r.shards[1:] {
		if err := sh.Zones().Restore(z); err != nil {
			r.log.Warn(context.Background(), "zone shard mirror failed", "zone", zoneID, "err", err.Error())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, peer := range r.membership.Peers() {
		if _, err := clusterPost[struct{}](ctx, r.client, peer.Addr, protocol.PathClusterZone, []zone.NFZ{z}, false); err != nil {
			r.log.Warn(ctx, "zone broadcast failed", "zone", zoneID, "peer", peer.ID, "err", err.Error())
		}
	}
}

// ZoneQueryCtx routes by the querying drone: its record (operator key,
// nonce history) lives on the owner, and zones are replicated there.
func (r *Router) ZoneQueryCtx(ctx context.Context, req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathZoneQuery, req,
		func(s *Server) (protocol.ZoneQueryResponse, error) { return s.ZoneQueryCtx(ctx, req) })
}

// SubmitPoACtx routes a submission to the shard owning the drone. The
// forward hop prefers the owner's binary wire door when it advertises
// one — one Forward frame on a pooled connection instead of an HTTP
// round trip — falling back to HTTP only when the wire transport could
// not be reached at all (never after a frame may have been sent, which
// would trip the owner's replay detection).
func (r *Router) SubmitPoACtx(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	return routeDroneVia(ctx, r, req.DroneID,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.SubmitPoACtx(ctx, req) },
		func(fctx context.Context, owner cluster.Node) (protocol.SubmitPoAResponse, error) {
			if owner.WireAddr != "" {
				resp, err, used := r.fwd.Submit(fctx, owner.WireAddr, req, otrace.HeaderFromContext(fctx))
				if used {
					otrace.FromContext(fctx).SetAttr("transport", "wire")
					return resp, err
				}
				r.log.Debug(fctx, "wire forward unavailable; using http",
					"owner", owner.ID, "err", err.Error())
			}
			otrace.FromContext(fctx).SetAttr("transport", "http")
			return clusterPost[protocol.SubmitPoAResponse](fctx, r.client, owner.Addr, protocol.PathSubmitPoA, req, true)
		})
}

// SubmitBatchPoACtx routes a batch submission.
func (r *Router) SubmitBatchPoACtx(ctx context.Context, req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathSubmitBatchPoA, req,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.SubmitBatchPoACtx(ctx, req) })
}

// StartSession routes a session open; the session lands on the drone's
// shard, where the MAC submissions that follow will also route.
func (r *Router) StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error) {
	return routeDrone(context.Background(), r, req.DroneID, protocol.PathStartSession, req,
		func(s *Server) (protocol.StartSessionResponse, error) { return s.StartSession(req) })
}

// SubmitMACPoACtx routes a symmetric-mode submission by its drone — the
// same key StartSession routed by, so the session is on the shard.
func (r *Router) SubmitMACPoACtx(ctx context.Context, req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathSubmitMACPoA, req,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.SubmitMACPoACtx(ctx, req) })
}

// SubmitSealedPoACtx routes a sealed-mode submission to the drone's shard.
func (r *Router) SubmitSealedPoACtx(ctx context.Context, req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathSubmitSealedPoA, req,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.SubmitSealedPoACtx(ctx, req) })
}

// SubmitCommitPoACtx routes a commit-mode submission to the drone's shard.
func (r *Router) SubmitCommitPoACtx(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathSubmitCommitPoA, req,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.SubmitCommitPoACtx(ctx, req) })
}

// RevealCtx routes a selective-disclosure reveal to the drone's shard —
// the challenge and the retained commitment it answers live there.
func (r *Router) RevealCtx(ctx context.Context, req protocol.RevealRequest) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathReveal, req,
		func(s *Server) (protocol.SubmitPoAResponse, error) { return s.RevealCtx(ctx, req) })
}

// RotateKeyCtx routes a TEE key rotation to the drone's shard.
func (r *Router) RotateKeyCtx(ctx context.Context, req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error) {
	return routeDrone(ctx, r, req.DroneID, protocol.PathRotateKey, req,
		func(s *Server) (protocol.RotateKeyResponse, error) { return s.RotateKeyCtx(ctx, req) })
}

// HandleAccusationCtx routes an accusation to the accused drone's shard
// (its retained PoAs live there).
func (r *Router) HandleAccusationCtx(ctx context.Context, droneID, zoneID string, at time.Time) (protocol.SubmitPoAResponse, error) {
	return routeDrone(ctx, r, droneID, protocol.PathAccuse,
		protocol.AccusationRequest{DroneID: droneID, ZoneID: zoneID, At: at},
		func(s *Server) (protocol.SubmitPoAResponse, error) {
			return s.HandleAccusationCtx(ctx, droneID, zoneID, at)
		})
}

// OpenStream routes a stream open by drone and records where the stream
// lives, so per-sample calls — which carry only the stream ID — route
// without a ring lookup.
func (r *Router) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	owner, isLocal := r.owner(req.DroneID)
	if isLocal {
		sh := r.shardFor(req.DroneID)
		resp, err := r.shards[sh].OpenStream(req)
		if err == nil {
			r.streams.Store(resp.StreamID, streamRoute{local: true, shard: sh})
		}
		return resp, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r.countForward(true)
	resp, err := clusterPost[protocol.OpenStreamResponse](ctx, r.client, owner.Addr, protocol.PathStreamOpen, req, true)
	if err == nil {
		r.streams.Store(resp.StreamID, streamRoute{node: owner.ID, addr: owner.Addr})
	}
	return resp, err
}

// streamRouteFor resolves where a stream lives. ok=false means this node
// never saw the stream open (it will answer ErrUnknownStream locally).
func (r *Router) streamRouteFor(streamID string) (streamRoute, bool) {
	v, ok := r.streams.Load(streamID)
	if !ok {
		return streamRoute{}, false
	}
	return v.(streamRoute), true
}

// StreamSampleCtx routes one stream sample to wherever the stream lives.
func (r *Router) StreamSampleCtx(ctx context.Context, req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	rt, ok := r.streamRouteFor(req.StreamID)
	switch {
	case ok && rt.local:
		if isForwarded(ctx) {
			r.countForward(false)
		}
		return r.shards[rt.shard].StreamSampleCtx(ctx, req)
	case ok:
		if isForwarded(ctx) {
			return protocol.StreamSampleResponse{}, &protocol.MisroutedError{DroneID: req.StreamID, Owner: rt.node}
		}
		r.countForward(true)
		return clusterPost[protocol.StreamSampleResponse](ctx, r.client, rt.addr, protocol.PathStreamSample, req, true)
	default:
		// Unknown here: let a local shard produce the canonical
		// ErrUnknownStream answer.
		return r.shards[0].StreamSampleCtx(ctx, req)
	}
}

// CloseStreamCtx routes a stream close and drops the route on success.
func (r *Router) CloseStreamCtx(ctx context.Context, req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	rt, ok := r.streamRouteFor(req.StreamID)
	switch {
	case ok && rt.local:
		if isForwarded(ctx) {
			r.countForward(false)
		}
		resp, err := r.shards[rt.shard].CloseStreamCtx(ctx, req)
		if err == nil {
			r.streams.Delete(req.StreamID)
		}
		return resp, err
	case ok:
		if isForwarded(ctx) {
			return protocol.SubmitPoAResponse{}, &protocol.MisroutedError{DroneID: req.StreamID, Owner: rt.node}
		}
		r.countForward(true)
		resp, err := clusterPost[protocol.SubmitPoAResponse](ctx, r.client, rt.addr, protocol.PathStreamClose, req, true)
		if err == nil {
			r.streams.Delete(req.StreamID)
		}
		return resp, err
	default:
		return r.shards[0].CloseStreamCtx(ctx, req)
	}
}

// EncryptionPub returns the cluster-shared PoA encryption public key.
func (r *Router) EncryptionPub() *rsa.PublicKey { return r.shards[0].EncryptionPub() }

// Zones exposes shard 0's registry; every zone is replicated to every
// shard, so it is a complete view.
func (r *Router) Zones() *zone.Registry { return r.shards[0].Zones() }

// Status aggregates the local shards' state. Zones are replicated to
// every shard, so the zone count is shard 0's, not the sum.
func (r *Router) Status() protocol.StatusResponse {
	var st protocol.StatusResponse
	for _, sh := range r.shards {
		s := sh.Status()
		st.Drones += s.Drones
		st.Zones3D += s.Zones3D
		st.RetainedPoAs += s.RetainedPoAs
		st.OpenStreams += s.OpenStreams
		st.Sessions += s.Sessions
		st.Commitments += s.Commitments
	}
	st.Zones = r.shards[0].Status().Zones
	st.WireConnections = int(r.wireConns.Load())
	return st
}

// Metrics returns the shared metrics registry.
func (r *Router) Metrics() *obs.Registry { return r.cfg.Server.Metrics }

// Tracer returns the shared tracer.
func (r *Router) Tracer() *otrace.Tracer { return r.cfg.Server.Tracer }

// wireConnDelta implements WireBackend connection accounting.
func (r *Router) wireConnDelta(d int64) { r.wireConns.Add(d) }
