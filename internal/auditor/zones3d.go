package auditor

import (
	"context"
	"fmt"

	"repro/internal/poa"
)

// This file adds the paper's §VII-B1 3-D physical model to the server:
// Zone Owners may register *cylindrical* no-fly regions (lat, lon, radius,
// altitude band), and submitted traces — whose samples carry the altitude
// from the $GPGGA sentences — are additionally verified against them with
// the travel-ellipsoid test.
//
// Samples without altitude information (alt = 0) are treated as flying at
// ground level, which is the conservative choice: a cylinder anchored at
// the ground then constrains them exactly like a 2-D zone would.

// RegisterZone3D registers a cylindrical no-fly region and returns its
// issued ID.
func (s *Server) RegisterZone3D(owner string, z poa.CylinderZone) (string, error) {
	if !z.Center.Valid() || z.R <= 0 || z.AltMax < z.AltMin {
		return "", fmt.Errorf("%w: %+v", ErrInvalidCylinder, z)
	}
	id := s.zones3D.add(owner, z)
	if err := s.wal(context.Background(), recZone3DRegistered, cylinderRecord{ID: id, Owner: owner, Zone: z}); err != nil {
		return "", err
	}
	return id, nil
}

// Zones3D returns all registered cylindrical zones.
func (s *Server) Zones3D() []poa.CylinderZone { return s.zones3D.zones() }

// cylinderRecord is one registered 3-D zone.
type cylinderRecord struct {
	ID    string
	Owner string
	Zone  poa.CylinderZone
}
