package nmea

import (
	"fmt"
	"math"
	"strconv"
)

// formatLat renders a latitude in the NMEA ddmm.mmmm convention with its
// hemisphere indicator.
func formatLat(lat float64) (string, string) {
	hemi := "N"
	if lat < 0 {
		hemi = "S"
		lat = -lat
	}
	deg := math.Floor(lat)
	minutes := (lat - deg) * 60
	return fmt.Sprintf("%02d%07.4f", int(deg), minutes), hemi
}

// formatLon renders a longitude in the NMEA dddmm.mmmm convention with its
// hemisphere indicator.
func formatLon(lon float64) (string, string) {
	hemi := "E"
	if lon < 0 {
		hemi = "W"
		lon = -lon
	}
	deg := math.Floor(lon)
	minutes := (lon - deg) * 60
	return fmt.Sprintf("%03d%08.4f", int(deg), minutes), hemi
}

// parseCoord decodes a ddmm.mmmm / dddmm.mmmm field plus hemisphere into
// signed decimal degrees. degDigits is 2 for latitude, 3 for longitude.
func parseCoord(field, hemi string, degDigits int) (float64, error) {
	if len(field) < degDigits+2 {
		return 0, fmt.Errorf("%w: coordinate %q too short", ErrMissingFields, field)
	}
	deg, err := strconv.ParseFloat(field[:degDigits], 64)
	if err != nil {
		return 0, fmt.Errorf("nmea: parse degrees %q: %w", field, err)
	}
	minutes, err := strconv.ParseFloat(field[degDigits:], 64)
	if err != nil {
		return 0, fmt.Errorf("nmea: parse minutes %q: %w", field, err)
	}
	val := deg + minutes/60
	switch hemi {
	case "N", "E":
	case "S", "W":
		val = -val
	default:
		return 0, fmt.Errorf("nmea: bad hemisphere %q", hemi)
	}
	return val, nil
}
