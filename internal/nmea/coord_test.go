package nmea

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestParseCoordEdgeCases pins the ddmm.mmmm codec on the inputs real
// receivers emit at the edges: zero-padded minutes near the equator and
// prime meridian, both hemisphere signs, and the malformed shapes the
// parser must reject rather than misread.
func TestParseCoordEdgeCases(t *testing.T) {
	const eps = 1e-9
	good := []struct {
		name      string
		field     string
		hemi      string
		degDigits int
		want      float64
	}{
		{"canonical lat", "4807.0380", "N", 2, 48 + 7.038/60},
		{"southern hemisphere", "4807.0380", "S", 2, -(48 + 7.038/60)},
		{"western hemisphere", "01131.0000", "W", 3, -(11 + 31.0/60)},
		{"zero-padded minutes lat", "0007.0000", "N", 2, 7.0 / 60},
		{"zero-padded minutes lon", "00007.0000", "E", 3, 7.0 / 60},
		{"equator", "0000.0000", "N", 2, 0},
		{"prime meridian", "00000.0000", "E", 3, 0},
		{"southern zero is still zero", "0000.0000", "S", 2, 0},
		{"minutes without decimals", "4030.0", "N", 2, 40.5},
		{"max longitude degrees", "17959.9999", "W", 3, -(179 + 59.9999/60)},
	}
	for _, tt := range good {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parseCoord(tt.field, tt.hemi, tt.degDigits)
			if err != nil {
				t.Fatalf("parseCoord(%q, %q, %d): %v", tt.field, tt.hemi, tt.degDigits, err)
			}
			if math.Abs(got-tt.want) > eps {
				t.Errorf("parseCoord(%q, %q, %d) = %v, want %v", tt.field, tt.hemi, tt.degDigits, got, tt.want)
			}
		})
	}

	bad := []struct {
		name      string
		field     string
		hemi      string
		degDigits int
	}{
		{"empty field", "", "N", 2},
		{"too short for degrees+minutes", "480", "N", 2},
		{"lon field with lat digits", "4807", "E", 3},
		{"non-numeric degrees", "ab07.0000", "N", 2},
		{"non-numeric minutes", "48xx.0000", "N", 2},
		{"bad hemisphere letter", "4807.0380", "Q", 2},
		{"lowercase hemisphere", "4807.0380", "n", 2},
		{"empty hemisphere", "4807.0380", "", 2},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if got, err := parseCoord(tt.field, tt.hemi, tt.degDigits); err == nil {
				t.Errorf("parseCoord(%q, %q, %d) = %v, want error", tt.field, tt.hemi, tt.degDigits, got)
			}
		})
	}
}

// TestSentenceFramingEdgeCases covers the checksum-trailer shapes that a
// byte-truncated serial stream produces.
func TestSentenceFramingEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want error
	}{
		{"truncated one-digit checksum", "$GPRMC,1*4", ErrBadFraming},
		{"truncated no-digit checksum", "$GPRMC,1*", ErrBadFraming},
		{"missing star", "$GPRMC,123519,A", ErrBadFraming},
		{"non-hex checksum", "$GPRMC,1*ZZ", ErrBadFraming},
		{"wrong checksum", "$GPRMC,1*00", ErrBadChecksum},
		{"empty input", "", ErrBadFraming},
		{"no dollar prefix", "GPRMC,1*76", ErrBadFraming},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseSentence(tt.raw)
			if !errors.Is(err, tt.want) {
				t.Errorf("ParseSentence(%q) err = %v, want %v", tt.raw, err, tt.want)
			}
		})
	}
}

// TestParseRMCZeroPaddedCoordinates: a fix just north-east of the
// origin survives the wire round trip with its leading zeros intact.
func TestParseRMCZeroPaddedCoordinates(t *testing.T) {
	raw := Frame("GPRMC,150000,A,0007.0000,N,00007.0000,E,0.0,0.0,010618,,")
	rmc, err := ParseRMC(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := 7.0 / 60
	if math.Abs(rmc.Lat-want) > 1e-9 || math.Abs(rmc.Lon-want) > 1e-9 {
		t.Errorf("lat/lon = %v/%v, want %v/%v", rmc.Lat, rmc.Lon, want, want)
	}
	// Re-encoding keeps the zero padding: the field must stay parseable
	// and the value must not drift.
	back, err := ParseRMC(EncodeRMC(rmc))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Lat-rmc.Lat) > 1e-4/60 {
		t.Errorf("lat drifted across round trip: %v -> %v", rmc.Lat, back.Lat)
	}
}

// TestParseRMCBadHemisphere: corrupted hemisphere letters must error, not
// silently parse as north/east.
func TestParseRMCBadHemisphere(t *testing.T) {
	raw := Frame("GPRMC,150000,A,4807.0380,X,01131.0000,E,0.0,0.0,010618,,")
	if _, err := ParseRMC(raw); err == nil || !strings.Contains(err.Error(), "hemisphere") {
		t.Errorf("bad hemisphere err = %v", err)
	}
}
