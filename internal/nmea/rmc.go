package nmea

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// RMC is a parsed $GPRMC (recommended minimum) sentence: the sentence the
// paper's GPS driver extracts, carrying position, speed over ground, and a
// full date+time stamp.
type RMC struct {
	Time       time.Time // UTC fix time (date + time of day)
	Valid      bool      // status field: A = valid, V = void
	Lat        float64   // decimal degrees, south negative
	Lon        float64   // decimal degrees, west negative
	SpeedKnots float64   // speed over ground
	CourseDeg  float64   // course over ground, degrees true
}

// EncodeRMC renders the fix as a complete framed $GPRMC sentence.
func EncodeRMC(r RMC) string {
	status := "A"
	if !r.Valid {
		status = "V"
	}
	latStr, latHemi := formatLat(r.Lat)
	lonStr, lonHemi := formatLon(r.Lon)
	t := r.Time.UTC()

	payload := strings.Join([]string{
		"GPRMC",
		fmt.Sprintf("%02d%02d%02d.%03d", t.Hour(), t.Minute(), t.Second(), t.Nanosecond()/1e6),
		status,
		latStr, latHemi,
		lonStr, lonHemi,
		fmt.Sprintf("%.2f", r.SpeedKnots),
		fmt.Sprintf("%.2f", r.CourseDeg),
		fmt.Sprintf("%02d%02d%02d", t.Day(), int(t.Month()), t.Year()%100),
		"", "", // magnetic variation (unused by the driver)
	}, ",")
	return Frame(payload)
}

// ParseRMC decodes a framed $GPRMC sentence. It returns ErrNoFix when the
// status field reports a void fix; the GPS driver skips such sentences.
func ParseRMC(raw string) (RMC, error) {
	s, err := ParseSentence(raw)
	if err != nil {
		return RMC{}, err
	}
	if s.Type != "GPRMC" {
		return RMC{}, fmt.Errorf("%w: %q", ErrUnknownTalker, s.Type)
	}
	if len(s.Fields) < 9 {
		return RMC{}, fmt.Errorf("%w: GPRMC has %d fields", ErrMissingFields, len(s.Fields))
	}

	var r RMC
	r.Valid = s.Fields[1] == "A"
	if !r.Valid {
		return RMC{}, ErrNoFix
	}

	if r.Lat, err = parseCoord(s.Fields[2], s.Fields[3], 2); err != nil {
		return RMC{}, err
	}
	if r.Lon, err = parseCoord(s.Fields[4], s.Fields[5], 3); err != nil {
		return RMC{}, err
	}
	if s.Fields[6] != "" {
		if r.SpeedKnots, err = strconv.ParseFloat(s.Fields[6], 64); err != nil {
			return RMC{}, fmt.Errorf("nmea: parse speed %q: %w", s.Fields[6], err)
		}
	}
	if s.Fields[7] != "" {
		if r.CourseDeg, err = strconv.ParseFloat(s.Fields[7], 64); err != nil {
			return RMC{}, fmt.Errorf("nmea: parse course %q: %w", s.Fields[7], err)
		}
	}
	if r.Time, err = parseDateTime(s.Fields[8], s.Fields[0]); err != nil {
		return RMC{}, err
	}
	return r, nil
}

// parseDateTime combines the ddmmyy date field and hhmmss.sss time field
// into a UTC time.Time.
func parseDateTime(dateField, timeField string) (time.Time, error) {
	if len(dateField) != 6 {
		return time.Time{}, fmt.Errorf("%w: date %q", ErrMissingFields, dateField)
	}
	if len(timeField) < 6 {
		return time.Time{}, fmt.Errorf("%w: time %q", ErrMissingFields, timeField)
	}
	day, err1 := strconv.Atoi(dateField[0:2])
	month, err2 := strconv.Atoi(dateField[2:4])
	year, err3 := strconv.Atoi(dateField[4:6])
	hour, err4 := strconv.Atoi(timeField[0:2])
	minute, err5 := strconv.Atoi(timeField[2:4])
	second, err6 := strconv.Atoi(timeField[4:6])
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			return time.Time{}, fmt.Errorf("nmea: parse date/time %q %q: %w", dateField, timeField, err)
		}
	}
	var nanos int
	if len(timeField) > 7 && timeField[6] == '.' {
		frac := timeField[7:]
		f, err := strconv.ParseFloat("0."+frac, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("nmea: parse time fraction %q: %w", frac, err)
		}
		nanos = int(f * 1e9)
	}
	return time.Date(2000+year, time.Month(month), day, hour, minute, second, nanos, time.UTC), nil
}
