package nmea

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FixQuality is the $GPGGA fix-quality indicator.
type FixQuality int

// Fix qualities defined by NMEA 0183 that the simulated receiver emits.
const (
	FixInvalid FixQuality = iota
	FixGPS
	FixDGPS
)

// GGA is a parsed $GPGGA (fix data) sentence, carrying altitude — needed by
// the 3-D physical model extension (paper §VII-B1).
type GGA struct {
	TimeOfDay  time.Duration // UTC time of day since midnight
	Lat        float64       // decimal degrees
	Lon        float64       // decimal degrees
	Quality    FixQuality
	Satellites int
	HDOP       float64
	AltMeters  float64 // antenna altitude above mean sea level
}

// EncodeGGA renders the fix as a complete framed $GPGGA sentence.
func EncodeGGA(g GGA) string {
	latStr, latHemi := formatLat(g.Lat)
	lonStr, lonHemi := formatLon(g.Lon)
	tod := g.TimeOfDay
	h := int(tod / time.Hour)
	m := int(tod/time.Minute) % 60
	s := int(tod/time.Second) % 60
	ms := int(tod/time.Millisecond) % 1000

	payload := strings.Join([]string{
		"GPGGA",
		fmt.Sprintf("%02d%02d%02d.%03d", h, m, s, ms),
		latStr, latHemi,
		lonStr, lonHemi,
		strconv.Itoa(int(g.Quality)),
		fmt.Sprintf("%02d", g.Satellites),
		fmt.Sprintf("%.1f", g.HDOP),
		fmt.Sprintf("%.1f", g.AltMeters), "M",
		"0.0", "M", // geoid separation (unused)
		"", "", // DGPS age/station (unused)
	}, ",")
	return Frame(payload)
}

// ParseGGA decodes a framed $GPGGA sentence. It returns ErrNoFix when the
// quality field reports an invalid fix.
func ParseGGA(raw string) (GGA, error) {
	s, err := ParseSentence(raw)
	if err != nil {
		return GGA{}, err
	}
	if s.Type != "GPGGA" {
		return GGA{}, fmt.Errorf("%w: %q", ErrUnknownTalker, s.Type)
	}
	if len(s.Fields) < 10 {
		return GGA{}, fmt.Errorf("%w: GPGGA has %d fields", ErrMissingFields, len(s.Fields))
	}

	var g GGA
	q, err := strconv.Atoi(s.Fields[5])
	if err != nil {
		return GGA{}, fmt.Errorf("nmea: parse quality %q: %w", s.Fields[5], err)
	}
	g.Quality = FixQuality(q)
	if g.Quality == FixInvalid {
		return GGA{}, ErrNoFix
	}

	if g.TimeOfDay, err = parseTimeOfDay(s.Fields[0]); err != nil {
		return GGA{}, err
	}
	if g.Lat, err = parseCoord(s.Fields[1], s.Fields[2], 2); err != nil {
		return GGA{}, err
	}
	if g.Lon, err = parseCoord(s.Fields[3], s.Fields[4], 3); err != nil {
		return GGA{}, err
	}
	if g.Satellites, err = strconv.Atoi(s.Fields[6]); err != nil {
		return GGA{}, fmt.Errorf("nmea: parse satellites %q: %w", s.Fields[6], err)
	}
	if s.Fields[7] != "" {
		if g.HDOP, err = strconv.ParseFloat(s.Fields[7], 64); err != nil {
			return GGA{}, fmt.Errorf("nmea: parse hdop %q: %w", s.Fields[7], err)
		}
	}
	if s.Fields[8] != "" {
		if g.AltMeters, err = strconv.ParseFloat(s.Fields[8], 64); err != nil {
			return GGA{}, fmt.Errorf("nmea: parse altitude %q: %w", s.Fields[8], err)
		}
	}
	return g, nil
}

// parseTimeOfDay decodes hhmmss.sss into a duration since UTC midnight.
func parseTimeOfDay(field string) (time.Duration, error) {
	if len(field) < 6 {
		return 0, fmt.Errorf("%w: time %q", ErrMissingFields, field)
	}
	h, err1 := strconv.Atoi(field[0:2])
	m, err2 := strconv.Atoi(field[2:4])
	s, err3 := strconv.Atoi(field[4:6])
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			return 0, fmt.Errorf("nmea: parse time of day %q: %w", field, err)
		}
	}
	d := time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(s)*time.Second
	if len(field) > 7 && field[6] == '.' {
		f, err := strconv.ParseFloat("0."+field[7:], 64)
		if err != nil {
			return 0, fmt.Errorf("nmea: parse time fraction %q: %w", field, err)
		}
		d += time.Duration(f * float64(time.Second))
	}
	return d, nil
}
