package nmea

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestChecksum(t *testing.T) {
	// Reference sentence with a known checksum.
	payload := "GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,"
	if got := Checksum(payload); got != 0x47 {
		t.Errorf("Checksum = %02X, want 47", got)
	}
}

func TestFrameParseRoundTrip(t *testing.T) {
	framed := Frame("GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W")
	s, err := ParseSentence(framed)
	if err != nil {
		t.Fatalf("ParseSentence: %v", err)
	}
	if s.Type != "GPRMC" {
		t.Errorf("Type = %q", s.Type)
	}
	if len(s.Fields) != 11 {
		t.Errorf("got %d fields, want 11", len(s.Fields))
	}
}

func TestParseSentenceErrors(t *testing.T) {
	tests := []struct {
		name    string
		raw     string
		wantErr error
	}{
		{"no dollar", "GPRMC,x*00", ErrBadFraming},
		{"no star", "$GPRMC,x", ErrBadFraming},
		{"short", "$x*", ErrBadFraming},
		{"bad checksum hex", "$GPRMC,x*ZZ", ErrBadFraming},
		{"wrong checksum", "$GPRMC,x*00", ErrBadChecksum},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseSentence(tt.raw)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestParseSentenceToleratesCRLF(t *testing.T) {
	framed := Frame("GPRMC,1,A") + "\r\n"
	if _, err := ParseSentence(framed); err != nil {
		t.Errorf("ParseSentence with CRLF: %v", err)
	}
}

func TestRMCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		want := RMC{
			Time: time.Date(2018, time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
				rng.Intn(24), rng.Intn(60), rng.Intn(60), rng.Intn(1000)*1e6, time.UTC),
			Valid:      true,
			Lat:        rng.Float64()*170 - 85,
			Lon:        rng.Float64()*350 - 175,
			SpeedKnots: rng.Float64() * 90,
			CourseDeg:  rng.Float64() * 360,
		}
		got, err := ParseRMC(EncodeRMC(want))
		if err != nil {
			t.Fatalf("ParseRMC: %v", err)
		}
		// ddmm.mmmm keeps 4 decimal minutes => ~1.9e-7 deg resolution.
		if math.Abs(got.Lat-want.Lat) > 1e-6 || math.Abs(got.Lon-want.Lon) > 1e-6 {
			t.Fatalf("coords: got (%v,%v) want (%v,%v)", got.Lat, got.Lon, want.Lat, want.Lon)
		}
		if math.Abs(got.SpeedKnots-want.SpeedKnots) > 0.01 {
			t.Fatalf("speed: got %v want %v", got.SpeedKnots, want.SpeedKnots)
		}
		if got.Time.Sub(want.Time).Abs() > time.Millisecond {
			t.Fatalf("time: got %v want %v", got.Time, want.Time)
		}
	}
}

func TestRMCVoidFix(t *testing.T) {
	s := EncodeRMC(RMC{Time: time.Now(), Valid: false, Lat: 40, Lon: -88})
	if _, err := ParseRMC(s); !errors.Is(err, ErrNoFix) {
		t.Errorf("void fix err = %v, want ErrNoFix", err)
	}
}

func TestRMCWrongType(t *testing.T) {
	g := EncodeGGA(GGA{Quality: FixGPS, Lat: 40, Lon: -88, Satellites: 8})
	if _, err := ParseRMC(g); !errors.Is(err, ErrUnknownTalker) {
		t.Errorf("err = %v, want ErrUnknownTalker", err)
	}
}

func TestRMCHemispheres(t *testing.T) {
	tests := []struct {
		name     string
		lat, lon float64
	}{
		{"NE", 40.1, 88.2},
		{"NW", 40.1, -88.2},
		{"SE", -40.1, 88.2},
		{"SW", -40.1, -88.2},
		{"equator/meridian", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := RMC{Time: time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC), Valid: true, Lat: tt.lat, Lon: tt.lon}
			got, err := ParseRMC(EncodeRMC(r))
			if err != nil {
				t.Fatalf("ParseRMC: %v", err)
			}
			if math.Abs(got.Lat-tt.lat) > 1e-6 || math.Abs(got.Lon-tt.lon) > 1e-6 {
				t.Errorf("got (%v,%v), want (%v,%v)", got.Lat, got.Lon, tt.lat, tt.lon)
			}
		})
	}
}

func TestGGARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		want := GGA{
			TimeOfDay:  time.Duration(rng.Int63n(int64(24*time.Hour/time.Millisecond))) * time.Millisecond,
			Lat:        rng.Float64()*170 - 85,
			Lon:        rng.Float64()*350 - 175,
			Quality:    FixGPS,
			Satellites: 4 + rng.Intn(10),
			HDOP:       1 + rng.Float64()*4,
			AltMeters:  rng.Float64() * 400,
		}
		got, err := ParseGGA(EncodeGGA(want))
		if err != nil {
			t.Fatalf("ParseGGA: %v", err)
		}
		if math.Abs(got.Lat-want.Lat) > 1e-6 || math.Abs(got.Lon-want.Lon) > 1e-6 {
			t.Fatalf("coords mismatch")
		}
		if math.Abs(got.AltMeters-want.AltMeters) > 0.05 {
			t.Fatalf("altitude: got %v want %v", got.AltMeters, want.AltMeters)
		}
		if got.Satellites != want.Satellites {
			t.Fatalf("satellites: got %v want %v", got.Satellites, want.Satellites)
		}
		if (got.TimeOfDay - want.TimeOfDay).Abs() > time.Millisecond {
			t.Fatalf("time of day: got %v want %v", got.TimeOfDay, want.TimeOfDay)
		}
	}
}

func TestGGAInvalidFix(t *testing.T) {
	s := EncodeGGA(GGA{Quality: FixInvalid, Lat: 40, Lon: -88})
	if _, err := ParseGGA(s); !errors.Is(err, ErrNoFix) {
		t.Errorf("invalid fix err = %v, want ErrNoFix", err)
	}
}

func TestCorruptedSentenceRejected(t *testing.T) {
	// Flip one payload byte of a valid sentence: the checksum must catch it.
	framed := EncodeRMC(RMC{
		Time:  time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC),
		Valid: true, Lat: 40.1106, Lon: -88.2073, SpeedKnots: 10,
	})
	for i := 1; i < len(framed)-3; i++ {
		if framed[i] == ',' || framed[i] == '.' {
			continue
		}
		corrupted := framed[:i] + string(framed[i]^0x01) + framed[i+1:]
		if _, err := ParseRMC(corrupted); err == nil {
			// A flip inside a digit could occasionally still parse if it
			// kept the checksum valid, which XOR single-bit flips cannot.
			t.Fatalf("corrupted sentence at byte %d accepted: %q", i, corrupted)
		}
	}
}

func TestParseCoordErrors(t *testing.T) {
	if _, err := parseCoord("12", "N", 2); !errors.Is(err, ErrMissingFields) {
		t.Errorf("short coord err = %v", err)
	}
	if _, err := parseCoord("4807.038", "X", 2); err == nil {
		t.Error("bad hemisphere should error")
	}
	if _, err := parseCoord("ab07.038", "N", 2); err == nil {
		t.Error("bad degrees should error")
	}
	if _, err := parseCoord("48xx.038", "N", 2); err == nil {
		t.Error("bad minutes should error")
	}
}

func TestEncodeRMCFieldLayout(t *testing.T) {
	r := RMC{
		Time:  time.Date(2018, 3, 1, 12, 34, 56, 789e6, time.UTC),
		Valid: true, Lat: 40.1106, Lon: -88.2073,
		SpeedKnots: 12.5, CourseDeg: 270,
	}
	s := EncodeRMC(r)
	if !strings.HasPrefix(s, "$GPRMC,123456.789,A,") {
		t.Errorf("unexpected prefix: %q", s)
	}
	if !strings.Contains(s, ",010318,") {
		t.Errorf("date field missing: %q", s)
	}
	if !strings.Contains(s, ",W,") {
		t.Errorf("west hemisphere missing: %q", s)
	}
}
