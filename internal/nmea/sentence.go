// Package nmea implements the subset of the NMEA 0183 protocol that the
// AliDrone GPS driver needs: sentence framing with checksum validation,
// the $GPRMC (recommended minimum) and $GPGGA (fix data) sentences, and the
// ddmm.mmmm coordinate codec. It substitutes for the Libnmea C library used
// by the paper's OP-TEE GPS driver, and is used both to parse output from
// the simulated receiver and to generate replayable sentence streams.
package nmea

import (
	"errors"
	"fmt"
	"strings"
)

var (
	// ErrBadFraming is returned when a sentence does not start with '$'
	// or lacks the '*' checksum delimiter.
	ErrBadFraming = errors.New("nmea: bad sentence framing")
	// ErrBadChecksum is returned when the transmitted checksum does not
	// match the computed one.
	ErrBadChecksum = errors.New("nmea: checksum mismatch")
	// ErrUnknownTalker is returned for sentence types this package does
	// not implement.
	ErrUnknownTalker = errors.New("nmea: unsupported sentence type")
	// ErrMissingFields is returned when a sentence has too few fields.
	ErrMissingFields = errors.New("nmea: missing fields")
	// ErrNoFix is returned when parsing a sentence whose status flag says
	// the receiver has no valid fix.
	ErrNoFix = errors.New("nmea: receiver reports no fix")
)

// Sentence is a framed NMEA sentence split into its type tag and data
// fields, after checksum verification.
type Sentence struct {
	Type   string   // e.g. "GPRMC"
	Fields []string // comma-separated payload fields, tag excluded
}

// Checksum computes the NMEA checksum (XOR of all bytes between '$' and
// '*') over the given payload, which must exclude both delimiters.
func Checksum(payload string) byte {
	var sum byte
	for i := 0; i < len(payload); i++ {
		sum ^= payload[i]
	}
	return sum
}

// Frame wraps a payload (tag plus comma-separated fields, no delimiters)
// into a complete sentence with '$', '*' and the hex checksum.
func Frame(payload string) string {
	return fmt.Sprintf("$%s*%02X", payload, Checksum(payload))
}

// ParseSentence validates framing and checksum and splits the sentence into
// its tag and fields. Trailing CR/LF is tolerated.
func ParseSentence(raw string) (Sentence, error) {
	raw = strings.TrimRight(raw, "\r\n")
	if len(raw) < 4 || raw[0] != '$' {
		return Sentence{}, ErrBadFraming
	}
	star := strings.LastIndexByte(raw, '*')
	if star < 0 || star+3 > len(raw) {
		return Sentence{}, ErrBadFraming
	}
	payload := raw[1:star]
	var want byte
	if _, err := fmt.Sscanf(raw[star+1:], "%02X", &want); err != nil {
		return Sentence{}, fmt.Errorf("%w: bad checksum field %q", ErrBadFraming, raw[star+1:])
	}
	if got := Checksum(payload); got != want {
		return Sentence{}, fmt.Errorf("%w: got %02X want %02X", ErrBadChecksum, got, want)
	}
	parts := strings.Split(payload, ",")
	return Sentence{Type: parts[0], Fields: parts[1:]}, nil
}
