package nmea

import (
	"testing"
	"time"
)

// FuzzParseSentence: arbitrary input never panics, and valid parses
// re-frame consistently.
func FuzzParseSentence(f *testing.F) {
	f.Add("$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A")
	f.Add(Frame("GPRMC,1,A"))
	f.Add("")
	f.Add("$*00")
	f.Add("$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47")
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := ParseSentence(raw)
		if err != nil {
			return
		}
		// A successfully parsed sentence must re-frame to something that
		// parses identically.
		payload := s.Type
		for _, fld := range s.Fields {
			payload += "," + fld
		}
		back, err := ParseSentence(Frame(payload))
		if err != nil {
			t.Fatalf("re-framed sentence failed to parse: %v", err)
		}
		if back.Type != s.Type || len(back.Fields) != len(s.Fields) {
			t.Fatalf("re-framed sentence differs: %+v vs %+v", back, s)
		}
	})
}

// FuzzParseRMC: arbitrary input never panics; valid parses round-trip
// within wire resolution.
func FuzzParseRMC(f *testing.F) {
	f.Add(EncodeRMC(RMC{
		Time:  time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC),
		Valid: true, Lat: 40.1106, Lon: -88.2073, SpeedKnots: 19.4,
	}))
	f.Add("$GPRMC,,,,,,,,,*67")
	f.Add("not nmea at all")
	f.Fuzz(func(t *testing.T, raw string) {
		rmc, err := ParseRMC(raw)
		if err != nil {
			return
		}
		if rmc.Lat < -91 || rmc.Lat > 91 {
			// The wire format cannot express more than ±90°59.9999';
			// parses outside that indicate a codec bug.
			t.Fatalf("parsed latitude %v out of representable range", rmc.Lat)
		}
		back, err := ParseRMC(EncodeRMC(rmc))
		if err != nil {
			t.Fatalf("re-encoded RMC failed to parse: %v", err)
		}
		if back.Valid != rmc.Valid {
			t.Fatal("validity flag changed across round trip")
		}
	})
}

// FuzzParseGGA: arbitrary input never panics.
func FuzzParseGGA(f *testing.F) {
	f.Add(EncodeGGA(GGA{Quality: FixGPS, Lat: 40.1, Lon: -88.2, Satellites: 9, AltMeters: 120}))
	f.Add("$GPGGA*56")
	f.Fuzz(func(t *testing.T, raw string) {
		_, _ = ParseGGA(raw)
	})
}
