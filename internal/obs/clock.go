// Package obs is the dependency-free observability substrate of the
// reproduction: a metrics registry (counters, gauges, histograms with
// fixed bucket layouts), span-style timing hooks, and an injectable Clock
// so every time-dependent component can be driven deterministically in
// tests instead of sleeping.
//
// The design follows the paper's evaluation section: everything §V
// measures offline (signing latency, SMC counts, verification stage
// costs) is mirrored as a live metric, exported in the Prometheus text
// exposition format by Registry.WriteText and served by the auditor's
// GET /metrics endpoint.
//
// All Registry and metric methods are safe on nil receivers: a component
// instrumented against a nil registry pays a single pointer comparison
// and records nothing, so instrumentation never needs to be guarded at
// call sites.
package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall time. Production code uses System; tests inject a
// FakeClock (or ClockFunc) to control expiry windows, sampling intervals
// and span durations without sleeping.
type Clock interface {
	Now() time.Time
}

// System is the production clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// ClockFunc adapts a plain function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// FakeClock is a manually advanced clock for deterministic tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock creates a fake clock frozen at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{now: t} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set moves the clock to t.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Advance moves the clock forward by d and returns the new time.
func (c *FakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}
