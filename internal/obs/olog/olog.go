// Package olog is the repo's leveled, structured (key=value) logger.
// Every line is one logfmt-style record; when the context carries an
// active trace span (see internal/obs/trace), the line is automatically
// stamped with trace= and span= so an operator can jump from a log line
// (e.g. the auditor's slow-request log) to the full trace in
// /debug/traces.
//
// Like the rest of internal/obs, a nil *Logger is a valid no-op sink,
// so call sites never guard logging behind a flag check.
package olog

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

// Level is a log severity.
type Level int8

// Severities, in increasing order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way it appears in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLevel decodes a level name (as printed by String).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("olog: unknown level %q", s)
}

// Logger writes logfmt lines at or above a minimum level. Safe for
// concurrent use; derived loggers (With) share the writer and its lock.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	clock obs.Clock
	base  string // pre-rendered " k=v" pairs appended to every line
}

// New creates a logger writing to w at min level and above. clock
// supplies the ts= stamps (obs.System when nil).
func New(w io.Writer, min Level, clock obs.Clock) *Logger {
	if clock == nil {
		clock = obs.System
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, clock: clock}
}

// With returns a derived logger whose lines carry the given key/value
// pairs after the trace stamp.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	appendPairs(&b, kv)
	d := *l
	d.base = l.base + b.String()
	return &d
}

// Enabled reports whether a line at lvl would be written.
func (l *Logger) Enabled(lvl Level) bool { return l != nil && lvl >= l.min }

// Debug logs at debug level. kv are alternating key/value pairs; values
// are rendered with fmt.Sprint and quoted when needed.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) { l.log(ctx, LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) { l.log(ctx, LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) { l.log(ctx, LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) { l.log(ctx, LevelError, msg, kv) }

func (l *Logger) log(ctx context.Context, lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.clock.Now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	if sc := otrace.FromContext(ctx).Context(); sc.Valid() {
		b.WriteString(" trace=")
		b.WriteString(sc.TraceID.String())
		b.WriteString(" span=")
		b.WriteString(sc.SpanID.String())
	}
	b.WriteString(l.base)
	appendPairs(&b, kv)
	b.WriteByte('\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// appendPairs renders alternating key/value pairs as " k=v". A trailing
// key without a value gets v="" so malformed calls still log.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(quote(fmt.Sprint(kv[i+1])))
		} else {
			b.WriteString(`""`)
		}
	}
}

// quote wraps a value in quotes only when logfmt needs it (spaces,
// quotes, equals signs, control characters or emptiness).
func quote(s string) string {
	if s == "" {
		return `""`
	}
	if strings.IndexFunc(s, func(r rune) bool {
		return r <= ' ' || r == '"' || r == '=' || r == 0x7f
	}) < 0 {
		return s
	}
	return strconv.Quote(s)
}
