package olog

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
)

var testStart = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)

func testLogger(min Level) (*Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	return New(&buf, min, obs.NewFakeClock(testStart)), &buf
}

func TestLineShape(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background(), "hello world", "path", "/v1/submit-poa", "ms", 12)
	want := `ts=2018-06-01T15:00:00Z level=info msg="hello world" path=/v1/submit-poa ms=12` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLevelFiltering(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	ctx := context.Background()
	l.Debug(ctx, "d")
	l.Info(ctx, "i")
	if buf.Len() != 0 {
		t.Fatalf("below-min levels wrote %q", buf.String())
	}
	l.Warn(ctx, "w")
	l.Error(ctx, "e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("lines = %q", lines)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with the minimum level")
	}
}

func TestTraceStamp(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	tr := otrace.New(otrace.Options{Sample: 1})
	ctx, sp := tr.StartSpan(context.Background(), "op")
	l.Info(ctx, "traced")
	line := buf.String()
	sc := sp.Context()
	if !strings.Contains(line, " trace="+sc.TraceID.String()) ||
		!strings.Contains(line, " span="+sc.SpanID.String()) {
		t.Errorf("line %q missing trace/span stamp for %+v", line, sc)
	}

	buf.Reset()
	l.Info(context.Background(), "untraced")
	if strings.Contains(buf.String(), "trace=") {
		t.Errorf("untraced line carries a stamp: %q", buf.String())
	}
}

func TestWith(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.With("component", "auditor").Info(context.Background(), "up", "port", 8470)
	if got := buf.String(); !strings.Contains(got, " component=auditor port=8470") {
		t.Errorf("line = %q", got)
	}
}

func TestQuoting(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background(), "m", "empty", "", "eq", "a=b", "plain", "ok")
	want := ` empty="" eq="a=b" plain=ok`
	if got := buf.String(); !strings.Contains(got, want) {
		t.Errorf("line = %q, want it to contain %q", got, want)
	}
	// A trailing key without a value still logs.
	buf.Reset()
	l.Info(context.Background(), "m", "orphan")
	if !strings.Contains(buf.String(), ` orphan=""`) {
		t.Errorf("orphan key line = %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	ctx := context.Background()
	// Must not panic, including through With.
	l.Info(ctx, "x")
	l.With("k", "v").Error(ctx, "y")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestConcurrentLines(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info(context.Background(), "concurrent", "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=concurrent") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}
