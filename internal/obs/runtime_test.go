package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCollectRuntimeSetsGauges(t *testing.T) {
	r := NewRegistry(nil)
	CollectRuntime(r)
	if v := r.Gauge(MetricGoGoroutines).Value(); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoGoroutines, v)
	}
	if v := r.Gauge(MetricGoHeapAllocBytes).Value(); v <= 0 {
		t.Errorf("%s = %v, want > 0", MetricGoHeapAllocBytes, v)
	}
	if v := r.Gauge(MetricGoGOMAXPROCS).Value(); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoGOMAXPROCS, v)
	}
	if v := r.Gauge(MetricGoGCPauseSecondsTotal).Value(); v < 0 {
		t.Errorf("%s = %v, want >= 0", MetricGoGCPauseSecondsTotal, v)
	}
	// Nil registry: must be a no-op, not a panic.
	CollectRuntime(nil)
}

func TestCollectorHookRunsPerScrape(t *testing.T) {
	r := NewRegistry(nil)
	r.AddCollector(CollectRuntime)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		MetricGoGoroutines, MetricGoHeapAllocBytes, MetricGoGCPauseSecondsTotal, MetricGoGOMAXPROCS,
	} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, text)
		}
	}

	// The hook must re-run on every scrape, refreshing the gauges even
	// if something zeroed them in between.
	r.Gauge(MetricGoGOMAXPROCS).Set(0)
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if v := r.Gauge(MetricGoGOMAXPROCS).Value(); v < 1 {
		t.Errorf("hook did not refresh %s on second scrape: %v", MetricGoGOMAXPROCS, v)
	}
}
