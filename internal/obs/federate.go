package obs

// Fleet federation: parse the text exposition WriteText produces, merge
// expositions from many nodes, and render a single fleet-wide view.
// Because every histogram in the system uses a fixed bucket layout
// (DurationBuckets &c.), cross-node histogram merge is exact bucket
// addition — no estimation enters until a quantile is asked for.
//
// The fleet rendering carries two strata per family: the aggregate
// series (no node label, values summed across nodes) and each node's
// own series with a node="<id>" label spliced into sorted position, so
// one scrape answers both "what is the fleet p99" and "which node is
// dragging it".

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistogramData is one parsed histogram series: finite upper bounds and
// the cumulative count at each, with the +Inf bucket last (== Count).
type HistogramData struct {
	Bounds     []float64
	Cumulative []uint64 // len(Bounds)+1
	Sum        float64
	Count      uint64
}

// Quantile estimates the q-quantile of the parsed histogram.
func (h *HistogramData) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return Quantile(h.Bounds, h.Cumulative, q)
}

// clone deep-copies the histogram.
func (h *HistogramData) clone() *HistogramData {
	return &HistogramData{
		Bounds:     append([]float64(nil), h.Bounds...),
		Cumulative: append([]uint64(nil), h.Cumulative...),
		Sum:        h.Sum,
		Count:      h.Count,
	}
}

// Exposition is a parsed metrics exposition: series values keyed by
// their full rendered name (family plus sorted label body).
type Exposition struct {
	Types      map[string]string // family → counter|gauge|histogram
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]*HistogramData
}

// NewExposition returns an empty exposition.
func NewExposition() *Exposition {
	return &Exposition{
		Types:      make(map[string]string),
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]*HistogramData),
	}
}

// ParseExposition parses the text format Registry.WriteText emits (the
// version 0.0.4 subset it produces: # TYPE comments, counter/gauge
// sample lines, histogram _bucket/_sum/_count series).
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := NewExposition()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) == 4 {
				e.Types[fields[2]] = fields[3]
			}
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		name, value, err := splitSample(line)
		if err != nil {
			return nil, err
		}
		if err := e.addSample(name, value); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// splitSample separates a sample line into its series name (which may
// contain spaces inside quoted label values) and its value string.
func splitSample(line string) (name, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		// Scan to the closing brace, honouring quotes and escapes.
		inQuote, escaped := false, false
		for j := i + 1; j < len(line); j++ {
			c := line[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				return line[:j+1], strings.TrimSpace(line[j+1:]), nil
			}
		}
		return "", "", fmt.Errorf("obs: unterminated label body: %q", line)
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", fmt.Errorf("obs: sample without value: %q", line)
	}
	return line[:i], strings.TrimSpace(line[i:]), nil
}

// addSample files one parsed sample under the right metric kind.
func (e *Exposition) addSample(name, value string) error {
	fam, _ := splitSeries(name)
	// Histogram component series (fam_bucket/_sum/_count) belong to a
	// base family announced by its TYPE line.
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(fam, suffix)
		if base == fam || e.Types[base] != "histogram" {
			continue
		}
		return e.addHistogramSample(base, suffix, name, value)
	}
	switch e.Types[fam] {
	case "counter":
		v, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("obs: counter %s: %w", name, err)
		}
		e.Counters[name] = v
	case "gauge":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("obs: gauge %s: %w", name, err)
		}
		e.Gauges[name] = v
	default:
		// Untyped series are ignored rather than guessed at.
	}
	return nil
}

// addHistogramSample folds one _bucket/_sum/_count sample into the base
// histogram series (the series name with the le label removed).
func (e *Exposition) addHistogramSample(base, suffix, name, value string) error {
	_, labels := splitSeries(name)
	pairs := splitLabels(labels)
	var le string
	kept := pairs[:0]
	for _, p := range pairs {
		if k, v, ok := strings.Cut(p, "="); ok && k == "le" {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	key := base
	if len(kept) > 0 {
		key += "{" + strings.Join(kept, ",") + "}"
	}
	h := e.Histograms[key]
	if h == nil {
		h = &HistogramData{}
		e.Histograms[key] = h
	}
	switch suffix {
	case "_bucket":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket %s: %w", name, err)
		}
		if le == "+Inf" {
			h.Cumulative = append(h.Cumulative, n)
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %s: %w", name, err)
		}
		h.Bounds = append(h.Bounds, bound)
		h.Cumulative = append(h.Cumulative, n)
	case "_sum":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("obs: sum %s: %w", name, err)
		}
		h.Sum = v
	case "_count":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("obs: count %s: %w", name, err)
		}
		h.Count = n
	}
	return nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	return append(out, body[start:])
}

// AddLabel splices k="v" into a rendered series name, keeping labels
// sorted by key (the registry's canonical order).
func AddLabel(series, k, v string) string {
	fam, body := splitSeries(series)
	pairs := splitLabels(body)
	pairs = append(pairs, k+`="`+escapeLabel(v)+`"`)
	sort.Strings(pairs)
	return fam + "{" + strings.Join(pairs, ",") + "}"
}

// Merge folds other into e: counters and gauges add, histograms with
// identical bucket layouts add bucket-wise (exact). A histogram whose
// layout disagrees with the already-merged series is skipped — a
// partial sum would silently misreport quantiles.
func (e *Exposition) Merge(other *Exposition) {
	for fam, t := range other.Types {
		if _, ok := e.Types[fam]; !ok {
			e.Types[fam] = t
		}
	}
	for name, v := range other.Counters {
		e.Counters[name] += v
	}
	for name, v := range other.Gauges {
		e.Gauges[name] += v
	}
	for name, h := range other.Histograms {
		cur := e.Histograms[name]
		if cur == nil {
			e.Histograms[name] = h.clone()
			continue
		}
		if !sameBounds(cur.Bounds, h.Bounds) || len(cur.Cumulative) != len(h.Cumulative) {
			continue
		}
		for i, c := range h.Cumulative {
			cur.Cumulative[i] += c
		}
		cur.Sum += h.Sum
		cur.Count += h.Count
	}
}

// sameBounds reports whether two bucket layouts are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteText renders the exposition in the same deterministic format
// Registry.WriteText uses, so a merged exposition is itself parseable
// (and scrapeable) like any node's.
func (e *Exposition) WriteText(w io.Writer) error {
	type series struct {
		name string
		emit func(io.Writer) error
	}
	var all []series
	for name, v := range e.Counters {
		n, val := name, v
		all = append(all, series{n, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, val)
			return err
		}})
	}
	for name, v := range e.Gauges {
		n, val := name, v
		all = append(all, series{n, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(val))
			return err
		}})
	}
	for name, h := range e.Histograms {
		n, hd := name, h
		fam, labels := splitSeries(n)
		all = append(all, series{n, func(w io.Writer) error {
			for i, b := range hd.Bounds {
				if _, err := fmt.Fprintf(w, "%s %d\n",
					seriesName(fam+"_bucket", labels, "le", formatFloat(b)), hd.Cumulative[i]); err != nil {
					return err
				}
			}
			if len(hd.Cumulative) > 0 {
				if _, err := fmt.Fprintf(w, "%s %d\n",
					seriesName(fam+"_bucket", labels, "le", "+Inf"), hd.Cumulative[len(hd.Cumulative)-1]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(fam+"_sum", labels), formatFloat(hd.Sum)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s %d\n", seriesName(fam+"_count", labels), hd.Count)
			return err
		}})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	written := make(map[string]bool)
	for _, s := range all {
		fam, _ := splitSeries(s.name)
		// Histogram component families share the base family's TYPE line.
		base := fam
		if e.Types[base] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(fam, suffix); b != fam && e.Types[b] == "histogram" {
					base = b
					break
				}
			}
		}
		if !written[base] {
			written[base] = true
			t := e.Types[base]
			if t == "" {
				t = "untyped"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, t); err != nil {
				return err
			}
		}
		if err := s.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// MergeFleet builds the fleet exposition from per-node expositions: the
// aggregate stratum (values summed, no node label) plus every node's
// series re-labelled with node="<id>". Node order does not affect the
// result; rendering is deterministic.
func MergeFleet(nodes map[string]*Exposition) *Exposition {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := NewExposition()
	for _, id := range ids {
		exp := nodes[id]
		out.Merge(exp)
		for name, v := range exp.Counters {
			out.Counters[AddLabel(name, "node", id)] = v
		}
		for name, v := range exp.Gauges {
			out.Gauges[AddLabel(name, "node", id)] = v
		}
		for name, h := range exp.Histograms {
			out.Histograms[AddLabel(name, "node", id)] = h.clone()
		}
	}
	return out
}

// FindHistogram returns the histogram series matching family and label
// pairs (order-insensitive), or nil. A convenience for tests and the
// status CLI.
func (e *Exposition) FindHistogram(family string, kv ...string) *HistogramData {
	want := family
	if len(kv) > 0 {
		want = L(family, kv...)
	}
	return e.Histograms[want]
}
