package obs

import (
	"strings"
	"testing"
)

// buildRegistry populates a registry the way a node would.
func buildRegistry(submits uint64, latencies []float64) *Registry {
	reg := NewRegistry(nil)
	reg.Counter(L("alidrone_test_total", "door", "submit")).Add(submits)
	reg.Gauge("alidrone_test_nodes").Set(1)
	h := reg.Histogram(L("alidrone_test_seconds", "door", "submit"), []float64{0.01, 0.1, 1})
	for _, v := range latencies {
		h.Observe(v)
	}
	return reg
}

func parseRegistry(t *testing.T, reg *Registry) *Exposition {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse own exposition: %v\n%s", err, b.String())
	}
	return e
}

func TestParseExpositionRoundTrip(t *testing.T) {
	reg := buildRegistry(7, []float64{0.005, 0.05, 0.5, 2})
	e := parseRegistry(t, reg)
	if got := e.Counters[L("alidrone_test_total", "door", "submit")]; got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if got := e.Gauges["alidrone_test_nodes"]; got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	h := e.FindHistogram("alidrone_test_seconds", "door", "submit")
	if h == nil {
		t.Fatal("histogram series missing")
	}
	if h.Count != 4 {
		t.Fatalf("count = %d, want 4", h.Count)
	}
	if len(h.Bounds) != 3 || len(h.Cumulative) != 4 {
		t.Fatalf("layout = %v/%v", h.Bounds, h.Cumulative)
	}
	if h.Cumulative[3] != 4 || h.Cumulative[0] != 1 {
		t.Fatalf("cumulative = %v", h.Cumulative)
	}
	// A re-rendered exposition parses identically (parse∘render fixpoint).
	var b strings.Builder
	if err := e.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	e2, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, b.String())
	}
	h2 := e2.FindHistogram("alidrone_test_seconds", "door", "submit")
	if h2 == nil || h2.Count != h.Count || !sameBounds(h2.Bounds, h.Bounds) {
		t.Fatalf("round-trip drift: %+v vs %+v", h2, h)
	}
}

// TestMergeFleetParity is the merge-parity invariant: the fleet-merged
// aggregate histogram must equal the hand-merged sum of the per-node
// snapshots, bucket for bucket — fixed layouts make the merge exact.
func TestMergeFleetParity(t *testing.T) {
	regA := buildRegistry(3, []float64{0.005, 0.05})
	regB := buildRegistry(5, []float64{0.5, 2, 0.004})
	expA, expB := parseRegistry(t, regA), parseRegistry(t, regB)

	fleet := MergeFleet(map[string]*Exposition{"node-a": expA, "node-b": expB})

	series := L("alidrone_test_seconds", "door", "submit")
	merged := fleet.Histograms[series]
	if merged == nil {
		t.Fatal("aggregate histogram missing from fleet view")
	}
	// Hand-merge the per-node snapshots.
	ha, hb := expA.Histograms[series], expB.Histograms[series]
	if ha == nil || hb == nil {
		t.Fatal("per-node histograms missing")
	}
	if !sameBounds(merged.Bounds, ha.Bounds) {
		t.Fatalf("bounds drift: %v vs %v", merged.Bounds, ha.Bounds)
	}
	for i := range merged.Cumulative {
		want := ha.Cumulative[i] + hb.Cumulative[i]
		if merged.Cumulative[i] != want {
			t.Fatalf("bucket %d: fleet %d, hand-merged %d", i, merged.Cumulative[i], want)
		}
	}
	if merged.Count != ha.Count+hb.Count {
		t.Fatalf("count: fleet %d, hand-merged %d", merged.Count, ha.Count+hb.Count)
	}
	if got := merged.Sum - (ha.Sum + hb.Sum); got > 1e-9 || got < -1e-9 {
		t.Fatalf("sum drift: %v", got)
	}
	// Counters sum in the aggregate and survive per-node.
	ctr := L("alidrone_test_total", "door", "submit")
	if fleet.Counters[ctr] != 8 {
		t.Fatalf("aggregate counter = %d, want 8", fleet.Counters[ctr])
	}
	if fleet.Counters[AddLabel(ctr, "node", "node-b")] != 5 {
		t.Fatalf("node-b counter = %d, want 5", fleet.Counters[AddLabel(ctr, "node", "node-b")])
	}
	// Per-node histograms carry the node label in sorted position.
	if fleet.Histograms[AddLabel(series, "node", "node-a")] == nil {
		t.Fatal("node-a histogram missing from fleet view")
	}
	// The fleet view renders and re-parses cleanly.
	var b strings.Builder
	if err := fleet.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("fleet view does not re-parse: %v\n%s", err, b.String())
	}
}

func TestMergeSkipsMismatchedLayouts(t *testing.T) {
	a, b := NewExposition(), NewExposition()
	a.Types["h"] = "histogram"
	b.Types["h"] = "histogram"
	a.Histograms["h"] = &HistogramData{Bounds: []float64{1}, Cumulative: []uint64{1, 1}, Count: 1}
	b.Histograms["h"] = &HistogramData{Bounds: []float64{2}, Cumulative: []uint64{1, 1}, Count: 1}
	a.Merge(b)
	if a.Histograms["h"].Count != 1 {
		t.Fatal("mismatched layouts were merged")
	}
}

func TestAddLabelSortsAndEscapes(t *testing.T) {
	if got := AddLabel(`m{door="x"}`, "node", "n1"); got != `m{door="x",node="n1"}` {
		t.Fatalf("got %q", got)
	}
	if got := AddLabel(`m{zeta="x"}`, "node", "n1"); got != `m{node="n1",zeta="x"}` {
		t.Fatalf("got %q", got)
	}
	if got := AddLabel("m", "node", `a"b`); got != `m{node="a\"b"}` {
		t.Fatalf("got %q", got)
	}
}

func TestParseExpositionQuotedCommas(t *testing.T) {
	// Label values containing commas, braces and spaces must not confuse
	// the splitter.
	in := "# TYPE x counter\n" + `x{k="a,b} c"} 3` + "\n"
	e, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Counters[`x{k="a,b} c"}`]; got != 3 {
		t.Fatalf("parsed %+v", e.Counters)
	}
}
