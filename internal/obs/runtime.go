package obs

import "runtime"

// Go runtime gauge names exported by CollectRuntime. They surface the
// process-health signals the service dashboards need next to the
// domain metrics: goroutine leaks, heap growth, GC pressure and the
// parallelism the scheduler actually has.
const (
	// MetricGoGoroutines gauges the live goroutine count.
	MetricGoGoroutines = "alidrone_go_goroutines"
	// MetricGoHeapAllocBytes gauges bytes of allocated heap objects.
	MetricGoHeapAllocBytes = "alidrone_go_heap_alloc_bytes"
	// MetricGoGCPauseSecondsTotal gauges the cumulative stop-the-world
	// GC pause time since process start.
	MetricGoGCPauseSecondsTotal = "alidrone_go_gc_pause_seconds_total"
	// MetricGoGOMAXPROCS gauges the scheduler's processor limit.
	MetricGoGOMAXPROCS = "alidrone_go_gomaxprocs"
)

// CollectRuntime refreshes the Go runtime gauges on r. Register it with
// AddCollector so every /metrics scrape reports current values:
//
//	reg.AddCollector(obs.CollectRuntime)
//
// ReadMemStats costs a brief stop-the-world, which is why collection
// happens per scrape (seconds apart) rather than per request.
func CollectRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(MetricGoGoroutines).Set(float64(runtime.NumGoroutine()))
	r.Gauge(MetricGoHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(MetricGoGCPauseSecondsTotal).Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge(MetricGoGOMAXPROCS).Set(float64(runtime.GOMAXPROCS(0)))
}
