package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestSLO(clock Clock) *SLO {
	return NewSLO(SLOOptions{
		Window: time.Minute,
		Slots:  6,
		Bounds: []float64{0.01, 0.1, 1},
		Clock:  clock,
	})
}

func TestSLOSummaryQuantiles(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	s := newTestSLO(clock)
	// 90 fast (≤10ms bucket), 10 slow (≤1s bucket): p50 lands in the
	// first bucket, p99 in the third.
	for i := 0; i < 90; i++ {
		s.ObserveDoor("submit", 0.005)
	}
	for i := 0; i < 10; i++ {
		s.ObserveDoor("submit", 0.5)
	}
	sum := s.Summary()
	ls, ok := sum.Doors["submit"]
	if !ok {
		t.Fatal("door summary missing")
	}
	if ls.Count != 100 {
		t.Fatalf("count = %d, want 100", ls.Count)
	}
	if ls.P50 <= 0 || ls.P50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket", ls.P50)
	}
	if ls.P99 <= 0.1 || ls.P99 > 1 {
		t.Fatalf("p99 = %v, want within third bucket", ls.P99)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	s := newTestSLO(clock)
	s.ObserveShard("n1-s0", 0.005)
	if got := s.Summary().Shards["n1-s0"].Count; got != 1 {
		t.Fatalf("fresh observation invisible: count = %d", got)
	}
	// Advance past the whole window: the observation must age out.
	clock.Advance(2 * time.Minute)
	if got := s.Summary().Shards["n1-s0"].Count; got != 0 {
		t.Fatalf("expired observation survived: count = %d", got)
	}
	// Partial expiry: one observation per slot, advance half a window.
	for i := 0; i < 6; i++ {
		s.ObserveShard("n1-s0", 0.005)
		clock.Advance(10 * time.Second) // one slot
	}
	got := s.Summary().Shards["n1-s0"].Count
	if got >= 6 || got == 0 {
		t.Fatalf("sliding window not sliding: count = %d", got)
	}
}

func TestSLOShedRate(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	s := newTestSLO(clock)
	for i := 0; i < 3; i++ {
		s.RecordShed()
	}
	for i := 0; i < 7; i++ {
		s.RecordAdmitted()
	}
	sum := s.Summary()
	if sum.Shed != 3 || sum.Admitted != 7 {
		t.Fatalf("shed/admitted = %d/%d, want 3/7", sum.Shed, sum.Admitted)
	}
	if math.Abs(sum.ShedRate-0.3) > 1e-9 {
		t.Fatalf("shed rate = %v, want 0.3", sum.ShedRate)
	}
	clock.Advance(2 * time.Minute)
	if s.Summary().ShedRate != 0 {
		t.Fatal("shed rate survived window expiry")
	}
}

func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 in (0,1], 10 in (1,2], 0 in (2,4], 5 in +Inf.
	cum := []uint64{10, 20, 20, 25}
	if q := Quantile(bounds, cum, 0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %v, want in (1,2]", q)
	}
	// Landing in +Inf clamps to the largest finite bound.
	if q := Quantile(bounds, cum, 0.99); q != 4 {
		t.Fatalf("p99 = %v, want clamp to 4", q)
	}
	if q := Quantile(bounds, []uint64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	if q := Quantile(nil, nil, 0.5); q != 0 {
		t.Fatalf("nil quantile = %v, want 0", q)
	}
	// Mismatched lengths are refused, not misread.
	if q := Quantile(bounds, []uint64{1, 2}, 0.5); q != 0 {
		t.Fatalf("mismatched quantile = %v, want 0", q)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.ObserveDoor("submit", 1)
	s.ObserveShard("s0", 1)
	s.RecordShed()
	s.RecordAdmitted()
	s.Register(NewRegistry(nil), "x")
	if sum := s.Summary(); sum.Admitted != 0 || sum.Doors != nil {
		t.Fatalf("nil summary not zero: %+v", sum)
	}
	if s.Window() != 0 {
		t.Fatal("nil window not zero")
	}
}

func TestSLORegisterExposition(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	s := newTestSLO(clock)
	reg := NewRegistry(clock)
	s.Register(reg, "alidrone_test_slo")
	s.ObserveDoor("submit", 0.005)
	s.ObserveShard("n1-s0", 0.05)
	s.RecordAdmitted()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`alidrone_test_slo_latency_seconds{door="submit",q="0.5"}`,
		`alidrone_test_slo_latency_seconds{q="0.99",shard="n1-s0"}`,
		"alidrone_test_slo_shed_ratio 0",
		"alidrone_test_slo_window_seconds 60",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSLOConcurrent(t *testing.T) {
	s := NewSLO(SLOOptions{Window: time.Second, Slots: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.ObserveDoor("submit", 0.001)
				s.ObserveShard("s0", 0.001)
				s.RecordAdmitted()
				_ = s.Summary()
			}
		}()
	}
	wg.Wait()
}
