package obs

// SLO tracking: sliding-window latency and shed-rate summaries over the
// recent past, as opposed to the Registry's process-lifetime histograms.
// A five-minute p99 that a dashboard or the fleet status endpoint can
// quote must forget last hour's cold start; cumulative histograms never
// do. The window is a ring of fixed-bucket sub-windows ("slots"):
// observations land in the slot covering now, a summary merges the
// slots still inside the window, and rotation is O(1) per observation —
// a slot is reset lazily the first time its index is reused.
//
// Buckets are fixed (same layout discipline as the Registry), so slot
// merge — and fleet-level merge across nodes — is exact bucket-count
// addition; only the quantile estimate interpolates.

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SLOOptions parameterises an SLO tracker. The zero value selects a
// five-minute window of ten slots over DurationBuckets.
type SLOOptions struct {
	// Window is the sliding-window length (default 5 minutes).
	Window time.Duration
	// Slots is the number of sub-windows the window is divided into;
	// more slots = smoother expiry, slightly more merge work (default 10).
	Slots int
	// Bounds are the histogram bucket upper bounds (default
	// DurationBuckets). Fixed per tracker; ascending after sort.
	Bounds []float64
	// Clock drives slot rotation (default System).
	Clock Clock
}

// LatencySummary is the per-key digest of one sliding-window histogram.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// SLOSummary is a point-in-time digest of the whole tracker.
type SLOSummary struct {
	WindowSeconds float64                   `json:"windowSeconds"`
	Doors         map[string]LatencySummary `json:"doors,omitempty"`
	Shards        map[string]LatencySummary `json:"shards,omitempty"`
	Shed          uint64                    `json:"shed"`
	Admitted      uint64                    `json:"admitted"`
	ShedRate      float64                   `json:"shedRate"`
}

// sloSlot is one sub-window of one tracked histogram.
type sloSlot struct {
	epoch  int64 // which slot-interval these counts belong to
	counts []uint64
	sum    float64
	count  uint64
}

// winHist is a sliding-window histogram: a ring of slots indexed by
// epoch modulo ring size.
type winHist struct {
	slots []sloSlot
}

// winCount is a sliding-window counter with the same rotation scheme.
type winCount struct {
	slots []struct {
		epoch int64
		n     uint64
	}
}

// SLO tracks sliding-window verdict latency per door and per shard plus
// the shed/admitted balance. All methods are safe on a nil receiver and
// for concurrent use.
type SLO struct {
	window  time.Duration
	slotDur time.Duration
	slots   int
	bounds  []float64
	clock   Clock

	mu       sync.Mutex
	doors    map[string]*winHist
	shards   map[string]*winHist
	shed     winCount
	admitted winCount
}

// NewSLO creates a tracker from opts (zero fields select defaults).
func NewSLO(opts SLOOptions) *SLO {
	if opts.Window <= 0 {
		opts.Window = 5 * time.Minute
	}
	if opts.Slots <= 0 {
		opts.Slots = 10
	}
	if len(opts.Bounds) == 0 {
		opts.Bounds = DurationBuckets
	}
	if opts.Clock == nil {
		opts.Clock = System
	}
	bounds := append([]float64(nil), opts.Bounds...)
	sort.Float64s(bounds)
	s := &SLO{
		window:  opts.Window,
		slotDur: opts.Window / time.Duration(opts.Slots),
		slots:   opts.Slots,
		bounds:  bounds,
		clock:   opts.Clock,
		doors:   make(map[string]*winHist),
		shards:  make(map[string]*winHist),
	}
	s.shed.slots = make([]struct {
		epoch int64
		n     uint64
	}, opts.Slots)
	s.admitted.slots = make([]struct {
		epoch int64
		n     uint64
	}, opts.Slots)
	return s
}

// Window returns the configured window length (0 for a nil tracker).
func (s *SLO) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// epoch maps now onto a slot interval index.
func (s *SLO) epoch() int64 {
	return s.clock.Now().UnixNano() / int64(s.slotDur)
}

// hist returns (creating on first use) the windowed histogram for key.
// Caller holds s.mu.
func (s *SLO) hist(m map[string]*winHist, key string) *winHist {
	h := m[key]
	if h == nil {
		h = &winHist{slots: make([]sloSlot, s.slots)}
		for i := range h.slots {
			h.slots[i].counts = make([]uint64, len(s.bounds)+1)
			h.slots[i].epoch = -1
		}
		m[key] = h
	}
	return h
}

// observe lands one value in the slot covering the current epoch,
// lazily resetting a slot whose ring index was last used a full window
// ago. Caller holds s.mu.
func (s *SLO) observe(h *winHist, e int64, v float64) {
	slot := &h.slots[e%int64(s.slots)]
	if slot.epoch != e {
		for i := range slot.counts {
			slot.counts[i] = 0
		}
		slot.sum, slot.count = 0, 0
		slot.epoch = e
	}
	slot.counts[sort.SearchFloat64s(s.bounds, v)]++
	slot.sum += v
	slot.count++
}

// bump adds one to a windowed counter. Caller holds s.mu.
func (s *SLO) bump(c *winCount, e int64) {
	slot := &c.slots[e%int64(s.slots)]
	if slot.epoch != e {
		slot.n = 0
		slot.epoch = e
	}
	slot.n++
}

// ObserveDoor records one verdict latency (seconds) for a client door.
func (s *SLO) ObserveDoor(door string, seconds float64) {
	if s == nil {
		return
	}
	e := s.epoch()
	s.mu.Lock()
	s.observe(s.hist(s.doors, door), e, seconds)
	s.mu.Unlock()
}

// ObserveShard records one verdict latency (seconds) for a shard.
func (s *SLO) ObserveShard(shard string, seconds float64) {
	if s == nil {
		return
	}
	e := s.epoch()
	s.mu.Lock()
	s.observe(s.hist(s.shards, shard), e, seconds)
	s.mu.Unlock()
}

// RecordShed counts one submission rejected by admission control.
func (s *SLO) RecordShed() {
	if s == nil {
		return
	}
	e := s.epoch()
	s.mu.Lock()
	s.bump(&s.shed, e)
	s.mu.Unlock()
}

// RecordAdmitted counts one submission past admission control.
func (s *SLO) RecordAdmitted() {
	if s == nil {
		return
	}
	e := s.epoch()
	s.mu.Lock()
	s.bump(&s.admitted, e)
	s.mu.Unlock()
}

// merged folds the live slots of h (epoch within the window ending at
// e) into one cumulative histogram. Caller holds s.mu.
func (s *SLO) merged(h *winHist, e int64) (cumulative []uint64, count uint64) {
	cumulative = make([]uint64, len(s.bounds)+1)
	min := e - int64(s.slots) + 1
	for i := range h.slots {
		slot := &h.slots[i]
		if slot.epoch < min || slot.epoch > e {
			continue
		}
		for j, c := range slot.counts {
			cumulative[j] += c
		}
		count += slot.count
	}
	var acc uint64
	for i := range cumulative {
		acc += cumulative[i]
		cumulative[i] = acc
	}
	return cumulative, count
}

// total folds a windowed counter's live slots. Caller holds s.mu.
func (s *SLO) total(c *winCount, e int64) uint64 {
	var n uint64
	min := e - int64(s.slots) + 1
	for i := range c.slots {
		if c.slots[i].epoch >= min && c.slots[i].epoch <= e {
			n += c.slots[i].n
		}
	}
	return n
}

// Summary digests the current window: per-door and per-shard latency
// quantiles plus the shed rate. Returns the zero summary on nil.
func (s *SLO) Summary() SLOSummary {
	if s == nil {
		return SLOSummary{}
	}
	e := s.epoch()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SLOSummary{WindowSeconds: s.window.Seconds()}
	digest := func(m map[string]*winHist) map[string]LatencySummary {
		if len(m) == 0 {
			return nil
		}
		d := make(map[string]LatencySummary, len(m))
		for key, h := range m {
			cum, count := s.merged(h, e)
			d[key] = LatencySummary{
				Count: count,
				P50:   Quantile(s.bounds, cum, 0.50),
				P95:   Quantile(s.bounds, cum, 0.95),
				P99:   Quantile(s.bounds, cum, 0.99),
			}
		}
		return d
	}
	out.Doors = digest(s.doors)
	out.Shards = digest(s.shards)
	out.Shed = s.total(&s.shed, e)
	out.Admitted = s.total(&s.admitted, e)
	if t := out.Shed + out.Admitted; t > 0 {
		out.ShedRate = float64(out.Shed) / float64(t)
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of a fixed-bucket
// cumulative histogram by linear interpolation inside the landing
// bucket. bounds are the finite upper bounds; cumulative has
// len(bounds)+1 entries, the last being the +Inf bucket (== total
// count). An empty histogram estimates 0; a quantile landing in the
// +Inf bucket clamps to the largest finite bound (the estimate is a
// floor, not an invention of mass beyond the layout).
func Quantile(bounds []float64, cumulative []uint64, q float64) float64 {
	if len(cumulative) == 0 || len(bounds)+1 != len(cumulative) {
		return 0
	}
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	i := sort.Search(len(cumulative), func(i int) bool {
		return float64(cumulative[i]) >= rank
	})
	if i >= len(bounds) {
		// +Inf bucket: clamp to the largest finite bound.
		if len(bounds) == 0 {
			return 0
		}
		return bounds[len(bounds)-1]
	}
	lo := 0.0
	var below uint64
	if i > 0 {
		lo = bounds[i-1]
		below = cumulative[i-1]
	}
	width := bounds[i] - lo
	inBucket := float64(cumulative[i] - below)
	if inBucket <= 0 || width <= 0 || math.IsInf(width, 0) {
		return bounds[i]
	}
	frac := (rank - float64(below)) / inBucket
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return lo + width*frac
}

// Register exposes the tracker on reg as gauges refreshed at scrape
// time: <prefix>_latency_seconds{door,q} and {q,shard} quantiles,
// <prefix>_shed_ratio and <prefix>_window_seconds. Quantile labels use
// the Prometheus convention (q="0.5"). No-op when either side is nil.
func (s *SLO) Register(reg *Registry, prefix string) {
	if s == nil || reg == nil || prefix == "" {
		return
	}
	latency := prefix + "_latency_seconds"
	reg.Gauge(prefix + "_window_seconds").Set(s.window.Seconds())
	reg.AddCollector(func(r *Registry) {
		sum := s.Summary()
		for door, ls := range sum.Doors {
			r.Gauge(L(latency, "door", door, "q", "0.5")).Set(ls.P50)
			r.Gauge(L(latency, "door", door, "q", "0.95")).Set(ls.P95)
			r.Gauge(L(latency, "door", door, "q", "0.99")).Set(ls.P99)
		}
		for shard, ls := range sum.Shards {
			r.Gauge(L(latency, "q", "0.5", "shard", shard)).Set(ls.P50)
			r.Gauge(L(latency, "q", "0.95", "shard", shard)).Set(ls.P95)
			r.Gauge(L(latency, "q", "0.99", "shard", shard)).Set(ls.P99)
		}
		r.Gauge(prefix + "_shed_ratio").Set(sum.ShedRate)
	})
}
