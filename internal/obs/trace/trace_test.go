package trace

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// seqReader is a deterministic entropy source for reproducible IDs.
type seqReader struct{ n byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		r.n++
		p[i] = r.n
	}
	return len(p), nil
}

func testTracer(sample float64, sink Collector) *Tracer {
	return New(Options{
		Sample: sample,
		Clock:  obs.NewFakeClock(time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)),
		Rand:   &seqReader{},
		Sink:   sink,
	})
}

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Sampled: true}
	copy(sc.TraceID[:], bytes.Repeat([]byte{0xab}, 16))
	copy(sc.SpanID[:], bytes.Repeat([]byte{0xcd}, 8))

	h := sc.Header()
	if want := "00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-01"; h != want {
		t.Fatalf("Header() = %q, want %q", h, want)
	}
	got, ok := ParseHeader(h)
	if !ok || got != sc {
		t.Fatalf("ParseHeader(%q) = %+v, %v; want %+v, true", h, got, ok, sc)
	}

	sc.Sampled = false
	got, ok = ParseHeader(sc.Header())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round-trip = %+v, %v", got, ok)
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	valid := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}, Sampled: true}.Header()
	bad := []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("zz", 16) + "-" + strings.Repeat("cd", 8) + "-01", // non-hex trace id
		"00-" + strings.Repeat("00", 16) + "-" + strings.Repeat("cd", 8) + "-01", // all-zero trace id
		"00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("00", 8) + "-01", // all-zero span id
	}
	for _, h := range bad {
		if sc, ok := ParseHeader(h); ok {
			t.Errorf("ParseHeader(%q) accepted: %+v", h, sc)
		}
	}
}

func TestParentChildLinksAndDelivery(t *testing.T) {
	ring := NewRingCollector(16)
	tr := testTracer(1, ring)

	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.SetInt("n", 42)
	child.Event("hello")
	child.SetError(errors.New("boom"))
	child.End()
	root.End()

	spans := ring.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Errorf("trace ids differ: %s vs %s", c.TraceID, r.TraceID)
	}
	if c.Parent != r.SpanID {
		t.Errorf("child parent = %s, want %s", c.Parent, r.SpanID)
	}
	if r.Parent != "" {
		t.Errorf("root parent = %s, want none", r.Parent)
	}
	if len(c.Attrs) != 2 || c.Attrs[0] != (Attr{K: "k", V: "v"}) || c.Attrs[1] != (Attr{K: "n", V: "42"}) {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
	if len(c.Events) != 1 || c.Events[0].Msg != "hello" {
		t.Errorf("child events = %+v", c.Events)
	}
	if c.Error != "boom" {
		t.Errorf("child error = %q", c.Error)
	}
}

func TestEndDeliversOnce(t *testing.T) {
	ring := NewRingCollector(16)
	tr := testTracer(1, ring)
	_, sp := tr.StartSpan(context.Background(), "once")
	sp.End()
	sp.End()
	if n := ring.Len(); n != 1 {
		t.Fatalf("double End delivered %d records", n)
	}
}

func TestSamplingRates(t *testing.T) {
	ring := NewRingCollector(16)
	tr := testTracer(0, ring)
	ctx, sp := tr.StartSpan(context.Background(), "unsampled")
	if sp.Recording() {
		t.Error("sample 0 root is recording")
	}
	// Identity still propagates for downstream continuation.
	if FromContext(ctx) == nil || FromContext(ctx).Context().TraceID.IsZero() {
		t.Error("unsampled span carries no trace identity")
	}
	sp.End()
	if ring.Len() != 0 {
		t.Errorf("sample 0 delivered %d spans", ring.Len())
	}

	tr = testTracer(1, ring)
	_, sp = tr.StartSpan(context.Background(), "sampled")
	if !sp.Recording() {
		t.Error("sample 1 root not recording")
	}
	sp.End()
	if ring.Len() != 1 {
		t.Errorf("sample 1 delivered %d spans", ring.Len())
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	ring := NewRingCollector(16)
	remote := SpanContext{Sampled: true}
	copy(remote.TraceID[:], bytes.Repeat([]byte{0x11}, 16))
	copy(remote.SpanID[:], bytes.Repeat([]byte{0x22}, 8))

	// The receiving tracer samples nothing locally: the span below is
	// recorded purely because the remote parent was sampled.
	tr := testTracer(0, ring)
	_, sp := tr.StartRemote(context.Background(), remote.Header(), "server")
	if got := sp.Context().TraceID; got != remote.TraceID {
		t.Errorf("trace id = %s, want remote %s", got, remote.TraceID)
	}
	if !sp.Recording() {
		t.Error("remote-sampled continuation not recording at local sample 0")
	}
	sp.End()
	if ring.Len() != 1 {
		t.Fatalf("delivered %d spans", ring.Len())
	}
	if p := ring.Snapshot()[0].Parent; p != remote.SpanID.String() {
		t.Errorf("parent = %s, want remote span %s", p, remote.SpanID)
	}

	// An unsampled remote parent suppresses recording the same way.
	remote.Sampled = false
	_, sp = testTracer(1, ring).StartRemote(context.Background(), remote.Header(), "server")
	if sp.Recording() {
		t.Error("remote-unsampled continuation recording at local sample 1")
	}

	// A malformed header falls back to a local root.
	_, sp = testTracer(1, ring).StartRemote(context.Background(), "bogus", "server")
	if !sp.Recording() || sp.Context().TraceID == remote.TraceID {
		t.Error("malformed header did not fall back to a local root")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	if ctx != context.Background() || sp != nil {
		t.Error("nil tracer StartSpan not a no-op")
	}
	ctx, sp = tr.StartRemote(context.Background(), "h", "x")
	if ctx != context.Background() || sp != nil {
		t.Error("nil tracer StartRemote not a no-op")
	}
	// All span methods must be callable on nil.
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.Event("e")
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.Recording() {
		t.Error("nil span recording")
	}
	if sp.Context().Valid() {
		t.Error("nil span has a valid context")
	}
	if HeaderFromContext(context.Background()) != "" {
		t.Error("empty context renders a header")
	}
}

func TestHeaderFromContext(t *testing.T) {
	tr := testTracer(1, nil)
	ctx, sp := tr.StartSpan(context.Background(), "x")
	h := HeaderFromContext(ctx)
	sc, ok := ParseHeader(h)
	if !ok || sc != sp.Context() {
		t.Fatalf("HeaderFromContext = %q (parsed %+v, %v), want context of %+v", h, sc, ok, sp.Context())
	}
}
