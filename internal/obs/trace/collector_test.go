package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func rec(traceID, name string) SpanRecord {
	return SpanRecord{TraceID: traceID, SpanID: name + "-span", Name: name}
}

func TestRingOverwritesOldest(t *testing.T) {
	c := NewRingCollector(3)
	for i := 0; i < 5; i++ {
		c.Collect(rec("t", fmt.Sprintf("s%d", i)))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	got := c.Snapshot()
	want := []string{"s2", "s3", "s4"}
	for i, w := range want {
		if got[i].Name != w {
			t.Errorf("Snapshot[%d] = %s, want %s (oldest first)", i, got[i].Name, w)
		}
	}
}

func TestRingDefaultSize(t *testing.T) {
	if got := len(NewRingCollector(0).buf); got != DefaultRingSize {
		t.Errorf("size 0 ring holds %d, want %d", got, DefaultRingSize)
	}
}

func TestTraceAndTraceIDs(t *testing.T) {
	c := NewRingCollector(8)
	c.Collect(rec("aaa", "a1"))
	c.Collect(rec("bbb", "b1"))
	c.Collect(rec("aaa", "a2"))

	spans := c.Trace("aaa")
	if len(spans) != 2 || spans[0].Name != "a1" || spans[1].Name != "a2" {
		t.Errorf("Trace(aaa) = %+v", spans)
	}
	if spans := c.Trace("nope"); len(spans) != 0 {
		t.Errorf("Trace(nope) = %+v", spans)
	}
	ids := c.TraceIDs()
	if len(ids) != 2 || ids[0] != "bbb" || ids[1] != "aaa" {
		t.Errorf("TraceIDs = %v, want [bbb aaa] (most recent last)", ids)
	}
}

// serveTraces runs one GET against the collector's debug endpoint and
// decodes the JSONL body.
func serveTraces(t *testing.T, c *RingCollector, query string) ([]SpanRecord, *http.Response) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/debug/traces"+query, nil)
	w := httptest.NewRecorder()
	c.ServeHTTP(w, req)
	resp := w.Result()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out []SpanRecord
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(scan.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", scan.Text(), err)
		}
		out = append(out, r)
	}
	return out, resp
}

func TestServeHTTP(t *testing.T) {
	c := NewRingCollector(8)
	c.Collect(rec("aaa", "a1"))
	c.Collect(rec("bbb", "b1"))
	c.Collect(rec("aaa", "a2"))

	all, resp := serveTraces(t, c, "")
	if len(all) != 3 {
		t.Errorf("unfiltered dump = %d spans, want 3", len(all))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	one, _ := serveTraces(t, c, "?trace=aaa")
	if len(one) != 2 {
		t.Errorf("?trace=aaa = %d spans, want 2", len(one))
	}
	last, _ := serveTraces(t, c, "?limit=1")
	if len(last) != 1 || last[0].Name != "a2" {
		t.Errorf("?limit=1 = %+v, want just a2", last)
	}

	if _, resp := serveTraces(t, c, "?limit=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d", resp.StatusCode)
	}
	req := httptest.NewRequest(http.MethodPost, "/debug/traces", strings.NewReader("x"))
	w := httptest.NewRecorder()
	c.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d", w.Code)
	}
}

// TestRingConcurrency is the -race stress test: concurrent span Ends,
// snapshots and debug scrapes against one ring must be data-race free
// and never corrupt the ring's bookkeeping.
func TestRingConcurrency(t *testing.T) {
	const (
		writers       = 8
		spansPerWrite = 200
	)
	ring := NewRingCollector(64)
	tr := testTracer(1, ring)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPerWrite; i++ {
				ctx, root := tr.StartSpan(context.Background(), fmt.Sprintf("w%d-root", w))
				_, child := tr.StartSpan(ctx, "child")
				child.SetAttr("i", fmt.Sprint(i))
				child.End()
				root.End()
			}
		}(w)
	}
	// Readers race the writers: snapshots, per-trace reads and HTTP
	// scrapes all while the ring wraps.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ring.Snapshot()
				if len(snap) > 64 {
					t.Errorf("snapshot larger than ring: %d", len(snap))
					return
				}
				for _, id := range ring.TraceIDs() {
					ring.Trace(id)
				}
				req := httptest.NewRequest(http.MethodGet, "/debug/traces?limit=10", nil)
				ring.ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := ring.Total(), uint64(writers*spansPerWrite*2); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
	if ring.Len() != 64 {
		t.Errorf("Len = %d, want full ring 64", ring.Len())
	}
}
