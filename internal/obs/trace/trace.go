// Package trace is the repo's dependency-free distributed-tracing
// subsystem. One trace follows a single Proof-of-Alibi across the
// drone→auditor boundary: the drone client opens a root span per proof,
// child spans time the TEE signing work and the HTTP submission, the
// span context crosses the wire as a W3C-traceparent-style header, and
// the auditor continues the same trace through its verification stages
// down to the WAL commit.
//
// The design mirrors the obs metrics registry: a nil *Tracer (and a nil
// *Span) is a valid no-op everywhere, so instrumented code pays one
// pointer comparison when tracing is disabled; with a tracer configured
// but the sampling rate at zero, unsampled spans propagate trace
// identity without recording, keeping the hot-path overhead in the
// noise (see BenchmarkVerifyPipeline/traced-sampling-off).
//
// Finished spans are delivered to a Collector — in process, the bounded
// RingCollector, dumped over /debug/traces or exported as JSONL.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// TraceID identifies one end-to-end trace (16 random bytes, hex on the
// wire — the W3C trace-id shape).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 random bytes).
type SpanID [8]byte

// String renders the ID as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is unset (all zero — invalid on the wire).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// ParseTraceID decodes a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(id) {
		return TraceID{}, fmt.Errorf("trace: bad trace id %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// ParseSpanID decodes a 16-hex-digit span ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(id) {
		return SpanID{}, fmt.Errorf("trace: bad span id %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled records the root's sampling decision; children and remote
	// continuations inherit it, so a trace is recorded everywhere or
	// nowhere.
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// headerVersion is the traceparent version field. Only version 00 is
// emitted or understood.
const headerVersion = "00"

// Header renders the context in the W3C traceparent shape:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>" (flags bit 0 =
// sampled). An invalid context renders as "".
func (sc SpanContext) Header() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return headerVersion + "-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseHeader decodes a traceparent-style header. It returns ok=false
// for an empty, malformed, unknown-version or all-zero header — callers
// then fall back to a local root decision.
func ParseHeader(h string) (SpanContext, bool) {
	// version(2) '-' trace(32) '-' span(16) '-' flags(2)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if h[:2] != headerVersion {
		return SpanContext{}, false
	}
	tid, err := ParseTraceID(h[3:35])
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := ParseSpanID(h[36:52])
	if err != nil {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(h[53:55], 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid, Sampled: flags&1 != 0}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Attr is one span attribute. Attributes are ordered (append order), so
// exported spans are deterministic.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one timestamped annotation on a span (e.g. "fsync (leader)"
// on a WAL-commit span).
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// SpanRecord is a finished span in exportable form. IDs are hex strings
// so the record marshals directly to the /debug/traces JSONL shape.
type SpanRecord struct {
	TraceID string    `json:"traceId"`
	SpanID  string    `json:"spanId"`
	Parent  string    `json:"parentId,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	Events  []Event   `json:"events,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// Duration is the span's elapsed time.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Collector receives finished spans. Collect must be safe for
// concurrent use; it is called synchronously from Span.End.
type Collector interface {
	Collect(SpanRecord)
}

// Options configures a Tracer.
type Options struct {
	// Sample is the root sampling rate in [0, 1]: the probability that a
	// trace *started here* (no remote parent) is recorded. Remote
	// parents carry their own decision, which is always honoured —
	// parent-based sampling — so a drone-sampled proof is recorded by an
	// auditor running with Sample 0.
	Sample float64
	// Clock supplies span timestamps (obs.System when nil).
	Clock obs.Clock
	// Rand supplies ID and sampling entropy (crypto/rand when nil; tests
	// inject a deterministic reader).
	Rand io.Reader
	// Sink receives finished sampled spans (nil discards them —
	// propagation-only tracing).
	Sink Collector
}

// Tracer creates spans. A nil *Tracer is a valid no-op: StartSpan
// returns the context unchanged and a nil span.
type Tracer struct {
	opts Options

	mu sync.Mutex // guards opts.Rand reads
}

// New creates a tracer. The zero Options value propagates nothing and
// records nothing (Sample 0, no sink).
func New(opts Options) *Tracer {
	if opts.Clock == nil {
		opts.Clock = obs.System
	}
	if opts.Rand == nil {
		opts.Rand = rand.Reader
	}
	if opts.Sample < 0 {
		opts.Sample = 0
	}
	if opts.Sample > 1 {
		opts.Sample = 1
	}
	return &Tracer{opts: opts}
}

// randBytes fills b from the tracer's entropy source.
func (t *Tracer) randBytes(b []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := io.ReadFull(t.opts.Rand, b); err != nil {
		// Entropy exhaustion must not fail the traced operation; a
		// zero-ish ID only degrades trace grouping.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
}

// sampleRoot draws the sampling decision for a locally started trace.
func (t *Tracer) sampleRoot() bool {
	switch {
	case t.opts.Sample <= 0:
		return false
	case t.opts.Sample >= 1:
		return true
	}
	var b [8]byte
	t.randBytes(b[:])
	return float64(binary.BigEndian.Uint64(b[:]))/float64(1<<63)/2 < t.opts.Sample
}

// StartSpan starts a span named name. If ctx already carries a span, the
// new one is its child in the same trace (inheriting the sampling
// decision); otherwise it is a new root sampled at the tracer's rate.
// The returned context carries the new span; End must be called to
// deliver it (nil-safe).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sc := SpanContext{}
	var parent SpanID
	if p := FromContext(ctx); p != nil && p.sc.Valid() {
		sc.TraceID = p.sc.TraceID
		sc.Sampled = p.sc.Sampled
		parent = p.sc.SpanID
	} else {
		t.randBytes(sc.TraceID[:])
		sc.Sampled = t.sampleRoot()
	}
	t.randBytes(sc.SpanID[:])
	s := &Span{tracer: t, sc: sc, parent: parent, name: name, start: t.opts.Clock.Now()}
	return ContextWithSpan(ctx, s), s
}

// StartRemote starts a span continuing the trace described by a
// traceparent-style header (as produced by SpanContext.Header). With an
// empty or malformed header it behaves exactly like StartSpan — a local
// root. The remote sampling decision is honoured either way.
func (t *Tracer) StartRemote(ctx context.Context, header, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if sc, ok := ParseHeader(header); ok {
		ctx = ContextWithSpan(ctx, &Span{sc: sc, noop: true})
	}
	return t.StartSpan(ctx, name)
}

// Span is one in-flight timed operation. All methods are safe on a nil
// receiver (the tracing-disabled path) and safe for concurrent use.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	// noop marks a propagation-only span (a remote parent placeholder):
	// it carries identity for children but is never recorded itself.
	noop bool

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	errMsg string
	ended  bool
}

// Context returns the span's propagated identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Recording reports whether the span will be delivered to a collector.
func (s *Span) Recording() bool {
	return s != nil && !s.noop && s.sc.Sampled && s.tracer != nil && s.tracer.opts.Sink != nil
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if !s.Recording() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{K: k, V: v})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.SetAttr(k, strconv.FormatInt(v, 10)) }

// Event records a timestamped annotation.
func (s *Span) Event(msg string) {
	if !s.Recording() {
		return
	}
	now := s.tracer.opts.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, Event{Time: now, Msg: msg})
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if err == nil || !s.Recording() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errMsg = err.Error()
}

// End finishes the span and delivers it to the tracer's collector.
// Calling End more than once delivers only the first.
func (s *Span) End() {
	if !s.Recording() {
		return
	}
	end := s.tracer.opts.Clock.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID: s.sc.TraceID.String(),
		SpanID:  s.sc.SpanID.String(),
		Name:    s.name,
		Start:   s.start,
		End:     end,
		Attrs:   s.attrs,
		Events:  s.events,
		Error:   s.errMsg,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.mu.Unlock()
	s.tracer.opts.Sink.Collect(rec)
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// HeaderFromContext renders the active span's traceparent header, or ""
// when the context carries no valid span — what HTTP clients inject.
func HeaderFromContext(ctx context.Context) string {
	return FromContext(ctx).Context().Header()
}
