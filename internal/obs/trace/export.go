package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
)

// WriteJSONL writes span records one JSON object per line — the export
// format of /debug/traces and the drone CLI's -dump-traces.
func WriteJSONL(w io.Writer, recs []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP makes the collector the /debug/traces endpoint: a JSONL dump
// of the held spans, oldest first.
//
//	GET /debug/traces              all held spans
//	GET /debug/traces?trace=<id>   one trace
//	GET /debug/traces?limit=<n>    at most the n most recent spans
func (c *RingCollector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var recs []SpanRecord
	if id := r.URL.Query().Get("trace"); id != "" {
		recs = c.Trace(id)
	} else {
		recs = c.Snapshot()
	}
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = WriteJSONL(w, recs)
}
