package trace

import (
	"sort"
	"sync"
)

// DefaultRingSize is the span capacity of a RingCollector created with a
// non-positive size. At typical span counts (~10 spans per submission)
// it holds the last few hundred proofs — enough to pull the trace of a
// request that just misbehaved.
const DefaultRingSize = 4096

// RingCollector is the in-process span sink: a bounded ring buffer that
// overwrites the oldest span once full, so a long-running auditor keeps
// a recent window of traces at fixed memory cost. It is safe for
// concurrent Collect calls and concurrent reads (/debug/traces scrapes
// race submissions in production; see the -race stress test).
type RingCollector struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int    // next write position
	n     int    // live records (== len(buf) once the ring has wrapped)
	total uint64 // spans ever collected (total - n = overwritten)
}

// NewRingCollector creates a collector holding the last size spans
// (DefaultRingSize when size <= 0).
func NewRingCollector(size int) *RingCollector {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &RingCollector{buf: make([]SpanRecord, size)}
}

// Collect implements Collector.
func (c *RingCollector) Collect(r SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf[c.next] = r
	c.next = (c.next + 1) % len(c.buf)
	if c.n < len(c.buf) {
		c.n++
	}
	c.total++
}

// Len returns the number of spans currently held.
func (c *RingCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Total returns the number of spans ever collected (Total() - Len() have
// been overwritten).
func (c *RingCollector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Snapshot copies the held spans, oldest first.
func (c *RingCollector) Snapshot() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, 0, c.n)
	start := c.next - c.n
	if start < 0 {
		start += len(c.buf)
	}
	for i := 0; i < c.n; i++ {
		out = append(out, c.buf[(start+i)%len(c.buf)])
	}
	return out
}

// Trace returns the held spans of one trace (hex trace ID), in collection
// order — for a finished request that is close to span-start order with
// the root last.
func (c *RingCollector) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, r := range c.Snapshot() {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}

// TraceIDs lists the distinct trace IDs currently held, most recently
// collected last.
func (c *RingCollector) TraceIDs() []string {
	seen := make(map[string]int)
	for i, r := range c.Snapshot() {
		seen[r.TraceID] = i // last collection index wins
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return seen[ids[i]] < seen[ids[j]] })
	return ids
}
