package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("second lookup returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(nil)
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 4.5 {
		t.Errorf("gauge = %v, want 4.5", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics: an
// observation equal to an upper bound lands in that bucket (le is
// inclusive), just above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	tests := []struct {
		name string
		v    float64
		want []uint64 // cumulative counts per bucket incl. +Inf
	}{
		{"below first", 0.0005, []uint64{1, 1, 1, 1, 1}},
		{"exactly first bound", 0.001, []uint64{1, 1, 1, 1, 1}},
		{"just above first bound", 0.0011, []uint64{0, 1, 1, 1, 1}},
		{"exactly middle bound", 0.1, []uint64{0, 0, 1, 1, 1}},
		{"between bounds", 0.5, []uint64{0, 0, 0, 1, 1}},
		{"exactly last bound", 1, []uint64{0, 0, 0, 1, 1}},
		{"above last bound", 2, []uint64{0, 0, 0, 0, 1}},
		{"zero", 0, []uint64{1, 1, 1, 1, 1}},
		{"negative", -1, []uint64{1, 1, 1, 1, 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry(nil)
			h := r.Histogram("h", bounds)
			h.Observe(tc.v)
			gotBounds, cum := h.Snapshot()
			if len(gotBounds) != len(bounds) {
				t.Fatalf("bounds = %v", gotBounds)
			}
			if len(cum) != len(tc.want) {
				t.Fatalf("cumulative = %v, want %v", cum, tc.want)
			}
			for i := range cum {
				if cum[i] != tc.want[i] {
					t.Errorf("bucket %d = %d, want %d (all: %v)", i, cum[i], tc.want[i], cum)
				}
			}
			if h.Count() != 1 {
				t.Errorf("count = %d", h.Count())
			}
			if h.Sum() != tc.v {
				t.Errorf("sum = %v, want %v", h.Sum(), tc.v)
			}
		})
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("h", []float64{1, 0.01, 0.1})
	h.Observe(0.05)
	bounds, cum := h.Snapshot()
	if bounds[0] != 0.01 || bounds[1] != 0.1 || bounds[2] != 1 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if cum[0] != 0 || cum[1] != 1 {
		t.Errorf("cumulative = %v", cum)
	}
}

// TestNilSafety: a nil registry and nil metric handles must be usable
// no-ops so instrumented code never guards call sites.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", DurationBuckets).Observe(1)
	sp := r.StartSpan(r.Histogram("c", DurationBuckets))
	if d := sp.End(); d != 0 {
		t.Errorf("nil span elapsed = %v", d)
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if r.Clock() == nil {
		t.Error("nil registry clock is nil")
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has observations")
	}
}

func TestSpanUsesRegistryClock(t *testing.T) {
	clock := NewFakeClock(time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC))
	r := NewRegistry(clock)
	h := r.Histogram("op_seconds", DurationBuckets)
	sp := r.StartSpan(h)
	clock.Advance(250 * time.Millisecond)
	if d := sp.End(); d != 250*time.Millisecond {
		t.Errorf("elapsed = %v", d)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.25) > 1e-12 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestLabelRendering(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{L("x_total"), "x_total"},
		{L("x_total", "stage", "speed"), `x_total{stage="speed"}`},
		// Labels sort by key regardless of argument order.
		{L("x", "b", "2", "a", "1"), `x{a="1",b="2"}`},
		// Values are escaped.
		{L("x", "p", `a"b\c`), `x{p="a\"b\\c"}`},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("L = %s, want %s", tc.got, tc.want)
		}
	}
}

// TestWriteTextGolden pins the exposition format byte for byte.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry(NewFakeClock(time.Unix(0, 0)))
	r.Counter(L("reqs_total", "path", "/v1/submit-poa")).Add(3)
	r.Counter(L("reqs_total", "path", "/v1/zone-query")).Inc()
	r.Gauge("retained_poas").Set(2)
	h := r.Histogram(L("verify_seconds", "stage", "speed"), []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE reqs_total counter
reqs_total{path="/v1/submit-poa"} 3
reqs_total{path="/v1/zone-query"} 1
# TYPE retained_poas gauge
retained_poas 2
# TYPE verify_seconds histogram
verify_seconds_bucket{stage="speed",le="0.001"} 1
verify_seconds_bucket{stage="speed",le="0.01"} 2
verify_seconds_bucket{stage="speed",le="+Inf"} 3
verify_seconds_sum{stage="speed"} 0.5055
verify_seconds_count{stage="speed"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentScrape races writers against scrapers; run under -race
// this is the concurrent-scrape regression test for the /metrics path.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter(L("c_total", "w", "x")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", DurationBuckets).Observe(0.001)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(L("c_total", "w", "x")).Value(); got != 2000 {
		t.Errorf("counter = %d, want 2000", got)
	}
	if got := r.Histogram("h_seconds", DurationBuckets).Count(); got != 2000 {
		t.Errorf("histogram count = %d, want 2000", got)
	}
}

func TestClockFunc(t *testing.T) {
	t0 := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	var c Clock = ClockFunc(func() time.Time { return t0 })
	if !c.Now().Equal(t0) {
		t.Error("ClockFunc did not pass through")
	}
}

func TestFakeClock(t *testing.T) {
	t0 := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Error("initial time wrong")
	}
	if got := c.Advance(time.Hour); !got.Equal(t0.Add(time.Hour)) {
		t.Errorf("advance = %v", got)
	}
	c.Set(t0)
	if !c.Now().Equal(t0) {
		t.Error("set did not take")
	}
}
