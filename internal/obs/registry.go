package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Standard bucket layouts. Fixed layouts keep series from different
// processes mergeable and make the exposition output deterministic.
var (
	// DurationBuckets covers the latency range the evaluation cares
	// about: from tens of microseconds (HMAC, geometry tests) through
	// seconds (full-PoA RSA verification on slow hardware).
	DurationBuckets = []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
		100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
	}
	// CountBuckets covers discrete sizes: samples per zone crossing,
	// samples per PoA, retries per request.
	CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}
	// SyncBuckets covers commit-latency observations (WAL fsyncs): finer
	// than DurationBuckets below a millisecond, where the difference
	// between an SSD (~100 µs) and a spinning disk (~10 ms) lives.
	SyncBuckets = []float64{
		25e-6, 50e-6, 100e-6, 200e-6, 400e-6, 800e-6,
		1.6e-3, 3e-3, 6e-3, 12e-3, 25e-3, 50e-3, 100e-3, 250e-3, 1,
	}
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Snapshot returns the bucket upper bounds and the cumulative count at or
// below each bound (the final entry is the +Inf bucket, equal to Count).
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Registry holds the metrics of one process (or one server instance).
// The zero-value-adjacent nil registry is a valid no-op sink.
type Registry struct {
	clock Clock

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
}

// AddCollector registers a hook run at the start of every WriteText
// call, before any series is rendered — the place to refresh gauges
// that sample external state (see CollectRuntime). Hooks run outside
// the registry lock and must be safe for concurrent WriteText calls.
func (r *Registry) AddCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// NewRegistry creates a registry. clock feeds span timing and defaults to
// System when nil.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = System
	}
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Clock returns the registry's time source (System for a nil registry).
func (r *Registry) Clock() Clock {
	if r == nil {
		return System
	}
	return r.clock
}

// Counter returns the counter registered under name (with labels already
// rendered via L), creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. The first registration fixes the
// layout; later calls return the existing histogram regardless of buckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Span is an in-flight timed section. End observes the elapsed time into
// the histogram the span was started against.
type Span struct {
	clock Clock
	start time.Time
	h     *Histogram
}

// StartSpan begins timing against h using the registry clock. A span from
// a nil registry is a no-op.
func (r *Registry) StartSpan(h *Histogram) Span {
	if r == nil {
		return Span{}
	}
	return Span{clock: r.clock, start: r.clock.Now(), h: h}
}

// End stops the span, records the elapsed seconds, and returns the
// elapsed duration.
func (s Span) End() time.Duration {
	if s.clock == nil {
		return 0
	}
	d := s.clock.Now().Sub(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// L renders a metric name with label pairs in the Prometheus text
// convention, sorting labels by key for determinism:
//
//	L("x_total", "stage", "speed") == `x_total{stage="speed"}`
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitSeries separates a rendered series name into its family (the bare
// metric name) and the label body (without braces, empty when unlabeled).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WriteText renders all metrics in the Prometheus text exposition format
// (version 0.0.4). Output is fully deterministic: families and series are
// sorted lexicographically.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Run collector hooks before taking the read lock: hooks set gauges,
	// which themselves acquire the lock.
	r.mu.RLock()
	hooks := append([]func(*Registry){}, r.collectors...)
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn(r)
	}
	type series struct {
		name string
		line func(io.Writer) error
	}
	families := make(map[string]string) // family -> type
	var all []series

	r.mu.RLock()
	for name, c := range r.counters {
		fam, _ := splitSeries(name)
		families[fam] = "counter"
		v := c.Value()
		n := name
		all = append(all, series{n, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, v)
			return err
		}})
	}
	for name, g := range r.gauges {
		fam, _ := splitSeries(name)
		families[fam] = "gauge"
		v := g.Value()
		n := name
		all = append(all, series{n, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(v))
			return err
		}})
	}
	for name, h := range r.hists {
		fam, labels := splitSeries(name)
		families[fam] = "histogram"
		bounds, cum := h.Snapshot()
		sum, count := h.Sum(), h.Count()
		n, f, l := name, fam, labels
		all = append(all, series{n, func(w io.Writer) error {
			for i, b := range bounds {
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f+"_bucket", l, "le", formatFloat(b)), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f+"_bucket", l, "le", "+Inf"), cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f+"_sum", l), formatFloat(sum)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f+"_count", l), count)
			return err
		}})
	}
	r.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	written := make(map[string]bool)
	for _, s := range all {
		fam, _ := splitSeries(s.name)
		if !written[fam] {
			written[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, families[fam]); err != nil {
				return err
			}
		}
		if err := s.line(w); err != nil {
			return err
		}
	}
	return nil
}

// seriesName assembles "family{labels,extraK="extraV"}" handling the
// empty-label and no-extra cases.
func seriesName(family, labels string, extra ...string) string {
	body := labels
	for i := 0; i+1 < len(extra); i += 2 {
		if body != "" {
			body += ","
		}
		body += extra[i] + `="` + extra[i+1] + `"`
	}
	if body == "" {
		return family
	}
	return family + "{" + body + "}"
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
