// Package trace generates the flight/drive trajectories used by the
// evaluation: generic waypoint routes plus faithful reconstructions of the
// paper's two field studies (the airport drive-away and the residential
// drive-through). The paper recorded real GPS traces from a car and
// replayed them into the GPS Sampler; we generate equivalent trajectories
// from the parameters the paper reports and replay them through the same
// receiver → driver → sampler path.
package trace

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
)

var (
	// ErrTooFewWaypoints is returned when a route has fewer than two
	// waypoints.
	ErrTooFewWaypoints = errors.New("trace: route needs at least two waypoints")
	// ErrNotChronological is returned when waypoints are not strictly
	// time ordered.
	ErrNotChronological = errors.New("trace: waypoints not in increasing time order")
)

// Waypoint is one vertex of a route.
type Waypoint struct {
	Pos       geo.LatLon `json:"pos"`
	AltMeters float64    `json:"altMeters"`
	Time      time.Time  `json:"time"`
}

// Route is a piecewise-linear trajectory through waypoints. It implements
// gps.Path by interpolating position, altitude, speed and course.
type Route struct {
	wps []Waypoint
}

var _ gps.Path = (*Route)(nil)

// NewRoute validates and wraps a waypoint series.
func NewRoute(wps []Waypoint) (*Route, error) {
	if len(wps) < 2 {
		return nil, ErrTooFewWaypoints
	}
	for i := 1; i < len(wps); i++ {
		if !wps[i].Time.After(wps[i-1].Time) {
			return nil, fmt.Errorf("%w: waypoint %d", ErrNotChronological, i)
		}
	}
	cp := make([]Waypoint, len(wps))
	copy(cp, wps)
	return &Route{wps: cp}, nil
}

// Start implements gps.Path.
func (r *Route) Start() time.Time { return r.wps[0].Time }

// End implements gps.Path.
func (r *Route) End() time.Time { return r.wps[len(r.wps)-1].Time }

// Duration is the total route time.
func (r *Route) Duration() time.Duration { return r.End().Sub(r.Start()) }

// Waypoints returns a copy of the route's waypoints.
func (r *Route) Waypoints() []Waypoint {
	cp := make([]Waypoint, len(r.wps))
	copy(cp, r.wps)
	return cp
}

// LengthMeters returns the total path length.
func (r *Route) LengthMeters() float64 {
	var total float64
	for i := 1; i < len(r.wps); i++ {
		total += geo.HaversineMeters(r.wps[i-1].Pos, r.wps[i].Pos)
	}
	return total
}

// Position implements gps.Path by linear interpolation along the segment
// containing the queried instant, clamped to the route's time range.
func (r *Route) Position(at time.Time) gps.Fix {
	if !at.After(r.Start()) {
		return r.fixOnSegment(0, 0)
	}
	if !at.Before(r.End()) {
		last := len(r.wps) - 2
		return r.fixOnSegment(last, 1)
	}

	// Binary search for the segment with wps[i].Time <= at < wps[i+1].Time.
	lo, hi := 0, len(r.wps)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.wps[mid].Time.After(at) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	seg := lo
	segDur := r.wps[seg+1].Time.Sub(r.wps[seg].Time).Seconds()
	frac := at.Sub(r.wps[seg].Time).Seconds() / segDur
	fix := r.fixOnSegment(seg, frac)
	fix.Time = at
	return fix
}

// fixOnSegment interpolates the fix at fraction frac in [0,1] of segment i.
func (r *Route) fixOnSegment(i int, frac float64) gps.Fix {
	a, b := r.wps[i], r.wps[i+1]
	dist := geo.HaversineMeters(a.Pos, b.Pos)
	bearing := geo.InitialBearing(a.Pos, b.Pos)
	segSec := b.Time.Sub(a.Time).Seconds()

	var speed float64
	if segSec > 0 {
		speed = dist / segSec
	}
	pos := a.Pos
	if dist > 0 {
		pos = a.Pos.Offset(bearing, dist*frac)
	}
	return gps.Fix{
		Pos:       pos,
		AltMeters: a.AltMeters + (b.AltMeters-a.AltMeters)*frac,
		SpeedMS:   speed,
		CourseDeg: bearing,
		Time:      a.Time.Add(time.Duration(frac * segSec * float64(time.Second))),
	}
}

// ConstantSpeedLine builds a straight route from start along bearing at the
// given speed for the given duration.
func ConstantSpeedLine(start geo.LatLon, bearingDeg, speedMS float64, t0 time.Time, dur time.Duration) (*Route, error) {
	// One intermediate waypoint per ~10 s keeps spherical interpolation
	// indistinguishable from true constant motion at scenario scales.
	steps := int(dur.Seconds()/10) + 1
	wps := make([]Waypoint, 0, steps+1)
	for i := 0; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		dt := time.Duration(frac * float64(dur))
		wps = append(wps, Waypoint{
			Pos:  start.Offset(bearingDeg, speedMS*dur.Seconds()*frac),
			Time: t0.Add(dt),
		})
	}
	return NewRoute(wps)
}
