package trace

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
)

var t0 = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)

func TestNewRouteValidation(t *testing.T) {
	p := geo.LatLon{Lat: 40, Lon: -88}
	if _, err := NewRoute([]Waypoint{{Pos: p, Time: t0}}); !errors.Is(err, ErrTooFewWaypoints) {
		t.Errorf("err = %v, want ErrTooFewWaypoints", err)
	}
	dup := []Waypoint{{Pos: p, Time: t0}, {Pos: p, Time: t0}}
	if _, err := NewRoute(dup); !errors.Is(err, ErrNotChronological) {
		t.Errorf("err = %v, want ErrNotChronological", err)
	}
}

func TestRoutePositionInterpolation(t *testing.T) {
	a := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	b := a.Offset(90, 1000)
	r, err := NewRoute([]Waypoint{
		{Pos: a, Time: t0},
		{Pos: b, Time: t0.Add(100 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}

	mid := r.Position(t0.Add(50 * time.Second))
	want := a.Offset(90, 500)
	if d := geo.HaversineMeters(mid.Pos, want); d > 1 {
		t.Errorf("midpoint is %v m off", d)
	}
	if math.Abs(mid.SpeedMS-10) > 0.01 {
		t.Errorf("speed = %v, want 10", mid.SpeedMS)
	}
	if math.Abs(mid.CourseDeg-90) > 1 {
		t.Errorf("course = %v, want ~90", mid.CourseDeg)
	}

	// Clamping.
	before := r.Position(t0.Add(-time.Minute))
	if d := geo.HaversineMeters(before.Pos, a); d > 0.01 {
		t.Errorf("position before start should clamp to start, off by %v m", d)
	}
	after := r.Position(t0.Add(time.Hour))
	if d := geo.HaversineMeters(after.Pos, b); d > 0.01 {
		t.Errorf("position after end should clamp to end, off by %v m", d)
	}
}

func TestRoutePositionMultiSegment(t *testing.T) {
	a := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	wps := []Waypoint{
		{Pos: a, Time: t0, AltMeters: 0},
		{Pos: a.Offset(0, 100), Time: t0.Add(10 * time.Second), AltMeters: 40},
		{Pos: a.Offset(0, 100).Offset(90, 200), Time: t0.Add(30 * time.Second), AltMeters: 80},
	}
	r, err := NewRoute(wps)
	if err != nil {
		t.Fatal(err)
	}

	// In the middle of segment 2 (t=20 s, frac 0.5).
	fix := r.Position(t0.Add(20 * time.Second))
	want := a.Offset(0, 100).Offset(90, 100)
	if d := geo.HaversineMeters(fix.Pos, want); d > 1 {
		t.Errorf("segment-2 midpoint is %v m off", d)
	}
	if math.Abs(fix.AltMeters-60) > 0.5 {
		t.Errorf("altitude = %v, want 60", fix.AltMeters)
	}
	if math.Abs(fix.SpeedMS-10) > 0.1 {
		t.Errorf("speed = %v, want 10", fix.SpeedMS)
	}

	// Exactly on the middle waypoint.
	fix = r.Position(t0.Add(10 * time.Second))
	if d := geo.HaversineMeters(fix.Pos, wps[1].Pos); d > 0.5 {
		t.Errorf("waypoint position off by %v m", d)
	}

	if got := r.Duration(); got != 30*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := r.LengthMeters(); math.Abs(got-300) > 1 {
		t.Errorf("LengthMeters = %v, want ~300", got)
	}
	if got := len(r.Waypoints()); got != 3 {
		t.Errorf("Waypoints len = %d", got)
	}
}

func TestConstantSpeedLine(t *testing.T) {
	start := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	r, err := ConstantSpeedLine(start, 45, 15, t0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.LengthMeters(), 15.0*300; math.Abs(got-want) > want*0.01 {
		t.Errorf("length = %v, want ~%v", got, want)
	}
	// Speed should be ~15 m/s everywhere.
	for _, dt := range []time.Duration{0, time.Minute, 4 * time.Minute} {
		if fix := r.Position(t0.Add(dt)); math.Abs(fix.SpeedMS-15) > 0.2 {
			t.Errorf("speed at %v = %v", dt, fix.SpeedMS)
		}
	}
}

func TestAirportScenarioGeometry(t *testing.T) {
	sc, err := NewAirportScenario(DefaultAirportConfig(t0))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Zones) != 1 {
		t.Fatalf("zones = %d, want 1", len(sc.Zones))
	}
	z := sc.Zones[0]
	if math.Abs(z.R-geo.MilesToMeters(5)) > 1 {
		t.Errorf("zone radius = %v", z.R)
	}

	// Start ~30 ft outside the boundary.
	startDist := z.BoundaryDistMeters(sc.Route.Position(t0).Pos)
	if math.Abs(startDist-geo.FeetToMeters(30)) > 2 {
		t.Errorf("start boundary distance = %v m, want ~9.1", startDist)
	}

	// End ~3 miles + 30 ft out, after 12 minutes.
	endDist := z.BoundaryDistMeters(sc.Route.Position(sc.Route.End()).Pos)
	if math.Abs(endDist-geo.MilesToMeters(3)-geo.FeetToMeters(30)) > 50 {
		t.Errorf("end boundary distance = %v m, want ~4837", endDist)
	}
	if sc.Route.Duration() != 12*time.Minute {
		t.Errorf("duration = %v", sc.Route.Duration())
	}

	// The vehicle never enters the zone.
	for dt := time.Duration(0); dt <= sc.Route.Duration(); dt += time.Second {
		if z.ContainsLatLon(sc.Route.Position(t0.Add(dt)).Pos) {
			t.Fatalf("vehicle inside NFZ at %v", dt)
		}
	}
}

func TestAirportScenarioBadConfig(t *testing.T) {
	cfg := DefaultAirportConfig(t0)
	cfg.RadiusMeters = 0
	if _, err := NewAirportScenario(cfg); err == nil {
		t.Error("zero radius should error")
	}
}

func TestResidentialScenarioLayout(t *testing.T) {
	cfg := DefaultResidentialConfig(t0)
	sc, err := NewResidentialScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Zones) != 94 {
		t.Fatalf("zones = %d, want 94", len(sc.Zones))
	}
	for i, z := range sc.Zones {
		if math.Abs(z.R-geo.FeetToMeters(20)) > 0.01 {
			t.Fatalf("zone %d radius = %v, want 20 ft", i, z.R)
		}
	}
	if got, want := sc.Route.LengthMeters(), geo.MilesToMeters(1); math.Abs(got-want) > want*0.01 {
		t.Errorf("route length = %v, want ~%v", got, want)
	}

	// Nearest-boundary-distance profile: compute per second.
	minOverall := math.Inf(1)
	var sparseMin, sparseMax = math.Inf(1), math.Inf(-1)
	var denseMin float64 = math.Inf(1)
	for dt := time.Duration(0); dt <= sc.Route.Duration(); dt += time.Second {
		pos := sc.Route.Position(t0.Add(dt)).Pos
		nearest := math.Inf(1)
		for _, z := range sc.Zones {
			if d := z.BoundaryDistMeters(pos); d < nearest {
				nearest = d
			}
		}
		if nearest < minOverall {
			minOverall = nearest
		}
		frac := dt.Seconds() / sc.Route.Duration().Seconds()
		if frac < 0.35 {
			sparseMin = math.Min(sparseMin, nearest)
			sparseMax = math.Max(sparseMax, nearest)
		} else if frac > 0.45 {
			denseMin = math.Min(denseMin, nearest)
		}
	}

	// The paper reports: sparse section 50-100 ft, dense 20-70 ft,
	// closest approach 21 ft. Check the generated profile hits those
	// bands (with slack for along-road geometry).
	if ft := geo.MetersToFeet(minOverall); ft < 19 || ft > 23 {
		t.Errorf("closest approach = %.1f ft, want ~21", ft)
	}
	if ft := geo.MetersToFeet(sparseMin); ft < 40 {
		t.Errorf("sparse section min distance = %.1f ft, want >= ~50", ft)
	}
	if ft := geo.MetersToFeet(denseMin); ft > 30 {
		t.Errorf("dense section min distance = %.1f ft, want ~20-30", ft)
	}
	_ = sparseMax

	// The vehicle must never actually enter a zone (roads are public).
	for dt := time.Duration(0); dt <= sc.Route.Duration(); dt += 500 * time.Millisecond {
		pos := sc.Route.Position(t0.Add(dt)).Pos
		for zi, z := range sc.Zones {
			if z.ContainsLatLon(pos) {
				t.Fatalf("vehicle inside zone %d at %v", zi, dt)
			}
		}
	}
}

func TestResidentialScenarioDeterminism(t *testing.T) {
	cfg := DefaultResidentialConfig(t0)
	a, err := NewResidentialScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewResidentialScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Zones {
		if a.Zones[i] != b.Zones[i] {
			t.Fatalf("zone %d differs between identical configs", i)
		}
	}
}

func TestResidentialScenarioBadConfig(t *testing.T) {
	cfg := DefaultResidentialConfig(t0)
	cfg.NumZones = 2
	if _, err := NewResidentialScenario(cfg); err == nil {
		t.Error("too few zones should error")
	}
	cfg = DefaultResidentialConfig(t0)
	cfg.LengthM = -1
	if _, err := NewResidentialScenario(cfg); err == nil {
		t.Error("negative length should error")
	}
}

func TestRandomRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r, err := RandomRoute(rng, geo.LatLon{Lat: 40.1, Lon: -88.2}, 50, 20, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Waypoints()) != 50 {
		t.Errorf("waypoints = %d", len(r.Waypoints()))
	}
	// Every hop must be achievable at the configured speed.
	wps := r.Waypoints()
	for i := 1; i < len(wps); i++ {
		d := geo.HaversineMeters(wps[i-1].Pos, wps[i].Pos)
		dt := wps[i].Time.Sub(wps[i-1].Time).Seconds()
		if d > 20*dt*1.01 {
			t.Fatalf("hop %d too fast: %v m in %v s", i, d, dt)
		}
	}

	if _, err := RandomRoute(rng, geo.LatLon{}, 1, 20, t0); !errors.Is(err, ErrTooFewWaypoints) {
		t.Errorf("err = %v", err)
	}
}
