package trace

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
)

// AirportConfig parameterises the airport field study (paper §VI-A2):
// a single large no-fly zone around an airport, with the vehicle starting
// just outside the boundary and driving away.
type AirportConfig struct {
	Airport      geo.LatLon    // zone centre
	RadiusMeters float64       // NFZ radius; FAA rule is 5 miles
	StartOutside float64       // initial distance outside the boundary (paper: ~30 ft)
	DriveAway    float64       // distance driven away from the zone (paper: ~3 mi)
	Duration     time.Duration // drive time (paper: 12 min)
	BearingDeg   float64       // outbound direction
	Start        time.Time     // departure time
}

// DefaultAirportConfig returns the configuration matching the paper's
// numbers, departing at t0.
func DefaultAirportConfig(t0 time.Time) AirportConfig {
	return AirportConfig{
		Airport:      geo.LatLon{Lat: 40.0392, Lon: -88.2781}, // Willard-airport-like location
		RadiusMeters: geo.MilesToMeters(5),
		StartOutside: geo.FeetToMeters(30),
		DriveAway:    geo.MilesToMeters(3),
		Duration:     12 * time.Minute,
		BearingDeg:   80,
		Start:        t0,
	}
}

// Scenario bundles a generated route with the no-fly zones in force during
// it — everything a field-study experiment needs.
type Scenario struct {
	Name  string
	Route *Route
	Zones []geo.GeoCircle
}

// NewAirportScenario builds the airport drive-away scenario.
func NewAirportScenario(cfg AirportConfig) (*Scenario, error) {
	if cfg.RadiusMeters <= 0 || cfg.DriveAway <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: airport config has non-positive geometry: %+v", cfg)
	}
	zone := geo.GeoCircle{Center: cfg.Airport, R: cfg.RadiusMeters}
	start := cfg.Airport.Offset(cfg.BearingDeg, cfg.RadiusMeters+cfg.StartOutside)
	speed := cfg.DriveAway / cfg.Duration.Seconds()
	route, err := ConstantSpeedLine(start, cfg.BearingDeg, speed, cfg.Start, cfg.Duration)
	if err != nil {
		return nil, fmt.Errorf("airport route: %w", err)
	}
	return &Scenario{Name: "airport", Route: route, Zones: []geo.GeoCircle{zone}}, nil
}

// ResidentialConfig parameterises the residential field study (paper
// §VI-A3): a ~1 mile drive through a county road lined with small no-fly
// zones over the houses.
type ResidentialConfig struct {
	RoadStart  geo.LatLon    // beginning of the drive (point A in Fig 7)
	BearingDeg float64       // road direction
	LengthM    float64       // drive length (paper: ~1 mile)
	Duration   time.Duration // drive time (Fig 8 spans ~150 s)
	Start      time.Time     // departure time
	ZoneRadius float64       // house NFZ radius (paper: 20 ft)
	NumZones   int           // total house NFZs (paper: 94)
	Seed       int64         // layout randomness seed
}

// DefaultResidentialConfig returns the configuration matching the paper's
// numbers, departing at t0.
func DefaultResidentialConfig(t0 time.Time) ResidentialConfig {
	return ResidentialConfig{
		RoadStart:  geo.LatLon{Lat: 40.1106, Lon: -88.2073},
		BearingDeg: 10,
		LengthM:    geo.MilesToMeters(1),
		Duration:   155 * time.Second,
		Start:      t0,
		ZoneRadius: geo.FeetToMeters(20),
		NumZones:   94,
		Seed:       2018,
	}
}

// NewResidentialScenario builds the residential drive-through: the first
// ~40% of the road is a sparse neighbourhood (nearest NFZ boundary 50 to
// 100 ft away), the rest a dense one (20 to 70 ft), with a single closest
// approach of 21 ft — the profile of the paper's Fig 8-(a).
func NewResidentialScenario(cfg ResidentialConfig) (*Scenario, error) {
	if cfg.NumZones < 3 {
		return nil, fmt.Errorf("trace: residential scenario needs >= 3 zones, got %d", cfg.NumZones)
	}
	if cfg.LengthM <= 0 || cfg.Duration <= 0 || cfg.ZoneRadius <= 0 {
		return nil, fmt.Errorf("trace: residential config has non-positive geometry: %+v", cfg)
	}

	speed := cfg.LengthM / cfg.Duration.Seconds()
	route, err := ConstantSpeedLine(cfg.RoadStart, cfg.BearingDeg, speed, cfg.Start, cfg.Duration)
	if err != nil {
		return nil, fmt.Errorf("residential route: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sparseEnd := 0.4 * cfg.LengthM

	// Budget the zones: roughly 20% of houses in the sparse section, the
	// rest dense, one reserved for the 21 ft closest approach.
	sparseCount := cfg.NumZones / 5
	denseCount := cfg.NumZones - sparseCount - 1

	zones := make([]geo.GeoCircle, 0, cfg.NumZones)
	side := 1.0

	// Sparse section: boundary distances 50-100 ft.
	for i := 0; i < sparseCount; i++ {
		along := (float64(i) + rng.Float64()*0.8) / float64(sparseCount) * sparseEnd
		boundary := geo.FeetToMeters(50 + rng.Float64()*50)
		zones = append(zones, houseZone(cfg, along, side*(boundary+cfg.ZoneRadius)))
		side = -side
	}

	// Dense section: boundary distances 24-70 ft.
	for i := 0; i < denseCount; i++ {
		along := sparseEnd + (float64(i)+rng.Float64()*0.8)/float64(denseCount)*(cfg.LengthM-sparseEnd)
		boundary := geo.FeetToMeters(24 + rng.Float64()*46)
		zones = append(zones, houseZone(cfg, along, side*(boundary+cfg.ZoneRadius)))
		side = -side
	}

	// The single closest approach at 21 ft, three quarters down the road.
	zones = append(zones, houseZone(cfg, 0.75*cfg.LengthM, geo.FeetToMeters(21)+cfg.ZoneRadius))

	return &Scenario{Name: "residential", Route: route, Zones: zones}, nil
}

// houseZone places a house NFZ at the given distance along the road and
// signed lateral offset (metres; positive = right of travel direction).
func houseZone(cfg ResidentialConfig, alongM, lateralM float64) geo.GeoCircle {
	onRoad := cfg.RoadStart.Offset(cfg.BearingDeg, alongM)
	lateralBearing := cfg.BearingDeg + 90
	if lateralM < 0 {
		lateralBearing = cfg.BearingDeg - 90
		lateralM = -lateralM
	}
	return geo.GeoCircle{Center: onRoad.Offset(lateralBearing, lateralM), R: cfg.ZoneRadius}
}

// RandomRoute generates an n-waypoint random walk inside a box around
// start, for property tests and fuzz workloads. Consecutive waypoints are
// reachable at the given speed.
func RandomRoute(rng *rand.Rand, start geo.LatLon, n int, speedMS float64, t0 time.Time) (*Route, error) {
	if n < 2 {
		return nil, ErrTooFewWaypoints
	}
	wps := make([]Waypoint, n)
	pos := start
	at := t0
	wps[0] = Waypoint{Pos: pos, Time: at}
	for i := 1; i < n; i++ {
		hop := 20 + rng.Float64()*200
		pos = pos.Offset(rng.Float64()*360, hop)
		at = at.Add(time.Duration(hop / speedMS * float64(time.Second)))
		wps[i] = Waypoint{Pos: pos, Time: at}
	}
	return NewRoute(wps)
}
