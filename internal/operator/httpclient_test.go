package operator

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// flakyHandler fails the first n requests with the given status, then
// delegates to ok.
type flakyHandler struct {
	fails  int32
	status int
	ok     http.HandlerFunc
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if atomic.AddInt32(&f.fails, -1) >= 0 {
		http.Error(w, "upstream unavailable", f.status)
		return
	}
	f.ok(w, r)
}

func TestClientRetriesGatewayErrors(t *testing.T) {
	fh := &flakyHandler{fails: 2, status: http.StatusServiceUnavailable,
		ok: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"droneId":"drone-1"}`))
		}}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	reg := obs.NewRegistry(nil)
	var slept []time.Duration
	c := NewHTTPAuditor(hs.URL, nil)
	c.SetRetryPolicy(RetryPolicy{Max: 3, Backoff: 10 * time.Millisecond})
	c.SetMetrics(reg)
	c.setSleep(func(d time.Duration) { slept = append(slept, d) })

	resp, err := c.RegisterDrone(protocol.RegisterDroneRequest{})
	if err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if resp.DroneID != "drone-1" {
		t.Errorf("DroneID = %q", resp.DroneID)
	}
	// Two failures → two retries with doubled backoff; third attempt wins.
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms]", slept)
	}
	path := protocol.PathRegisterDrone
	if got := reg.Counter(obs.L(MetricClientRequestsTotal, "path", path)).Value(); got != 1 {
		t.Errorf("requests counter = %d, want 1 (retries are not new requests)", got)
	}
	if got := reg.Counter(obs.L(MetricClientRetriesTotal, "path", path)).Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := reg.Histogram(obs.L(MetricClientRequestSeconds, "path", path), obs.DurationBuckets).Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	fh := &flakyHandler{fails: 100, status: http.StatusBadGateway,
		ok: func(w http.ResponseWriter, r *http.Request) {}}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	c := NewHTTPAuditor(hs.URL, nil)
	c.SetRetryPolicy(RetryPolicy{Max: 2})
	c.setSleep(func(time.Duration) {})
	if _, err := c.RegisterDrone(protocol.RegisterDroneRequest{}); err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	// 1 attempt + 2 retries were consumed.
	if remaining := atomic.LoadInt32(&fh.fails); remaining != 97 {
		t.Errorf("server saw %d requests, want 3", 100-remaining)
	}
}

// TestClientNoRetryOnClientError: 4xx responses are the Auditor speaking;
// they must not be retried.
func TestClientNoRetryOnClientError(t *testing.T) {
	var hits int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, `{"error":"unknown drone"}`, http.StatusNotFound)
	}))
	defer hs.Close()

	c := NewHTTPAuditor(hs.URL, nil)
	c.SetRetryPolicy(RetryPolicy{Max: 5, Backoff: time.Millisecond})
	c.setSleep(func(time.Duration) { t.Error("slept on a non-retryable response") })
	if _, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "drone-999"}); err == nil {
		t.Fatal("404 did not surface an error")
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

// TestClientReusesConnectionAcrossRetries: retried responses must have
// their bodies drained before close, or the Transport abandons the
// keep-alive connection and every retry pays a fresh TCP handshake.
func TestClientReusesConnectionAcrossRetries(t *testing.T) {
	fh := &flakyHandler{fails: 2, status: http.StatusServiceUnavailable,
		ok: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"droneId":"drone-1"}`))
		}}
	hs := httptest.NewUnstartedServer(fh)
	var conns int32
	hs.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			atomic.AddInt32(&conns, 1)
		}
	}
	hs.Start()
	defer hs.Close()

	c := NewHTTPAuditor(hs.URL, nil)
	c.SetRetryPolicy(RetryPolicy{Max: 2, Backoff: time.Millisecond})
	c.setSleep(func(time.Duration) {})
	if _, err := c.RegisterDrone(protocol.RegisterDroneRequest{}); err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if got := atomic.LoadInt32(&conns); got != 1 {
		t.Errorf("server saw %d connections across 3 attempts, want 1 (keep-alive reuse)", got)
	}
}
