package operator

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	urbana = geo.LatLon{Lat: 40.1106, Lon: -88.2073}
)

// stack is a complete end-to-end fixture: auditor + TrustZone drone.
type stack struct {
	srv   *auditor.Server
	drone *Drone
	clock *tee.SimClock
	dev   *tee.Device
}

func newStack(t *testing.T, api protocol.API, srv *auditor.Server) *stack {
	t.Helper()
	rng := rand.New(rand.NewSource(1))

	vault, err := tee.ManufactureVault(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	clock := tee.NewSimClock(t0)
	dev := tee.NewDevice(clock, vault)

	d, err := NewDrone(api, srv.EncryptionPub(), dev, clock, sigcrypto.KeySize1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{srv: srv, drone: d, clock: clock, dev: dev}
}

// withReceiver installs a GPS sampler TA over the given route.
func (s *stack) withReceiver(t *testing.T, route *trace.Route, rateHz float64) *gps.Receiver {
	t.Helper()
	rx, err := gps.NewReceiver(route, rateHz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tee.NewGPSSampler(s.dev, gps.NewDriver(rx), rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	return rx
}

func newInProcessStack(t *testing.T) *stack {
	t.Helper()
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	return newStack(t, srv, srv)
}

func TestEndToEndCompliantFlight(t *testing.T) {
	s := newInProcessStack(t)

	// A zone 2 km north of the flight corridor.
	if _, err := s.srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 2000), R: 100}); err != nil {
		t.Fatal(err)
	}

	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)

	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	if s.drone.ID() == "" {
		t.Fatal("no drone id after registration")
	}

	// Pre-flight zone query over the corridor.
	area := geo.NewRect(urbana.Offset(225, 3000), urbana.Offset(90, 1500).Offset(45, 3000))
	zones, err := s.drone.QueryZones(area)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("queried zones = %d, want 1", len(zones))
	}

	// Fly with adaptive sampling.
	res, err := s.drone.FlyAdaptive(rx, []geo.GeoCircle{zones[0].Circle}, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if res.PoA.Len() < 1 {
		t.Fatal("empty PoA")
	}

	// Submit: the flight never approached the zone, so compliant.
	resp, err := s.drone.SubmitPoA(res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()

	client := NewHTTPAuditor(hs.URL, hs.Client())
	pub, err := client.FetchEncryptionPub()
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(srv.EncryptionPub().N) != 0 {
		t.Fatal("fetched encryption key mismatch")
	}

	// Zone owner registers over HTTP.
	zresp, err := client.RegisterZone(protocol.RegisterZoneRequest{
		Owner: "alice", Zone: geo.GeoCircle{Center: urbana.Offset(0, 2000), R: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if zresp.ZoneID == "" {
		t.Fatal("empty zone id")
	}

	s := newStack(t, client, srv)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)

	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	zones, err := s.drone.QueryZones(geo.NewRect(urbana.Offset(225, 3000), urbana.Offset(45, 3000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("zones = %d, want 1", len(zones))
	}

	res, err := s.drone.FlyFixedRate(rx, 1, route.End())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.drone.SubmitPoA(res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}

func TestHTTPErrorsSurface(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()
	client := NewHTTPAuditor(hs.URL, hs.Client())

	// Unknown drone: the 404 must map to an error containing the reason.
	_, err = client.SubmitPoA(protocol.SubmitPoARequest{DroneID: "drone-999"})
	if err == nil {
		t.Fatal("expected error for unknown drone over HTTP")
	}
}

func TestUnregisteredDroneOperations(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)

	if _, err := s.drone.QueryZones(geo.Rect{}); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("QueryZones err = %v, want ErrNotRegistered", err)
	}
	if _, err := s.drone.FlyAdaptive(rx, nil, route.End()); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("FlyAdaptive err = %v, want ErrNotRegistered", err)
	}
	if _, err := s.drone.FlyFixedRate(rx, 1, route.End()); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("FlyFixedRate err = %v, want ErrNotRegistered", err)
	}
	if _, err := s.drone.Submit(nil); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("Submit err = %v, want ErrNotRegistered", err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	rec := FlightRecord{
		FlightID:     "flight-001",
		DroneID:      "drone-0001",
		Start:        t0,
		End:          t0.Add(time.Minute),
		EncryptedPoA: []byte{1, 2, 3},
	}
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}

	got, err := st.Load("flight-001")
	if err != nil {
		t.Fatal(err)
	}
	if got.DroneID != rec.DroneID || len(got.EncryptedPoA) != 3 {
		t.Errorf("loaded = %+v", got)
	}

	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "flight-001" {
		t.Errorf("List = %v", ids)
	}

	pending, err := st.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}

	// Mark submitted and save again: no longer pending.
	rec.Submitted = true
	if err := st.Save(rec); err != nil {
		t.Fatal(err)
	}
	pending, err = st.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("pending after submit = %d", len(pending))
	}

	if _, err := st.Load("missing"); !errors.Is(err, ErrNoSuchFlight) {
		t.Errorf("err = %v, want ErrNoSuchFlight", err)
	}
}

func TestEncryptPoAOnlyAuditorDecrypts(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	res, err := s.drone.FlyFixedRate(rx, 1, route.End())
	if err != nil {
		t.Fatal(err)
	}

	ct, err := s.drone.EncryptPoA(res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	// A third party's key cannot decrypt it.
	eve, err := sigcrypto.GenerateKeyPair(rand.New(rand.NewSource(66)), sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sigcrypto.Decrypt(eve, ct); err == nil {
		t.Error("eavesdropper decrypted the PoA")
	}

	// But the submission round-trips.
	resp, err := s.drone.Submit(ct)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}
