package operator

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/zone"
)

// ErrModesUnsupported is returned when the configured auditor API does not
// implement the §VII-A1 alternative-envelope endpoints.
var ErrModesUnsupported = errors.New("operator: auditor does not support alternative PoA modes")

// modesAPI returns the extended API surface when available.
func (d *Drone) modesAPI() (protocol.ModesAPI, error) {
	return d.modesAPICtx(context.Background())
}

// modesAPICtx returns the extended API surface bound to ctx when the
// transport supports context binding.
func (d *Drone) modesAPICtx(ctx context.Context) (protocol.ModesAPI, error) {
	m, ok := protocol.BindContext(ctx, d.api).(protocol.ModesAPI)
	if !ok {
		return nil, ErrModesUnsupported
	}
	return m, nil
}

// FlyAdaptiveBatch runs the adaptive sampler in batch mode (§VII-A1b):
// samples are buffered in secure memory and the whole trace is signed once
// at the end of the flight.
func (d *Drone) FlyAdaptiveBatch(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (poa.BatchPoA, *sampling.RunResult, error) {
	if d.id == "" {
		return poa.BatchPoA{}, nil, ErrNotRegistered
	}
	a := &sampling.Adaptive{
		Env:     sampling.NewTEEBatchEnv(d.dev, d.clock, rx),
		Index:   zone.NewIndex(zones, 0),
		VMaxMS:  geo.MaxDroneSpeedMPS,
		Metrics: d.metrics,
	}
	res, err := a.Run(until)
	if err != nil {
		return poa.BatchPoA{}, nil, fmt.Errorf("batch flight: %w", err)
	}
	batch, err := sampling.SealTrace(d.dev)
	if err != nil {
		return poa.BatchPoA{}, nil, err
	}
	return batch, res, nil
}

// SubmitBatchPoA encrypts and submits a batch-signed trace.
func (d *Drone) SubmitBatchPoA(batch poa.BatchPoA) (protocol.SubmitPoAResponse, error) {
	return d.SubmitBatchPoACtx(context.Background(), batch)
}

// SubmitBatchPoACtx is SubmitBatchPoA under a caller context.
func (d *Drone) SubmitBatchPoACtx(ctx context.Context, batch poa.BatchPoA) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	m, err := d.modesAPICtx(ctx)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	plaintext, err := json.Marshal(batch)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("marshal batch PoA: %w", err)
	}
	ct, err := sigcrypto.Encrypt(d.random, d.auditorPub, plaintext)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("encrypt batch PoA: %w", err)
	}
	resp, err := m.SubmitBatchPoA(protocol.SubmitBatchPoARequest{DroneID: d.id, EncryptedBatch: ct})
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("submit batch PoA: %w", err)
	}
	return resp, nil
}

// StartSession establishes a §VII-A1a symmetric flight session: the TEE
// generates an ephemeral HMAC key, wraps it to the Auditor, and the drone
// forwards the wrapped key. Returns the session ID to submit under.
func (d *Drone) StartSession() (string, error) {
	if d.id == "" {
		return "", ErrNotRegistered
	}
	m, err := d.modesAPI()
	if err != nil {
		return "", err
	}
	pubStr, err := sigcrypto.MarshalPublicKey(d.auditorPub)
	if err != nil {
		return "", fmt.Errorf("marshal auditor key: %w", err)
	}
	wrapped, err := d.dev.Invoke(tee.GPSSamplerUUID, tee.CmdEstablishSessionKey, []byte(pubStr))
	if err != nil {
		return "", fmt.Errorf("establish session key: %w", err)
	}
	resp, err := m.StartSession(protocol.StartSessionRequest{DroneID: d.id, WrappedKey: wrapped})
	if err != nil {
		return "", fmt.Errorf("start session: %w", err)
	}
	return resp.SessionID, nil
}

// FlyAdaptiveMAC runs the adaptive sampler in symmetric mode; StartSession
// must have succeeded first.
func (d *Drone) FlyAdaptiveMAC(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (*sampling.RunResult, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	a := &sampling.Adaptive{
		Env:     sampling.NewTEEMACEnv(d.dev, d.clock, rx),
		Index:   zone.NewIndex(zones, 0),
		VMaxMS:  geo.MaxDroneSpeedMPS,
		Metrics: d.metrics,
	}
	res, err := a.Run(until)
	if err != nil {
		return nil, fmt.Errorf("mac flight: %w", err)
	}
	return res, nil
}

// FlyFixedRateMAC runs the fix-rate baseline in symmetric mode.
func (d *Drone) FlyFixedRateMAC(rx *gps.Receiver, rateHz float64, until time.Time) (*sampling.RunResult, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	f := &sampling.FixedRate{Env: sampling.NewTEEMACEnv(d.dev, d.clock, rx), RateHz: rateHz, Metrics: d.metrics}
	res, err := f.Run(until)
	if err != nil {
		return nil, fmt.Errorf("mac fixed-rate flight: %w", err)
	}
	return res, nil
}

// SubmitMACPoA encrypts and submits a symmetric-mode PoA under a session.
func (d *Drone) SubmitMACPoA(sessionID string, p poa.PoA) (protocol.SubmitPoAResponse, error) {
	return d.SubmitMACPoACtx(context.Background(), sessionID, p)
}

// SubmitMACPoACtx is SubmitMACPoA under a caller context.
func (d *Drone) SubmitMACPoACtx(ctx context.Context, sessionID string, p poa.PoA) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	m, err := d.modesAPICtx(ctx)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	ct, err := d.EncryptPoA(p)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	resp, err := m.SubmitMACPoA(protocol.SubmitMACPoARequest{
		DroneID: d.id, SessionID: sessionID, EncryptedPoA: ct,
	})
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("submit mac PoA: %w", err)
	}
	return resp, nil
}
