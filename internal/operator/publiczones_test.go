package operator

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/auditor"
	"repro/internal/geo"
)

func TestFetchPublicZones(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(60))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 500), R: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Zones().Register("bob", geo.GeoCircle{Center: urbana.Offset(0, 50000), R: 100}); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()
	client := NewHTTPAuditor(hs.URL, hs.Client())

	zones, err := client.FetchPublicZones(urbana, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("zones near urbana = %d, want 1", len(zones))
	}

	// Bad query parameters surface as HTTP errors.
	resp, err := hs.Client().Get(hs.URL + "/v1/zones?lat=abc&lon=0&radiusMeters=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad lat status = %d", resp.StatusCode)
	}
	resp, err = hs.Client().Get(hs.URL + "/v1/zones?lat=91&lon=0&radiusMeters=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range lat status = %d", resp.StatusCode)
	}

	// POST is rejected on the public GET endpoint.
	resp, err = hs.Client().Post(hs.URL+"/v1/zones", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}
