package operator

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// echoWireServer is a minimal in-test auditor wire endpoint: it speaks
// the handshake and acks every submission as compliant, so client-side
// batching and reconnect behaviour can be observed without a full
// Server (which would make this an import cycle anyway).
type echoWireServer struct {
	lis net.Listener
}

func startEchoWire(t *testing.T) *echoWireServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoWireServer{lis: lis}
	go s.serve()
	t.Cleanup(func() { lis.Close() })
	return s
}

func (s *echoWireServer) serve() {
	for {
		c, err := s.lis.Accept()
		if err != nil {
			return
		}
		go s.handle(c)
	}
}

func (s *echoWireServer) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	if _, data, err := wire.ReadFrame(br, wire.MaxMessageBytes); err != nil {
		return
	} else if typ, _, terr := wire.SplitType(data); terr != nil || typ != wire.TypeHello {
		return
	}
	if _, err := c.Write(wire.EncodeHelloAck(nil, wire.HelloAck{Version: wire.Version1})); err != nil {
		return
	}
	for {
		_, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
		if err != nil {
			return
		}
		typ, body, err := wire.SplitType(data)
		if err != nil || typ != wire.TypeSubmit {
			return
		}
		sub, err := wire.DecodeSubmit(body)
		if err != nil {
			return
		}
		acks, err := wire.EncodeAcks(nil, []wire.Ack{{Seq: sub.Seq, Status: wire.StatusCompliant}})
		if err != nil {
			return
		}
		if _, err := c.Write(acks); err != nil {
			return
		}
	}
}

// TestWireClientBatchesSubmissions pins the batching contract: with the
// flush timer effectively disabled, BatchSize concurrent submissions
// share exactly one network flush.
func TestWireClientBatchesSubmissions(t *testing.T) {
	s := startEchoWire(t)
	reg := obs.NewRegistry(nil)
	c := NewWireClient(s.lis.Addr().String(), WireClientOptions{
		BatchSize:     3,
		FlushInterval: time.Hour, // only the size threshold may flush
		Metrics:       reg,
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte{byte(i)}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if got := reg.Counter(MetricWireClientFlushesTotal).Value(); got != 1 {
		t.Errorf("flushes = %d, want 1 (three submissions coalesced)", got)
	}
	if got := reg.Counter(MetricWireClientSubmitsTotal).Value(); got != 3 {
		t.Errorf("submits = %d, want 3", got)
	}
}

// TestWireClientTimerFlush: a lone submission below BatchSize still
// completes once FlushInterval elapses.
func TestWireClientTimerFlush(t *testing.T) {
	s := startEchoWire(t)
	reg := obs.NewRegistry(nil)
	c := NewWireClient(s.lis.Addr().String(), WireClientOptions{
		BatchSize:     100, // never reached
		FlushInterval: time.Millisecond,
		Metrics:       reg,
	})
	defer c.Close()

	resp, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("verdict = %v", resp.Verdict)
	}
	if got := reg.Counter(MetricWireClientFlushesTotal).Value(); got != 1 {
		t.Errorf("flushes = %d, want 1 (timer-driven)", got)
	}
}

// TestWireClientRedialsAfterConnLoss drops the connection under the
// client and checks the next submission transparently redials.
func TestWireClientRedialsAfterConnLoss(t *testing.T) {
	s := startEchoWire(t)
	reg := obs.NewRegistry(nil)
	c := NewWireClient(s.lis.Addr().String(), WireClientOptions{
		BatchSize:     1, // flush immediately
		FlushInterval: time.Millisecond,
		Metrics:       reg,
	})
	defer c.Close()

	if _, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte{1}}); err != nil {
		t.Fatal(err)
	}

	// Kill the transport out from under the client.
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		t.Fatal("no live connection after a successful submission")
	}
	conn.Close()

	// The next submission may race the close notification; a lost-conn
	// error is acceptable once, after which the redial must succeed.
	if _, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte{2}}); err != nil {
		if _, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte{3}}); err != nil {
			t.Fatalf("submission after reconnect: %v", err)
		}
	}
	if got := reg.Counter(MetricWireClientDialsTotal).Value(); got != 2 {
		t.Errorf("dials = %d, want 2 (initial + redial)", got)
	}
}
