package operator

// WireClient speaks the binary drone→auditor transport (DESIGN.md §10):
// one persistent connection, client-side batching (buffer N proofs or
// T ms, flush as one frame sequence in a single write), pipelined
// submissions correlated by sequence number, and typed overload acks —
// the binary equivalent of HTTP 429 + Retry-After — honoured through the
// same RetryPolicy shape the HTTP client uses.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// Metric names exported by the binary wire client.
const (
	// MetricWireClientSubmitsTotal counts submissions issued over the
	// binary transport.
	MetricWireClientSubmitsTotal = "alidrone_client_wire_submits_total"
	// MetricWireClientFlushesTotal counts batch flushes (network writes).
	// flushes/submits is the achieved batching factor.
	MetricWireClientFlushesTotal = "alidrone_client_wire_flushes_total"
	// MetricWireClientRetriesTotal counts submissions re-sent after a
	// typed overload ack.
	MetricWireClientRetriesTotal = "alidrone_client_wire_retries_total"
	// MetricWireClientDialsTotal counts connection (re)establishments.
	MetricWireClientDialsTotal = "alidrone_client_wire_dials_total"
)

// ErrWireConnLost reports that the transport connection failed while
// submissions were awaiting their acks. The auditor may or may not have
// verified them; resubmitting risks a replay verdict, so the choice is
// the caller's.
var ErrWireConnLost = errors.New("operator: wire connection lost")

// WireClientOptions configures batching and retry behaviour.
type WireClientOptions struct {
	// BatchSize flushes the submit buffer when this many submissions are
	// queued. Default 16.
	BatchSize int
	// FlushInterval flushes a non-empty buffer after this long even if
	// BatchSize was not reached. Default 2ms.
	FlushInterval time.Duration
	// Retry controls re-submission after a typed overload ack, honouring
	// max(backoff, server hint) like the HTTP client does for
	// 429/Retry-After. The zero value surfaces the overload error.
	Retry RetryPolicy
	// DialTimeout bounds connection establishment. Default 10s.
	DialTimeout time.Duration
	// RedialBackoff is the initial wait after a failed (re)dial before
	// the next dial attempt; it doubles per consecutive failure up to
	// RedialMaxBackoff and resets on success. The applied wait is
	// jittered over [base/2, base) so a fleet of clients that lost the
	// same auditor does not redial in lockstep. Default 50ms.
	RedialBackoff time.Duration
	// RedialMaxBackoff caps the doubling. Default 5s.
	RedialMaxBackoff time.Duration
	// Metrics, when set, receives the client's wire series.
	Metrics *obs.Registry
}

// wireWaiter carries one pending submission's ack back to its caller.
type wireWaiter struct {
	ch chan wire.Ack
}

// WireClient is a batched, multiplexed binary-transport client. It is
// safe for concurrent use; concurrent submissions share flushes.
type WireClient struct {
	addr  string
	opts  WireClientOptions
	sleep func(time.Duration) // injectable for retry tests

	// Counters are resolved once at construction so the per-submission
	// path skips the registry's name lookup.
	submits, flushes, retries, dials *obs.Counter

	// Redial backoff state (guarded by mu). now and jitter are
	// injectable so tests pin the schedule without sleeping.
	now    func() time.Time
	jitter func() float64 // uniform [0,1)

	mu         sync.Mutex
	conn       net.Conn
	buf        []byte // encoded frames awaiting flush
	queued     int    // submissions in buf
	timer      *time.Timer
	seq        uint64
	pending    map[uint64]*wireWaiter
	closed     bool
	redialWait time.Duration // current (unjittered) backoff base
	nextDialAt time.Time     // dials before this instant fail fast
}

// ErrRedialBackoff reports a flush attempted while the client is backing
// off from a failed dial; the submission fails fast instead of hammering
// a dead (or restarting, not yet ready) auditor.
var ErrRedialBackoff = errors.New("operator: wire redial backing off")

// NewWireClient creates a client for the auditor's wire listener at
// addr. The connection is established lazily on the first flush and
// re-established transparently after a failure.
func NewWireClient(addr string, opts WireClientOptions) *WireClient {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 2 * time.Millisecond
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.RedialBackoff <= 0 {
		opts.RedialBackoff = 50 * time.Millisecond
	}
	if opts.RedialMaxBackoff <= 0 {
		opts.RedialMaxBackoff = 5 * time.Second
	}
	return &WireClient{
		addr:    addr,
		opts:    opts,
		sleep:   time.Sleep,
		now:     time.Now,
		jitter:  rand.Float64,
		submits: opts.Metrics.Counter(MetricWireClientSubmitsTotal),
		flushes: opts.Metrics.Counter(MetricWireClientFlushesTotal),
		retries: opts.Metrics.Counter(MetricWireClientRetriesTotal),
		dials:   opts.Metrics.Counter(MetricWireClientDialsTotal),
		pending: make(map[uint64]*wireWaiter),
	}
}

// Close tears down the connection and fails every pending submission.
func (c *WireClient) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.failLocked(ErrWireConnLost)
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// failLocked drops the connection state and delivers err-shaped acks to
// every waiter. Callers hold c.mu.
func (c *WireClient) failLocked(err error) {
	c.conn = nil
	c.buf = c.buf[:0]
	c.queued = 0
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	for seq, w := range c.pending {
		delete(c.pending, seq)
		w.ch <- wire.Ack{Seq: seq, Status: wire.StatusError, Reason: connLostReason(err)}
	}
}

// connLostReason marks an ack as transport-failure so the waiter can
// distinguish it from a server-sent error ack.
func connLostReason(err error) string { return "\x00connlost:" + err.Error() }

// noteDialFailureLocked arms (or doubles) the jittered redial backoff
// after a failed connection attempt. Callers hold c.mu.
func (c *WireClient) noteDialFailureLocked() {
	if c.redialWait == 0 {
		c.redialWait = c.opts.RedialBackoff
	} else {
		c.redialWait *= 2
		if c.redialWait > c.opts.RedialMaxBackoff {
			c.redialWait = c.opts.RedialMaxBackoff
		}
	}
	half := c.redialWait / 2
	c.nextDialAt = c.now().Add(half + time.Duration(c.jitter()*float64(half)))
}

// dialLocked establishes the connection and performs the Hello/HelloAck
// handshake. A failure arms the jittered redial backoff; until it
// expires further dial attempts fail fast with ErrRedialBackoff. Callers
// hold c.mu.
func (c *WireClient) dialLocked() error {
	if !c.nextDialAt.IsZero() && c.now().Before(c.nextDialAt) {
		return fmt.Errorf("wire dial %s: %w (next attempt in %v)",
			c.addr, ErrRedialBackoff, c.nextDialAt.Sub(c.now()).Round(time.Millisecond))
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		c.noteDialFailureLocked()
		return fmt.Errorf("wire dial %s: %w", c.addr, err)
	}
	c.dials.Inc()
	// A handshake failure is a failed dial too: the backoff must also
	// cover an auditor that accepts TCP but is not yet serving.
	handshaken := false
	defer func() {
		if handshaken {
			c.redialWait = 0
			c.nextDialAt = time.Time{}
		} else {
			c.noteDialFailureLocked()
		}
	}()
	if _, err := conn.Write(wire.EncodeHello(nil)); err != nil {
		conn.Close()
		return fmt.Errorf("wire hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	version, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
	if err != nil {
		conn.Close()
		return fmt.Errorf("wire handshake: %w", err)
	}
	typ, body, err := wire.SplitType(data)
	if err != nil || version != wire.Version1 {
		conn.Close()
		return fmt.Errorf("wire handshake: %w", wire.ErrUnknownVersion)
	}
	if typ == wire.TypeError {
		we, _ := wire.DecodeError(body)
		conn.Close()
		return fmt.Errorf("wire handshake rejected: %s", we.Message)
	}
	ack, err := wire.DecodeHelloAck(body)
	if err != nil || typ != wire.TypeHelloAck {
		conn.Close()
		return fmt.Errorf("wire handshake: unexpected reply type %#x", typ)
	}
	if ack.Version != wire.Version1 {
		conn.Close()
		return fmt.Errorf("%w: server speaks %d", wire.ErrUnknownVersion, ack.Version)
	}
	handshaken = true
	c.conn = conn
	go c.readLoop(conn, br)
	return nil
}

// readLoop dispatches coalesced ack frames to their waiters until the
// connection dies, then fails whatever is still pending.
func (c *WireClient) readLoop(conn net.Conn, br *bufio.Reader) {
	for {
		version, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
		if err != nil {
			c.connFailed(conn, err)
			return
		}
		typ, body, serr := wire.SplitType(data)
		if serr != nil || version != wire.Version1 {
			c.connFailed(conn, wire.ErrBadMessage)
			return
		}
		switch typ {
		case wire.TypeAck:
			acks, err := wire.DecodeAcks(body)
			if err != nil {
				c.connFailed(conn, err)
				return
			}
			c.mu.Lock()
			for _, a := range acks {
				if w, ok := c.pending[a.Seq]; ok {
					delete(c.pending, a.Seq)
					w.ch <- a
				}
			}
			c.mu.Unlock()
		case wire.TypeError:
			we, _ := wire.DecodeError(body)
			c.connFailed(conn, fmt.Errorf("auditor wire: %s", we.Message))
			return
		default:
			// RegisterAck and future types are not in the submit path;
			// ignore them here.
		}
	}
}

// connFailed tears down conn if it is still the active connection.
func (c *WireClient) connFailed(conn net.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		c.failLocked(err)
	}
	c.mu.Unlock()
}

// flushLocked dials if needed and writes the buffered frame sequence in
// one Write. Callers hold c.mu.
func (c *WireClient) flushLocked() {
	if c.queued == 0 {
		return
	}
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.conn == nil {
		if err := c.dialLocked(); err != nil {
			c.failLocked(err)
			return
		}
	}
	c.flushes.Inc()
	conn := c.conn
	buf := c.buf
	c.buf = nil // readLoop acks may interleave; give the flush its buffer
	c.queued = 0
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		if c.conn == conn {
			c.failLocked(err)
		}
		return
	}
	if cap(c.buf) == 0 {
		c.buf = buf[:0] // reuse the flushed buffer for the next batch
	}
}

// SubmitPoA submits one PoA over the wire transport, blocking until its
// ack arrives. Equivalent semantics to HTTPAuditor.SubmitPoA: a
// violation verdict is a response, not an error; an overload ack
// surfaces as *protocol.OverloadedError (after the retry budget, if
// any).
func (c *WireClient) SubmitPoA(req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	return c.SubmitPoACtx(context.Background(), req)
}

// SubmitPoACtx is SubmitPoA under a caller context.
func (c *WireClient) SubmitPoACtx(ctx context.Context, req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	return c.submitWire(ctx, req.DroneID, req.EncryptedPoA, false)
}

// SubmitCommitPoA submits one commit-mode envelope over the wire
// transport (a TypeSubmitCommit frame, batched and acked exactly like a
// regular submission).
func (c *WireClient) SubmitCommitPoA(req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	return c.SubmitCommitPoACtx(context.Background(), req)
}

// SubmitCommitPoACtx is SubmitCommitPoA under a caller context.
func (c *WireClient) SubmitCommitPoACtx(ctx context.Context, req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	return c.submitWire(ctx, req.DroneID, req.EncryptedEnvelope, true)
}

// submitWire runs the shared submit/ack/retry loop for both submission
// frame types.
func (c *WireClient) submitWire(ctx context.Context, droneID string, ciphertext []byte, commit bool) (protocol.SubmitPoAResponse, error) {
	backoff := c.opts.Retry.Backoff
	for attempt := 0; ; attempt++ {
		c.submits.Inc()
		ack, err := c.submitOnce(ctx, droneID, ciphertext, commit)
		if err != nil {
			return protocol.SubmitPoAResponse{}, err
		}
		switch ack.Status {
		case wire.StatusCompliant:
			return protocol.SubmitPoAResponse{
				Verdict:           protocol.VerdictCompliant,
				Reason:            ack.Reason,
				InsufficientPairs: int(ack.InsufficientPairs),
			}, nil
		case wire.StatusViolation:
			return protocol.SubmitPoAResponse{
				Verdict:           protocol.VerdictViolation,
				Reason:            ack.Reason,
				InsufficientPairs: int(ack.InsufficientPairs),
			}, nil
		case wire.StatusOverloaded:
			over := &protocol.OverloadedError{RetryAfter: time.Duration(ack.RetryAfterMS) * time.Millisecond}
			if attempt >= c.opts.Retry.Max {
				return protocol.SubmitPoAResponse{}, over
			}
			// Honour the server's hint over a shorter local backoff, as
			// the HTTP client does for Retry-After.
			wait := max(backoff, over.RetryAfter)
			if wait > 0 {
				if serr := c.sleepCtx(ctx, wait); serr != nil {
					return protocol.SubmitPoAResponse{}, serr
				}
				if backoff > 0 {
					backoff *= 2
				}
			}
			c.retries.Inc()
		default:
			return protocol.SubmitPoAResponse{}, wireAckError(ack)
		}
	}
}

// submitOnce enqueues the submission into the current batch and waits
// for its ack.
func (c *WireClient) submitOnce(ctx context.Context, droneID string, ciphertext []byte, commit bool) (wire.Ack, error) {
	w := &wireWaiter{ch: make(chan wire.Ack, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Ack{}, ErrWireConnLost
	}
	c.seq++
	seq := c.seq
	c.pending[seq] = w
	s := wire.Submit{Seq: seq, DroneID: droneID, Ciphertext: ciphertext}
	if commit {
		c.buf = wire.EncodeSubmitCommit(c.buf, s)
	} else {
		c.buf = wire.EncodeSubmit(c.buf, s)
	}
	c.queued++
	if c.queued >= c.opts.BatchSize {
		c.flushLocked()
	} else if c.timer == nil {
		c.timer = time.AfterFunc(c.opts.FlushInterval, func() {
			c.mu.Lock()
			c.timer = nil
			c.flushLocked()
			c.mu.Unlock()
		})
	}
	c.mu.Unlock()

	select {
	case ack := <-w.ch:
		return ack, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return wire.Ack{}, ctx.Err()
	}
}

// wireAckError converts an error-status ack into the error the caller
// sees, unwrapping transport failures to ErrWireConnLost.
func wireAckError(ack wire.Ack) error {
	const marker = "\x00connlost:"
	if len(ack.Reason) > len(marker) && ack.Reason[:len(marker)] == marker {
		return fmt.Errorf("%w: %s", ErrWireConnLost, ack.Reason[len(marker):])
	}
	return fmt.Errorf("auditor wire submit: %s", ack.Reason)
}

// SetSleep replaces the retry backoff sleeper. Tests inject a recorder
// to assert on Retry-After hints without sleeping for real.
func (c *WireClient) SetSleep(fn func(time.Duration)) { c.sleep = fn }

// sleepCtx waits for d or ctx cancellation (mirrors HTTPAuditor).
func (c *WireClient) sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		c.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RegisterDrone performs a binary registration over its own short-lived
// connection (registration happens once, before any submission traffic,
// so it does not share the batched submit channel).
func (c *WireClient) RegisterDrone(req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	var resp protocol.RegisterDroneResponse
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return resp, fmt.Errorf("wire dial %s: %w", c.addr, err)
	}
	defer conn.Close()

	frames := wire.EncodeHello(nil)
	frames, err = wire.EncodeRegister(frames, wire.Register{
		OperatorPub: req.OperatorPub,
		TEEPub:      req.TEEPub,
		Suite:       req.Suite,
		Disclosure:  req.Disclosure,
	})
	if err != nil {
		return resp, fmt.Errorf("encode register: %w", err)
	}
	if _, err := conn.Write(frames); err != nil {
		return resp, fmt.Errorf("wire register: %w", err)
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	for {
		version, data, err := wire.ReadFrame(br, wire.MaxMessageBytes)
		if err != nil {
			return resp, fmt.Errorf("wire register reply: %w", err)
		}
		typ, body, serr := wire.SplitType(data)
		if serr != nil || version != wire.Version1 {
			return resp, fmt.Errorf("wire register reply: %w", wire.ErrBadMessage)
		}
		switch typ {
		case wire.TypeHelloAck:
			continue
		case wire.TypeRegisterAck:
			ra, err := wire.DecodeRegisterAck(body)
			if err != nil {
				return resp, err
			}
			resp.DroneID = ra.DroneID
			return resp, nil
		case wire.TypeError:
			we, _ := wire.DecodeError(body)
			return resp, fmt.Errorf("auditor wire: %s", we.Message)
		default:
			return resp, fmt.Errorf("wire register reply: unexpected type %#x", typ)
		}
	}
}

// WireAuditor is a protocol.API implementation that sends PoA
// submissions over the binary transport and everything else over HTTP.
// The split matches the traffic shape: submissions are the hot,
// per-sample-rate path; registration, zone queries and mode endpoints
// are occasional.
type WireAuditor struct {
	*HTTPAuditor
	wc  *WireClient
	ctx context.Context // bound call context (nil = Background)
}

var (
	_ protocol.API           = (*WireAuditor)(nil)
	_ protocol.ContextBinder = (*WireAuditor)(nil)
)

// NewWireAuditor wraps an HTTP client with a binary submit channel to
// the auditor's wire listener at addr.
func NewWireAuditor(h *HTTPAuditor, addr string, opts WireClientOptions) *WireAuditor {
	return &WireAuditor{HTTPAuditor: h, wc: NewWireClient(addr, opts)}
}

// Wire exposes the underlying wire client (for Close and direct use).
func (w *WireAuditor) Wire() *WireClient { return w.wc }

// Close tears down the wire connection.
func (w *WireAuditor) Close() error { return w.wc.Close() }

// SubmitPoA routes submissions over the binary transport.
func (w *WireAuditor) SubmitPoA(req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	ctx := w.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return w.wc.SubmitPoACtx(ctx, req)
}

// SubmitCommitPoA routes commit-mode submissions over the binary
// transport (the other disclosure endpoints stay on HTTP: sealed
// payloads are as large as full ones, and reveals are rare).
func (w *WireAuditor) SubmitCommitPoA(req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	ctx := w.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return w.wc.SubmitCommitPoACtx(ctx, req)
}

// BindContext implements protocol.ContextBinder. It must be overridden
// here — the promoted HTTPAuditor method would return the bare HTTP
// client and silently drop the wire path.
func (w *WireAuditor) BindContext(ctx context.Context) protocol.API {
	return &WireAuditor{HTTPAuditor: w.HTTPAuditor.WithContext(ctx), wc: w.wc, ctx: ctx}
}
