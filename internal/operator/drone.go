// Package operator implements the drone-side AliDrone client: the Adapter
// daemon that registers the drone, queries the Auditor for no-fly zones
// before flight, runs the (adaptive or fixed-rate) PoA sampler against the
// TEE during flight, encrypts the resulting Proof-of-Alibi with the
// Auditor's public key, persists it locally, and submits it after landing.
package operator

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/zone"
)

var (
	// ErrNotRegistered is returned when flying or submitting before
	// Register succeeded.
	ErrNotRegistered = errors.New("operator: drone not registered with the auditor")
)

// Drone is one AliDrone-equipped aircraft: the TrustZone device plus the
// operator keypair D = (D+, D-) and the client-side protocol state.
type Drone struct {
	dev        *tee.Device
	clock      *tee.SimClock
	opKey      *rsa.PrivateKey // D-
	api        protocol.API
	auditorPub *rsa.PublicKey // Auditor's PoA-encryption key
	random     io.Reader
	metrics    *obs.Registry
	tracer     *otrace.Tracer

	id string // issued by the Auditor at registration
	// disclosure is the disclosure mode negotiated at registration
	// (empty means full). Set with SetDisclosure before Register.
	disclosure string
	// secrets is the client-retained disclosure material of the most
	// recent sealed/commit flight — what answers a selective-disclosure
	// challenge.
	secrets *DisclosureSecrets
	// lastRotate is the flight-clock instant of the last key rotation
	// (registration counts as epoch 0's start); RunMission compares it
	// against MissionConfig.RotateEvery.
	lastRotate time.Time
}

// NewDrone assembles a drone client. The device must already have the GPS
// Sampler TA installed. random defaults to crypto/rand.Reader.
func NewDrone(api protocol.API, auditorPub *rsa.PublicKey, dev *tee.Device, clock *tee.SimClock, operatorKeyBits int, random io.Reader) (*Drone, error) {
	if random == nil {
		random = rand.Reader
	}
	opKey, err := sigcrypto.GenerateKeyPair(random, operatorKeyBits)
	if err != nil {
		return nil, fmt.Errorf("operator keypair: %w", err)
	}
	return &Drone{
		dev:        dev,
		clock:      clock,
		opKey:      opKey,
		api:        api,
		auditorPub: auditorPub,
		random:     random,
	}, nil
}

// ID returns the drone identifier issued at registration (empty before).
func (d *Drone) ID() string { return d.id }

// Device exposes the TrustZone device (for performance counters).
func (d *Drone) Device() *tee.Device { return d.dev }

// SetMetrics attaches a metrics registry to the drone stack: the samplers
// and the TEE device all report into it. Call before flying; if the API
// client is an HTTPAuditor, attach the registry there separately.
func (d *Drone) SetMetrics(reg *obs.Registry) {
	d.metrics = reg
	d.dev.SetMetrics(reg)
}

// Metrics returns the drone registry (nil when disabled).
func (d *Drone) Metrics() *obs.Registry { return d.metrics }

// SetTracer attaches a tracer: each mission then runs under a
// "drone.proof" root span whose identity propagates through the API
// client to the auditor. If the API client is an HTTPAuditor, attach the
// tracer there separately (SetTracer on the client) for per-call
// http.client spans.
func (d *Drone) SetTracer(tr *otrace.Tracer) { d.tracer = tr }

// Tracer returns the drone tracer (nil when disabled).
func (d *Drone) Tracer() *otrace.Tracer { return d.tracer }

// apiFor resolves the API to call under ctx (trace propagation and
// cancellation when the transport supports context binding).
func (d *Drone) apiFor(ctx context.Context) protocol.API {
	return protocol.BindContext(ctx, d.api)
}

// SetDisclosure selects the disclosure mode announced at registration:
// poa.DisclosureFull (or empty), poa.DisclosureSealed, or
// poa.DisclosureCommit. Call before Register — the mode is negotiated
// there, like the signature suite.
func (d *Drone) SetDisclosure(mode string) error {
	m, err := poa.NormalizeDisclosure(mode)
	if err != nil {
		return err
	}
	d.disclosure = m
	return nil
}

// Disclosure returns the negotiated disclosure mode (full when unset).
func (d *Drone) Disclosure() string {
	if d.disclosure == "" {
		return poa.DisclosureFull
	}
	return d.disclosure
}

// Register performs protocol task 0: export T+ from the TEE, send it with
// D+ to the Auditor, and adopt the issued id_drone.
func (d *Drone) Register() error {
	teePubBytes, err := d.dev.Invoke(tee.GPSSamplerUUID, tee.CmdGetPublicKey, nil)
	if err != nil {
		return fmt.Errorf("export TEE key: %w", err)
	}
	opPub, err := sigcrypto.MarshalPublicKey(&d.opKey.PublicKey)
	if err != nil {
		return fmt.Errorf("marshal operator key: %w", err)
	}
	resp, err := d.api.RegisterDrone(protocol.RegisterDroneRequest{
		OperatorPub: opPub,
		TEEPub:      string(teePubBytes),
		Suite:       d.dev.Vault().SuiteID(),
		Disclosure:  d.disclosure,
	})
	if err != nil {
		return fmt.Errorf("register drone: %w", err)
	}
	d.id = resp.DroneID
	d.lastRotate = d.clock.Now()
	return nil
}

// RotateKey rotates the TEE sign key: the TA generates a successor under
// the same suite, signs the handover record with the outgoing key, and
// the drone announces it to the Auditor, which then accepts the new epoch
// and starts the old key's acceptance window. The Auditor transport must
// implement protocol.RotationAPI.
func (d *Drone) RotateKey() error {
	if d.id == "" {
		return ErrNotRegistered
	}
	rot, ok := d.api.(protocol.RotationAPI)
	if !ok {
		return fmt.Errorf("operator: auditor transport %T does not support key rotation", d.api)
	}
	raw, err := d.dev.Invoke(tee.GPSSamplerUUID, tee.CmdRotateKey, []byte(d.id))
	if err != nil {
		return fmt.Errorf("tee key rotation: %w", err)
	}
	var h sigcrypto.Handover
	if err := json.Unmarshal(raw, &h); err != nil {
		return fmt.Errorf("decode handover: %w", err)
	}
	resp, err := rot.RotateKey(protocol.RotateKeyRequest{DroneID: d.id, Handover: h})
	if err != nil {
		return fmt.Errorf("announce key rotation: %w", err)
	}
	if resp.Epoch != h.NewEpoch {
		return fmt.Errorf("operator: auditor acknowledged epoch %d, expected %d", resp.Epoch, h.NewEpoch)
	}
	d.lastRotate = d.clock.Now()
	return nil
}

// QueryZones performs protocol tasks 2-3 for a navigation area.
func (d *Drone) QueryZones(area geo.Rect) ([]zone.NFZ, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	nonce, err := protocol.NewNonce(d.random)
	if err != nil {
		return nil, err
	}
	req := protocol.ZoneQueryRequest{DroneID: d.id, Area: area, Nonce: nonce}
	if err := protocol.SignZoneQuery(&req, d.opKey); err != nil {
		return nil, err
	}
	resp, err := d.api.ZoneQuery(req)
	if err != nil {
		return nil, fmt.Errorf("zone query: %w", err)
	}
	return resp.Zones, nil
}

// FlyAdaptive runs the adaptive sampler over a flight (the production
// configuration).
func (d *Drone) FlyAdaptive(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (*sampling.RunResult, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	a := &sampling.Adaptive{
		Env:     sampling.NewTEEEnv(d.dev, d.clock, rx),
		Index:   zone.NewIndex(zones, 0),
		VMaxMS:  geo.MaxDroneSpeedMPS,
		Metrics: d.metrics,
	}
	res, err := a.Run(until)
	if err != nil {
		return nil, fmt.Errorf("adaptive flight: %w", err)
	}
	return res, nil
}

// FlyFixedRate runs the fixed-rate baseline sampler over a flight.
func (d *Drone) FlyFixedRate(rx *gps.Receiver, rateHz float64, until time.Time) (*sampling.RunResult, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	f := &sampling.FixedRate{
		Env:     sampling.NewTEEEnv(d.dev, d.clock, rx),
		RateHz:  rateHz,
		Metrics: d.metrics,
	}
	res, err := f.Run(until)
	if err != nil {
		return nil, fmt.Errorf("fixed-rate flight: %w", err)
	}
	return res, nil
}

// EncryptPoA serialises and encrypts a Proof-of-Alibi to the Auditor, the
// form the Adapter persists locally and later submits.
func (d *Drone) EncryptPoA(p poa.PoA) ([]byte, error) {
	plaintext, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("marshal PoA: %w", err)
	}
	ct, err := sigcrypto.Encrypt(d.random, d.auditorPub, plaintext)
	if err != nil {
		return nil, fmt.Errorf("encrypt PoA: %w", err)
	}
	return ct, nil
}

// Submit performs protocol task 4 with an already-encrypted PoA.
func (d *Drone) Submit(encryptedPoA []byte) (protocol.SubmitPoAResponse, error) {
	return d.SubmitCtx(context.Background(), encryptedPoA)
}

// SubmitCtx is Submit under a caller context: the submission call carries
// the context's trace span across the wire.
func (d *Drone) SubmitCtx(ctx context.Context, encryptedPoA []byte) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	resp, err := d.apiFor(ctx).SubmitPoA(protocol.SubmitPoARequest{
		DroneID:      d.id,
		EncryptedPoA: encryptedPoA,
	})
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("submit PoA: %w", err)
	}
	return resp, nil
}

// SubmitPoA encrypts and submits in one step.
func (d *Drone) SubmitPoA(p poa.PoA) (protocol.SubmitPoAResponse, error) {
	ct, err := d.EncryptPoA(p)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	return d.Submit(ct)
}
