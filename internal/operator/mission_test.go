package operator

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/planner"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// missionFixture registers a zone near the corridor and returns a ready
// stack + route.
func missionFixture(t *testing.T) (*stack, *trace.Route) {
	t.Helper()
	s := newInProcessStack(t)
	if _, err := s.srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 1000), R: 100}); err != nil {
		t.Fatal(err)
	}
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return s, route
}

func TestMissionModes(t *testing.T) {
	modes := []struct {
		name string
		cfg  MissionConfig
	}{
		{"adaptive", MissionConfig{Mode: ModeAdaptive}},
		{"default-is-adaptive", MissionConfig{}},
		{"fixed", MissionConfig{Mode: ModeFixedRate, FixedRateHz: 2}},
		{"batch", MissionConfig{Mode: ModeBatch}},
		{"mac", MissionConfig{Mode: ModeMAC}},
		{"streaming", MissionConfig{Mode: ModeStreaming}},
	}
	for _, tt := range modes {
		t.Run(tt.name, func(t *testing.T) {
			s, route := missionFixture(t)
			rx := s.withReceiver(t, route, 5)
			if err := s.drone.Register(); err != nil {
				t.Fatal(err)
			}
			rep, err := s.drone.RunMission(rx, route, tt.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict.Verdict != protocol.VerdictCompliant {
				t.Fatalf("verdict = %v (%s)", rep.Verdict.Verdict, rep.Verdict.Reason)
			}
			if len(rep.Zones) != 1 {
				t.Errorf("mission saw %d zones, want 1", len(rep.Zones))
			}
			if rep.Run == nil || rep.Run.PoA.Len() < 1 {
				t.Error("mission recorded no samples")
			}
		})
	}
}

func TestMissionWithStore(t *testing.T) {
	s, route := missionFixture(t)
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.drone.RunMission(rx, route, MissionConfig{
		Mode: ModeAdaptive, Store: store, FlightID: "f-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlightID != "f-1" {
		t.Errorf("flight id = %q", rep.FlightID)
	}
	rec, err := store.Load("f-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Submitted {
		t.Error("record not marked submitted")
	}
	if len(rec.EncryptedPoA) == 0 {
		t.Error("record holds no ciphertext")
	}
}

func TestMissionValidation(t *testing.T) {
	s, route := missionFixture(t)
	rx := s.withReceiver(t, route, 5)

	if _, err := s.drone.RunMission(rx, route, MissionConfig{}); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unregistered err = %v", err)
	}
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.drone.RunMission(rx, route, MissionConfig{Mode: ModeFixedRate}); err == nil {
		t.Error("fixed mode without rate accepted")
	}
	if _, err := s.drone.RunMission(rx, route, MissionConfig{Mode: SamplingMode(99)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPlanCompliantRoute(t *testing.T) {
	s := newInProcessStack(t)
	goal := urbana.Offset(90, 3000)
	// A zone dead on the straight line.
	if _, err := s.srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(90, 1500), R: 300}); err != nil {
		t.Fatal(err)
	}
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	planned, zones, err := s.drone.PlanCompliantRoute(urbana, goal, t0, 15, planner.Config{ClearanceMeters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Errorf("corridor zones = %d, want 1", len(zones))
	}
	// The planned route detours: longer than straight, avoids the zone.
	if planned.LengthMeters() <= geo.HaversineMeters(urbana, goal) {
		t.Error("planned route not longer than blocked straight line")
	}
	z := zones[0].Circle
	for dt := time.Duration(0); dt <= planned.Duration(); dt += time.Second {
		if z.ContainsLatLon(planned.Position(t0.Add(dt)).Pos) {
			t.Fatalf("planned route enters the zone at %v", dt)
		}
	}
}
