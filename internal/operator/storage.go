package operator

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrNoSuchFlight is returned when loading an unknown flight record.
var ErrNoSuchFlight = errors.New("operator: no such flight record")

// FlightRecord is one persisted Proof-of-Alibi: the paper's Adapter
// "persists the ciphertext along with the signature in the local storage"
// during flight and submits after landing.
type FlightRecord struct {
	FlightID     string    `json:"flightId"`
	DroneID      string    `json:"droneId"`
	Start        time.Time `json:"start"`
	End          time.Time `json:"end"`
	EncryptedPoA []byte    `json:"encryptedPoA"`
	Submitted    bool      `json:"submitted"`
}

// Store persists flight records as one JSON file per flight under a
// directory. Safe for concurrent use within one process.
type Store struct {
	dir string
	mu  sync.Mutex
}

// NewStore opens (creating if needed) a flight-record directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (s *Store) path(flightID string) string {
	return filepath.Join(s.dir, flightID+".json")
}

// Save writes or overwrites a flight record.
func (s *Store) Save(rec FlightRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal flight record: %w", err)
	}
	tmp := s.path(rec.FlightID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("write flight record: %w", err)
	}
	if err := os.Rename(tmp, s.path(rec.FlightID)); err != nil {
		return fmt.Errorf("commit flight record: %w", err)
	}
	return nil
}

// Load reads one flight record.
func (s *Store) Load(flightID string) (FlightRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path(flightID))
	if errors.Is(err, os.ErrNotExist) {
		return FlightRecord{}, fmt.Errorf("%w: %q", ErrNoSuchFlight, flightID)
	}
	if err != nil {
		return FlightRecord{}, fmt.Errorf("read flight record: %w", err)
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return FlightRecord{}, fmt.Errorf("decode flight record: %w", err)
	}
	return rec, nil
}

// List returns the IDs of all stored flights, sorted by filename.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("list store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".json" {
			out = append(out, name[:len(name)-len(".json")])
		}
	}
	return out, nil
}

// Pending returns flights not yet submitted to the Auditor.
func (s *Store) Pending() ([]FlightRecord, error) {
	ids, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []FlightRecord
	for _, id := range ids {
		rec, err := s.Load(id)
		if err != nil {
			return nil, err
		}
		if !rec.Submitted {
			out = append(out, rec)
		}
	}
	return out, nil
}
