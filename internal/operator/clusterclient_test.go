package operator

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/protocol"
)

// fakeNode is a scripted cluster node: it serves /cluster/map, /readyz
// and the submit door from canned behaviour so client routing is
// observable without a real auditor.
type fakeNode struct {
	t        *testing.T
	name     string
	ready    atomic.Bool
	mapJSON  atomic.Pointer[[]byte]
	submits  atomic.Int64
	onSubmit func(w http.ResponseWriter, droneID string)
	srv      *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	n := &fakeNode{t: t, name: name}
	n.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(protocol.PathReadyz, func(w http.ResponseWriter, r *http.Request) {
		if !n.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(protocol.PathClusterMap, func(w http.ResponseWriter, r *http.Request) {
		if js := n.mapJSON.Load(); js != nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(*js)
			return
		}
		http.Error(w, "no map", http.StatusInternalServerError)
	})
	mux.HandleFunc(protocol.PathSubmitPoA, func(w http.ResponseWriter, r *http.Request) {
		n.submits.Add(1)
		var req protocol.SubmitPoARequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.onSubmit(w, req.DroneID)
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// addr returns host:port (the cluster.Node form).
func (n *fakeNode) addr() string { return strings.TrimPrefix(n.srv.URL, "http://") }

func (n *fakeNode) setMap(m *cluster.Map) {
	js, err := json.Marshal(m)
	if err != nil {
		n.t.Fatal(err)
	}
	n.mapJSON.Store(&js)
}

func compliantJSON(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(protocol.SubmitPoAResponse{Verdict: protocol.VerdictCompliant})
}

// clusterPair builds two fake nodes publishing a shared map and returns
// them with the owner of droneID listed first.
func clusterPair(t *testing.T, droneID string) (owner, other *fakeNode) {
	a := newFakeNode(t, "a")
	b := newFakeNode(t, "b")
	m := cluster.NewMap(2, 0, []cluster.Node{
		{ID: "node-a", Addr: a.addr()},
		{ID: "node-b", Addr: b.addr()},
	})
	a.setMap(m)
	b.setMap(m)
	own, ok := m.Owner(droneID)
	if !ok {
		t.Fatal("no owner")
	}
	if own.ID == "node-a" {
		return a, b
	}
	return b, a
}

// TestClusterAuditorRoutesToOwner: with a fresh map the client sends the
// submission straight to the owning node — zero traffic anywhere else.
func TestClusterAuditorRoutesToOwner(t *testing.T) {
	const droneID = "drone-route-test"
	owner, other := clusterPair(t, droneID)
	owner.onSubmit = func(w http.ResponseWriter, id string) { compliantJSON(w) }
	other.onSubmit = func(w http.ResponseWriter, id string) {
		t.Errorf("submission reached non-owner node %s", other.name)
		compliantJSON(w)
	}

	c := NewClusterAuditor([]string{owner.srv.URL}, nil)
	resp, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if owner.submits.Load() != 1 || other.submits.Load() != 0 {
		t.Fatalf("submits owner=%d other=%d, want 1/0", owner.submits.Load(), other.submits.Load())
	}
}

// TestClusterAuditorStaleMapReroute: a client whose injected map names
// the wrong owner gets 421 back, refreshes, and lands the retry on the
// true owner — one extra round trip, no failure surfaced to the caller.
func TestClusterAuditorStaleMapReroute(t *testing.T) {
	const droneID = "drone-stale-map"
	owner, other := clusterPair(t, droneID)
	owner.onSubmit = func(w http.ResponseWriter, id string) { compliantJSON(w) }
	other.onSubmit = func(w http.ResponseWriter, id string) {
		// A cluster node that does not own the drone and cannot forward
		// answers 421 (single-hop guard).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "misrouted"})
	}

	c := NewClusterAuditor([]string{owner.srv.URL, other.srv.URL}, nil)
	// Stale map: only the non-owner exists, so the first attempt goes
	// there and is bounced.
	c.injectMap(cluster.NewMap(1, 0, []cluster.Node{{ID: "stale-node", Addr: other.addr()}}))

	resp, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID})
	if err != nil {
		t.Fatalf("stale-map submit: %v", err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if other.submits.Load() != 1 {
		t.Fatalf("non-owner saw %d submissions, want the 1 bounced attempt", other.submits.Load())
	}
	if owner.submits.Load() != 1 {
		t.Fatalf("owner saw %d submissions, want the 1 rerouted retry", owner.submits.Load())
	}
	if got := c.MapVersion(); got != 2 {
		t.Errorf("client map version after refresh = %d, want 2", got)
	}
}

// TestClusterAuditorSkipsNotReady: a non-ready owner is a redial target,
// not a routing destination — the client prefers a ready node and lets
// the cluster forward.
func TestClusterAuditorSkipsNotReady(t *testing.T) {
	const droneID = "drone-ready-test"
	owner, other := clusterPair(t, droneID)
	owner.ready.Store(false)
	owner.onSubmit = func(w http.ResponseWriter, id string) {
		t.Error("submission reached the non-ready owner")
		compliantJSON(w)
	}
	other.onSubmit = func(w http.ResponseWriter, id string) {
		// The ready non-owner forwards cluster-side and answers.
		compliantJSON(w)
	}

	c := NewClusterAuditor([]string{other.srv.URL}, nil)
	resp, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if other.submits.Load() != 1 || owner.submits.Load() != 0 {
		t.Fatalf("submits other=%d owner=%d, want 1/0", other.submits.Load(), owner.submits.Load())
	}
}

// TestClusterAuditorDeadNodeFailover: an owner dropping off the network
// entirely is caught by the readiness probe, and the call lands on the
// survivor without surfacing an error.
func TestClusterAuditorDeadNodeFailover(t *testing.T) {
	const droneID = "drone-dead-node"
	owner, other := clusterPair(t, droneID)
	owner.onSubmit = func(w http.ResponseWriter, id string) { compliantJSON(w) }
	other.onSubmit = func(w http.ResponseWriter, id string) { compliantJSON(w) }

	c := NewClusterAuditor([]string{owner.srv.URL, other.srv.URL}, nil)
	if err := c.RefreshMap(); err != nil {
		t.Fatal(err)
	}
	// The owner dies; the survivor publishes a map without it.
	owner.srv.Close()
	other.setMap(cluster.NewMap(3, 0, []cluster.Node{{ID: "node-b", Addr: other.addr()}}))

	resp, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: droneID})
	if err != nil {
		t.Fatalf("failover submit: %v", err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if other.submits.Load() != 1 {
		t.Fatalf("survivor saw %d submissions, want 1", other.submits.Load())
	}
}

func TestStatusErrorShape(t *testing.T) {
	err := error(&StatusError{Path: "/v1/submit", Code: 421, Msg: "misrouted"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusMisdirectedRequest {
		t.Fatal("StatusError lost its code through errors.As")
	}
	if want := "auditor /v1/submit: misrouted (HTTP 421)"; err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	if want := "auditor /v1/submit: HTTP 500"; (&StatusError{Path: "/v1/submit", Code: 500}).Error() != want {
		t.Errorf("bodyless Error() mismatch")
	}
}
