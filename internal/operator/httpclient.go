package operator

import (
	"bytes"
	"context"
	"crypto/rsa"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/zone"
)

// Metric names exported by the drone-side HTTP client.
const (
	// MetricClientRequestsTotal counts protocol calls per endpoint path
	// (one per logical call, not per retry attempt).
	MetricClientRequestsTotal = "alidrone_client_requests_total"
	// MetricClientRetriesTotal counts retry attempts per endpoint path.
	MetricClientRetriesTotal = "alidrone_client_retries_total"
	// MetricClientRequestSeconds is the per-endpoint latency histogram,
	// covering all attempts of a call including backoff.
	MetricClientRequestSeconds = "alidrone_client_request_seconds"
	// MetricRetryAttemptsTotal counts individual retry attempts per
	// endpoint path (same events as MetricClientRetriesTotal under the
	// retry-machinery name).
	MetricRetryAttemptsTotal = "alidrone_operator_retry_attempts_total"
	// MetricRetryExhaustedTotal counts calls that still failed after the
	// configured retry budget was spent.
	MetricRetryExhaustedTotal = "alidrone_operator_retry_exhausted_total"
)

// RetryPolicy controls the client's re-send behaviour on transport errors
// and gateway-style statuses (502/503/504). Backoff is the delay before
// the first retry and doubles on each subsequent one. The zero value
// disables retries.
//
// Note the submission endpoints are not strictly idempotent: a request
// the Auditor processed but whose response was lost resubmits a PoA the
// replay filter may then flag. The retry statuses are chosen so only
// responses produced *in front of* the Auditor (dead upstream, overload
// shedding) are retried.
type RetryPolicy struct {
	Max     int           // retries after the first attempt
	Backoff time.Duration // initial retry delay, doubling per retry
}

// HTTPAuditor is a protocol.API implementation that talks to a remote
// AliDrone Server over its HTTP transport.
type HTTPAuditor struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	metrics *obs.Registry
	tracer  *otrace.Tracer
	ctx     context.Context // bound call context (nil = Background)
	sleep   func(time.Duration)
}

var (
	_ protocol.API           = (*HTTPAuditor)(nil)
	_ protocol.ContextBinder = (*HTTPAuditor)(nil)
)

// NewHTTPAuditor creates a client for the auditor at baseURL (no trailing
// slash). client defaults to http.DefaultClient.
func NewHTTPAuditor(baseURL string, client *http.Client) *HTTPAuditor {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPAuditor{base: baseURL, hc: client, sleep: time.Sleep}
}

// SetRetryPolicy enables transparent retries. Call before issuing
// requests.
func (c *HTTPAuditor) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// SetMetrics attaches a metrics registry (nil disables, the default).
func (c *HTTPAuditor) SetMetrics(reg *obs.Registry) { c.metrics = reg }

// SetTracer attaches a tracer: every call then runs under an
// "http.client <path>" span and the request carries the traceparent
// header, so the auditor continues the drone's trace.
func (c *HTTPAuditor) SetTracer(tr *otrace.Tracer) { c.tracer = tr }

// WithContext returns a shallow copy of the client whose calls run under
// ctx: requests are cancellable, backoff sleeps abort on cancellation,
// and the context's trace span propagates into the wire header. The
// receiver is not modified.
func (c *HTTPAuditor) WithContext(ctx context.Context) *HTTPAuditor {
	d := *c
	d.ctx = ctx
	return &d
}

// BindContext implements protocol.ContextBinder.
func (c *HTTPAuditor) BindContext(ctx context.Context) protocol.API { return c.WithContext(ctx) }

// callCtx resolves the bound call context.
func (c *HTTPAuditor) callCtx() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// setSleep replaces the backoff sleeper; tests inject a recorder so
// retry timing is observable without real delays.
func (c *HTTPAuditor) setSleep(fn func(time.Duration)) { c.sleep = fn }

// retryableStatus reports whether a status indicates the request likely
// never reached the Auditor's handler. 429 qualifies: the admission
// controller shed the request before any verification stage judged it.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests
}

// retryAfter extracts the server's Retry-After hint (integral seconds) from
// a shed response; zero means no usable hint.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get(protocol.RetryAfterHeader))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits for d or for ctx cancellation, whichever first. A
// context that cannot be cancelled uses the injected sleeper directly
// (tests record backoff timing through it).
func (c *HTTPAuditor) sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		c.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do issues fn under the per-path metrics, the client span and the retry
// policy. fn must be repeatable (bodies are byte slices re-wrapped per
// attempt) and must issue its request under the given context.
func (c *HTTPAuditor) do(path string, fn func(ctx context.Context) (*http.Response, error)) (*http.Response, error) {
	reg := c.metrics
	reg.Counter(obs.L(MetricClientRequestsTotal, "path", path)).Inc()
	ctx, tsp := c.tracer.StartSpan(c.callCtx(), "http.client "+path)
	defer tsp.End()
	sp := reg.StartSpan(reg.Histogram(obs.L(MetricClientRequestSeconds, "path", path), obs.DurationBuckets))
	defer sp.End()

	backoff := c.retry.Backoff
	for attempt := 0; ; attempt++ {
		httpResp, err := fn(ctx)
		retryable := err != nil || retryableStatus(httpResp.StatusCode)
		if !retryable {
			tsp.SetError(err)
			tsp.SetInt("attempts", int64(attempt+1))
			return httpResp, err
		}
		if attempt >= c.retry.Max {
			if c.retry.Max > 0 {
				reg.Counter(obs.L(MetricRetryExhaustedTotal, "path", path)).Inc()
				tsp.Event("retries exhausted")
			}
			tsp.SetError(err)
			tsp.SetInt("attempts", int64(attempt+1))
			return httpResp, err
		}
		var hinted time.Duration
		if err == nil {
			hinted = retryAfter(httpResp)
			// Drain before closing: a body closed with bytes unread kills
			// the keep-alive connection, so every retry after a shed
			// response would pay a fresh TCP (and TLS) handshake.
			drainClose(httpResp.Body)
		}
		reg.Counter(obs.L(MetricClientRetriesTotal, "path", path)).Inc()
		reg.Counter(obs.L(MetricRetryAttemptsTotal, "path", path)).Inc()
		tsp.Event("retry")
		// A shed response's Retry-After hint overrides shorter local
		// backoff: the server knows how loaded it is better than the
		// client's doubling schedule does.
		wait := max(backoff, hinted)
		if wait > 0 {
			if serr := c.sleepCtx(ctx, wait); serr != nil {
				tsp.SetError(serr)
				return nil, serr
			}
			if backoff > 0 {
				backoff *= 2
			}
		}
	}
}

// newRequest builds one attempt's request under ctx, injecting the
// traceparent header when the context carries an active span.
func newRequest(ctx context.Context, method, url, contentType string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if h := otrace.HeaderFromContext(ctx); h != "" {
		req.Header.Set(protocol.HeaderTraceParent, h)
	}
	return req, nil
}

// encodeBufPool recycles request-encode and response-read buffers across
// calls, so the steady-state submit path allocates no fresh byte slices
// for transport framing (verified by BenchmarkSubmitPoAThroughput
// allocs/op).
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// StatusError is a non-200 response from the auditor: the status code
// plus the server's error body. Routing clients inspect Code — 421
// Misdirected Request means the node no longer owns the drone and the
// caller's cluster map is stale.
type StatusError struct {
	Path string // endpoint the call hit
	Code int    // HTTP status
	Msg  string // server error body, if any
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("auditor %s: %s (HTTP %d)", e.Path, e.Msg, e.Code)
	}
	return fmt.Sprintf("auditor %s: HTTP %d", e.Path, e.Code)
}

// drainClose reads a response body to EOF (bounded) before closing it.
// Go's HTTP transport only returns a connection to the keep-alive pool
// when the body was fully consumed; closing early forces a new
// connection for the next request. The bound keeps a misbehaving server
// from feeding us gigabytes just to save a dial.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	_ = body.Close()
}

// postJSON sends req to path and decodes the response into resp.
func (c *HTTPAuditor) postJSON(path string, req, resp any) error {
	ebuf := encodeBufPool.Get().(*bytes.Buffer)
	ebuf.Reset()
	defer encodeBufPool.Put(ebuf)
	if err := json.NewEncoder(ebuf).Encode(req); err != nil {
		return fmt.Errorf("marshal request: %w", err)
	}
	body := ebuf.Bytes()
	httpResp, err := c.do(path, func(ctx context.Context) (*http.Response, error) {
		hr, err := newRequest(ctx, http.MethodPost, c.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		return c.hc.Do(hr)
	})
	if err != nil {
		return fmt.Errorf("post %s: %w", path, err)
	}
	defer drainClose(httpResp.Body)

	rbuf := encodeBufPool.Get().(*bytes.Buffer)
	rbuf.Reset()
	defer encodeBufPool.Put(rbuf)
	if _, err := rbuf.ReadFrom(httpResp.Body); err != nil {
		return fmt.Errorf("read %s response: %w", path, err)
	}
	data := rbuf.Bytes()
	if httpResp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &eb)
		return &StatusError{Path: path, Code: httpResp.StatusCode, Msg: eb.Error}
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("decode %s response: %w", path, err)
	}
	return nil
}

// RegisterDrone implements protocol.API.
func (c *HTTPAuditor) RegisterDrone(req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	var resp protocol.RegisterDroneResponse
	err := c.postJSON(protocol.PathRegisterDrone, req, &resp)
	return resp, err
}

// RegisterZone implements protocol.API.
func (c *HTTPAuditor) RegisterZone(req protocol.RegisterZoneRequest) (protocol.RegisterZoneResponse, error) {
	var resp protocol.RegisterZoneResponse
	err := c.postJSON(protocol.PathRegisterZone, req, &resp)
	return resp, err
}

// ZoneQuery implements protocol.API.
func (c *HTTPAuditor) ZoneQuery(req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error) {
	var resp protocol.ZoneQueryResponse
	err := c.postJSON(protocol.PathZoneQuery, req, &resp)
	return resp, err
}

// SubmitPoA implements protocol.API.
func (c *HTTPAuditor) SubmitPoA(req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathSubmitPoA, req, &resp)
	return resp, err
}

var _ protocol.RotationAPI = (*HTTPAuditor)(nil)

// RotateKey implements protocol.RotationAPI.
func (c *HTTPAuditor) RotateKey(req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error) {
	var resp protocol.RotateKeyResponse
	err := c.postJSON(protocol.PathRotateKey, req, &resp)
	return resp, err
}

var _ protocol.ModesAPI = (*HTTPAuditor)(nil)

// SubmitBatchPoA implements protocol.ModesAPI.
func (c *HTTPAuditor) SubmitBatchPoA(req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathSubmitBatchPoA, req, &resp)
	return resp, err
}

// StartSession implements protocol.ModesAPI.
func (c *HTTPAuditor) StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error) {
	var resp protocol.StartSessionResponse
	err := c.postJSON(protocol.PathStartSession, req, &resp)
	return resp, err
}

// SubmitMACPoA implements protocol.ModesAPI.
func (c *HTTPAuditor) SubmitMACPoA(req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathSubmitMACPoA, req, &resp)
	return resp, err
}

var _ protocol.DisclosureAPI = (*HTTPAuditor)(nil)

// SubmitSealedPoA implements protocol.DisclosureAPI.
func (c *HTTPAuditor) SubmitSealedPoA(req protocol.SubmitSealedPoARequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathSubmitSealedPoA, req, &resp)
	return resp, err
}

// SubmitCommitPoA implements protocol.DisclosureAPI.
func (c *HTTPAuditor) SubmitCommitPoA(req protocol.SubmitCommitPoARequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathSubmitCommitPoA, req, &resp)
	return resp, err
}

// Reveal implements protocol.DisclosureAPI.
func (c *HTTPAuditor) Reveal(req protocol.RevealRequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathReveal, req, &resp)
	return resp, err
}

var _ protocol.StreamAPI = (*HTTPAuditor)(nil)

// OpenStream implements protocol.StreamAPI.
func (c *HTTPAuditor) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	var resp protocol.OpenStreamResponse
	err := c.postJSON(protocol.PathStreamOpen, req, &resp)
	return resp, err
}

// StreamSample implements protocol.StreamAPI.
func (c *HTTPAuditor) StreamSample(req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	var resp protocol.StreamSampleResponse
	err := c.postJSON(protocol.PathStreamSample, req, &resp)
	return resp, err
}

// CloseStream implements protocol.StreamAPI.
func (c *HTTPAuditor) CloseStream(req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathStreamClose, req, &resp)
	return resp, err
}

// Accuse files a Zone Owner incident report against a drone.
func (c *HTTPAuditor) Accuse(req protocol.AccusationRequest) (protocol.SubmitPoAResponse, error) {
	var resp protocol.SubmitPoAResponse
	err := c.postJSON(protocol.PathAccuse, req, &resp)
	return resp, err
}

// FetchPublicZones performs the unauthenticated B4UFLY-style lookup of
// no-fly zones within radiusMeters of a point.
func (c *HTTPAuditor) FetchPublicZones(center geo.LatLon, radiusMeters float64) ([]zone.NFZ, error) {
	url := fmt.Sprintf("%s%s?lat=%g&lon=%g&radiusMeters=%g",
		c.base, protocol.PathPublicZones, center.Lat, center.Lon, radiusMeters)
	httpResp, err := c.do(protocol.PathPublicZones, func(ctx context.Context) (*http.Response, error) {
		hr, err := newRequest(ctx, http.MethodGet, url, "", nil)
		if err != nil {
			return nil, err
		}
		return c.hc.Do(hr)
	})
	if err != nil {
		return nil, fmt.Errorf("fetch public zones: %w", err)
	}
	defer drainClose(httpResp.Body)
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch public zones: HTTP %d", httpResp.StatusCode)
	}
	var body protocol.ZoneQueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decode public zones: %w", err)
	}
	return body.Zones, nil
}

// FetchEncryptionPub retrieves the Auditor's PoA-encryption public key.
func (c *HTTPAuditor) FetchEncryptionPub() (*rsa.PublicKey, error) {
	httpResp, err := c.do(protocol.PathAuditorPub, func(ctx context.Context) (*http.Response, error) {
		hr, err := newRequest(ctx, http.MethodGet, c.base+protocol.PathAuditorPub, "", nil)
		if err != nil {
			return nil, err
		}
		return c.hc.Do(hr)
	})
	if err != nil {
		return nil, fmt.Errorf("fetch auditor pub: %w", err)
	}
	defer drainClose(httpResp.Body)
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch auditor pub: HTTP %d", httpResp.StatusCode)
	}
	var body struct {
		EncryptionPub string `json:"encryptionPub"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decode auditor pub: %w", err)
	}
	return sigcrypto.UnmarshalPublicKey(body.EncryptionPub)
}
