package operator

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/protocol"
)

func TestClientRetryCountersExported(t *testing.T) {
	fh := &flakyHandler{fails: 100, status: http.StatusBadGateway,
		ok: func(w http.ResponseWriter, r *http.Request) {}}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	reg := obs.NewRegistry(nil)
	c := NewHTTPAuditor(hs.URL, nil)
	c.SetRetryPolicy(RetryPolicy{Max: 2})
	c.SetMetrics(reg)
	c.setSleep(func(time.Duration) {})
	if _, err := c.RegisterDrone(protocol.RegisterDroneRequest{}); err == nil {
		t.Fatal("exhausted retries did not surface an error")
	}
	path := protocol.PathRegisterDrone
	if got := reg.Counter(obs.L(MetricRetryAttemptsTotal, "path", path)).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricRetryAttemptsTotal, got)
	}
	if got := reg.Counter(obs.L(MetricRetryExhaustedTotal, "path", path)).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRetryExhaustedTotal, got)
	}

	// A call that succeeds within the budget must not count as exhausted.
	fh2 := &flakyHandler{fails: 1, status: http.StatusServiceUnavailable,
		ok: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"droneId":"drone-1"}`))
		}}
	hs2 := httptest.NewServer(fh2)
	defer hs2.Close()
	c2 := NewHTTPAuditor(hs2.URL, nil)
	c2.SetRetryPolicy(RetryPolicy{Max: 2})
	c2.SetMetrics(reg)
	c2.setSleep(func(time.Duration) {})
	if _, err := c2.RegisterDrone(protocol.RegisterDroneRequest{}); err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if got := reg.Counter(obs.L(MetricRetryAttemptsTotal, "path", path)).Value(); got != 3 {
		t.Errorf("%s = %d, want 3 after one more retry", MetricRetryAttemptsTotal, got)
	}
	if got := reg.Counter(obs.L(MetricRetryExhaustedTotal, "path", path)).Value(); got != 1 {
		t.Errorf("%s = %d, want still 1", MetricRetryExhaustedTotal, got)
	}
}

func TestClientCancellationAbortsBackoff(t *testing.T) {
	var hits int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := NewHTTPAuditor(hs.URL, nil)
	// A backoff far longer than the test: only cancellation can end it.
	c.SetRetryPolicy(RetryPolicy{Max: 5, Backoff: time.Hour})
	bound := c.WithContext(ctx)

	done := make(chan error, 1)
	go func() {
		_, err := bound.RegisterDrone(protocol.RegisterDroneRequest{})
		done <- err
	}()
	// Let the first attempt land, then cancel mid-backoff.
	for atomic.LoadInt32(&hits) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not abort the backoff sleep")
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Errorf("server saw %d requests after cancellation, want 1", got)
	}
	// The original client is unchanged: it still runs under Background.
	if c.ctx != nil {
		t.Error("WithContext mutated the receiver")
	}
}

func TestClientInjectsTraceparent(t *testing.T) {
	var header atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(protocol.HeaderTraceParent))
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"droneId":"drone-1"}`))
	}))
	defer hs.Close()

	// Without a span in context and without a tracer, no header goes out.
	c := NewHTTPAuditor(hs.URL, nil)
	if _, err := c.RegisterDrone(protocol.RegisterDroneRequest{}); err != nil {
		t.Fatal(err)
	}
	if h, _ := header.Load().(string); h != "" {
		t.Errorf("untraced call sent traceparent %q", h)
	}

	// A caller span bound via WithContext propagates even when the
	// client itself has no tracer.
	tr := otrace.New(otrace.Options{Sample: 1})
	ctx, root := tr.StartSpan(context.Background(), "drone.proof")
	if _, err := c.WithContext(ctx).RegisterDrone(protocol.RegisterDroneRequest{}); err != nil {
		t.Fatal(err)
	}
	h, _ := header.Load().(string)
	sc, ok := otrace.ParseHeader(h)
	if !ok {
		t.Fatalf("bound call sent unparseable traceparent %q", h)
	}
	if sc.TraceID != root.Context().TraceID || !sc.Sampled {
		t.Errorf("traceparent %q does not carry the caller's trace %s", h, root.Context().TraceID)
	}

	// With a client tracer attached, the wire header names the client
	// span (a child of the caller's), keeping the trace contiguous.
	ring := otrace.NewRingCollector(8)
	ctr := otrace.New(otrace.Options{Sample: 1, Sink: ring})
	c.SetTracer(ctr)
	if _, err := c.WithContext(ctx).RegisterDrone(protocol.RegisterDroneRequest{}); err != nil {
		t.Fatal(err)
	}
	h, _ = header.Load().(string)
	sc, ok = otrace.ParseHeader(h)
	if !ok || sc.TraceID != root.Context().TraceID {
		t.Fatalf("traced call header %q not in the caller's trace", h)
	}
	spans := ring.Snapshot()
	if len(spans) != 1 || spans[0].Name != "http.client "+protocol.PathRegisterDrone {
		t.Fatalf("client spans = %+v", spans)
	}
	if spans[0].SpanID != sc.SpanID.String() {
		t.Errorf("wire header span %s is not the client span %s", sc.SpanID, spans[0].SpanID)
	}
	if spans[0].Parent != root.Context().SpanID.String() {
		t.Errorf("client span parent = %s, want caller span %s", spans[0].Parent, root.Context().SpanID)
	}
}
