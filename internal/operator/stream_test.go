package operator

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/trace"
)

func TestStreamingCleanFlight(t *testing.T) {
	s := newInProcessStack(t)
	z := geo.GeoCircle{Center: urbana.Offset(0, 2000), R: 100}
	if _, err := s.srv.Zones().Register("alice", z); err != nil {
		t.Fatal(err)
	}
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	res, err := s.drone.FlyAdaptiveStreaming(rx, []geo.GeoCircle{z}, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationAt >= 0 {
		t.Errorf("clean flight flagged at sample %d", res.ViolationAt)
	}
	if res.Final.Verdict != protocol.VerdictCompliant {
		t.Errorf("final verdict = %v (%s)", res.Final.Verdict, res.Final.Reason)
	}
	// The streamed trace is retained for accusations.
	if s.srv.RetainedCount() != 1 {
		t.Errorf("retained = %d, want 1", s.srv.RetainedCount())
	}
}

func TestStreamingDetectsInsufficientPairInFlight(t *testing.T) {
	s := newInProcessStack(t)
	// Zone straddling the flight line at the midpoint: the drone flies
	// straight through its vicinity with gaps too sparse for proof.
	mid := urbana.Offset(90, 300)
	z := geo.GeoCircle{Center: mid.Offset(0, 25), R: 20}
	if _, err := s.srv.Zones().Register("bob", z); err != nil {
		t.Fatal(err)
	}

	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver at 1 Hz: near a boundary 5 m away, 1 s pairs cannot prove
	// alibi (budget 44.7 m), so the online check must flag mid-flight.
	rx := s.withReceiver(t, route, 1)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	res, err := s.drone.FlyAdaptiveStreaming(rx, []geo.GeoCircle{z}, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationAt < 0 {
		t.Fatal("sparse pass next to zone not flagged in flight")
	}
	if res.Final.Verdict != protocol.VerdictViolation {
		t.Errorf("final verdict = %v, want violation", res.Final.Verdict)
	}
}

func TestStreamingOverHTTP(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(50))})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()
	client := NewHTTPAuditor(hs.URL, hs.Client())

	s := newStack(t, client, srv)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	res, err := s.drone.FlyAdaptiveStreaming(rx, nil, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Verdict != protocol.VerdictCompliant {
		t.Errorf("HTTP streaming verdict = %v (%s)", res.Final.Verdict, res.Final.Reason)
	}
}

func TestStreamValidation(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(51))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.OpenStream(protocol.OpenStreamRequest{DroneID: "nope"}); !errors.Is(err, auditor.ErrUnknownDrone) {
		t.Errorf("err = %v, want ErrUnknownDrone", err)
	}
	if _, err := srv.StreamSample(protocol.StreamSampleRequest{StreamID: "stream-9"}); !errors.Is(err, auditor.ErrUnknownStream) {
		t.Errorf("err = %v, want ErrUnknownStream", err)
	}
	if _, err := srv.CloseStream(protocol.CloseStreamRequest{StreamID: "stream-9"}); !errors.Is(err, auditor.ErrUnknownStream) {
		t.Errorf("err = %v, want ErrUnknownStream", err)
	}
}

func TestStreamRejectsForgedSample(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	open, err := s.srv.OpenStream(protocol.OpenStreamRequest{DroneID: s.drone.ID()})
	if err != nil {
		t.Fatal(err)
	}
	forged := poa.SignedSample{
		Sample: poa.Sample{Pos: urbana, Time: t0}.Canon(),
		Sig:    []byte("not a signature"),
	}
	resp, err := s.srv.StreamSample(protocol.StreamSampleRequest{StreamID: open.StreamID, Sample: forged})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Error("forged streamed sample accepted")
	}
	// The stream is poisoned: the final verdict is a violation.
	final, err := s.srv.CloseStream(protocol.CloseStreamRequest{StreamID: open.StreamID})
	if err != nil {
		t.Fatal(err)
	}
	if final.Verdict != protocol.VerdictViolation {
		t.Error("poisoned stream closed compliant")
	}
}

func TestAccusationOverHTTP(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(52))})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()
	client := NewHTTPAuditor(hs.URL, hs.Client())

	zoneID, err := srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 5000), R: 100})
	if err != nil {
		t.Fatal(err)
	}

	s := newStack(t, client, srv)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	res, err := s.drone.FlyFixedRate(rx, 1, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.drone.SubmitPoA(res.PoA); err != nil {
		t.Fatal(err)
	}

	// Zone owner accuses over HTTP: exonerated by the retained alibi.
	resp, err := client.Accuse(protocol.AccusationRequest{
		DroneID: s.drone.ID(), ZoneID: zoneID, At: t0.Add(30 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Errorf("accusation verdict = %v", resp.Verdict)
	}

	// Unknown zone over HTTP surfaces as an error.
	if _, err := client.Accuse(protocol.AccusationRequest{DroneID: s.drone.ID(), ZoneID: "zone-99", At: t0}); err == nil {
		t.Error("unknown zone accusation should error")
	}
}
