package operator

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/zone"
)

// ErrDisclosureUnsupported is returned when the configured auditor API
// does not implement the disclosure-mode endpoints.
var ErrDisclosureUnsupported = errors.New("operator: auditor does not support disclosure modes")

// ErrNoSecrets is returned when a selective-disclosure challenge arrives
// and no retained flight material can answer it.
var ErrNoSecrets = errors.New("operator: no retained disclosure material for this challenge")

// DisclosureSecrets is the client-retained material of one sealed or
// commit flight: everything needed to answer a selective-disclosure
// challenge without the Auditor ever holding a position. The sealed
// entries stay on the operator in commit mode (the Auditor keeps only
// the signed root); in sealed mode the Auditor retained the entries and
// only the one-time keys live here.
type DisclosureSecrets struct {
	Mode   string
	Sealed privacy.SealedPoA
	Keys   [][]byte
}

// Answer builds the reveal for one challenge: the two one-time keys of
// the spanning pair, plus — for a commit challenge — the two sealed
// entries and their Merkle authentication paths. Nothing outside the
// pair leaves the operator.
func (ds *DisclosureSecrets) Answer(ch protocol.DisclosureChallenge) (protocol.RevealRequest, error) {
	p := ch.PairIndex
	if ds == nil || p < 0 || p+1 >= len(ds.Keys) {
		return protocol.RevealRequest{}, ErrNoSecrets
	}
	req := protocol.RevealRequest{
		DroneID:     ch.DroneID,
		ChallengeID: ch.ChallengeID,
		Keys:        [][]byte{ds.Keys[p], ds.Keys[p+1]},
	}
	if ch.Mode != poa.DisclosureCommit {
		return req, nil
	}
	if p+1 >= len(ds.Sealed.Entries) {
		return protocol.RevealRequest{}, ErrNoSecrets
	}
	tree, err := ds.Sealed.MerkleTree()
	if err != nil {
		return protocol.RevealRequest{}, fmt.Errorf("rebuild commitment tree: %w", err)
	}
	for i := 0; i < 2; i++ {
		proof, err := tree.Proof(p + i)
		if err != nil {
			return protocol.RevealRequest{}, fmt.Errorf("prove leaf %d: %w", p+i, err)
		}
		req.Entries = append(req.Entries, ds.Sealed.Entries[p+i])
		req.Proofs = append(req.Proofs, poa.EncodeMerkleProof(proof))
	}
	return req, nil
}

// Secrets returns the retained material of the most recent sealed or
// commit flight (nil before any).
func (d *Drone) Secrets() *DisclosureSecrets { return d.secrets }

// disclosureAPICtx returns the disclosure API surface bound to ctx when
// the transport supports it.
func (d *Drone) disclosureAPICtx(ctx context.Context) (protocol.DisclosureAPI, error) {
	a, ok := protocol.BindContext(ctx, d.api).(protocol.DisclosureAPI)
	if !ok {
		return nil, ErrDisclosureUnsupported
	}
	return a, nil
}

// FlySealed runs an adaptive flight and seals the resulting PoA under
// one-time keys (paper §VII-B3): the Auditor will see clear timestamps
// and signed ciphertexts, never positions. The keys are retained on the
// drone for accusation-time reveals.
func (d *Drone) FlySealed(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (privacy.SealedPoA, *sampling.RunResult, error) {
	run, err := d.FlyAdaptive(rx, zones, until)
	if err != nil {
		return privacy.SealedPoA{}, nil, err
	}
	sealed, ring, err := privacy.Seal(run.PoA, d.random)
	if err != nil {
		return privacy.SealedPoA{}, nil, fmt.Errorf("seal PoA: %w", err)
	}
	keys := make([][]byte, ring.Len())
	for i := range keys {
		if keys[i], err = ring.Reveal(i); err != nil {
			return privacy.SealedPoA{}, nil, err
		}
	}
	d.secrets = &DisclosureSecrets{Mode: poa.DisclosureSealed, Sealed: sealed, Keys: keys}
	return sealed, run, nil
}

// FlyCommit runs a buffered flight and closes it with the TEE's
// commit-trace command: the TA signs each sample, seals the trace, and
// signs the Merkle-root envelope with the zone clearance predicates.
// Only the envelope ever leaves the drone at submission time.
func (d *Drone) FlyCommit(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (privacy.CommitEnvelope, *sampling.RunResult, error) {
	if d.id == "" {
		return privacy.CommitEnvelope{}, nil, ErrNotRegistered
	}
	a := &sampling.Adaptive{
		Env:     sampling.NewTEEBatchEnv(d.dev, d.clock, rx),
		Index:   zone.NewIndex(zones, 0),
		VMaxMS:  geo.MaxDroneSpeedMPS,
		Metrics: d.metrics,
	}
	run, err := a.Run(until)
	if err != nil {
		return privacy.CommitEnvelope{}, nil, fmt.Errorf("commit flight: %w", err)
	}
	reqBytes, err := json.Marshal(tee.CommitTraceRequest{Zones: zones, VMaxMS: geo.MaxDroneSpeedMPS})
	if err != nil {
		return privacy.CommitEnvelope{}, nil, err
	}
	raw, err := d.dev.Invoke(tee.GPSSamplerUUID, tee.CmdCommitTrace, reqBytes)
	if err != nil {
		return privacy.CommitEnvelope{}, nil, fmt.Errorf("tee commit trace: %w", err)
	}
	var res tee.CommitTraceResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return privacy.CommitEnvelope{}, nil, fmt.Errorf("decode commit result: %w", err)
	}
	d.secrets = &DisclosureSecrets{Mode: poa.DisclosureCommit, Sealed: res.Sealed, Keys: res.Keys}
	return res.Envelope, run, nil
}

// SubmitSealedPoA encrypts and submits a sealed PoA.
func (d *Drone) SubmitSealedPoA(sealed privacy.SealedPoA) (protocol.SubmitPoAResponse, error) {
	return d.SubmitSealedPoACtx(context.Background(), sealed)
}

// SubmitSealedPoACtx is SubmitSealedPoA under a caller context.
func (d *Drone) SubmitSealedPoACtx(ctx context.Context, sealed privacy.SealedPoA) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	a, err := d.disclosureAPICtx(ctx)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	plaintext, err := json.Marshal(sealed)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("marshal sealed PoA: %w", err)
	}
	ct, err := sigcrypto.Encrypt(d.random, d.auditorPub, plaintext)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("encrypt sealed PoA: %w", err)
	}
	resp, err := a.SubmitSealedPoA(protocol.SubmitSealedPoARequest{DroneID: d.id, EncryptedPoA: ct})
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("submit sealed PoA: %w", err)
	}
	return resp, nil
}

// SubmitCommitPoA encrypts and submits a commit envelope.
func (d *Drone) SubmitCommitPoA(env privacy.CommitEnvelope) (protocol.SubmitPoAResponse, error) {
	return d.SubmitCommitPoACtx(context.Background(), env)
}

// SubmitCommitPoACtx is SubmitCommitPoA under a caller context. The
// payload is the compact binary envelope — root, timestamps, predicates —
// which is why commit mode's bytes-on-wire stay a small fraction of a
// full submission.
func (d *Drone) SubmitCommitPoACtx(ctx context.Context, env privacy.CommitEnvelope) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	a, err := d.disclosureAPICtx(ctx)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	ct, err := sigcrypto.Encrypt(d.random, d.auditorPub, privacy.EncodeCommitEnvelope(env))
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("encrypt commit envelope: %w", err)
	}
	resp, err := a.SubmitCommitPoA(protocol.SubmitCommitPoARequest{DroneID: d.id, EncryptedEnvelope: ct})
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("submit commit PoA: %w", err)
	}
	return resp, nil
}

// RevealForChallenge answers a selective-disclosure challenge from the
// retained material of the most recent sealed/commit flight: exactly the
// two samples spanning the accused instant are opened, nothing else.
func (d *Drone) RevealForChallenge(ch protocol.DisclosureChallenge) (protocol.SubmitPoAResponse, error) {
	return d.RevealForChallengeCtx(context.Background(), ch)
}

// RevealForChallengeCtx is RevealForChallenge under a caller context.
func (d *Drone) RevealForChallengeCtx(ctx context.Context, ch protocol.DisclosureChallenge) (protocol.SubmitPoAResponse, error) {
	if d.id == "" {
		return protocol.SubmitPoAResponse{}, ErrNotRegistered
	}
	a, err := d.disclosureAPICtx(ctx)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	req, err := d.secrets.Answer(ch)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	req.DroneID = d.id
	resp, err := a.Reveal(req)
	if err != nil {
		return protocol.SubmitPoAResponse{}, fmt.Errorf("reveal: %w", err)
	}
	return resp, nil
}
