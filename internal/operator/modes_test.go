package operator

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/trace"
)

func TestBatchModeEndToEnd(t *testing.T) {
	s := newInProcessStack(t)
	if _, err := s.srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 2000), R: 100}); err != nil {
		t.Fatal(err)
	}
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	s.dev.ResetStats()
	batch, res, err := s.drone.FlyAdaptiveBatch(rx, []geo.GeoCircle{{Center: urbana.Offset(0, 2000), R: 100}}, route.End())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Samples) != res.PoA.Len() {
		t.Errorf("batch has %d samples, run recorded %d", len(batch.Samples), res.PoA.Len())
	}
	// Exactly one signature for the whole flight — the point of §VII-A1b.
	if st := s.dev.Snapshot(); st.Signs != 1 {
		t.Errorf("Signs = %d, want 1", st.Signs)
	}

	resp, err := s.drone.SubmitBatchPoA(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
	// The verified trace is retained for accusations like any other.
	if s.srv.RetainedCount() != 1 {
		t.Errorf("retained = %d, want 1", s.srv.RetainedCount())
	}
}

func TestBatchModeTamperedBatchRejected(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	batch, _, err := s.drone.FlyAdaptiveBatch(rx, nil, route.End())
	if err != nil {
		t.Fatal(err)
	}

	// Move one sample: the single signature no longer covers the batch.
	batch.Samples[0].Pos.Lat += 0.01
	resp, err := s.drone.SubmitBatchPoA(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("tampered batch verdict = %v, want violation", resp.Verdict)
	}
}

func TestMACModeEndToEnd(t *testing.T) {
	s := newInProcessStack(t)
	if _, err := s.srv.Zones().Register("alice", geo.GeoCircle{Center: urbana.Offset(0, 2000), R: 100}); err != nil {
		t.Fatal(err)
	}
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	sessionID, err := s.drone.StartSession()
	if err != nil {
		t.Fatal(err)
	}
	if sessionID == "" {
		t.Fatal("empty session id")
	}

	res, err := s.drone.FlyAdaptiveMAC(rx, []geo.GeoCircle{{Center: urbana.Offset(0, 2000), R: 100}}, route.End())
	if err != nil {
		t.Fatal(err)
	}
	// No asymmetric signatures during the flight.
	if st := s.dev.Snapshot(); st.Signs != 0 || st.MACs == 0 {
		t.Errorf("stats = %+v, want MACs only", st)
	}

	resp, err := s.drone.SubmitMACPoA(sessionID, res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("verdict = %v (%s)", resp.Verdict, resp.Reason)
	}
}

func TestMACModeTamperedTagRejected(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}
	sessionID, err := s.drone.StartSession()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.drone.FlyAdaptiveMAC(rx, nil, route.End())
	if err != nil {
		t.Fatal(err)
	}

	res.PoA.Samples[0].Sample.Pos.Lat += 0.01
	resp, err := s.drone.SubmitMACPoA(sessionID, res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictViolation {
		t.Errorf("tampered MAC PoA verdict = %v, want violation", resp.Verdict)
	}
}

func TestMACModeSessionValidation(t *testing.T) {
	s := newInProcessStack(t)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	// Unknown session.
	_, err = s.drone.SubmitMACPoA("session-9999", poa.PoA{Samples: make([]poa.SignedSample, 2)})
	if !errors.Is(err, auditor.ErrUnknownSession) {
		t.Errorf("err = %v, want ErrUnknownSession", err)
	}

	// A session established by another drone cannot be used.
	s2 := newInProcessStackSharing(t, s.srv)
	_ = s2.withReceiver(t, route, 5)
	if err := s2.drone.Register(); err != nil {
		t.Fatal(err)
	}
	otherSession, err := s2.drone.StartSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.drone.SubmitMACPoA(otherSession, poa.PoA{Samples: make([]poa.SignedSample, 2)}); !errors.Is(err, auditor.ErrUnknownSession) {
		t.Errorf("cross-drone session err = %v, want ErrUnknownSession", err)
	}
}

func TestModesOverHTTP(t *testing.T) {
	srv, err := auditor.NewServer(auditor.Config{Random: rand.New(rand.NewSource(44))})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(auditor.NewHandler(srv))
	defer hs.Close()
	client := NewHTTPAuditor(hs.URL, hs.Client())

	s := newStack(t, client, srv)
	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.withReceiver(t, route, 5)
	if err := s.drone.Register(); err != nil {
		t.Fatal(err)
	}

	// Batch over HTTP.
	batch, _, err := s.drone.FlyAdaptiveBatch(rx, nil, route.End())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.drone.SubmitBatchPoA(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("HTTP batch verdict = %v (%s)", resp.Verdict, resp.Reason)
	}

	// Session + MAC over HTTP.
	sessionID, err := s.drone.StartSession()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.drone.FlyAdaptiveMAC(rx, nil, route.End())
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive run with no zones only anchors once; pad via fixed
	// rate for a verifiable 2+ sample trace.
	if res.PoA.Len() < 2 {
		res2, err := s.drone.FlyFixedRateMAC(rx, 1, route.End())
		if err != nil {
			t.Fatal(err)
		}
		res = res2
	}
	mresp, err := s.drone.SubmitMACPoA(sessionID, res.PoA)
	if err != nil {
		t.Fatal(err)
	}
	if mresp.Verdict != protocol.VerdictCompliant {
		t.Fatalf("HTTP MAC verdict = %v (%s)", mresp.Verdict, mresp.Reason)
	}
}

// newInProcessStackSharing builds a second drone against an existing
// auditor.
func newInProcessStackSharing(t *testing.T, srv *auditor.Server) *stack {
	t.Helper()
	return newStack(t, srv, srv)
}
