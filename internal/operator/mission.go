package operator

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/planner"
	"repro/internal/poa"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/trace"
	"repro/internal/zone"
)

// SamplingMode selects the Proof-of-Alibi envelope for a mission.
type SamplingMode int

// Mission sampling modes.
const (
	// ModeAdaptive is the paper's production configuration: per-sample
	// RSA signatures, adaptive rate.
	ModeAdaptive SamplingMode = iota + 1
	// ModeFixedRate uses the fix-rate baseline.
	ModeFixedRate
	// ModeBatch buffers in the TEE and signs the trace once (§VII-A1b).
	ModeBatch
	// ModeMAC establishes a symmetric session first (§VII-A1a).
	ModeMAC
	// ModeStreaming transmits samples in real time.
	ModeStreaming
	// ModeSealed flies a normal adaptive flight, then seals the PoA under
	// one-time keys before submission (paper §VII-B3): the Auditor retains
	// ciphertexts and judges only under accusation.
	ModeSealed
	// ModeCommit buffers in the TEE and submits only the signed Merkle
	// commitment envelope; positions never leave the drone unless a
	// selective-disclosure challenge opens a spanning pair.
	ModeCommit
)

// MissionConfig describes one complete flight workflow.
type MissionConfig struct {
	Mode SamplingMode
	// FixedRateHz applies to ModeFixedRate.
	FixedRateHz float64
	// QueryMargin pads the zone-query rectangle around the route
	// (default 2000 m).
	QueryMargin float64
	// Store, when set, persists the encrypted PoA before submission.
	Store *Store
	// FlightID names the persisted record (defaults to the start time).
	FlightID string
	// RotateEvery, when positive, rotates the TEE sign key after a flight
	// once that much flight-clock time has passed since the last rotation
	// (or registration). The rotation runs between landing and
	// submission, so the just-flown samples submit under the now-retired
	// epoch — inside the Auditor's acceptance window. Zero disables
	// rotation. Applies to the per-sample and batch envelopes (the MAC
	// envelope does not use the TEE sign key; streaming submits
	// in-flight).
	RotateEvery time.Duration
}

// MissionReport summarises a completed mission.
type MissionReport struct {
	FlightID string
	Zones    []zone.NFZ
	Run      *sampling.RunResult
	Verdict  protocol.SubmitPoAResponse
	// StreamedViolationAt is set in ModeStreaming when the online check
	// flagged mid-flight (-1 otherwise).
	StreamedViolationAt int
}

// modeName names a sampling mode for trace attributes.
func modeName(m SamplingMode) string {
	switch m {
	case ModeAdaptive, 0:
		return "adaptive"
	case ModeFixedRate:
		return "fixed-rate"
	case ModeBatch:
		return "batch"
	case ModeMAC:
		return "mac"
	case ModeStreaming:
		return "streaming"
	case ModeSealed:
		return "sealed"
	case ModeCommit:
		return "commit"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// teeSign runs fn — a flight whose sampling invokes the TEE — under a
// "tee.sign" span annotated with the secure-world work it caused (SMC
// world switches, signatures, MACs, bytes covered), read as deltas of the
// device's monotonic counters.
func (d *Drone) teeSign(ctx context.Context, fn func() error) error {
	if d.tracer == nil {
		return fn()
	}
	before := d.dev.Snapshot()
	_, sp := d.tracer.StartSpan(ctx, "tee.sign")
	err := fn()
	after := d.dev.Snapshot()
	sp.SetInt("smcCalls", int64(after.SMCCalls-before.SMCCalls))
	sp.SetInt("signs", int64(after.Signs-before.Signs))
	sp.SetInt("macs", int64(after.MACs-before.MACs))
	sp.SetInt("signedBytes", int64(after.SignedBytes-before.SignedBytes))
	sp.SetError(err)
	sp.End()
	return err
}

// RunMission executes the entire protocol workflow for one flight over the
// given route: zone query → flight with the selected envelope →
// (persist) → submission. The drone must already be registered.
//
// With a tracer attached (SetTracer) the flight-and-submit phase runs
// under a "drone.proof" root span — one trace per proof — with child
// spans for the TEE signing work and, through a context-binding API
// client, the HTTP submission and the auditor's verification pipeline.
func (d *Drone) RunMission(rx *gps.Receiver, route *trace.Route, cfg MissionConfig) (*MissionReport, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	if cfg.QueryMargin <= 0 {
		cfg.QueryMargin = 2000
	}
	if cfg.FlightID == "" {
		cfg.FlightID = fmt.Sprintf("flight-%d", route.Start().Unix())
	}

	zones, err := d.QueryZones(RouteBounds(route, cfg.QueryMargin))
	if err != nil {
		return nil, err
	}
	circles := zone.Circles(zones)
	rep := &MissionReport{FlightID: cfg.FlightID, Zones: zones, StreamedViolationAt: -1}

	ctx, root := d.tracer.StartSpan(context.Background(), "drone.proof")
	root.SetAttr("flight", cfg.FlightID)
	root.SetAttr("mode", modeName(cfg.Mode))
	defer root.End()

	switch cfg.Mode {
	case ModeAdaptive, 0:
		err = d.teeSign(ctx, func() error {
			rep.Run, err = d.FlyAdaptive(rx, circles, route.End())
			return err
		})
		if err == nil {
			err = d.maybeRotate(cfg.RotateEvery)
		}
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.submitWithStore(ctx, rep.Run, route, cfg)
	case ModeFixedRate:
		if cfg.FixedRateHz <= 0 {
			return nil, fmt.Errorf("operator: fixed-rate mission needs FixedRateHz")
		}
		err = d.teeSign(ctx, func() error {
			rep.Run, err = d.FlyFixedRate(rx, cfg.FixedRateHz, route.End())
			return err
		})
		if err == nil {
			err = d.maybeRotate(cfg.RotateEvery)
		}
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.submitWithStore(ctx, rep.Run, route, cfg)
	case ModeBatch:
		var batch poa.BatchPoA
		err = d.teeSign(ctx, func() error {
			var ferr error
			batch, rep.Run, ferr = d.FlyAdaptiveBatch(rx, circles, route.End())
			return ferr
		})
		if err == nil {
			err = d.maybeRotate(cfg.RotateEvery)
		}
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.SubmitBatchPoACtx(ctx, batch)
	case ModeMAC:
		sessionID, serr := d.StartSession()
		if serr != nil {
			root.SetError(serr)
			return nil, serr
		}
		err = d.teeSign(ctx, func() error {
			var ferr error
			rep.Run, ferr = d.FlyAdaptiveMAC(rx, circles, route.End())
			return ferr
		})
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.SubmitMACPoACtx(ctx, sessionID, rep.Run.PoA)
	case ModeSealed:
		var sealed privacy.SealedPoA
		err = d.teeSign(ctx, func() error {
			var ferr error
			sealed, rep.Run, ferr = d.FlySealed(rx, circles, route.End())
			return ferr
		})
		if err == nil {
			err = d.maybeRotate(cfg.RotateEvery)
		}
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.SubmitSealedPoACtx(ctx, sealed)
	case ModeCommit:
		var env privacy.CommitEnvelope
		err = d.teeSign(ctx, func() error {
			var ferr error
			env, rep.Run, ferr = d.FlyCommit(rx, circles, route.End())
			return ferr
		})
		if err == nil {
			err = d.maybeRotate(cfg.RotateEvery)
		}
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Verdict, err = d.SubmitCommitPoACtx(ctx, env)
	case ModeStreaming:
		var sres *StreamingResult
		sres, err = d.FlyAdaptiveStreaming(rx, circles, route.End())
		if err != nil {
			root.SetError(err)
			return nil, err
		}
		rep.Run = sres.Run
		rep.Verdict = sres.Final
		rep.StreamedViolationAt = sres.ViolationAt
	default:
		return nil, fmt.Errorf("operator: unknown sampling mode %d", cfg.Mode)
	}
	if err != nil {
		root.SetError(err)
		return nil, err
	}
	root.SetAttr("verdict", string(rep.Verdict.Verdict))
	return rep, nil
}

// maybeRotate rotates the TEE key when at least `every` of flight-clock
// time has passed since the last rotation (or registration). Zero or
// negative disables rotation.
func (d *Drone) maybeRotate(every time.Duration) error {
	if every <= 0 {
		return nil
	}
	if d.clock.Now().Sub(d.lastRotate) < every {
		return nil
	}
	return d.RotateKey()
}

// submitWithStore encrypts, optionally persists, then submits a PoA run.
func (d *Drone) submitWithStore(ctx context.Context, run *sampling.RunResult, route *trace.Route, cfg MissionConfig) (protocol.SubmitPoAResponse, error) {
	ct, err := d.EncryptPoA(run.PoA)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	if cfg.Store != nil {
		rec := FlightRecord{
			FlightID:     cfg.FlightID,
			DroneID:      d.id,
			Start:        route.Start(),
			End:          route.End(),
			EncryptedPoA: ct,
		}
		if err := cfg.Store.Save(rec); err != nil {
			return protocol.SubmitPoAResponse{}, err
		}
		defer func() {
			rec.Submitted = true
			// Best effort: the verdict is already in hand; a failed
			// bookkeeping write must not fail the mission.
			_ = cfg.Store.Save(rec)
		}()
	}
	return d.SubmitCtx(ctx, ct)
}

// RouteBounds computes the zone-query rectangle for a route: its bounding
// box padded by marginMeters.
func RouteBounds(r *trace.Route, marginMeters float64) geo.Rect {
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, wp := range r.Waypoints() {
		minLat = math.Min(minLat, wp.Pos.Lat)
		maxLat = math.Max(maxLat, wp.Pos.Lat)
		minLon = math.Min(minLon, wp.Pos.Lon)
		maxLon = math.Max(maxLon, wp.Pos.Lon)
	}
	rect := geo.Rect{MinLat: minLat, MinLon: minLon, MaxLat: maxLat, MaxLon: maxLon}
	return rect.Expand(marginMeters)
}

// PlanCompliantRoute is the full pre-flight pipeline: query the zones over
// the corridor from start to goal, plan a route that avoids them, and
// return the flyable trajectory. speedMS sets the cruise speed.
func (d *Drone) PlanCompliantRoute(start, goal geo.LatLon, departure time.Time, speedMS float64, cfg planner.Config) (*trace.Route, []zone.NFZ, error) {
	if d.id == "" {
		return nil, nil, ErrNotRegistered
	}
	corridor := geo.NewRect(start, goal).Expand(cfg.MarginMeters + 2000)
	zones, err := d.QueryZones(corridor)
	if err != nil {
		return nil, nil, err
	}
	waypoints, err := planner.PlanRoute(start, goal, zone.Circles(zones), cfg)
	if err != nil {
		return nil, nil, err
	}
	route, err := planner.ToRoute(waypoints, speedMS, departure)
	if err != nil {
		return nil, nil, err
	}
	return route, zones, nil
}
