package operator

// ClusterAuditor fronts a sharded auditor cluster: it fetches the
// versioned cluster map from a seed node, routes every drone-keyed call
// to the owning node directly (the common case — zero forwards), and
// falls back on the cluster's own single-hop forwarding when its map is
// stale. A node answering 421 Misdirected Request, or not answering at
// all, triggers one map refresh and one re-route; non-ready nodes
// (starting up, still recovering their shards) are skipped in favour of
// a ready node that forwards.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/cluster"
	"repro/internal/protocol"
)

// ClusterAuditor is a protocol.API implementation that routes calls
// across the nodes of a sharded auditor cluster.
type ClusterAuditor struct {
	seeds []string // seed base URLs, e.g. "http://127.0.0.1:8470"
	hc    *http.Client
	retry RetryPolicy

	mu      sync.Mutex
	m       *cluster.Map
	clients map[string]*HTTPAuditor // base URL -> client
	streams map[string]*HTTPAuditor // streamID -> node that opened it
}

var (
	_ protocol.API      = (*ClusterAuditor)(nil)
	_ protocol.ModesAPI = (*ClusterAuditor)(nil)
)

// NewClusterAuditor creates a routing client over the given seed URLs
// (at least one; no trailing slashes). client defaults to
// http.DefaultClient.
func NewClusterAuditor(seeds []string, client *http.Client) *ClusterAuditor {
	if client == nil {
		client = http.DefaultClient
	}
	return &ClusterAuditor{
		seeds:   seeds,
		hc:      client,
		clients: make(map[string]*HTTPAuditor),
		streams: make(map[string]*HTTPAuditor),
	}
}

// SetRetryPolicy sets the per-node retry policy applied by the
// underlying HTTP clients (created lazily, so call before routing).
func (c *ClusterAuditor) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// baseURL derives the client base URL for a cluster node.
func baseURL(n cluster.Node) string { return "http://" + n.Addr }

// clientFor returns (creating on first use) the HTTPAuditor for a base
// URL. Callers hold c.mu.
func (c *ClusterAuditor) clientFor(base string) *HTTPAuditor {
	if cl, ok := c.clients[base]; ok {
		return cl
	}
	cl := NewHTTPAuditor(base, c.hc)
	cl.SetRetryPolicy(c.retry)
	c.clients[base] = cl
	return cl
}

// RefreshMap fetches the cluster map from every seed and every known
// node, keeping the highest version seen. It fails only when no node
// answers at all.
func (c *ClusterAuditor) RefreshMap() error {
	c.mu.Lock()
	bases := append([]string(nil), c.seeds...)
	if c.m != nil {
		for _, n := range c.m.Nodes {
			bases = append(bases, baseURL(n))
		}
	}
	c.mu.Unlock()

	var best *cluster.Map
	var firstErr error
	for _, base := range bases {
		m, err := c.fetchMap(base)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || m.Version > best.Version {
			best = m
		}
	}
	if best == nil {
		return fmt.Errorf("cluster map: no node reachable: %w", firstErr)
	}
	c.mu.Lock()
	if c.m == nil || best.Version > c.m.Version {
		c.m = best
	}
	c.mu.Unlock()
	return nil
}

// fetchMap GETs one node's /cluster/map.
func (c *ClusterAuditor) fetchMap(base string) (*cluster.Map, error) {
	resp, err := c.hc.Get(base + protocol.PathClusterMap)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Path: protocol.PathClusterMap, Code: resp.StatusCode}
	}
	var m cluster.Map
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ready probes a node's readiness door: liveness is not enough, a node
// that has not recovered its shards or joined the ring would shed or
// mis-handle routed traffic.
func (c *ClusterAuditor) ready(base string) bool {
	resp, err := c.hc.Get(base + protocol.PathReadyz)
	if err != nil {
		return false
	}
	drainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// routeTo picks the node for droneID: the owner when it is ready, else
// any ready node (the cluster forwards on our behalf). An empty droneID
// (pre-registration) routes to any ready node. The map is fetched
// lazily on first use.
func (c *ClusterAuditor) routeTo(droneID string) (*HTTPAuditor, error) {
	c.mu.Lock()
	m := c.m
	c.mu.Unlock()
	if m == nil {
		if err := c.RefreshMap(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		m = c.m
		c.mu.Unlock()
	}

	var candidates []string
	if droneID != "" {
		if owner, ok := m.Owner(droneID); ok {
			candidates = append(candidates, baseURL(owner))
		}
	}
	for _, n := range m.Nodes {
		b := baseURL(n)
		if len(candidates) == 0 || b != candidates[0] {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return nil, errors.New("cluster map lists no nodes")
	}
	for _, b := range candidates {
		if c.ready(b) {
			c.mu.Lock()
			cl := c.clientFor(b)
			c.mu.Unlock()
			return cl, nil
		}
	}
	// Nobody admits readiness (probe races, tiny test clusters): try the
	// best candidate anyway rather than failing a routable call.
	c.mu.Lock()
	cl := c.clientFor(candidates[0])
	c.mu.Unlock()
	return cl, nil
}

// shouldReroute reports whether an error means our map was stale (421
// from a node that no longer owns the drone) or the node is gone
// (transport error) — both cured by a refresh and one re-route.
func shouldReroute(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusMisdirectedRequest
	}
	return true // transport-level failure: node unreachable
}

// route runs fn against the owning node, refreshing the map and
// re-routing exactly once when the first attempt hit a stale map or a
// dead node.
func route[Resp any](c *ClusterAuditor, droneID string, fn func(*HTTPAuditor) (Resp, error)) (Resp, error) {
	var zero Resp
	cl, err := c.routeTo(droneID)
	if err != nil {
		return zero, err
	}
	resp, err := fn(cl)
	if err == nil || !shouldReroute(err) {
		return resp, err
	}
	if rerr := c.RefreshMap(); rerr != nil {
		return zero, err
	}
	cl2, rerr := c.routeTo(droneID)
	if rerr != nil || cl2 == cl {
		return resp, err
	}
	return fn(cl2)
}

// RegisterDrone implements protocol.API. Registration is routed to any
// ready node; the cluster issues the drone ID and files the record on
// the owning node, so the caller need not (and cannot) pre-route it.
func (c *ClusterAuditor) RegisterDrone(req protocol.RegisterDroneRequest) (protocol.RegisterDroneResponse, error) {
	return route(c, "", func(cl *HTTPAuditor) (protocol.RegisterDroneResponse, error) {
		return cl.RegisterDrone(req)
	})
}

// RegisterZone implements protocol.API. Any node accepts a zone and
// replicates it cluster-wide.
func (c *ClusterAuditor) RegisterZone(req protocol.RegisterZoneRequest) (protocol.RegisterZoneResponse, error) {
	return route(c, "", func(cl *HTTPAuditor) (protocol.RegisterZoneResponse, error) {
		return cl.RegisterZone(req)
	})
}

// ZoneQuery implements protocol.API.
func (c *ClusterAuditor) ZoneQuery(req protocol.ZoneQueryRequest) (protocol.ZoneQueryResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.ZoneQueryResponse, error) {
		return cl.ZoneQuery(req)
	})
}

// SubmitPoA implements protocol.API.
func (c *ClusterAuditor) SubmitPoA(req protocol.SubmitPoARequest) (protocol.SubmitPoAResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.SubmitPoAResponse, error) {
		return cl.SubmitPoA(req)
	})
}

// SubmitBatchPoA implements protocol.ModesAPI.
func (c *ClusterAuditor) SubmitBatchPoA(req protocol.SubmitBatchPoARequest) (protocol.SubmitPoAResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.SubmitPoAResponse, error) {
		return cl.SubmitBatchPoA(req)
	})
}

// StartSession implements protocol.ModesAPI.
func (c *ClusterAuditor) StartSession(req protocol.StartSessionRequest) (protocol.StartSessionResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.StartSessionResponse, error) {
		return cl.StartSession(req)
	})
}

// SubmitMACPoA implements protocol.ModesAPI.
func (c *ClusterAuditor) SubmitMACPoA(req protocol.SubmitMACPoARequest) (protocol.SubmitPoAResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.SubmitPoAResponse, error) {
		return cl.SubmitMACPoA(req)
	})
}

// RotateKey implements protocol.RotationAPI.
func (c *ClusterAuditor) RotateKey(req protocol.RotateKeyRequest) (protocol.RotateKeyResponse, error) {
	return route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.RotateKeyResponse, error) {
		return cl.RotateKey(req)
	})
}

// OpenStream implements protocol.StreamAPI. The node that opens a
// stream holds its incremental state, so subsequent samples pin to it.
func (c *ClusterAuditor) OpenStream(req protocol.OpenStreamRequest) (protocol.OpenStreamResponse, error) {
	var opened *HTTPAuditor
	resp, err := route(c, req.DroneID, func(cl *HTTPAuditor) (protocol.OpenStreamResponse, error) {
		opened = cl
		return cl.OpenStream(req)
	})
	if err == nil && resp.StreamID != "" {
		c.mu.Lock()
		c.streams[resp.StreamID] = opened
		c.mu.Unlock()
	}
	return resp, err
}

// streamClient resolves the node a stream was opened on.
func (c *ClusterAuditor) streamClient(streamID string) (*HTTPAuditor, error) {
	c.mu.Lock()
	cl, ok := c.streams[streamID]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown stream %q (not opened through this client)", streamID)
	}
	return cl, nil
}

// StreamSample implements protocol.StreamAPI.
func (c *ClusterAuditor) StreamSample(req protocol.StreamSampleRequest) (protocol.StreamSampleResponse, error) {
	cl, err := c.streamClient(req.StreamID)
	if err != nil {
		return protocol.StreamSampleResponse{}, err
	}
	return cl.StreamSample(req)
}

// CloseStream implements protocol.StreamAPI.
func (c *ClusterAuditor) CloseStream(req protocol.CloseStreamRequest) (protocol.SubmitPoAResponse, error) {
	cl, err := c.streamClient(req.StreamID)
	if err != nil {
		return protocol.SubmitPoAResponse{}, err
	}
	defer func() {
		c.mu.Lock()
		delete(c.streams, req.StreamID)
		c.mu.Unlock()
	}()
	return cl.CloseStream(req)
}

// FetchClusterStatus GETs one node's fleet-wide status snapshot
// (/cluster/status): the serving node aggregates every ring member's
// fragment, so any reachable node answers for the whole fleet. client
// defaults to http.DefaultClient.
func FetchClusterStatus(client *http.Client, base string) (protocol.ClusterStatusResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var st protocol.ClusterStatusResponse
	resp, err := client.Get(base + protocol.PathClusterStatus)
	if err != nil {
		return st, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return st, &StatusError{Path: protocol.PathClusterStatus, Code: resp.StatusCode}
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("cluster status from %s: %w", base, err)
	}
	return st, nil
}

// ClusterStatus fetches the fleet status from the first seed or known
// node that answers.
func (c *ClusterAuditor) ClusterStatus() (protocol.ClusterStatusResponse, error) {
	c.mu.Lock()
	bases := append([]string(nil), c.seeds...)
	if c.m != nil {
		for _, n := range c.m.Nodes {
			bases = append(bases, baseURL(n))
		}
	}
	c.mu.Unlock()
	var firstErr error
	for _, base := range bases {
		st, err := FetchClusterStatus(c.hc, base)
		if err == nil {
			return st, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return protocol.ClusterStatusResponse{}, fmt.Errorf("cluster status: no node reachable: %w", firstErr)
}

// MapVersion reports the version of the map the client currently routes
// by (0 = no map fetched yet). Diagnostic.
func (c *ClusterAuditor) MapVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return 0
	}
	return c.m.Version
}

// injectMap force-feeds a (possibly stale) map; tests use it to
// exercise the refresh-and-reroute fallback deterministically.
func (c *ClusterAuditor) injectMap(m *cluster.Map) {
	c.mu.Lock()
	c.m = m
	c.mu.Unlock()
}
