package operator

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sampling"
	"repro/internal/zone"
)

// ErrStreamingUnsupported is returned when the configured auditor API does
// not implement the real-time streaming surface.
var ErrStreamingUnsupported = errors.New("operator: auditor does not support streaming audit")

// StreamingResult is the outcome of a real-time audited flight.
type StreamingResult struct {
	Run *sampling.RunResult
	// ViolationAt is the index of the first sample whose online check
	// failed, or -1 when the flight streamed clean.
	ViolationAt int
	// Final is the Auditor's close-of-flight verdict.
	Final protocol.SubmitPoAResponse
}

// FlyAdaptiveStreaming flies with adaptive sampling while transmitting
// each signed sample to the Auditor in real time (the alternative noted in
// the paper's §IV-B task 4: it enables in-flight violation detection at
// the cost of battery for the radio).
func (d *Drone) FlyAdaptiveStreaming(rx *gps.Receiver, zones []geo.GeoCircle, until time.Time) (*StreamingResult, error) {
	if d.id == "" {
		return nil, ErrNotRegistered
	}
	streamAPI, ok := d.api.(protocol.StreamAPI)
	if !ok {
		return nil, ErrStreamingUnsupported
	}

	open, err := streamAPI.OpenStream(protocol.OpenStreamRequest{DroneID: d.id})
	if err != nil {
		return nil, fmt.Errorf("open stream: %w", err)
	}

	// Wrap the secure-world Auth so every recorded sample is pushed to
	// the Auditor as it is taken.
	env := sampling.NewTEEEnv(d.dev, d.clock, rx)
	baseAuth := env.Auth
	violationAt := -1
	sampleIdx := 0
	env.Auth = func() (poa.SignedSample, error) {
		ss, err := baseAuth()
		if err != nil {
			return poa.SignedSample{}, err
		}
		resp, err := streamAPI.StreamSample(protocol.StreamSampleRequest{
			StreamID: open.StreamID,
			Sample:   ss,
		})
		if err != nil {
			return poa.SignedSample{}, fmt.Errorf("stream sample: %w", err)
		}
		if resp.Verdict == protocol.VerdictViolation && violationAt < 0 {
			violationAt = sampleIdx
		}
		sampleIdx++
		return ss, nil
	}

	a := &sampling.Adaptive{
		Env:     env,
		Index:   zone.NewIndex(zones, 0),
		VMaxMS:  geo.MaxDroneSpeedMPS,
		Metrics: d.metrics,
	}
	run, err := a.Run(until)
	if err != nil {
		return nil, fmt.Errorf("streaming flight: %w", err)
	}

	final, err := streamAPI.CloseStream(protocol.CloseStreamRequest{StreamID: open.StreamID})
	if err != nil {
		return nil, fmt.Errorf("close stream: %w", err)
	}
	return &StreamingResult{Run: run, ViolationAt: violationAt, Final: final}, nil
}
