package operator

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/protocol"
)

// deadAddr returns an address that refuses connections: a listener bound
// and immediately closed, so its port is (momentarily) free.
func deadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestWireClientRedialBackoffJitter pins the redial schedule: a failed
// dial arms a jittered backoff, attempts inside the window fail fast
// with ErrRedialBackoff, the window doubles per consecutive failure up
// to the cap, and the jitter spreads the deadline over [base/2, base).
func TestWireClientRedialBackoffJitter(t *testing.T) {
	c := NewWireClient(deadAddr(t), WireClientOptions{
		RedialBackoff:    100 * time.Millisecond,
		RedialMaxBackoff: 300 * time.Millisecond,
	})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	c.now = func() time.Time { return now }
	jitter := 0.5
	c.jitter = func() float64 { return jitter }

	dial := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.dialLocked()
	}

	// First dial fails against the dead address and arms the backoff:
	// 100ms base, jitter 0.5 → deadline now + 50ms + 25ms.
	if err := dial(); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if want := now.Add(75 * time.Millisecond); !c.nextDialAt.Equal(want) {
		t.Fatalf("nextDialAt = %v, want %v", c.nextDialAt, want)
	}

	// Inside the window: fail fast, no network attempt, schedule intact.
	if err := dial(); !errors.Is(err, ErrRedialBackoff) {
		t.Fatalf("dial inside backoff window: %v, want ErrRedialBackoff", err)
	}
	if want := now.Add(75 * time.Millisecond); !c.nextDialAt.Equal(want) {
		t.Fatalf("fast-fail moved the deadline to %v", c.nextDialAt)
	}

	// Past the deadline the dial is attempted again; the failure doubles
	// the base (200ms) and re-jitters: +100ms + 50ms.
	now = now.Add(80 * time.Millisecond)
	if err := dial(); errors.Is(err, ErrRedialBackoff) {
		t.Fatal("dial past deadline still backing off")
	}
	if want := now.Add(150 * time.Millisecond); !c.nextDialAt.Equal(want) {
		t.Fatalf("after second failure nextDialAt = %v, want %v", c.nextDialAt, want)
	}

	// A different jitter draw lands elsewhere in [base/2, base): the
	// fleet does not redial in lockstep.
	now = now.Add(200 * time.Millisecond)
	jitter = 0.0
	if err := dial(); errors.Is(err, ErrRedialBackoff) {
		t.Fatal("dial past deadline still backing off")
	}
	// Third failure: base doubles to 400ms but caps at 300ms; jitter 0 →
	// deadline now + 150ms exactly (the window floor).
	if want := now.Add(150 * time.Millisecond); !c.nextDialAt.Equal(want) {
		t.Fatalf("capped nextDialAt = %v, want %v", c.nextDialAt, want)
	}
}

// TestWireClientRedialBackoffResetsOnSuccess verifies both ends of the
// backoff lifecycle: a submission attempted inside the window surfaces
// as a conn-lost error without touching the network, and a successful
// handshake clears the armed state entirely.
func TestWireClientRedialBackoffResetsOnSuccess(t *testing.T) {
	s := startEchoWire(t)
	c := NewWireClient(s.lis.Addr().String(), WireClientOptions{
		BatchSize:     1, // flush (and so dial) immediately
		RedialBackoff: 50 * time.Millisecond,
	})
	defer c.Close()

	// Arm the backoff as a failed dial would, with the window still open:
	// the submission must fail fast as a lost connection.
	c.mu.Lock()
	c.redialWait = time.Second
	c.nextDialAt = time.Now().Add(time.Hour)
	c.mu.Unlock()
	_, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte("x")})
	if !errors.Is(err, ErrWireConnLost) {
		t.Fatalf("submit during backoff: %v, want ErrWireConnLost", err)
	}

	// Window expired: the dial goes through and the handshake resets the
	// schedule for the next incident.
	c.mu.Lock()
	c.nextDialAt = time.Now().Add(-time.Millisecond)
	c.mu.Unlock()
	if _, err := c.SubmitPoA(protocol.SubmitPoARequest{DroneID: "d", EncryptedPoA: []byte("y")}); err != nil {
		t.Fatalf("submit after window: %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.redialWait != 0 || !c.nextDialAt.IsZero() {
		t.Fatalf("successful handshake left backoff armed: wait=%v next=%v", c.redialWait, c.nextDialAt)
	}
}
