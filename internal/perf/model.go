// Package perf models the performance of the paper's hardware platform — a
// Raspberry Pi 3 Model B (1.2 GHz quad-core ARMv8, 1 GB LPDDR2) running the
// AliDrone client with OP-TEE — so that the Table II benchmarks can be
// regenerated without the physical board.
//
// The model is calibrated against Table II itself: the per-sample secure
// sampling cost (two world switches + RSA sign + bookkeeping) is chosen so
// the fixed-rate CPU utilisation rows reproduce, and everything else
// (feasibility of 2048-bit keys at 5 Hz, field-study utilisation, power)
// follows from the same constants. Power uses the Kaup et al. PowerPi
// model the paper cites (eq. 4):
//
//	P(u) = 1.5778 W + 0.181 * u W,   u = average CPU utilisation in [0,1].
package perf

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tee"
)

// Kaup et al. PowerPi model constants (paper eq. 4).
const (
	PowerIdleWatts    = 1.5778
	PowerPerUtilWatts = 0.181
)

// Power returns the Raspberry Pi power draw at the given CPU utilisation
// fraction u in [0,1] (1 = all four cores busy).
func Power(u float64) float64 {
	return PowerIdleWatts + PowerPerUtilWatts*u
}

// Model holds the calibrated cost constants of the simulated platform.
type Model struct {
	// Cores is the number of CPU cores (the `top` utilisation range in
	// the paper is [0, 25%] per process because the Pi has four).
	Cores int
	// SMCSwitch is the cost of one SMC round trip (normal→secure→normal).
	SMCSwitch time.Duration
	// SignCost maps RSA key bits to the secure-world cost of one
	// RSASSA-PKCS1-v1.5/SHA-1 signature, including padding and hashing.
	SignCost map[int]time.Duration
	// MACCost is the cost of one HMAC-SHA256 tag (§VII-A1a mode).
	MACCost time.Duration
	// ResidentMemoryBytes is the AliDrone client's resident set
	// (Table II reports 3.27 MB).
	ResidentMemoryBytes uint64
	// TotalMemoryBytes is the platform RAM (1 GB).
	TotalMemoryBytes uint64
}

// DefaultPiModel returns the Raspberry Pi 3 Model B calibration.
//
// Calibration: Table II's fixed-rate rows imply a per-sample cost of
// ~44 ms with a 1024-bit key (2 Hz → 2.17% of four cores) and ~220 ms with
// a 2048-bit key (2 Hz → 10.94%, 3 Hz → 16.81%). At 5 Hz a 2048-bit key
// needs 5 × 220 ms = 1.1 s of CPU per second — more than one core — which
// is exactly why the paper reports "-" for that cell.
func DefaultPiModel() *Model {
	return &Model{
		Cores:     4,
		SMCSwitch: 500 * time.Microsecond,
		SignCost: map[int]time.Duration{
			1024: 43500 * time.Microsecond,
			2048: 219500 * time.Microsecond,
			3072: 650 * time.Millisecond,
		},
		MACCost:             200 * time.Microsecond,
		ResidentMemoryBytes: 3427 * 1024,        // 3.27 MB as in Table II
		TotalMemoryBytes:    1024 * 1024 * 1024, // 1 GB LPDDR2
	}
}

// signCost returns the signature cost for the given key size,
// extrapolating with the empirical ~(bits)^2.3 growth between the
// calibrated points when the exact size is absent.
func (m *Model) signCost(bits int) time.Duration {
	if d, ok := m.SignCost[bits]; ok {
		return d
	}
	base, ok := m.SignCost[1024]
	if !ok {
		base = 43500 * time.Microsecond
	}
	const exp = 2.335 // log2(219.5/43.5)
	scale := math.Pow(float64(bits)/1024, exp)
	return time.Duration(float64(base) * scale)
}

// PerSampleCost is the secure-world CPU time of one authenticated GPS
// sample: one SMC round trip plus one signature.
func (m *Model) PerSampleCost(keyBits int) time.Duration {
	return m.SMCSwitch + m.signCost(keyBits)
}

// PerSampleMACCost is the §VII-A1a symmetric-mode equivalent.
func (m *Model) PerSampleMACCost() time.Duration {
	return m.SMCSwitch + m.MACCost
}

// CPUSeconds converts secure-world counters into charged CPU time.
// SignedBytes is ignored for RSA (cost is dominated by the private-key
// operation, not the hash) — a deliberate simplification that matches the
// small per-sample payloads.
func (m *Model) CPUSeconds(st tee.Stats, keyBits int) time.Duration {
	total := time.Duration(st.SMCCalls) * m.SMCSwitch
	total += time.Duration(st.Signs) * m.signCost(keyBits)
	total += time.Duration(st.MACs) * m.MACCost
	return total
}

// Utilization returns the average CPU utilisation fraction over elapsed
// wall time, as `top` reports it on the quad-core board: charged CPU time
// divided by (elapsed × cores). The result is clamped to [0,1].
func (m *Model) Utilization(st tee.Stats, elapsed time.Duration, keyBits int) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := m.CPUSeconds(st, keyBits).Seconds() / (elapsed.Seconds() * float64(m.Cores))
	return math.Min(1, math.Max(0, u))
}

// SingleCoreLoad returns the fraction of ONE core a sustained sampling rate
// consumes. The GPS Sampler runs single-threaded, so feasibility is bounded
// by one core, not four.
func (m *Model) SingleCoreLoad(rateHz float64, keyBits int) float64 {
	return rateHz * m.PerSampleCost(keyBits).Seconds()
}

// Feasible reports whether the platform can sustain the sampling rate with
// the given key size — the "-" cells of Table II are exactly the
// infeasible combinations.
func (m *Model) Feasible(rateHz float64, keyBits int) bool {
	return m.SingleCoreLoad(rateHz, keyBits) <= 1.0
}

// MaxRateHz returns the highest sustainable sampling rate for a key size.
func (m *Model) MaxRateHz(keyBits int) float64 {
	return 1.0 / m.PerSampleCost(keyBits).Seconds()
}

// MemoryFraction returns resident memory as a fraction of platform RAM
// (Table II reports 0.3%).
func (m *Model) MemoryFraction() float64 {
	if m.TotalMemoryBytes == 0 {
		return 0
	}
	return float64(m.ResidentMemoryBytes) / float64(m.TotalMemoryBytes)
}

// Report is one Table II row: CPU%, power and memory for a run.
type Report struct {
	Case        string
	KeyBits     int
	CPUPercent  float64 // of all cores, as `top` reports ([0, 25] per core share)
	PowerWatts  float64
	MemoryBytes uint64
	Feasible    bool
}

// Measure builds a Table II row from secure-world counters.
func (m *Model) Measure(name string, st tee.Stats, elapsed time.Duration, keyBits int) Report {
	u := m.Utilization(st, elapsed, keyBits)
	return Report{
		Case:        name,
		KeyBits:     keyBits,
		CPUPercent:  u * 100,
		PowerWatts:  Power(u),
		MemoryBytes: m.ResidentMemoryBytes,
		Feasible:    true,
	}
}

// InfeasibleReport builds the "-" row for a combination the platform
// cannot sustain.
func InfeasibleReport(name string, keyBits int) Report {
	return Report{Case: name, KeyBits: keyBits, Feasible: false}
}

// String renders the row in the paper's format.
func (r Report) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%-4d  %-12s  %8s  %8s", r.KeyBits, r.Case, "-", "-")
	}
	return fmt.Sprintf("%-4d  %-12s  %7.2f%%  %7.4fW", r.KeyBits, r.Case, r.CPUPercent, r.PowerWatts)
}
