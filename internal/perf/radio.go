package perf

import "time"

// RadioModel quantifies the communication-energy trade-off behind the
// paper's §IV-B design decision: "the drone could alternately transmit its
// PoAs in real-time to the Auditor; however, we do not pursue this
// solution as it would increase battery drain". The model charges energy
// per radio transaction and per byte, using figures representative of a
// small 802.11/LTE module on a drone-class battery budget.
type RadioModel struct {
	// TxPowerWatts is the radio's active transmit power draw.
	TxPowerWatts float64
	// TxOverhead is the wake/associate/settle time charged per
	// transaction (connection reuse amortises handshakes, not wake-ups).
	TxOverhead time.Duration
	// ThroughputBytesPerSec converts payload size into airtime.
	ThroughputBytesPerSec float64
	// IdleListenWatts is the extra draw of keeping the radio attached
	// between transmissions in streaming mode (0 when the radio sleeps).
	IdleListenWatts float64
}

// DefaultRadioModel returns figures for a small WiFi module: ~0.8 W
// transmitting, 20 ms per wake-up, ~2 MB/s effective uplink, 50 mW extra
// while attached.
func DefaultRadioModel() *RadioModel {
	return &RadioModel{
		TxPowerWatts:          0.8,
		TxOverhead:            20 * time.Millisecond,
		ThroughputBytesPerSec: 2e6,
		IdleListenWatts:       0.05,
	}
}

// TxEnergyJoules returns the energy for one transmission of the given
// payload size.
func (r *RadioModel) TxEnergyJoules(payloadBytes int) float64 {
	airtime := r.TxOverhead.Seconds() + float64(payloadBytes)/r.ThroughputBytesPerSec
	return r.TxPowerWatts * airtime
}

// OfflineSubmissionJoules is the radio energy of the paper's chosen
// design: one bulk upload of the whole encrypted PoA after landing, radio
// asleep during the flight.
func (r *RadioModel) OfflineSubmissionJoules(totalPoABytes int) float64 {
	return r.TxEnergyJoules(totalPoABytes)
}

// StreamingSubmissionJoules is the real-time alternative: one transmission
// per sample plus the attached-idle draw for the whole flight.
func (r *RadioModel) StreamingSubmissionJoules(samples, bytesPerSample int, flight time.Duration) float64 {
	total := float64(samples) * r.TxEnergyJoules(bytesPerSample)
	total += r.IdleListenWatts * flight.Seconds()
	return total
}

// StreamingOverheadFactor returns how many times more radio energy the
// streaming mode costs than the offline submission for the same flight —
// the quantity that justifies the paper's choice (goal G2).
func (r *RadioModel) StreamingOverheadFactor(samples, bytesPerSample int, flight time.Duration) float64 {
	offline := r.OfflineSubmissionJoules(samples * bytesPerSample)
	if offline == 0 {
		return 0
	}
	return r.StreamingSubmissionJoules(samples, bytesPerSample, flight) / offline
}
