package perf

import (
	"testing"
	"time"
)

func TestTxEnergyScalesWithPayload(t *testing.T) {
	r := DefaultRadioModel()
	small := r.TxEnergyJoules(100)
	big := r.TxEnergyJoules(1_000_000)
	if small <= 0 || big <= small {
		t.Errorf("energy: small=%v big=%v", small, big)
	}
	// The per-wake overhead dominates tiny payloads: doubling a 100-byte
	// payload barely changes the cost.
	if r.TxEnergyJoules(200) > small*1.01 {
		t.Error("overhead should dominate tiny payloads")
	}
}

func TestStreamingCostsMoreThanOffline(t *testing.T) {
	r := DefaultRadioModel()
	// A residential flight: ~450 samples of ~200 bytes over 155 s.
	factor := r.StreamingOverheadFactor(450, 200, 155*time.Second)
	if factor < 5 {
		t.Errorf("streaming overhead factor = %.1f, want ≫ 1 (the paper's §IV-B rationale)", factor)
	}

	offline := r.OfflineSubmissionJoules(450 * 200)
	streaming := r.StreamingSubmissionJoules(450, 200, 155*time.Second)
	if streaming <= offline {
		t.Errorf("streaming %v J <= offline %v J", streaming, offline)
	}
}

func TestStreamingOverheadDegenerate(t *testing.T) {
	r := &RadioModel{TxPowerWatts: 0, ThroughputBytesPerSec: 1}
	if got := r.StreamingOverheadFactor(10, 10, time.Minute); got != 0 {
		t.Errorf("degenerate factor = %v, want 0", got)
	}
}
