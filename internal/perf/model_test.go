package perf

import (
	"math"
	"testing"
	"time"

	"repro/internal/tee"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPowerModel(t *testing.T) {
	if !almost(Power(0), 1.5778, 1e-9) {
		t.Errorf("idle power = %v", Power(0))
	}
	if !almost(Power(1), 1.7588, 1e-9) {
		t.Errorf("full power = %v", Power(1))
	}
	// The paper's fixed 2 Hz / 1024-bit row: u = 2.17% → 1.5817 W.
	if got := Power(0.0217); !almost(got, 1.5817, 0.0001) {
		t.Errorf("Power(0.0217) = %v, want ~1.5817", got)
	}
}

// TestTableIIFixedRateCalibration checks that the model reproduces the
// fixed-rate CPU rows of Table II within a small tolerance.
func TestTableIIFixedRateCalibration(t *testing.T) {
	m := DefaultPiModel()
	elapsed := 5 * time.Minute

	tests := []struct {
		rateHz  float64
		keyBits int
		wantCPU float64 // percent of all four cores
		tol     float64
	}{
		{2, 1024, 2.17, 0.15},
		{3, 1024, 3.17, 0.20},
		{5, 1024, 5.59, 0.30},
		{2, 2048, 10.94, 0.20},
		{3, 2048, 16.81, 0.40},
	}
	for _, tt := range tests {
		samples := uint64(tt.rateHz * elapsed.Seconds())
		st := tee.Stats{SMCCalls: samples, Signs: samples, SignedBytes: samples * 50}
		got := m.Utilization(st, elapsed, tt.keyBits) * 100
		if !almost(got, tt.wantCPU, tt.tol) {
			t.Errorf("%v Hz / %d bits: CPU = %.2f%%, want %.2f±%.2f",
				tt.rateHz, tt.keyBits, got, tt.wantCPU, tt.tol)
		}
	}
}

func TestTableIIFeasibility(t *testing.T) {
	m := DefaultPiModel()
	// The "-" cells: 2048-bit at 5 Hz is infeasible; everything in the
	// 1024-bit column is feasible.
	if m.Feasible(5, 2048) {
		t.Error("2048-bit at 5 Hz should be infeasible")
	}
	for _, rate := range []float64{1, 2, 3, 5} {
		if !m.Feasible(rate, 1024) {
			t.Errorf("1024-bit at %v Hz should be feasible", rate)
		}
	}
	if !m.Feasible(3, 2048) {
		t.Error("2048-bit at 3 Hz should be feasible (Table II has a value)")
	}
	// Max sustainable rate for 2048 bits sits between 3 and 5 Hz.
	if max := m.MaxRateHz(2048); max < 3 || max > 5 {
		t.Errorf("MaxRateHz(2048) = %v, want in (3, 5)", max)
	}
}

func TestMemoryFraction(t *testing.T) {
	m := DefaultPiModel()
	// Table II: 3.27 MB = 0.3% of 1 GB.
	if got := m.MemoryFraction() * 100; !almost(got, 0.33, 0.05) {
		t.Errorf("memory fraction = %.3f%%, want ~0.33", got)
	}
	empty := &Model{}
	if empty.MemoryFraction() != 0 {
		t.Error("zero-RAM model should report 0")
	}
}

func TestSignCostExtrapolation(t *testing.T) {
	m := DefaultPiModel()
	// Known sizes come straight from the table.
	if m.signCost(1024) != 43500*time.Microsecond {
		t.Errorf("signCost(1024) = %v", m.signCost(1024))
	}
	// Unknown sizes extrapolate monotonically.
	c1536 := m.signCost(1536)
	if c1536 <= m.signCost(1024) || c1536 >= m.signCost(2048) {
		t.Errorf("signCost(1536) = %v not between 1024 and 2048 costs", c1536)
	}
	// A model with no 1024 anchor still works.
	bare := &Model{SignCost: map[int]time.Duration{}}
	if bare.signCost(1024) <= 0 {
		t.Error("bare model sign cost should fall back to a positive default")
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	m := DefaultPiModel()
	st := tee.Stats{SMCCalls: 10, Signs: 10}
	if m.Utilization(st, 0, 1024) != 0 {
		t.Error("zero elapsed should give 0")
	}
	// Overload clamps to 1.
	huge := tee.Stats{SMCCalls: 1e6, Signs: 1e6}
	if u := m.Utilization(huge, time.Second, 2048); u != 1 {
		t.Errorf("overloaded utilisation = %v, want clamp to 1", u)
	}
}

func TestMACMode(t *testing.T) {
	m := DefaultPiModel()
	// Symmetric mode must be orders of magnitude cheaper than RSA
	// (the premise of §VII-A1a).
	if m.PerSampleMACCost() > m.PerSampleCost(1024)/10 {
		t.Errorf("MAC cost %v not ≪ RSA cost %v", m.PerSampleMACCost(), m.PerSampleCost(1024))
	}
	st := tee.Stats{SMCCalls: 1000, MACs: 1000}
	u := m.Utilization(st, 200*time.Second, 1024)
	if u > 0.01 {
		t.Errorf("MAC-mode utilisation = %v, want < 1%%", u)
	}
}

func TestMeasureAndReportString(t *testing.T) {
	m := DefaultPiModel()
	st := tee.Stats{SMCCalls: 600, Signs: 600}
	rep := m.Measure("Fixed 2 Hz", st, 5*time.Minute, 1024)
	if !rep.Feasible {
		t.Error("measured report should be feasible")
	}
	if rep.CPUPercent <= 0 || rep.PowerWatts <= PowerIdleWatts {
		t.Errorf("report = %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty String()")
	}

	inf := InfeasibleReport("Fixed 5 Hz", 2048)
	if inf.Feasible {
		t.Error("infeasible report marked feasible")
	}
	if inf.String() == "" {
		t.Error("empty infeasible String()")
	}
}
