package attack

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/auditor"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/operator"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
)

var (
	t0     = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	urbana = geo.LatLon{Lat: 40.1106, Lon: -88.2073}
)

// world is a full honest stack the attacker subverts: auditor, registered
// drone, a zone near the flight path, and an honest PoA from a clean
// flight.
type world struct {
	srv     *auditor.Server
	drone   *operator.Drone
	zone    geo.GeoCircle
	zoneID  string
	honest  poa.PoA
	evalCtx Evaluate
}

func newWorld(t *testing.T) *world {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	srv, err := auditor.NewServer(auditor.Config{Random: rng})
	if err != nil {
		t.Fatal(err)
	}

	z := geo.GeoCircle{Center: urbana.Offset(0, 120), R: 30}
	zoneID, err := srv.Zones().Register("alice", z)
	if err != nil {
		t.Fatal(err)
	}

	vault, err := tee.ManufactureVault(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	clock := tee.NewSimClock(t0)
	dev := tee.NewDevice(clock, vault)

	route, err := trace.ConstantSpeedLine(urbana, 90, 10, t0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := gps.NewReceiver(route, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), rng); err != nil {
		t.Fatal(err)
	}

	d, err := operator.NewDrone(srv, srv.EncryptionPub(), dev, clock, sigcrypto.KeySize1024, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Register(); err != nil {
		t.Fatal(err)
	}

	res, err := d.FlyAdaptive(rx, []geo.GeoCircle{z}, route.End())
	if err != nil {
		t.Fatal(err)
	}

	return &world{
		srv: srv, drone: d, zone: z, zoneID: zoneID, honest: res.PoA,
		evalCtx: Evaluate{API: srv, DroneID: d.ID(), EncryptPoA: d.EncryptPoA},
	}
}

func TestHonestBaselineAccepted(t *testing.T) {
	w := newWorld(t)
	r, err := w.evalCtx.Run("honest", w.honest)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected {
		t.Fatalf("honest PoA flagged: %s", r.Reason)
	}
}

func TestForgeRouteDetected(t *testing.T) {
	w := newWorld(t)
	attackerKey, err := sigcrypto.GenerateKeyPair(rand.New(rand.NewSource(5)), sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := ForgeRoute(attackerKey, urbana.Offset(180, 3000), 90, 10, 60, t0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.evalCtx.Run("forge-route", forged)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		t.Error("forged route not detected")
	}
}

func TestTamperDetected(t *testing.T) {
	w := newWorld(t)
	tampered, err := Tamper(w.honest, w.zone, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.evalCtx.Run("tamper", tampered)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		t.Error("tampered PoA not detected")
	}
}

func TestTamperActuallyMovedSamples(t *testing.T) {
	w := newWorld(t)
	tampered, err := Tamper(w.honest, w.zone, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range tampered.Samples {
		if tampered.Samples[i].Sample.Pos != w.honest.Samples[i].Sample.Pos {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("tamper attack moved no samples; test world geometry wrong")
	}
}

func TestTruncateDetected(t *testing.T) {
	w := newWorld(t)
	// Remove the middle of the flight, exactly when the drone passed the
	// zone (closest approach at ~t0+60 s given the 600 m abeam point).
	truncated, err := Truncate(w.honest, t0.Add(2*time.Second), t0.Add(110*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if truncated.Len() >= w.honest.Len() {
		t.Fatal("truncation removed nothing")
	}
	r, err := w.evalCtx.Run("truncate", truncated)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		t.Error("truncated PoA not detected (gap spans the zone approach)")
	}
}

func TestReplayDetected(t *testing.T) {
	w := newWorld(t)
	// First submission is honest and accepted.
	r1, err := w.evalCtx.Run("first", w.honest)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Detected {
		t.Fatalf("honest submission rejected: %s", r1.Reason)
	}
	// Re-submitting the same trace for a "new flight" is caught.
	r2, err := w.evalCtx.Run("replay", Replay(w.honest))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Detected {
		t.Error("replayed PoA not detected")
	}
}

func TestSpliceDetected(t *testing.T) {
	w := newWorld(t)

	// The attacker stitches two honestly signed fragments into one
	// claimed flight. Overlapping the seam duplicates a timestamp, which
	// the chronology check catches; a disjoint seam would instead leave
	// an uncovered gap caught by sufficiency (TestTruncateDetected).
	half := w.honest.Len() / 2
	a := poa.PoA{Samples: w.honest.Samples[:half]}
	b := poa.PoA{Samples: w.honest.Samples[half-1:]} // overlap → duplicate timestamp
	spliced, err := Splice(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.evalCtx.Run("splice", spliced)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		t.Error("spliced PoA with duplicated timestamps not detected")
	}
}

func TestAccusationAgainstTruncatedTrace(t *testing.T) {
	w := newWorld(t)
	truncated, err := Truncate(w.honest, t0.Add(30*time.Second), t0.Add(90*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.evalCtx.Run("truncate", truncated)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected {
		// If the submission was rejected outright, the attack already
		// failed; nothing more to check.
		return
	}
	// Had it slipped through, the accusation at the incident time would
	// still fail to produce an exonerating pair.
	if _, err := w.srv.HandleAccusation(w.drone.ID(), w.zoneID, t0.Add(60*time.Second)); err == nil {
		t.Log("accusation answered (pair existed); acceptable only if pair proves alibi")
	}
}

func TestAttackConstructorsValidate(t *testing.T) {
	if _, err := Tamper(poa.PoA{}, geo.GeoCircle{}, 1, 1); !errors.Is(err, ErrNeedSamples) {
		t.Errorf("Tamper err = %v", err)
	}
	if _, err := Truncate(poa.PoA{}, t0, t0); !errors.Is(err, ErrNeedSamples) {
		t.Errorf("Truncate err = %v", err)
	}
	if _, err := Splice(poa.PoA{}, poa.PoA{}); !errors.Is(err, ErrNeedSamples) {
		t.Errorf("Splice err = %v", err)
	}
}

// TestUnforgeabilitySweep: no attack in the suite yields a compliant
// verdict — the paper's goal G3 as a single property.
func TestUnforgeabilitySweep(t *testing.T) {
	w := newWorld(t)
	attackerKey, err := sigcrypto.GenerateKeyPair(rand.New(rand.NewSource(6)), sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}

	forged, err := ForgeRoute(attackerKey, urbana.Offset(180, 3000), 90, 10, 30, t0)
	if err != nil {
		t.Fatal(err)
	}
	tampered, err := Tamper(w.honest, w.zone, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	truncated, err := Truncate(w.honest, t0.Add(2*time.Second), t0.Add(110*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	attacks := map[string]poa.PoA{
		"forge-route": forged,
		"tamper":      tampered,
		"truncate":    truncated,
	}
	for name, p := range attacks {
		r, err := w.evalCtx.Run(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Verdict == protocol.VerdictCompliant {
			t.Errorf("attack %q produced a compliant verdict", name)
		}
	}
}
