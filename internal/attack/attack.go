// Package attack implements the GPS forgery attacks from the paper's
// threat model (§III-B): a dishonest Drone Operator who flew through a
// no-fly zone tries to present an innocuous trace to the Auditor. Each
// constructor builds the malicious Proof-of-Alibi a rational attacker
// would submit; Evaluate submits it and reports whether the Auditor caught
// it. The attack suite doubles as the unforgeability evaluation (goal G3)
// and powers examples/forgery.
package attack

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/protocol"
	"repro/internal/sigcrypto"
)

// ErrNeedSamples is returned when an attack requires a non-empty honest
// PoA to start from.
var ErrNeedSamples = errors.New("attack: need a non-empty source PoA")

// ForgeRoute fabricates a compliant-looking trace and signs it with a key
// the attacker controls (they cannot extract T- from the TEE, so the best
// they can do is sign with their own key). start/bearing/speed describe the
// innocuous route; the samples are spaced one second apart.
func ForgeRoute(attackerKey *rsa.PrivateKey, start geo.LatLon, bearingDeg, speedMS float64, n int, t0 time.Time) (poa.PoA, error) {
	var p poa.PoA
	for i := 0; i < n; i++ {
		s := poa.Sample{
			Pos:  start.Offset(bearingDeg, speedMS*float64(i)),
			Time: t0.Add(time.Duration(i) * time.Second),
		}.Canon()
		sig, err := sigcrypto.Sign(attackerKey, s.Marshal())
		if err != nil {
			return poa.PoA{}, fmt.Errorf("forge route: %w", err)
		}
		p.Append(poa.SignedSample{Sample: s, Sig: sig})
	}
	return p, nil
}

// Tamper takes an honest TEE-signed PoA and moves the samples that came
// too close to the zone, keeping the original signatures (the attacker
// cannot re-sign). offsetMeters displaces every sample within
// nearMeters of the zone boundary directly away from the zone centre.
func Tamper(honest poa.PoA, z geo.GeoCircle, nearMeters, offsetMeters float64) (poa.PoA, error) {
	if honest.Len() == 0 {
		return poa.PoA{}, ErrNeedSamples
	}
	out := poa.PoA{Samples: make([]poa.SignedSample, honest.Len())}
	copy(out.Samples, honest.Samples)
	for i, ss := range out.Samples {
		if z.BoundaryDistMeters(ss.Sample.Pos) < nearMeters {
			away := geo.InitialBearing(z.Center, ss.Sample.Pos)
			ss.Sample.Pos = ss.Sample.Pos.Offset(away, offsetMeters)
			out.Samples[i] = ss
		}
	}
	return out, nil
}

// Truncate drops the samples inside [from, to] — the window during which
// the drone was in (or near) the zone — hoping the Auditor will not notice
// the gap. Signatures of the remaining samples stay valid.
func Truncate(honest poa.PoA, from, to time.Time) (poa.PoA, error) {
	if honest.Len() == 0 {
		return poa.PoA{}, ErrNeedSamples
	}
	var out poa.PoA
	for _, ss := range honest.Samples {
		if !ss.Sample.Time.Before(from) && !ss.Sample.Time.After(to) {
			continue
		}
		out.Append(ss)
	}
	return out, nil
}

// Splice merges samples from two honest PoAs (e.g. an old compliant flight
// and the violating flight's clean prefix) into one trace, sorted by time.
// Each sample keeps its valid signature; the seams are where detection
// happens.
func Splice(a, b poa.PoA) (poa.PoA, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return poa.PoA{}, ErrNeedSamples
	}
	out := poa.PoA{Samples: make([]poa.SignedSample, 0, a.Len()+b.Len())}
	out.Samples = append(out.Samples, a.Samples...)
	out.Samples = append(out.Samples, b.Samples...)
	sort.Slice(out.Samples, func(i, j int) bool {
		return out.Samples[i].Sample.Time.Before(out.Samples[j].Sample.Time)
	})
	return out, nil
}

// Replay returns the previously reported PoA unchanged — the attacker
// resubmits an old compliant trace for a new flight.
func Replay(old poa.PoA) poa.PoA { return old }

// Result records one attack attempt against the Auditor.
type Result struct {
	Name     string
	Verdict  protocol.Verdict
	Reason   string
	Detected bool // true when the Auditor rejected or flagged the PoA
}

// Evaluate submits an attack PoA through the protocol (encrypting to the
// Auditor like an honest Adapter would) and records whether it was caught.
type Evaluate struct {
	API        protocol.API
	DroneID    string
	EncryptPoA func(poa.PoA) ([]byte, error)
}

// Run submits the PoA and classifies the outcome.
func (e Evaluate) Run(name string, p poa.PoA) (Result, error) {
	ct, err := e.EncryptPoA(p)
	if err != nil {
		return Result{}, fmt.Errorf("attack %q: encrypt: %w", name, err)
	}
	resp, err := e.API.SubmitPoA(protocol.SubmitPoARequest{DroneID: e.DroneID, EncryptedPoA: ct})
	if err != nil {
		// A transport-level rejection is also a detection.
		return Result{Name: name, Detected: true, Reason: err.Error()}, nil
	}
	return Result{
		Name:     name,
		Verdict:  resp.Verdict,
		Reason:   resp.Reason,
		Detected: resp.Verdict == protocol.VerdictViolation,
	}, nil
}
