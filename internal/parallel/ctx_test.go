package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// Context cancellation contract of FirstErrorCtx: a done context stops
// the scan with ctx.Err(), except that an already-found genuine failure
// always wins — a forged sample must never be masked by the submitter
// going away mid-verification.

func TestFirstErrorCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	i, err := (*Pool)(nil).FirstErrorCtx(ctx, 100, func(idx int) error {
		if calls.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if i != -1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstErrorCtx = %d, %v; want -1, context.Canceled", i, err)
	}
	if n := calls.Load(); n >= 100 {
		t.Errorf("cancellation did not stop the scan: %d calls", n)
	}
}

func TestFirstErrorCtxParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(4)
	var calls atomic.Int64
	i, err := p.FirstErrorCtx(ctx, 10_000, func(idx int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if i != -1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstErrorCtx = %d, %v; want -1, context.Canceled", i, err)
	}
	if n := calls.Load(); n >= 10_000 {
		t.Errorf("cancellation did not stop the workers: %d calls", n)
	}
}

func TestFirstErrorCtxFailureBeatsCancel(t *testing.T) {
	forged := errors.New("forged sample")
	for _, p := range []*Pool{nil, NewPool(4)} {
		ctx, cancel := context.WithCancel(context.Background())
		i, err := p.FirstErrorCtx(ctx, 50, func(idx int) error {
			if idx == 7 {
				cancel() // the caller goes away at the same moment...
				return forged
			}
			return nil
		})
		// ...but the recorded failure must still be reported.
		if i != 7 || !errors.Is(err, forged) {
			t.Errorf("pool size %d: FirstErrorCtx = %d, %v; want 7, forged", p.Size(), i, err)
		}
	}
}

func TestFirstErrorCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []*Pool{nil, NewPool(4)} {
		var calls atomic.Int64
		i, err := p.FirstErrorCtx(ctx, 100, func(int) error {
			calls.Add(1)
			return nil
		})
		if i != -1 || !errors.Is(err, context.Canceled) {
			t.Errorf("pool size %d: FirstErrorCtx = %d, %v", p.Size(), i, err)
		}
		if calls.Load() != 0 {
			t.Errorf("pool size %d: %d checks ran under a dead context", p.Size(), calls.Load())
		}
	}
}

func TestFirstErrorCtxBackgroundMatchesFirstError(t *testing.T) {
	fail := errors.New("fail")
	for _, p := range []*Pool{nil, NewPool(4)} {
		i1, err1 := p.FirstError(200, func(i int) error {
			if i%37 == 36 {
				return fail
			}
			return nil
		})
		i2, err2 := p.FirstErrorCtx(context.Background(), 200, func(i int) error {
			if i%37 == 36 {
				return fail
			}
			return nil
		})
		if i1 != i2 || !errors.Is(err1, fail) || !errors.Is(err2, fail) {
			t.Errorf("pool size %d: FirstError = (%d, %v), FirstErrorCtx = (%d, %v)", p.Size(), i1, err1, i2, err2)
		}
	}
}
