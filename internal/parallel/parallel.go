// Package parallel is the worker-pool substrate of the auditor's
// verification engine. A Pool bounds the number of goroutines doing
// CPU-bound verification work (RSA/HMAC per-sample checks, sufficiency
// geometry) across *all* concurrent requests, so a burst of submissions
// degrades gracefully instead of spawning submissions × samples
// goroutines.
//
// Determinism is a design requirement, not an accident: every helper is
// specified so that a Pool with one worker (or a nil Pool) produces
// byte-identical results to the historical sequential loops, and a Pool
// with many workers produces the *same* results faster. FirstError
// returns the lowest failing index — exactly what a sequential scan
// would report — and Shard preserves input order by handing out
// contiguous ranges.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 select
// GOMAXPROCS, the "as fast as the hardware allows" default.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded set of verification workers shared by all parallel
// stages of a server. The zero value is unusable; use NewPool. A nil
// *Pool is valid everywhere and means "run sequentially".
type Pool struct {
	workers int
	sem     chan struct{}
	// OnBusy, when set, is called with +1 when a worker slot is taken
	// and -1 when it is returned. The auditor points this at its
	// pool-depth gauge. It must be safe for concurrent use.
	OnBusy func(delta int)
}

// NewPool creates a pool with the given number of worker slots
// (<= 0 selects GOMAXPROCS).
func NewPool(workers int) *Pool {
	w := Workers(workers)
	return &Pool{workers: w, sem: make(chan struct{}, w)}
}

// Size returns the number of worker slots (1 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Sequential reports whether this pool degenerates to the sequential
// path: nil or a single worker slot.
func (p *Pool) Sequential() bool { return p == nil || p.workers == 1 }

func (p *Pool) acquire() {
	p.sem <- struct{}{}
	if p.OnBusy != nil {
		p.OnBusy(1)
	}
}

func (p *Pool) release() {
	if p.OnBusy != nil {
		p.OnBusy(-1)
	}
	<-p.sem
}

// FirstError runs check(0) … check(n-1) and returns the lowest index
// whose check failed together with its error, or (-1, nil) when every
// check passes — the exact contract of a sequential early-return loop.
//
// On a multi-worker pool the indices are claimed from a shared counter
// by up to Size() workers; once a failure at index f is known, indices
// above f are cancelled (never claimed), so a forged sample near the
// front of a long trace does not pay for verifying the whole tail.
// Indices below f are always fully checked, which is what makes the
// reported index deterministic: it is the global minimum failing index,
// not merely the first one observed.
func (p *Pool) FirstError(n int, check func(int) error) (int, error) {
	return p.FirstErrorCtx(context.Background(), n, check)
}

// FirstErrorCtx is FirstError with cooperative cancellation: when ctx is
// done, workers stop claiming new indices and the call returns
// (-1, ctx.Err()) — unless a genuine check failure was already recorded,
// in which case the lowest failure seen wins so a found forgery is never
// masked by the caller going away. A context that can never be cancelled
// (context.Background()) adds no per-index overhead.
func (p *Pool) FirstErrorCtx(ctx context.Context, n int, check func(int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	done := ctx.Done()
	if p.Sequential() || n == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return -1, ctx.Err()
				default:
				}
			}
			if err := check(i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}

	var (
		next    atomic.Int64 // next index to claim
		minFail atomic.Int64 // lowest failing index seen so far
		mu      sync.Mutex
		errs    map[int]error
		wg      sync.WaitGroup
	)
	minFail.Store(int64(n))

	workers := p.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.acquire()
			defer p.release()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1) - 1)
				// Cancellation: nothing at or above a known failure can
				// change the answer, so stop claiming.
				if i >= n || int64(i) >= minFail.Load() {
					return
				}
				if err := check(i); err != nil {
					mu.Lock()
					if errs == nil {
						errs = make(map[int]error)
					}
					errs[i] = err
					mu.Unlock()
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if f := int(minFail.Load()); f < n {
		return f, errs[f]
	}
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	return -1, nil
}

// Shards splits [0, n) into at most workers contiguous half-open ranges
// of near-equal size, in order. It returns nil for n <= 0.
func Shards(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := (n - lo) / (workers - w)
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// Each runs fn over contiguous shards of [0, n) and waits for all of
// them. Shard s covers [lo, hi). With a nil or single-worker pool it is
// one synchronous call fn(0, 0, n); otherwise up to Size() workers each
// take one shard, so callers can collect per-shard results into a slice
// indexed by s and concatenate to preserve input order.
func (p *Pool) Each(n int, fn func(s, lo, hi int)) int {
	shards := Shards(n, p.Size())
	if len(shards) == 0 {
		return 0
	}
	if p.Sequential() || len(shards) == 1 {
		fn(0, shards[0][0], shards[0][1])
		return 1
	}
	var wg sync.WaitGroup
	for s, sh := range shards {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			p.acquire()
			defer p.release()
			fn(s, lo, hi)
		}(s, sh[0], sh[1])
	}
	wg.Wait()
	return len(shards)
}
