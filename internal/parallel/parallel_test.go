package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestPoolSize(t *testing.T) {
	var nilPool *Pool
	if nilPool.Size() != 1 || !nilPool.Sequential() {
		t.Error("nil pool must be sequential with size 1")
	}
	if p := NewPool(4); p.Size() != 4 || p.Sequential() {
		t.Errorf("NewPool(4): size=%d sequential=%v", p.Size(), p.Sequential())
	}
	if p := NewPool(1); !p.Sequential() {
		t.Error("NewPool(1) must be sequential")
	}
}

// TestFirstErrorLowestIndex: with several failing indices, every pool
// shape must report the lowest one — the sequential contract.
func TestFirstErrorLowestIndex(t *testing.T) {
	fails := map[int]bool{3: true, 7: true, 120: true}
	check := func(i int) error {
		if fails[i] {
			return fmt.Errorf("bad index %d", i)
		}
		return nil
	}
	for _, p := range []*Pool{nil, NewPool(1), NewPool(4), NewPool(16)} {
		idx, err := p.FirstError(200, check)
		if idx != 3 || err == nil || err.Error() != "bad index 3" {
			t.Errorf("pool size %d: FirstError = (%d, %v), want (3, bad index 3)", p.Size(), idx, err)
		}
	}
}

func TestFirstErrorAllPass(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(4)} {
		var calls atomic.Int64
		idx, err := p.FirstError(50, func(int) error { calls.Add(1); return nil })
		if idx != -1 || err != nil {
			t.Errorf("pool size %d: FirstError = (%d, %v), want (-1, nil)", p.Size(), idx, err)
		}
		if calls.Load() != 50 {
			t.Errorf("pool size %d: %d calls, want 50", p.Size(), calls.Load())
		}
	}
}

func TestFirstErrorEmpty(t *testing.T) {
	if idx, err := NewPool(4).FirstError(0, func(int) error { return errors.New("never") }); idx != -1 || err != nil {
		t.Errorf("FirstError(0) = (%d, %v)", idx, err)
	}
}

// TestFirstErrorCancels: an early failure must stop the pool from
// claiming the whole tail of a long input.
func TestFirstErrorCancels(t *testing.T) {
	p := NewPool(4)
	var calls atomic.Int64
	idx, err := p.FirstError(100000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return errors.New("immediate")
		}
		return nil
	})
	if idx != 0 || err == nil {
		t.Fatalf("FirstError = (%d, %v)", idx, err)
	}
	if c := calls.Load(); c > 10000 {
		t.Errorf("early failure did not cancel: %d of 100000 checked", c)
	}
}

func TestShards(t *testing.T) {
	cases := []struct {
		n, workers int
		want       [][2]int
	}{
		{0, 4, nil},
		{5, 1, [][2]int{{0, 5}}},
		{5, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
		{10, 3, [][2]int{{0, 3}, {3, 6}, {6, 10}}},
		{7, 0, [][2]int{{0, 7}}},
	}
	for _, c := range cases {
		got := Shards(c.n, c.workers)
		if len(got) != len(c.want) {
			t.Errorf("Shards(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Shards(%d,%d)[%d] = %v, want %v", c.n, c.workers, i, got[i], c.want[i])
			}
		}
	}
	// Shards must tile [0, n) exactly for arbitrary inputs.
	for n := 1; n < 40; n++ {
		for w := 1; w < 10; w++ {
			shards := Shards(n, w)
			prev := 0
			for _, sh := range shards {
				if sh[0] != prev || sh[1] <= sh[0] {
					t.Fatalf("Shards(%d,%d) = %v: bad tiling", n, w, shards)
				}
				prev = sh[1]
			}
			if prev != n {
				t.Fatalf("Shards(%d,%d) = %v: does not cover [0,%d)", n, w, shards, n)
			}
		}
	}
}

// TestEachCoversAll: every index lands in exactly one shard, and the
// per-shard results concatenate back in input order.
func TestEachCoversAll(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(1), NewPool(4)} {
		const n = 97
		results := make([][]int, p.Size())
		shards := p.Each(n, func(s, lo, hi int) {
			for i := lo; i < hi; i++ {
				results[s] = append(results[s], i)
			}
		})
		if shards < 1 || shards > p.Size() {
			t.Fatalf("pool size %d: %d shards", p.Size(), shards)
		}
		var flat []int
		for _, r := range results[:shards] {
			flat = append(flat, r...)
		}
		if len(flat) != n {
			t.Fatalf("pool size %d: covered %d of %d", p.Size(), len(flat), n)
		}
		for i, v := range flat {
			if v != i {
				t.Fatalf("pool size %d: order broken at %d: %d", p.Size(), i, v)
			}
		}
	}
}

// TestOnBusyBalanced: the busy hook must see matched +1/-1 pairs and
// never exceed the pool size.
func TestOnBusyBalanced(t *testing.T) {
	p := NewPool(3)
	var busy, maxBusy, acquires atomic.Int64
	p.OnBusy = func(delta int) {
		v := busy.Add(int64(delta))
		if delta > 0 {
			acquires.Add(1)
		}
		for {
			m := maxBusy.Load()
			if v <= m || maxBusy.CompareAndSwap(m, v) {
				break
			}
		}
	}
	p.Each(50, func(s, lo, hi int) {})
	if _, err := p.FirstError(50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if busy.Load() != 0 {
		t.Errorf("busy gauge leaked: %d", busy.Load())
	}
	if maxBusy.Load() > 3 {
		t.Errorf("busy exceeded pool size: %d", maxBusy.Load())
	}
	if acquires.Load() == 0 {
		t.Error("OnBusy never called")
	}
}
