package poa

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the Merkle commitment used by the "commit"
// disclosure mode (ROADMAP item 4): the TEE signs a single root over
// per-sample leaf hashes, and under accusation the operator reveals only
// the two leaves spanning the accused instant together with their
// authentication paths. Leaf and interior hashes are domain-separated so a
// leaf preimage can never be replayed as an interior node.

var (
	// ErrEmptyTree is returned when building a tree over zero leaves.
	ErrEmptyTree = errors.New("poa: merkle tree needs at least one leaf")
	// ErrBadProofEncoding is returned when decoding a corrupted proof.
	ErrBadProofEncoding = errors.New("poa: bad merkle proof encoding")
	// ErrProofMismatch is returned when a proof does not authenticate its
	// leaf against the expected root.
	ErrProofMismatch = errors.New("poa: merkle proof does not match root")
)

// merkleMaxDepth bounds authentication path length; 64 levels cover any
// leaf count that fits in an int64.
const merkleMaxDepth = 64

// LeafHash hashes leaf data with the 0x00 domain prefix.
func LeafHash(data []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// interiorHash hashes two child nodes with the 0x01 domain prefix.
func interiorHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// MerkleTree is the full tree over a leaf series, kept by the prover
// (operator) so it can produce authentication paths on demand. Odd nodes
// at the end of a level are promoted unchanged to the next level.
type MerkleTree struct {
	levels [][][32]byte // levels[0] = leaf hashes, last level = [root]
}

// NewMerkleTree hashes the given leaves and builds every level.
func NewMerkleTree(leaves [][]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([][32]byte, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	levels := [][][32]byte{level}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, interiorHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		levels = append(levels, next)
		level = next
	}
	return &MerkleTree{levels: levels}, nil
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// Root returns the tree root.
func (t *MerkleTree) Root() [32]byte {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Proof builds the authentication path for leaf i.
func (t *MerkleTree) Proof(i int) (MerkleProof, error) {
	n := t.Len()
	if i < 0 || i >= n {
		return MerkleProof{}, fmt.Errorf("poa: merkle proof index %d out of range [0,%d)", i, n)
	}
	p := MerkleProof{Leaf: t.levels[0][i], Index: i, Leaves: n}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		if sib := idx ^ 1; sib < len(level) {
			p.Path = append(p.Path, level[sib])
		}
		idx /= 2
	}
	return p, nil
}

// MerkleProof authenticates one leaf against a root. Leaves carries the
// total leaf count of the tree, which the odd-promote scheme needs to know
// at which levels a sibling exists.
type MerkleProof struct {
	Leaf   [32]byte
	Index  int
	Leaves int
	Path   [][32]byte
}

// VerifyMerkleProof recomputes the root from the proof and compares it to
// the expected root. The whole path must be consumed: a proof with extra
// or missing siblings is rejected even if a prefix happens to match.
func VerifyMerkleProof(root [32]byte, p MerkleProof) error {
	if p.Leaves < 1 || p.Index < 0 || p.Index >= p.Leaves {
		return fmt.Errorf("%w: index %d of %d leaves", ErrProofMismatch, p.Index, p.Leaves)
	}
	h, i, n, path := p.Leaf, p.Index, p.Leaves, p.Path
	for n > 1 {
		if sib := i ^ 1; sib < n {
			if len(path) == 0 {
				return fmt.Errorf("%w: authentication path too short", ErrProofMismatch)
			}
			if i&1 == 0 {
				h = interiorHash(h, path[0])
			} else {
				h = interiorHash(path[0], h)
			}
			path = path[1:]
		}
		i /= 2
		n = (n + 1) / 2
	}
	if len(path) != 0 {
		return fmt.Errorf("%w: %d unused path nodes", ErrProofMismatch, len(path))
	}
	if h != root {
		return ErrProofMismatch
	}
	return nil
}

// merkleProofVersion tags the binary proof encoding.
const merkleProofVersion = 1

// EncodeMerkleProof produces the compact binary form of a proof:
//
//	u8 version | u32 index | u32 leaves | 32B leaf | u8 pathLen | pathLen×32B
func EncodeMerkleProof(p MerkleProof) []byte {
	out := make([]byte, 0, 1+4+4+32+1+32*len(p.Path))
	out = append(out, merkleProofVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(p.Index))
	out = binary.BigEndian.AppendUint32(out, uint32(p.Leaves))
	out = append(out, p.Leaf[:]...)
	out = append(out, byte(len(p.Path)))
	for _, h := range p.Path {
		out = append(out, h[:]...)
	}
	return out
}

// DecodeMerkleProof reverses EncodeMerkleProof, rejecting truncated input,
// trailing bytes, and out-of-bound counts.
func DecodeMerkleProof(b []byte) (MerkleProof, error) {
	const hdr = 1 + 4 + 4 + 32 + 1
	if len(b) < hdr {
		return MerkleProof{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadProofEncoding, len(b), hdr)
	}
	if b[0] != merkleProofVersion {
		return MerkleProof{}, fmt.Errorf("%w: version %d", ErrBadProofEncoding, b[0])
	}
	p := MerkleProof{
		Index:  int(binary.BigEndian.Uint32(b[1:5])),
		Leaves: int(binary.BigEndian.Uint32(b[5:9])),
	}
	copy(p.Leaf[:], b[9:41])
	pathLen := int(b[41])
	if pathLen > merkleMaxDepth {
		return MerkleProof{}, fmt.Errorf("%w: path length %d exceeds %d", ErrBadProofEncoding, pathLen, merkleMaxDepth)
	}
	if p.Leaves < 1 || p.Index >= p.Leaves {
		return MerkleProof{}, fmt.Errorf("%w: index %d of %d leaves", ErrBadProofEncoding, p.Index, p.Leaves)
	}
	rest := b[hdr:]
	if len(rest) != 32*pathLen {
		return MerkleProof{}, fmt.Errorf("%w: %d path bytes, want %d", ErrBadProofEncoding, len(rest), 32*pathLen)
	}
	p.Path = make([][32]byte, pathLen)
	for i := range p.Path {
		copy(p.Path[i][:], rest[32*i:32*(i+1)])
	}
	return p, nil
}
