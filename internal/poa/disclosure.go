package poa

import "fmt"

// Disclosure modes name how much of a Proof-of-Alibi the Auditor sees at
// submission time. The mode is negotiated at registration, like a
// signature suite, and every door dispatches on it.
const (
	// DisclosureFull is the original protocol: plaintext signed samples,
	// verified in full at submission.
	DisclosureFull = "full"
	// DisclosureSealed uploads §VII-B3 one-time-key sealed entries;
	// positions open only under accusation, when the operator reveals the
	// two spanning keys.
	DisclosureSealed = "sealed"
	// DisclosureCommit uploads only a TEE-signed Merkle root over sealed
	// entries plus zone-relative clearance predicates; the Auditor judges
	// sufficiency without ever seeing a position, and an accusation
	// triggers a two-leaf selective disclosure.
	DisclosureCommit = "commit"
)

// Disclosures lists every supported mode.
func Disclosures() []string {
	return []string{DisclosureFull, DisclosureSealed, DisclosureCommit}
}

// NormalizeDisclosure maps the empty string to DisclosureFull (drones
// predating the negotiation always flew the plaintext protocol) and
// rejects unknown modes.
func NormalizeDisclosure(mode string) (string, error) {
	switch mode {
	case "", DisclosureFull:
		return DisclosureFull, nil
	case DisclosureSealed, DisclosureCommit:
		return mode, nil
	default:
		return "", fmt.Errorf("poa: unknown disclosure mode %q", mode)
	}
}

// Disclosure is a Proof-of-Alibi payload under some disclosure mode: the
// plaintext PoA, a sealed PoA, or a commit envelope.
type Disclosure interface {
	// DisclosureMode names the mode the payload belongs to.
	DisclosureMode() string
	// Len returns the number of samples the payload covers.
	Len() int
}

// DisclosureMode implements Disclosure for the plaintext PoA.
func (p PoA) DisclosureMode() string { return DisclosureFull }

var _ Disclosure = PoA{}
