package poa

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestPairSufficient3DOverflight(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := CylinderZone{Center: ref, R: 50, AltMin: 0, AltMax: 120}

	// Drone crosses directly over the zone at 400 m, well above the
	// 120 m ceiling, with a tight 1 s gap (budget 44.7 m): the ellipsoid
	// cannot dip below ~377 m, so the pair is sufficient in 3-D.
	s1 := Sample{Pos: ref.Offset(270, 20), AltMeters: 400, Time: base}
	s2 := Sample{Pos: ref.Offset(90, 20), AltMeters: 400, Time: base.Add(time.Second)}
	if !PairSufficient3D(s1, s2, z, vmax) {
		t.Error("high overflight should be sufficient in 3-D")
	}

	// The same horizontal geometry in 2-D is insufficient: the planar
	// ellipse passes straight through the zone. This is the value of the
	// 3-D extension.
	z2d := geo.GeoCircle{Center: ref, R: 50}
	if PairSufficient(s1, s2, z2d, vmax, Exact) {
		t.Error("2-D projection of the overflight should be insufficient")
	}
}

func TestPairSufficient3DLowPass(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := CylinderZone{Center: ref, R: 50, AltMin: 0, AltMax: 120}

	// Crossing over the zone at 80 m, inside the protected band.
	s1 := Sample{Pos: ref.Offset(270, 100), AltMeters: 80, Time: base}
	s2 := Sample{Pos: ref.Offset(90, 100), AltMeters: 80, Time: base.Add(10 * time.Second)}
	if PairSufficient3D(s1, s2, z, vmax) {
		t.Error("low pass through the protected band should be insufficient")
	}
}

func TestPairSufficient3DFarAway(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := CylinderZone{Center: ref, R: 50, AltMin: 0, AltMax: 120}

	s1 := Sample{Pos: ref.Offset(0, 5000), AltMeters: 60, Time: base}
	s2 := Sample{Pos: ref.Offset(0, 5010), AltMeters: 60, Time: base.Add(time.Second)}
	if !PairSufficient3D(s1, s2, z, vmax) {
		t.Error("zone 5 km away should be sufficient")
	}
}

func TestVerifySufficiency3D(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := CylinderZone{Center: ref, R: 50, AltMin: 0, AltMax: 120}

	// Climb profile: approach at altitude, with one long gap low down.
	samples := []Sample{
		{Pos: ref.Offset(270, 300), AltMeters: 300, Time: base},
		{Pos: ref.Offset(270, 280), AltMeters: 300, Time: base.Add(1 * time.Second)},
		{Pos: ref.Offset(270, 100), AltMeters: 60, Time: base.Add(40 * time.Second)}, // long gap, low
		{Pos: ref.Offset(270, 90), AltMeters: 60, Time: base.Add(41 * time.Second)},
	}
	rep, err := VerifySufficiency3D(samples, []CylinderZone{z}, vmax)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sufficient() {
		t.Error("long low-altitude gap near zone should be insufficient")
	}
	if rep.Pairs != 3 {
		t.Errorf("Pairs = %d, want 3", rep.Pairs)
	}

	if _, err := VerifySufficiency3D(samples[:1], []CylinderZone{z}, vmax); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	rev := []Sample{samples[1], samples[0]}
	if _, err := VerifySufficiency3D(rev, []CylinderZone{z}, vmax); !errors.Is(err, ErrNotChronological) {
		t.Errorf("err = %v, want ErrNotChronological", err)
	}
}
