package poa

import (
	"bytes"
	"fmt"
)

// BatchPoA is the sign-all-traces-at-once alternative from the paper's
// §VII-A1b: the TEE buffers samples in secure memory during the flight and
// signs the entire trace once at the end, amortising the asymmetric
// signature cost. Verification still checks the same sufficiency condition
// over the samples; only the authenticity envelope differs.
type BatchPoA struct {
	Samples []Sample `json:"samples"`
	Sig     []byte   `json:"sig"` // one signature over MarshalBatch(Samples)
	// KeyEpoch routes verification to the TEE key rotation epoch the
	// seal was signed under (zero = manufacture-time key). Like
	// SignedSample.KeyEpoch it is a hint, not an authenticated claim.
	KeyEpoch int `json:"keyEpoch,omitempty"`
}

// batchSeparator joins canonical sample encodings; '\n' cannot appear in
// the canonical encoding, so the framing is unambiguous.
const batchSeparator = '\n'

// MarshalBatch produces the canonical byte encoding of a whole trace that
// the TEE signs in batch mode.
func MarshalBatch(samples []Sample) []byte {
	var buf bytes.Buffer
	for i, s := range samples {
		if i > 0 {
			buf.WriteByte(batchSeparator)
		}
		buf.Write(s.Marshal())
	}
	return buf.Bytes()
}

// UnmarshalBatch decodes a canonical batch encoding.
func UnmarshalBatch(b []byte) ([]Sample, error) {
	if len(b) == 0 {
		return nil, nil
	}
	parts := bytes.Split(b, []byte{batchSeparator})
	out := make([]Sample, len(parts))
	for i, p := range parts {
		s, err := UnmarshalSample(p)
		if err != nil {
			return nil, fmt.Errorf("batch sample %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
