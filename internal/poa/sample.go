// Package poa implements the heart of AliDrone: the Proof-of-Alibi data
// model and its sufficiency verification (paper §IV-C).
//
// A drone's flight is a series of GPS samples. Between two consecutive
// samples the drone can only have been inside the possible-travel-range
// ellipse whose foci are the two sample positions and whose focal-sum bound
// is vmax*(t2-t1) (the FAA caps drone speed at 100 mph). An alibi is
// *sufficient* for a set of no-fly zones when, for every consecutive sample
// pair, that ellipse is disjoint from every zone (eq. 1): the drone provably
// could not have entered any zone at any moment of the flight.
//
// The package provides both the paper's conservative boundary-distance test
// (cheap, projection-free, used online by the sampler) and an exact
// ellipse-disk intersection (used by the auditor and as an ablation).
package poa

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/geo"
)

var (
	// ErrNotChronological is returned when samples are not strictly
	// increasing in time.
	ErrNotChronological = errors.New("poa: samples not in strictly increasing time order")
	// ErrTooFewSamples is returned when a trace has fewer than two
	// samples and therefore constrains nothing.
	ErrTooFewSamples = errors.New("poa: need at least two samples")
	// ErrBadSampleEncoding is returned when unmarshalling a corrupted
	// canonical sample encoding.
	ErrBadSampleEncoding = errors.New("poa: bad canonical sample encoding")
)

// Sample is one GPS observation S = (lat, lon, t), extended with altitude
// for the 3-D model (§VII-B1). Altitude is zero and ignored in the 2-D
// protocol.
type Sample struct {
	Pos       geo.LatLon `json:"pos"`
	AltMeters float64    `json:"altMeters"`
	Time      time.Time  `json:"time"`
}

// sampleEncodingVersion tags the canonical byte encoding so future format
// changes cannot be confused with v1 signatures.
const sampleEncodingVersion = "ADS1"

// Marshal produces the canonical byte encoding of the sample that the TEE
// signs. The encoding is deterministic: fixed decimal precision (1e-7 deg,
// below NMEA wire resolution; centimetre altitude; millisecond time), so
// that signer and verifier agree bit-for-bit.
func (s Sample) Marshal() []byte {
	b := make([]byte, 0, 64)
	b = append(b, sampleEncodingVersion...)
	b = append(b, '|')
	b = strconv.AppendFloat(b, s.Pos.Lat, 'f', 7, 64)
	b = append(b, '|')
	b = strconv.AppendFloat(b, s.Pos.Lon, 'f', 7, 64)
	b = append(b, '|')
	b = strconv.AppendFloat(b, s.AltMeters, 'f', 2, 64)
	b = append(b, '|')
	b = strconv.AppendInt(b, s.Time.UnixMilli(), 10)
	return b
}

// UnmarshalSample decodes a canonical encoding produced by Marshal.
func UnmarshalSample(b []byte) (Sample, error) {
	fields := make([]string, 0, 5)
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == '|' {
			fields = append(fields, string(b[start:i]))
			start = i + 1
		}
	}
	if len(fields) != 5 || fields[0] != sampleEncodingVersion {
		return Sample{}, ErrBadSampleEncoding
	}
	lat, err1 := strconv.ParseFloat(fields[1], 64)
	lon, err2 := strconv.ParseFloat(fields[2], 64)
	alt, err3 := strconv.ParseFloat(fields[3], 64)
	ms, err4 := strconv.ParseInt(fields[4], 10, 64)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			return Sample{}, fmt.Errorf("%w: %v", ErrBadSampleEncoding, err)
		}
	}
	s := Sample{
		Pos:       geo.LatLon{Lat: lat, Lon: lon},
		AltMeters: alt,
		Time:      time.UnixMilli(ms).UTC(),
	}
	// Strict canonical form: signed messages must have exactly one valid
	// encoding, so a decode that would not re-marshal to the same bytes
	// is rejected (e.g. extra precision, missing digits, leading zeros).
	if !bytes.Equal(s.Marshal(), b) {
		return Sample{}, fmt.Errorf("%w: non-canonical encoding", ErrBadSampleEncoding)
	}
	return s, nil
}

// Canon returns the sample quantised to its canonical wire precision —
// the value a verifier reconstructs from the signed bytes. Signers must
// sign the canonical form so equality is exact.
func (s Sample) Canon() Sample {
	c, _ := UnmarshalSample(s.Marshal())
	return c
}

// SignedSample is one Proof-of-Alibi entry: (S_i, Sig(S_i, T-)).
type SignedSample struct {
	Sample Sample `json:"sample"`
	Sig    []byte `json:"sig"`
	// KeyEpoch names the TEE key rotation epoch the sample was signed
	// under, so the Auditor picks the matching verification key. It is a
	// routing hint, not an authenticated claim: a wrong epoch simply
	// fails verification under that epoch's key. Zero (omitted on the
	// wire) is the manufacture-time key.
	KeyEpoch int `json:"keyEpoch,omitempty"`
}

// PoA is the Proof-of-Alibi: the series of signed GPS samples the drone
// submits to the Auditor after a flight.
type PoA struct {
	Samples []SignedSample `json:"samples"`
}

// Alibi extracts the bare sample series (the alibi of §IV-C1) from the PoA.
func (p PoA) Alibi() []Sample {
	out := make([]Sample, len(p.Samples))
	for i, s := range p.Samples {
		out[i] = s.Sample
	}
	return out
}

// Append adds a signed sample to the PoA.
func (p *PoA) Append(s SignedSample) { p.Samples = append(p.Samples, s) }

// Len returns the number of samples in the PoA.
func (p PoA) Len() int { return len(p.Samples) }

// CheckChronology verifies strict time ordering of a sample series.
func CheckChronology(samples []Sample) error {
	for i := 1; i < len(samples); i++ {
		if !samples[i].Time.After(samples[i-1].Time) {
			return fmt.Errorf("%w: sample %d at %v, sample %d at %v",
				ErrNotChronological, i-1, samples[i-1].Time, i, samples[i].Time)
		}
	}
	return nil
}
