package poa

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

// quickSample is a generator type for testing/quick: it produces samples
// with physically meaningful ranges.
type quickSample Sample

// Generate implements quick.Generator.
func (quickSample) Generate(rng *rand.Rand, _ int) reflect.Value {
	s := quickSample{
		Pos: geo.LatLon{
			Lat: rng.Float64()*170 - 85,
			Lon: rng.Float64()*350 - 175,
		},
		AltMeters: rng.Float64() * 500,
		Time:      base.Add(time.Duration(rng.Int63n(int64(2 * time.Hour)))),
	}
	return reflect.ValueOf(s)
}

// TestQuickMarshalRoundTrip: Unmarshal(Marshal(s)) is the identity on
// canonical samples.
func TestQuickMarshalRoundTrip(t *testing.T) {
	fn := func(qs quickSample) bool {
		c := Sample(qs).Canon()
		back, err := UnmarshalSample(c.Marshal())
		return err == nil && back == c
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonClose: canonicalisation moves a sample by less than the
// wire resolution (1e-7 deg ≈ 1.1 cm, 1 cm altitude, 1 ms time).
func TestQuickCanonClose(t *testing.T) {
	fn := func(qs quickSample) bool {
		s := Sample(qs)
		c := s.Canon()
		return math.Abs(c.Pos.Lat-s.Pos.Lat) <= 5e-8+1e-12 &&
			math.Abs(c.Pos.Lon-s.Pos.Lon) <= 5e-8+1e-12 &&
			math.Abs(c.AltMeters-s.AltMeters) <= 0.005+1e-12 &&
			c.Time.Sub(s.Time).Abs() <= time.Millisecond
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSufficiencyMonotoneInTime: if a pair is insufficient for a gap,
// it stays insufficient for any longer gap (larger travel budget can only
// reach more area). Equivalently, sufficiency is monotone downward in dt.
func TestQuickSufficiencyMonotoneInTime(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := Sample{Pos: ref.Offset(rng.Float64()*360, rng.Float64()*2000), Time: base}
		shortGap := time.Duration(1+rng.Int63n(10000)) * time.Millisecond
		longGap := shortGap + time.Duration(1+rng.Int63n(10000))*time.Millisecond
		pos2 := s1.Pos.Offset(rng.Float64()*360, rng.Float64()*100)
		z := geo.GeoCircle{Center: ref.Offset(rng.Float64()*360, rng.Float64()*3000), R: 1 + rng.Float64()*300}

		short := Sample{Pos: pos2, Time: base.Add(shortGap)}
		long := Sample{Pos: pos2, Time: base.Add(longGap)}
		for _, mode := range []TestMode{Conservative, Exact} {
			if !PairSufficient(s1, short, z, vmax, mode) && PairSufficient(s1, long, z, vmax, mode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickSufficiencyMonotoneInRadius: growing a zone can only turn
// sufficient pairs insufficient, never the reverse.
func TestQuickSufficiencyMonotoneInRadius(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := Sample{Pos: ref.Offset(rng.Float64()*360, rng.Float64()*2000), Time: base}
		s2 := Sample{
			Pos:  s1.Pos.Offset(rng.Float64()*360, rng.Float64()*100),
			Time: base.Add(time.Duration(1+rng.Int63n(10000)) * time.Millisecond),
		}
		center := ref.Offset(rng.Float64()*360, rng.Float64()*3000)
		small := geo.GeoCircle{Center: center, R: 1 + rng.Float64()*200}
		big := geo.GeoCircle{Center: center, R: small.R + rng.Float64()*200}

		for _, mode := range []TestMode{Conservative, Exact} {
			if !PairSufficient(s1, s2, small, vmax, mode) && PairSufficient(s1, s2, big, vmax, mode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBatchRoundTrip: UnmarshalBatch(MarshalBatch(xs)) == xs for
// canonical samples.
func TestQuickBatchRoundTrip(t *testing.T) {
	fn := func(raw []quickSample) bool {
		in := make([]Sample, len(raw))
		for i, qs := range raw {
			in[i] = Sample(qs).Canon()
		}
		out, err := UnmarshalBatch(MarshalBatch(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsufficientCountMatchesVerify: the Fig 8-(c) counter and the
// conservative verifier agree on which pairs fail when a single zone is in
// force.
func TestQuickInsufficientCountMatchesVerify(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		samples := make([]Sample, n)
		pos := ref
		at := base
		for i := range samples {
			pos = pos.Offset(rng.Float64()*360, rng.Float64()*50)
			at = at.Add(time.Duration(1+rng.Int63n(5000)) * time.Millisecond)
			samples[i] = Sample{Pos: pos, Time: at}
		}
		z := geo.GeoCircle{Center: ref.Offset(rng.Float64()*360, rng.Float64()*500), R: 1 + rng.Float64()*100}

		counts := CountInsufficient(samples, []geo.GeoCircle{z}, vmax)
		rep, err := VerifySufficiency(samples, []geo.GeoCircle{z}, vmax, Conservative)
		if err != nil {
			return false
		}
		return counts[len(counts)-1] == rep.InsufficientPairs()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
