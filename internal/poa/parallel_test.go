package poa

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/parallel"
)

// TestVerifySufficiencyPoolDeterminism: the sharded scan must reproduce
// the sequential Report exactly — same insufficiency ordering, same
// InsufficientPairs — for traces with scattered failures.
func TestVerifySufficiencyPoolDeterminism(t *testing.T) {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	rng := rand.New(rand.NewSource(11))

	// A sparse trace through a random zone field: long gaps make many
	// pairs insufficient, in no particular pattern.
	samples := make([]Sample, 120)
	for i := range samples {
		samples[i] = Sample{
			Pos:  home.Offset(90, float64(i)*120),
			Time: start.Add(time.Duration(i) * 15 * time.Second),
		}
	}
	zones := make([]geo.GeoCircle, 40)
	for i := range zones {
		zones[i] = geo.GeoCircle{
			Center: home.Offset(rng.Float64()*360, rng.Float64()*12000),
			R:      20 + rng.Float64()*200,
		}
	}

	for _, mode := range []TestMode{Conservative, Exact} {
		seq, err := VerifySufficiency(samples, zones, geo.MaxDroneSpeedMPS, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Insufficiencies) == 0 {
			t.Fatalf("mode %v: fixture produced no insufficiencies — test is vacuous", mode)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			par, err := VerifySufficiencyPool(samples, zones, geo.MaxDroneSpeedMPS, mode, parallel.NewPool(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("mode %v workers %d: parallel report diverges:\nseq %+v\npar %+v",
					mode, workers, seq, par)
			}
			if seq.InsufficientPairs() != par.InsufficientPairs() {
				t.Errorf("mode %v workers %d: InsufficientPairs %d != %d",
					mode, workers, seq.InsufficientPairs(), par.InsufficientPairs())
			}
		}
	}
}

// TestVerifySufficiencyPoolCleanTrace: a fully sufficient trace must
// return an identical (empty-insufficiency) report at every pool size.
func TestVerifySufficiencyPoolCleanTrace(t *testing.T) {
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = Sample{Pos: home.Offset(90, float64(i)*5), Time: start.Add(time.Duration(i) * time.Second)}
	}
	zones := []geo.GeoCircle{{Center: home.Offset(0, 5000), R: 50}}

	seq, err := VerifySufficiency(samples, zones, geo.MaxDroneSpeedMPS, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	par, err := VerifySufficiencyPool(samples, zones, geo.MaxDroneSpeedMPS, Conservative, parallel.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Sufficient() || !par.Sufficient() {
		t.Fatalf("clean trace flagged: seq %+v par %+v", seq, par)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("reports diverge: seq %+v par %+v", seq, par)
	}
}

// TestVerifySufficiencyPoolErrors: validation errors must be identical
// regardless of pool shape.
func TestVerifySufficiencyPoolErrors(t *testing.T) {
	pool := parallel.NewPool(4)
	if _, err := VerifySufficiencyPool(nil, nil, 40, Conservative, pool); err != ErrTooFewSamples {
		t.Errorf("too-few error = %v", err)
	}
	start := time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)
	home := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	backwards := []Sample{
		{Pos: home, Time: start.Add(time.Second)},
		{Pos: home, Time: start},
	}
	seqErr := func() error { _, err := VerifySufficiency(backwards, nil, 40, Conservative); return err }()
	parErr := func() error { _, err := VerifySufficiencyPool(backwards, nil, 40, Conservative, pool); return err }()
	if seqErr == nil || parErr == nil || seqErr.Error() != parErr.Error() {
		t.Errorf("chronology errors diverge: seq %v par %v", seqErr, parErr)
	}
}
