package poa

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
)

// vmax is the FAA 100 mph bound in m/s.
var vmax = geo.MaxDroneSpeedMPS

// zoneAt builds a circular NFZ at a bearing/distance from a reference
// point.
func zoneAt(ref geo.LatLon, bearing, distMeters, radiusMeters float64) geo.GeoCircle {
	return geo.GeoCircle{Center: ref.Offset(bearing, distMeters), R: radiusMeters}
}

func TestPairSufficientFarZone(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	// Two samples 1 s apart, zone 10 km away with 100 m radius: the
	// ellipse (max span ~45 m) cannot reach it.
	s1 := Sample{Pos: ref, Time: base}
	s2 := Sample{Pos: ref.Offset(90, 10), Time: base.Add(time.Second)}
	z := zoneAt(ref, 0, 10000, 100)

	for _, mode := range []TestMode{Conservative, Exact} {
		if !PairSufficient(s1, s2, z, vmax, mode) {
			t.Errorf("mode %v: far zone should be sufficient", mode)
		}
	}
}

func TestPairSufficientNearZone(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	// Two samples 10 s apart (travel budget 447 m) with a zone boundary
	// only 50 m away: the drone could have detoured into the zone.
	s1 := Sample{Pos: ref, Time: base}
	s2 := Sample{Pos: ref.Offset(90, 30), Time: base.Add(10 * time.Second)}
	z := zoneAt(ref, 0, 80, 30) // boundary ~50 m north

	for _, mode := range []TestMode{Conservative, Exact} {
		if PairSufficient(s1, s2, z, vmax, mode) {
			t.Errorf("mode %v: reachable zone should be insufficient", mode)
		}
	}
}

func TestPairSufficientSampleInsideZone(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	s1 := Sample{Pos: ref, Time: base}
	s2 := Sample{Pos: ref.Offset(90, 10), Time: base.Add(time.Second)}
	z := geo.GeoCircle{Center: ref, R: 50} // sample 1 is inside

	for _, mode := range []TestMode{Conservative, Exact} {
		if PairSufficient(s1, s2, z, vmax, mode) {
			t.Errorf("mode %v: sample inside zone must be insufficient", mode)
		}
	}
}

// TestConservativeSoundness: whenever the conservative test accepts
// (sufficient), the exact test must accept as well.
func TestConservativeSoundness(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1500; i++ {
		s1 := Sample{Pos: ref.Offset(rng.Float64()*360, rng.Float64()*2000), Time: base}
		s2 := Sample{
			Pos:  s1.Pos.Offset(rng.Float64()*360, rng.Float64()*300),
			Time: base.Add(time.Duration(rng.Float64()*20*float64(time.Second)) + time.Millisecond),
		}
		z := zoneAt(ref, rng.Float64()*360, rng.Float64()*3000, rng.Float64()*500+1)

		cons := PairSufficient(s1, s2, z, vmax, Conservative)
		exact := PairSufficient(s1, s2, z, vmax, Exact)
		if cons && !exact {
			t.Fatalf("conservative sufficient but exact insufficient:\n s1=%+v\n s2=%+v\n z=%+v", s1, s2, z)
		}
	}
}

func TestVerifySufficiencyCleanTrace(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := zoneAt(ref, 0, 5000, 100)

	// 1 Hz trace moving east at 20 m/s, zone 5 km north: always
	// sufficient (D1+D2 ~ 9.8 km > 44.7 m budget).
	samples := make([]Sample, 60)
	for i := range samples {
		samples[i] = Sample{
			Pos:  ref.Offset(90, float64(i)*20),
			Time: base.Add(time.Duration(i) * time.Second),
		}
	}
	rep, err := VerifySufficiency(samples, []geo.GeoCircle{z}, vmax, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sufficient() {
		t.Errorf("clean trace reported insufficient: %+v", rep.Insufficiencies)
	}
	if rep.Pairs != 59 {
		t.Errorf("Pairs = %d, want 59", rep.Pairs)
	}
}

func TestVerifySufficiencySparseTraceNearZone(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := zoneAt(ref, 0, 100, 30)

	// 30 s between samples right next to the zone: budget 1341 m, zone
	// boundary 70 m away — insufficient.
	samples := []Sample{
		{Pos: ref, Time: base},
		{Pos: ref.Offset(90, 200), Time: base.Add(30 * time.Second)},
		{Pos: ref.Offset(90, 400), Time: base.Add(60 * time.Second)},
	}
	rep, err := VerifySufficiency(samples, []geo.GeoCircle{z}, vmax, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sufficient() {
		t.Error("sparse trace near zone should be insufficient")
	}
	if got := rep.InsufficientPairs(); got == 0 {
		t.Error("expected at least one insufficient pair")
	}
}

func TestVerifySufficiencyMultiZoneIndices(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	far := zoneAt(ref, 0, 20000, 100)
	near := zoneAt(ref, 0, 60, 30)

	samples := []Sample{
		{Pos: ref, Time: base},
		{Pos: ref.Offset(90, 100), Time: base.Add(20 * time.Second)},
	}
	rep, err := VerifySufficiency(samples, []geo.GeoCircle{far, near}, vmax, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Insufficiencies) != 1 {
		t.Fatalf("Insufficiencies = %+v, want exactly one", rep.Insufficiencies)
	}
	if rep.Insufficiencies[0].ZoneIndex != 1 {
		t.Errorf("ZoneIndex = %d, want 1 (the near zone)", rep.Insufficiencies[0].ZoneIndex)
	}
	if rep.InsufficientPairs() != 1 {
		t.Errorf("InsufficientPairs = %d, want 1", rep.InsufficientPairs())
	}
}

func TestVerifySufficiencyErrors(t *testing.T) {
	ref := geo.LatLon{Lat: 40, Lon: -88}
	one := []Sample{{Pos: ref, Time: base}}
	if _, err := VerifySufficiency(one, nil, vmax, Conservative); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}

	bad := []Sample{{Pos: ref, Time: base.Add(time.Second)}, {Pos: ref, Time: base}}
	if _, err := VerifySufficiency(bad, nil, vmax, Conservative); !errors.Is(err, ErrNotChronological) {
		t.Errorf("err = %v, want ErrNotChronological", err)
	}
}

func TestCountInsufficient(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	z := zoneAt(ref, 0, 100, 30)

	samples := []Sample{
		{Pos: ref, Time: base},                                      // pair 0: 1 s gap, ok? D1+D2 ~140 vs 44.7 -> fine
		{Pos: ref.Offset(90, 10), Time: base.Add(time.Second)},      //
		{Pos: ref.Offset(90, 20), Time: base.Add(31 * time.Second)}, // pair 1: 30 s gap -> insufficient
		{Pos: ref.Offset(90, 30), Time: base.Add(32 * time.Second)}, // pair 2: 1 s gap -> fine
	}
	counts := CountInsufficient(samples, []geo.GeoCircle{z}, vmax)
	want := []int{0, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("len(counts) = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}

	if got := CountInsufficient(samples[:1], []geo.GeoCircle{z}, vmax); got != nil {
		t.Errorf("single-sample count = %v, want nil", got)
	}
}

func TestCountInsufficientNoZones(t *testing.T) {
	samples := []Sample{
		{Pos: geo.LatLon{Lat: 40, Lon: -88}, Time: base},
		{Pos: geo.LatLon{Lat: 40, Lon: -88.001}, Time: base.Add(time.Hour)},
	}
	counts := CountInsufficient(samples, nil, vmax)
	if counts[len(counts)-1] != 0 {
		t.Error("no zones should never be insufficient")
	}
}

func TestSpeedFeasible(t *testing.T) {
	ref := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	ok := []Sample{
		{Pos: ref, Time: base},
		{Pos: ref.Offset(90, 40), Time: base.Add(time.Second)}, // 40 m/s < 44.7
	}
	if err := SpeedFeasible(ok, vmax); err != nil {
		t.Errorf("feasible trace rejected: %v", err)
	}

	tooFast := []Sample{
		{Pos: ref, Time: base},
		{Pos: ref.Offset(90, 100), Time: base.Add(time.Second)}, // 100 m/s
	}
	if err := SpeedFeasible(tooFast, vmax); err == nil {
		t.Error("infeasible trace accepted")
	}
}

func TestTestModeString(t *testing.T) {
	if Conservative.String() != "conservative" || Exact.String() != "exact" {
		t.Error("TestMode String broken")
	}
	if TestMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}
