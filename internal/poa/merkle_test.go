package poa

import (
	"bytes"
	"fmt"
	"testing"
)

func merkleLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return leaves
}

func TestMerkleProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 600} {
		leaves := merkleLeaves(n)
		tree, err := NewMerkleTree(leaves)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			p, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d proof %d: %v", n, i, err)
			}
			if p.Leaf != LeafHash(leaves[i]) {
				t.Fatalf("n=%d proof %d: leaf hash mismatch", n, i)
			}
			if err := VerifyMerkleProof(root, p); err != nil {
				t.Fatalf("n=%d proof %d: verify: %v", n, i, err)
			}
			enc := EncodeMerkleProof(p)
			dec, err := DecodeMerkleProof(enc)
			if err != nil {
				t.Fatalf("n=%d proof %d: decode: %v", n, i, err)
			}
			if err := VerifyMerkleProof(root, dec); err != nil {
				t.Fatalf("n=%d proof %d: verify decoded: %v", n, i, err)
			}
			if !bytes.Equal(EncodeMerkleProof(dec), enc) {
				t.Fatalf("n=%d proof %d: re-encode mismatch", n, i)
			}
		}
	}
}

func TestMerkleProofRejectsTampering(t *testing.T) {
	leaves := merkleLeaves(10)
	tree, err := NewMerkleTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	p, err := tree.Proof(4)
	if err != nil {
		t.Fatal(err)
	}

	wrongLeaf := p
	wrongLeaf.Leaf = LeafHash([]byte("forged"))
	if VerifyMerkleProof(root, wrongLeaf) == nil {
		t.Fatal("forged leaf accepted")
	}

	wrongIndex := p
	wrongIndex.Index = 5
	if VerifyMerkleProof(root, wrongIndex) == nil {
		t.Fatal("shifted index accepted")
	}

	short := p
	short.Path = short.Path[:len(short.Path)-1]
	if VerifyMerkleProof(root, short) == nil {
		t.Fatal("truncated path accepted")
	}

	long := p
	long.Path = append(append([][32]byte{}, long.Path...), [32]byte{1})
	if VerifyMerkleProof(root, long) == nil {
		t.Fatal("padded path accepted")
	}

	// A lied leaf count changes which levels promote: the tail proof's
	// sibling pattern no longer matches its path. (Counts that happen to
	// preserve the pattern are caught by the auditor's explicit
	// Leaves-vs-committed-times check, not here.)
	tail, err := tree.Proof(9)
	if err != nil {
		t.Fatal(err)
	}
	tail.Leaves = 11
	if VerifyMerkleProof(root, tail) == nil {
		t.Fatal("wrong leaf count accepted")
	}

	// A leaf hash must not verify as an interior node (domain separation):
	// two sibling leaves hashed as one combined leaf differ from their
	// parent.
	l0, l1 := LeafHash(leaves[0]), LeafHash(leaves[1])
	combined := append(append([]byte{}, l0[:]...), l1[:]...)
	if LeafHash(combined) == interiorHash(l0, l1) {
		t.Fatal("leaf and interior hashing not domain-separated")
	}
}

func TestMerkleEmptyTree(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestDecodeMerkleProofRejectsCorruption(t *testing.T) {
	tree, err := NewMerkleTree(merkleLeaves(8))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.Proof(3)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeMerkleProof(p)

	cases := map[string][]byte{
		"empty":       {},
		"truncated":   enc[:len(enc)-1],
		"trailing":    append(append([]byte{}, enc...), 0),
		"bad version": append([]byte{9}, enc[1:]...),
	}
	for name, b := range cases {
		if _, err := DecodeMerkleProof(b); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func FuzzDecodeMerkleProof(f *testing.F) {
	tree, err := NewMerkleTree(merkleLeaves(12))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 12; i += 5 {
		p, err := tree.Proof(i)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeMerkleProof(p))
	}
	f.Add([]byte{merkleProofVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodeMerkleProof(b)
		if err != nil {
			return
		}
		// A decodable proof must re-encode to the same bytes (canonical
		// form) and survive verification without panicking.
		enc := EncodeMerkleProof(p)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encode mismatch: %x vs %x", enc, b)
		}
		_ = VerifyMerkleProof(tree.Root(), p)
	})
}
