package poa

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/geo"
)

// FuzzUnmarshalSample: arbitrary bytes never panic; valid decodes
// re-marshal to the identical canonical encoding.
func FuzzUnmarshalSample(f *testing.F) {
	seed := Sample{
		Pos:       geo.LatLon{Lat: 40.1106, Lon: -88.2073},
		AltMeters: 120,
		Time:      time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC),
	}
	f.Add(seed.Marshal())
	f.Add([]byte("ADS1|x|y|z|w"))
	f.Add([]byte(""))
	f.Add([]byte("ADS1|40.1|‑88.2|0.00|0")) // unicode minus
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := UnmarshalSample(raw)
		if err != nil {
			return
		}
		again, err := UnmarshalSample(s.Marshal())
		if err != nil {
			t.Fatalf("re-marshal failed to decode: %v", err)
		}
		if again != s {
			t.Fatalf("unstable decode: %+v vs %+v", again, s)
		}
	})
}

// FuzzUnmarshalBatch: arbitrary bytes never panic; valid decodes
// round-trip.
func FuzzUnmarshalBatch(f *testing.F) {
	s1 := Sample{Pos: geo.LatLon{Lat: 40, Lon: -88}, Time: time.Unix(1527861600, 0)}
	s2 := Sample{Pos: geo.LatLon{Lat: 40.001, Lon: -88}, Time: time.Unix(1527861601, 0)}
	f.Add(MarshalBatch([]Sample{s1.Canon(), s2.Canon()}))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("ADS1|1|2|3|4\ngarbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		samples, err := UnmarshalBatch(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalBatch(samples), raw) && len(samples) > 0 {
			// Round trip must be stable for the canonical subset: decode
			// then re-encode then decode again must agree.
			again, err := UnmarshalBatch(MarshalBatch(samples))
			if err != nil || len(again) != len(samples) {
				t.Fatalf("unstable batch decode: %v", err)
			}
		}
	})
}
