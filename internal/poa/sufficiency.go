package poa

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/parallel"
)

// TestMode selects how ellipse-zone disjointness is decided.
type TestMode int

const (
	// Conservative uses the paper's boundary-distance test
	// D1 + D2 > vmax*(t2-t1): sound (never accepts an intersecting pair)
	// but may flag some disjoint pairs as insufficient. Projection-free
	// and cheap — this is what the in-flight sampler uses.
	Conservative TestMode = iota + 1
	// Exact decides true geometric disjointness of the travel ellipse and
	// the zone disk via convex minimisation on a local plane.
	Exact
)

// String implements fmt.Stringer for diagnostics.
func (m TestMode) String() string {
	switch m {
	case Conservative:
		return "conservative"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("TestMode(%d)", int(m))
	}
}

// PairSufficient reports whether the consecutive sample pair (s1, s2)
// proves the drone could not have entered zone z during [t1, t2], i.e.
// whether the possible-travel-range ellipse is disjoint from z.
//
// A non-positive or zero time gap makes the ellipse degenerate; callers
// should have validated chronology first — such pairs are treated as
// insufficient only if a sample actually lies in the zone.
func PairSufficient(s1, s2 Sample, z geo.GeoCircle, vmaxMS float64, mode TestMode) bool {
	dt := s2.Time.Sub(s1.Time).Seconds()
	if dt < 0 {
		dt = 0
	}

	switch mode {
	case Exact:
		pr := geo.NewProjection(s1.Pos)
		e := geo.NewTravelEllipse(pr.ToLocal(s1.Pos), pr.ToLocal(s2.Pos), dt, vmaxMS)
		return !e.IntersectsDisk(z.ToLocal(pr))
	default:
		d1 := z.BoundaryDistMeters(s1.Pos)
		d2 := z.BoundaryDistMeters(s2.Pos)
		return d1+d2 > vmaxMS*dt
	}
}

// Insufficiency pinpoints one failed pair/zone combination in a trace.
type Insufficiency struct {
	PairIndex int // i: the gap between samples i and i+1
	ZoneIndex int // index into the zone slice passed to the verifier
}

// Report is the outcome of verifying a whole trace against a zone set.
type Report struct {
	Pairs           int             // number of consecutive pairs checked
	Insufficiencies []Insufficiency // every failed (pair, zone)
}

// Sufficient reports whether the whole trace proved alibi to every zone.
func (r Report) Sufficient() bool { return len(r.Insufficiencies) == 0 }

// InsufficientPairs returns the number of distinct sample pairs with at
// least one insufficiency — the quantity plotted in the paper's Fig 8-(c).
func (r Report) InsufficientPairs() int {
	seen := make(map[int]bool, len(r.Insufficiencies))
	for _, ins := range r.Insufficiencies {
		seen[ins.PairIndex] = true
	}
	return len(seen)
}

// VerifySufficiency checks eq. 1 of the paper: every consecutive sample
// pair must prove impossibility of travelling into every zone. Samples must
// be strictly chronological and number at least two.
func VerifySufficiency(samples []Sample, zones []geo.GeoCircle, vmaxMS float64, mode TestMode) (Report, error) {
	return VerifySufficiencyPool(samples, zones, vmaxMS, mode, nil)
}

// VerifySufficiencyPool is VerifySufficiency with the (pair × zone)
// checks sharded across a worker pool: consecutive-sample pairs are split
// into contiguous ranges, one per worker, and the per-shard insufficiency
// lists are concatenated in shard order. Because the shards are contiguous
// and each shard scans pairs then zones in ascending order — exactly the
// sequential nesting — the resulting Report is identical (same ordering,
// same InsufficientPairs) to the nil-pool sequential scan.
func VerifySufficiencyPool(samples []Sample, zones []geo.GeoCircle, vmaxMS float64, mode TestMode, pool *parallel.Pool) (Report, error) {
	if len(samples) < 2 {
		return Report{}, ErrTooFewSamples
	}
	if err := CheckChronology(samples); err != nil {
		return Report{}, err
	}

	var rep Report
	rep.Pairs = len(samples) - 1

	scan := func(lo, hi int) []Insufficiency {
		var out []Insufficiency
		for i := lo; i < hi; i++ {
			for zi, z := range zones {
				if !PairSufficient(samples[i], samples[i+1], z, vmaxMS, mode) {
					out = append(out, Insufficiency{PairIndex: i, ZoneIndex: zi})
				}
			}
		}
		return out
	}

	if pool.Sequential() {
		rep.Insufficiencies = scan(0, rep.Pairs)
		return rep, nil
	}

	perShard := make([][]Insufficiency, pool.Size())
	n := pool.Each(rep.Pairs, func(s, lo, hi int) {
		perShard[s] = scan(lo, hi)
	})
	for _, ins := range perShard[:n] {
		rep.Insufficiencies = append(rep.Insufficiencies, ins...)
	}
	return rep, nil
}

// CountInsufficient implements the running counter from the paper's
// residential study (Fig 8-(c)): for each consecutive pair it adds one when
//
//	min_j (d_{i,j} + d_{i+1,j}) < vmax * (t_{i+1} - t_i)
//
// where d_{i,j} is the distance from sample i to the boundary of zone j.
// It returns the cumulative count after each pair (len = len(samples)-1).
func CountInsufficient(samples []Sample, zones []geo.GeoCircle, vmaxMS float64) []int {
	if len(samples) < 2 {
		return nil
	}
	counts := make([]int, 0, len(samples)-1)
	total := 0
	for i := 0; i+1 < len(samples); i++ {
		dt := samples[i+1].Time.Sub(samples[i].Time).Seconds()
		minSum, found := 0.0, false
		for _, z := range zones {
			// Boundary distances are signed: a sample inside a zone
			// contributes negatively, which correctly makes the pair
			// insufficient.
			sum := z.BoundaryDistMeters(samples[i].Pos) + z.BoundaryDistMeters(samples[i+1].Pos)
			if !found || sum < minSum {
				minSum, found = sum, true
			}
		}
		if found && minSum < vmaxMS*dt {
			total++
		}
		counts = append(counts, total)
	}
	return counts
}

// SpeedFeasible reports whether every consecutive pair is physically
// achievable under the speed bound (the travel ellipse is non-empty). A
// violation means the trace itself is impossible — a strong forgery signal
// the auditor checks before sufficiency.
func SpeedFeasible(samples []Sample, vmaxMS float64) error {
	for i := 0; i+1 < len(samples); i++ {
		dt := samples[i+1].Time.Sub(samples[i].Time).Seconds()
		dist := geo.HaversineMeters(samples[i].Pos, samples[i+1].Pos)
		if dist > vmaxMS*dt {
			return fmt.Errorf("poa: samples %d-%d require %.1f m in %.2f s (vmax %.1f m/s)",
				i, i+1, dist, dt, vmaxMS)
		}
	}
	return nil
}
