package poa

import (
	"repro/internal/geo"
)

// CylinderZone is a 3-D no-fly region z' = (lat, lon, alt, r) interpreted,
// as in the paper's §VII-B1, as a cylinder of horizontal radius R over the
// property from ground (AltMin) up to AltMax metres.
type CylinderZone struct {
	Center geo.LatLon `json:"center"`
	R      float64    `json:"r"`      // horizontal radius, metres
	AltMin float64    `json:"altMin"` // bottom of protected airspace, metres
	AltMax float64    `json:"altMax"` // top of protected airspace, metres
}

// PairSufficient3D reports whether the consecutive pair (s1, s2) proves the
// drone could not have entered the cylindrical zone: the travel ellipsoid
// E'(S1, S2) must be disjoint from the cylinder (ε' ∩ z' = ∅).
func PairSufficient3D(s1, s2 Sample, z CylinderZone, vmaxMS float64) bool {
	dt := s2.Time.Sub(s1.Time).Seconds()
	if dt < 0 {
		dt = 0
	}
	pr := geo.NewProjection(s1.Pos)
	p1, p2 := pr.ToLocal(s1.Pos), pr.ToLocal(s2.Pos)
	e := geo.NewTravelEllipsoid(
		geo.Point3{X: p1.X, Y: p1.Y, Z: s1.AltMeters},
		geo.Point3{X: p2.X, Y: p2.Y, Z: s2.AltMeters},
		dt, vmaxMS,
	)
	cyl := geo.Cylinder{
		Center: pr.ToLocal(z.Center),
		R:      z.R,
		ZMin:   z.AltMin,
		ZMax:   z.AltMax,
	}
	return !cyl.IntersectsEllipsoid(e)
}

// VerifySufficiency3D checks the 3-D analogue of eq. 1 over a trace of
// altitude-bearing samples and cylindrical zones.
func VerifySufficiency3D(samples []Sample, zones []CylinderZone, vmaxMS float64) (Report, error) {
	if len(samples) < 2 {
		return Report{}, ErrTooFewSamples
	}
	if err := CheckChronology(samples); err != nil {
		return Report{}, err
	}

	var rep Report
	rep.Pairs = len(samples) - 1
	for i := 0; i+1 < len(samples); i++ {
		for zi, z := range zones {
			if !PairSufficient3D(samples[i], samples[i+1], z, vmaxMS) {
				rep.Insufficiencies = append(rep.Insufficiencies, Insufficiency{PairIndex: i, ZoneIndex: zi})
			}
		}
	}
	return rep, nil
}
