package poa

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
)

var base = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)

func sampleAt(lat, lon float64, dt time.Duration) Sample {
	return Sample{Pos: geo.LatLon{Lat: lat, Lon: lon}, Time: base.Add(dt)}
}

func TestSampleMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		s := Sample{
			Pos: geo.LatLon{
				Lat: rng.Float64()*180 - 90,
				Lon: rng.Float64()*360 - 180,
			},
			AltMeters: rng.Float64() * 500,
			Time:      base.Add(time.Duration(rng.Int63n(int64(time.Hour)))),
		}
		got, err := UnmarshalSample(s.Marshal())
		if err != nil {
			t.Fatalf("UnmarshalSample: %v", err)
		}
		if math.Abs(got.Pos.Lat-s.Pos.Lat) > 1e-7 || math.Abs(got.Pos.Lon-s.Pos.Lon) > 1e-7 {
			t.Fatalf("position mismatch: %v vs %v", got.Pos, s.Pos)
		}
		if math.Abs(got.AltMeters-s.AltMeters) > 0.005 {
			t.Fatalf("altitude mismatch: %v vs %v", got.AltMeters, s.AltMeters)
		}
		if got.Time.Sub(s.Time).Abs() >= time.Millisecond {
			t.Fatalf("time mismatch: %v vs %v", got.Time, s.Time)
		}
	}
}

func TestCanonIdempotent(t *testing.T) {
	s := Sample{
		Pos:       geo.LatLon{Lat: 40.11060001234, Lon: -88.20730009876},
		AltMeters: 123.456789,
		Time:      base.Add(123456789 * time.Nanosecond),
	}
	c := s.Canon()
	if !bytes.Equal(c.Marshal(), c.Canon().Marshal()) {
		t.Error("Canon is not idempotent")
	}
	// Canonical form must survive marshal/unmarshal exactly.
	back, err := UnmarshalSample(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Errorf("canonical round trip changed the sample: %+v vs %+v", back, c)
	}
}

func TestUnmarshalSampleErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"wrong version", []byte("ADX1|1|2|3|4")},
		{"too few fields", []byte("ADS1|1|2|3")},
		{"too many fields", []byte("ADS1|1|2|3|4|5")},
		{"bad lat", []byte("ADS1|x|2|3|4")},
		{"bad lon", []byte("ADS1|1|x|3|4")},
		{"bad alt", []byte("ADS1|1|2|x|4")},
		{"bad time", []byte("ADS1|1|2|3|x")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalSample(tt.in); !errors.Is(err, ErrBadSampleEncoding) {
				t.Errorf("err = %v, want ErrBadSampleEncoding", err)
			}
		})
	}
}

func TestCheckChronology(t *testing.T) {
	good := []Sample{
		sampleAt(40, -88, 0),
		sampleAt(40, -88, time.Second),
		sampleAt(40, -88, 2*time.Second),
	}
	if err := CheckChronology(good); err != nil {
		t.Errorf("chronological trace rejected: %v", err)
	}

	dup := []Sample{sampleAt(40, -88, 0), sampleAt(40, -88, 0)}
	if err := CheckChronology(dup); !errors.Is(err, ErrNotChronological) {
		t.Errorf("duplicate timestamps: err = %v", err)
	}

	rev := []Sample{sampleAt(40, -88, time.Second), sampleAt(40, -88, 0)}
	if err := CheckChronology(rev); !errors.Is(err, ErrNotChronological) {
		t.Errorf("reversed timestamps: err = %v", err)
	}

	if err := CheckChronology(nil); err != nil {
		t.Errorf("empty trace should be trivially chronological: %v", err)
	}
}

func TestPoAAccessors(t *testing.T) {
	var p PoA
	if p.Len() != 0 {
		t.Error("empty PoA should have length 0")
	}
	p.Append(SignedSample{Sample: sampleAt(40, -88, 0), Sig: []byte("sig0")})
	p.Append(SignedSample{Sample: sampleAt(40.001, -88, time.Second), Sig: []byte("sig1")})
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	alibi := p.Alibi()
	if len(alibi) != 2 || alibi[1].Pos.Lat != 40.001 {
		t.Errorf("Alibi = %+v", alibi)
	}
}
