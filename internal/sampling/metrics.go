package sampling

// Metric names exported by the drone-side samplers. All series carry a
// mode=adaptive|fixed label so both strategies can run side by side
// against one registry.
const (
	// MetricReadsTotal counts cheap normal-world GPS reads.
	MetricReadsTotal = "alidrone_sampler_reads_total"
	// MetricAuthTotal counts secure-world GetGPSAuth invocations.
	MetricAuthTotal = "alidrone_sampler_auth_total"
	// MetricHeartbeatsTotal counts samples forced by the MaxGap
	// heartbeat rather than by zone proximity.
	MetricHeartbeatsTotal = "alidrone_sampler_heartbeats_total"
	// MetricZoneCrossingSamples is a histogram of how many consecutive
	// authenticated samples one zone approach triggered: the burst length
	// of each crossing (Fig 8-(b) bursts, live).
	MetricZoneCrossingSamples = "alidrone_sampler_zone_crossing_samples"
)
