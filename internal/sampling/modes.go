package sampling

import (
	"fmt"

	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/tee"
)

// NewTEEBatchEnv builds the §VII-A1b environment: "recording" a sample
// buffers it in the TEE's secure memory instead of signing it; the flight
// ends with one SealTrace call that signs the entire trace at once. The
// SignedSample returned from Auth carries an empty Sig — authenticity
// comes from the batch signature.
func NewTEEBatchEnv(dev *tee.Device, clock *tee.SimClock, rx *gps.Receiver) Env {
	env := NewTEEEnv(dev, clock, rx)
	env.Auth = func() (poa.SignedSample, error) {
		resp, err := dev.Invoke(tee.GPSSamplerUUID, tee.CmdBufferSample, nil)
		if err != nil {
			return poa.SignedSample{}, fmt.Errorf("BufferSample: %w", err)
		}
		s, err := poa.UnmarshalSample(resp)
		if err != nil {
			return poa.SignedSample{}, err
		}
		return poa.SignedSample{Sample: s}, nil
	}
	return env
}

// SealTrace finishes a batch-mode flight: the TEE signs the buffered trace
// once and clears its buffer.
func SealTrace(dev *tee.Device) (poa.BatchPoA, error) {
	resp, err := dev.Invoke(tee.GPSSamplerUUID, tee.CmdSealTrace, nil)
	if err != nil {
		return poa.BatchPoA{}, fmt.Errorf("SealTrace: %w", err)
	}
	return tee.DecodeSealedTrace(resp)
}

// NewTEEMACEnv builds the §VII-A1a environment: samples are tagged with
// the TEE's ephemeral HMAC session key (established beforehand through
// CmdEstablishSessionKey) instead of RSA signatures. The tag travels in
// the SignedSample's Sig field.
func NewTEEMACEnv(dev *tee.Device, clock *tee.SimClock, rx *gps.Receiver) Env {
	env := NewTEEEnv(dev, clock, rx)
	env.Auth = func() (poa.SignedSample, error) {
		resp, err := dev.Invoke(tee.GPSSamplerUUID, tee.CmdGetGPSMAC, nil)
		if err != nil {
			return poa.SignedSample{}, fmt.Errorf("GetGPSMAC: %w", err)
		}
		return tee.DecodeAuthSample(resp)
	}
	return env
}
