package sampling

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/zone"
)

// TestAdaptiveMetricsMirrorStats checks the live counters agree exactly
// with the run statistics, and that a zone pass produces at least one
// burst observation in the crossing histogram.
func TestAdaptiveMetricsMirrorStats(t *testing.T) {
	start := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	route := straightRoute(t, 10, 2*time.Minute)
	mid := start.Offset(90, 600)
	z := geo.GeoCircle{Center: mid.Offset(0, 60), R: 20}

	env, _ := buildEnv(t, route, 5)
	reg := obs.NewRegistry(nil)
	a := &Adaptive{
		Env: env, Index: zone.NewIndex([]geo.GeoCircle{z}, 0),
		VMaxMS: geo.MaxDroneSpeedMPS, Metrics: reg,
	}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(obs.L(MetricReadsTotal, "mode", "adaptive")).Value(); got != uint64(res.Stats.Reads) {
		t.Errorf("reads counter = %d, Stats.Reads = %d", got, res.Stats.Reads)
	}
	if got := reg.Counter(obs.L(MetricAuthTotal, "mode", "adaptive")).Value(); got != uint64(res.Stats.AuthCalls) {
		t.Errorf("auth counter = %d, Stats.AuthCalls = %d", got, res.Stats.AuthCalls)
	}
	h := reg.Histogram(obs.L(MetricZoneCrossingSamples, "mode", "adaptive"), obs.CountBuckets)
	if h.Count() == 0 {
		t.Error("no zone-crossing bursts recorded on a route passing a zone")
	}
	// The bursts account for the zone-triggered samples: the anchor and
	// the final sample are the only ones outside a burst here.
	if sum := h.Sum(); sum > float64(res.Stats.AuthCalls) {
		t.Errorf("burst sum %v exceeds total auth calls %d", sum, res.Stats.AuthCalls)
	}
}

// TestAdaptiveHeartbeatCounter: with no zones and a MaxGap, every sample
// after the anchor is a heartbeat.
func TestAdaptiveHeartbeatCounter(t *testing.T) {
	route := straightRoute(t, 10, time.Minute)
	env, _ := buildEnv(t, route, 5)
	reg := obs.NewRegistry(nil)
	a := &Adaptive{
		Env: env, Index: zone.NewIndex(nil, 0), VMaxMS: geo.MaxDroneSpeedMPS,
		MaxGap: 10 * time.Second, Metrics: reg,
	}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	beats := reg.Counter(obs.L(MetricHeartbeatsTotal, "mode", "adaptive")).Value()
	if beats == 0 {
		t.Fatal("no heartbeats counted")
	}
	// Anchor + heartbeats + possibly one closing sample.
	if int(beats) > res.Stats.AuthCalls-1 {
		t.Errorf("heartbeats = %d with only %d auth calls", beats, res.Stats.AuthCalls)
	}
}

func TestFixedRateMetrics(t *testing.T) {
	route := straightRoute(t, 10, 10*time.Second)
	env, _ := buildEnv(t, route, 5)
	reg := obs.NewRegistry(nil)
	f := &FixedRate{Env: env, RateHz: 2, Metrics: reg}
	res, err := f.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.L(MetricAuthTotal, "mode", "fixed")).Value(); got != uint64(res.Stats.AuthCalls) {
		t.Errorf("auth counter = %d, Stats.AuthCalls = %d", got, res.Stats.AuthCalls)
	}
}
