package sampling

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// FixedRate is the paper's baseline sampler (§VI-A1 "Fix Rate Sampling"):
// it wakes at its configured rate and, because the GPS hardware updates on
// its own schedule, waits for the first measurement update after each
// wake-up before taking the authenticated sample. With a 5 Hz receiver and
// a 3 Hz sampler, wake-ups at t = 0, 0.33, 0.67 s yield samples at
// t = 0, 0.4, 0.8 s — the worked example in the paper.
type FixedRate struct {
	Env    Env
	RateHz float64

	// Metrics, when set, receives the auth-call counter under
	// mode="fixed".
	Metrics *obs.Registry
}

// Run samples from the receiver's first update until the end instant,
// recording every sample into the returned PoA.
func (f *FixedRate) Run(until time.Time) (poa *RunResult, err error) {
	if f.RateHz <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadRate, f.RateHz)
	}

	res := newRunResult()
	auths := f.Metrics.Counter(obs.L(MetricAuthTotal, "mode", "fixed"))
	period := time.Duration(float64(time.Second) / f.RateHz)

	// The sampler starts with the first hardware update of the flight.
	start := f.Env.Receiver.FirstUpdate()
	if start.After(until) {
		return nil, ErrNoSamples
	}

	for wake, k := start, 0; !wake.After(until); k++ {
		// Wait for the first measurement update at or after the wake-up.
		at := wake
		if k > 0 {
			at = f.Env.Receiver.NextUpdateAfter(wake.Add(-time.Nanosecond))
		}
		if at.After(until) {
			break
		}
		f.Env.Clock.Set(at)

		ss, err := f.Env.Auth()
		if err != nil {
			return nil, fmt.Errorf("fixed-rate sample %d: %w", k, err)
		}
		res.Stats.AuthCalls++
		auths.Inc()
		res.record(ss)

		wake = start.Add(time.Duration(k+1) * period)
	}

	if res.PoA.Len() == 0 {
		return nil, ErrNoSamples
	}
	res.finish(start, until)
	return res, nil
}
