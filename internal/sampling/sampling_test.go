package sampling

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/trace"
	"repro/internal/zone"
)

var t0 = time.Date(2018, 6, 1, 15, 0, 0, 0, time.UTC)

// buildEnv assembles the full stack over the given path and receiver rate.
func buildEnv(t testing.TB, p gps.Path, rateHz float64, opts ...gps.ReceiverOption) (Env, *tee.Device) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))

	rx, err := gps.NewReceiver(p, rateHz, opts...)
	if err != nil {
		t.Fatal(err)
	}
	vault, err := tee.ManufactureVault(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	clock := tee.NewSimClock(p.Start())
	dev := tee.NewDevice(clock, vault)
	if _, err := tee.NewGPSSampler(dev, gps.NewDriver(rx), rng); err != nil {
		t.Fatal(err)
	}
	return NewTEEEnv(dev, clock, rx), dev
}

func straightRoute(t testing.TB, speedMS float64, dur time.Duration) *trace.Route {
	t.Helper()
	r, err := trace.ConstantSpeedLine(geo.LatLon{Lat: 40.1106, Lon: -88.2073}, 90, speedMS, t0, dur)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFixedRatePaperExample(t *testing.T) {
	// Paper §VI-A1: receiver at 5 Hz, sampler at 3 Hz → wake-ups at 0,
	// 0.33, 0.67 s produce samples at 0, 0.4, 0.8 s.
	route := straightRoute(t, 10, 10*time.Second)
	env, _ := buildEnv(t, route, 5)

	f := &FixedRate{Env: env, RateHz: 3}
	res, err := f.Run(t0.Add(999 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 400 * time.Millisecond, 800 * time.Millisecond}
	if len(res.Stats.Times) != len(want) {
		t.Fatalf("samples = %d (%v), want %d", len(res.Stats.Times), res.Stats.Times, len(want))
	}
	for i, w := range want {
		if got := res.Stats.Times[i].Sub(t0); got != w {
			t.Errorf("sample %d at %v, want %v", i, got, w)
		}
	}
}

func TestFixedRateSampleCount(t *testing.T) {
	route := straightRoute(t, 10, 60*time.Second)
	env, _ := buildEnv(t, route, 5)

	f := &FixedRate{Env: env, RateHz: 1}
	res, err := f.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	// 1 Hz over 60 s: 61 wake-ups land inside [0, 60]; each binds to a
	// distinct 5 Hz tick.
	if res.PoA.Len() < 59 || res.PoA.Len() > 61 {
		t.Errorf("PoA samples = %d, want ~60", res.PoA.Len())
	}
	if res.Stats.AuthCalls != res.PoA.Len() {
		t.Errorf("AuthCalls = %d, PoA = %d", res.Stats.AuthCalls, res.PoA.Len())
	}
}

func TestFixedRateSamplerFasterThanReceiver(t *testing.T) {
	// A 5 Hz sampler on a 1 Hz receiver can only realise 1 Hz: duplicate
	// ticks must be collapsed.
	route := straightRoute(t, 10, 10*time.Second)
	env, _ := buildEnv(t, route, 1)

	f := &FixedRate{Env: env, RateHz: 5}
	res, err := f.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Stats.Times); i++ {
		if !res.Stats.Times[i].After(res.Stats.Times[i-1]) {
			t.Fatal("duplicate or non-monotonic sample times")
		}
	}
	if res.PoA.Len() > 11 {
		t.Errorf("PoA samples = %d, want <= 11 at 1 Hz effective", res.PoA.Len())
	}
}

func TestFixedRateBadRate(t *testing.T) {
	route := straightRoute(t, 10, time.Second)
	env, _ := buildEnv(t, route, 5)
	f := &FixedRate{Env: env, RateHz: 0}
	if _, err := f.Run(route.End()); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestFixedRateSignaturesVerify(t *testing.T) {
	route := straightRoute(t, 10, 5*time.Second)
	env, dev := buildEnv(t, route, 5)

	f := &FixedRate{Env: env, RateHz: 2}
	res, err := f.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range res.PoA.Samples {
		if err := sigcrypto.Verify(dev.Vault().PublicKey(), ss.Sample.Marshal(), ss.Sig); err != nil {
			t.Fatalf("sample %d signature invalid: %v", i, err)
		}
	}
}

func TestAdaptiveFarFromZoneSamplesRarely(t *testing.T) {
	// Zone 5 km away from a drive that moves further away: after the
	// anchor sample the adaptive sampler should need almost nothing.
	route := straightRoute(t, 10, 2*time.Minute)
	env, _ := buildEnv(t, route, 5)
	z := geo.GeoCircle{Center: geo.LatLon{Lat: 40.1106, Lon: -88.2073}.Offset(270, 5000), R: 100}

	a := &Adaptive{Env: env, Index: zone.NewIndex([]geo.GeoCircle{z}, 0), VMaxMS: geo.MaxDroneSpeedMPS}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	if res.PoA.Len() > 3 {
		t.Errorf("adaptive took %d samples far from zone, want <= 3", res.PoA.Len())
	}
	// It still read the GPS at the hardware rate.
	if res.Stats.Reads < 500 {
		t.Errorf("Reads = %d, want ~600", res.Stats.Reads)
	}
}

func TestAdaptivePoAStaysSufficient(t *testing.T) {
	// Drive straight past a zone whose boundary comes within ~30 m: the
	// adaptive PoA must remain sufficient for the whole flight.
	start := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	route := straightRoute(t, 10, 2*time.Minute)
	// Zone abeam the route at its midpoint, 50 m off the line, r=20.
	mid := start.Offset(90, 10*60) // 600 m along
	z := geo.GeoCircle{Center: mid.Offset(0, 50), R: 20}

	env, _ := buildEnv(t, route, 5)
	a := &Adaptive{Env: env, Index: zone.NewIndex([]geo.GeoCircle{z}, 0), VMaxMS: geo.MaxDroneSpeedMPS}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}

	rep, err := poa.VerifySufficiency(res.PoA.Alibi(), []geo.GeoCircle{z}, geo.MaxDroneSpeedMPS, poa.Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sufficient() {
		t.Errorf("adaptive PoA insufficient: %+v", rep.Insufficiencies)
	}

	// And it should use far fewer samples than 5 Hz fixed over 120 s
	// (600), while pushing the rate up near the zone.
	if res.PoA.Len() >= 300 {
		t.Errorf("adaptive used %d samples, expected well under 5 Hz fixed (600)", res.PoA.Len())
	}
	if res.PoA.Len() < 5 {
		t.Errorf("adaptive used only %d samples passing 30 m from a zone", res.PoA.Len())
	}
}

func TestAdaptiveRateIncreasesNearZone(t *testing.T) {
	start := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	route := straightRoute(t, 10, 2*time.Minute)
	mid := start.Offset(90, 600)
	z := geo.GeoCircle{Center: mid.Offset(0, 60), R: 20}

	env, _ := buildEnv(t, route, 5)
	a := &Adaptive{Env: env, Index: zone.NewIndex([]geo.GeoCircle{z}, 0), VMaxMS: geo.MaxDroneSpeedMPS}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}

	// Find the max instantaneous rate within 10 s of the closest
	// approach (t=60 s) and the min rate far away (t>100 s).
	var nearMax, farMin float64
	farMin = 1e9
	for _, rp := range res.Stats.InstantRates() {
		dt := rp.T.Sub(t0)
		if dt > 50*time.Second && dt < 70*time.Second && rp.Hz > nearMax {
			nearMax = rp.Hz
		}
		if dt > 100*time.Second && rp.Hz < farMin {
			farMin = rp.Hz
		}
	}
	if nearMax == 0 {
		t.Fatal("no samples near the zone at all")
	}
	if farMin < 1e9 && nearMax <= farMin {
		t.Errorf("rate near zone (%v Hz) not above rate far away (%v Hz)", nearMax, farMin)
	}
}

func TestAdaptiveNoZonesAnchorAndFinal(t *testing.T) {
	route := straightRoute(t, 10, time.Minute)
	env, _ := buildEnv(t, route, 5)
	a := &Adaptive{Env: env, Index: zone.NewIndex(nil, 0), VMaxMS: geo.MaxDroneSpeedMPS}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	// With no zones the PoA is just the flight frame: the anchor at
	// take-off and the closing sample at landing (goal G1 coverage).
	if res.PoA.Len() != 2 {
		t.Errorf("PoA samples = %d, want 2 (anchor + final)", res.PoA.Len())
	}
	if got := res.Stats.Times[1].Sub(t0); got != time.Minute {
		t.Errorf("final sample at %v, want 1m0s", got)
	}
}

func TestAdaptiveHeartbeat(t *testing.T) {
	route := straightRoute(t, 10, time.Minute)
	env, _ := buildEnv(t, route, 5)
	a := &Adaptive{
		Env: env, Index: zone.NewIndex(nil, 0), VMaxMS: geo.MaxDroneSpeedMPS,
		MaxGap: 10 * time.Second,
	}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	// 60 s flight with a 10 s heartbeat: ~7 samples.
	if res.PoA.Len() < 6 || res.PoA.Len() > 8 {
		t.Errorf("PoA samples = %d, want ~7", res.PoA.Len())
	}
}

func TestAdaptiveStrictVsRelaxedOnMissedUpdate(t *testing.T) {
	// A missed hardware update right at the closest approach can make
	// the next gap insufficient. Relaxed mode re-anchors immediately;
	// strict (paper) mode skips the secure call when condition (2)
	// already failed. Both should agree when nothing is missed.
	start := geo.LatLon{Lat: 40.1106, Lon: -88.2073}
	route := straightRoute(t, 10, time.Minute)
	mid := start.Offset(90, 300)
	z := geo.GeoCircle{Center: mid.Offset(0, 30), R: 20}
	zs := []geo.GeoCircle{z}

	run := func(strict bool, opts ...gps.ReceiverOption) *RunResult {
		env, _ := buildEnv(t, route, 5, opts...)
		a := &Adaptive{Env: env, Index: zone.NewIndex(zs, 0), VMaxMS: geo.MaxDroneSpeedMPS, StrictPaper: strict}
		res, err := a.Run(route.End())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(false)
	cleanStrict := run(true)
	if clean.PoA.Len() != cleanStrict.PoA.Len() {
		t.Errorf("clean runs differ: relaxed %d vs strict %d samples",
			clean.PoA.Len(), cleanStrict.PoA.Len())
	}

	// Miss ~2 s of updates around the closest approach (t=30 s → ticks
	// 150-159 at 5 Hz).
	missed := make([]int64, 10)
	for i := range missed {
		missed[i] = 150 + int64(i)
	}
	relaxed := run(false, gps.WithMissedUpdates(missed...))
	counts := poa.CountInsufficient(relaxed.PoA.Alibi(), zs, geo.MaxDroneSpeedMPS)
	total := 0
	if len(counts) > 0 {
		total = counts[len(counts)-1]
	}
	// The relaxed sampler limits the damage to at most a couple of
	// insufficient pairs.
	if total > 2 {
		t.Errorf("relaxed mode: %d insufficient pairs after missed updates, want <= 2", total)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{
		Times: []time.Time{t0, t0.Add(time.Second), t0.Add(1500 * time.Millisecond)},
	}
	rates := s.InstantRates()
	if len(rates) != 2 {
		t.Fatalf("InstantRates len = %d", len(rates))
	}
	if rates[0].Hz != 1 || rates[1].Hz != 2 {
		t.Errorf("rates = %+v", rates)
	}

	s.PoASamples = 3
	s.Elapsed = 2 * time.Second
	if got := s.MeanRateHz(); got != 1.5 {
		t.Errorf("MeanRateHz = %v", got)
	}
	if (Stats{}).MeanRateHz() != 0 {
		t.Error("empty stats mean rate should be 0")
	}
	if (Stats{}).InstantRates() != nil {
		t.Error("empty stats rates should be nil")
	}
}
