// Package sampling implements the paper's two PoA sampling strategies: the
// Fix Rate baseline (§VI-A1) and the Adaptive Sampling algorithm
// (Algorithm 1, §IV-C3). Both run as deterministic simulations over a
// simulated clock, a simulated GPS receiver and the TEE GPS Sampler, and
// produce the Proof-of-Alibi plus the statistics the evaluation figures
// plot (sample counts, instantaneous rates).
package sampling

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gps"
	"repro/internal/poa"
	"repro/internal/tee"
)

var (
	// ErrNoSamples is returned when a run produces no samples at all.
	ErrNoSamples = errors.New("sampling: no samples produced")
	// ErrBadRate is returned for non-positive sampling rates.
	ErrBadRate = errors.New("sampling: non-positive sampling rate")
)

// Env wires a sampler to the simulated world. Read is the cheap
// normal-world GPS read the Adapter performs every hardware update; Auth
// crosses into the secure world and returns a signed sample (the costly
// GetGPSAuth call the adaptive algorithm tries to minimise).
type Env struct {
	Receiver *gps.Receiver
	Clock    *tee.SimClock
	Read     func() (poa.Sample, error)
	Auth     func() (poa.SignedSample, error)
}

// NewTEEEnv builds the standard environment: normal-world reads go straight
// to the receiver, authenticated samples go through the device's SMC
// interface into the GPS Sampler TA.
func NewTEEEnv(dev *tee.Device, clock *tee.SimClock, rx *gps.Receiver) Env {
	return Env{
		Receiver: rx,
		Clock:    clock,
		Read: func() (poa.Sample, error) {
			fix, err := rx.LatestFix(clock.Now())
			if err != nil {
				return poa.Sample{}, fmt.Errorf("normal-world gps read: %w", err)
			}
			return poa.Sample{Pos: fix.Pos, AltMeters: fix.AltMeters, Time: fix.Time}, nil
		},
		Auth: func() (poa.SignedSample, error) {
			resp, err := dev.Invoke(tee.GPSSamplerUUID, tee.CmdGetGPSAuth, nil)
			if err != nil {
				return poa.SignedSample{}, fmt.Errorf("GetGPSAuth: %w", err)
			}
			return tee.DecodeAuthSample(resp)
		},
	}
}

// Stats captures what a sampling run did, for the evaluation figures.
type Stats struct {
	PoASamples int           // samples recorded into the PoA
	Reads      int           // normal-world GPS reads
	AuthCalls  int           // secure-world GetGPSAuth invocations
	Times      []time.Time   // timestamp of every PoA sample, in order
	Elapsed    time.Duration // simulated flight time covered
}

// RatePoint is one point of the instantaneous-sampling-rate series
// (Fig 8-(b)): the rate implied by the gap ending at T.
type RatePoint struct {
	T  time.Time
	Hz float64
}

// InstantRates derives the instantaneous sampling rate series from the
// recorded sample times: for each consecutive pair, 1/gap at the later
// sample.
func (s Stats) InstantRates() []RatePoint {
	if len(s.Times) < 2 {
		return nil
	}
	out := make([]RatePoint, 0, len(s.Times)-1)
	for i := 1; i < len(s.Times); i++ {
		gap := s.Times[i].Sub(s.Times[i-1]).Seconds()
		if gap <= 0 {
			continue
		}
		out = append(out, RatePoint{T: s.Times[i], Hz: 1 / gap})
	}
	return out
}

// MeanRateHz is the average PoA sampling rate over the run.
func (s Stats) MeanRateHz() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.PoASamples) / s.Elapsed.Seconds()
}
