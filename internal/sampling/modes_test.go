package sampling

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/poa"
	"repro/internal/sigcrypto"
	"repro/internal/tee"
	"repro/internal/zone"
)

func TestBatchEnvBuffersWithoutSigning(t *testing.T) {
	route := straightRoute(t, 10, 30*time.Second)
	env, dev := buildEnv(t, route, 5)
	batchEnv := NewTEEBatchEnv(dev, env.Clock, env.Receiver)

	f := &FixedRate{Env: batchEnv, RateHz: 2}
	res, err := f.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	// No signatures were made during sampling; Sig fields are empty.
	if st := dev.Snapshot(); st.Signs != 0 {
		t.Errorf("Signs during batch flight = %d, want 0", st.Signs)
	}
	for i, ss := range res.PoA.Samples {
		if len(ss.Sig) != 0 {
			t.Fatalf("sample %d carries a signature in batch mode", i)
		}
	}

	// Sealing signs once and yields the recorded trace.
	batch, err := SealTrace(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Samples) != res.PoA.Len() {
		t.Errorf("sealed %d samples, recorded %d", len(batch.Samples), res.PoA.Len())
	}
	if err := sigcrypto.Verify(dev.Vault().PublicKey(), poa.MarshalBatch(batch.Samples), batch.Sig); err != nil {
		t.Errorf("batch signature invalid: %v", err)
	}
	if st := dev.Snapshot(); st.Signs != 1 {
		t.Errorf("Signs after sealing = %d, want 1", st.Signs)
	}
}

func TestMACEnvTagsWithSessionKey(t *testing.T) {
	route := straightRoute(t, 10, 20*time.Second)
	env, dev := buildEnv(t, route, 5)

	// Establish the session key: the auditor unwraps it with its private
	// key.
	rng := rand.New(rand.NewSource(8))
	auditorKey, err := sigcrypto.GenerateKeyPair(rng, sigcrypto.KeySize1024)
	if err != nil {
		t.Fatal(err)
	}
	pubStr, err := sigcrypto.MarshalPublicKey(&auditorKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := dev.Invoke(tee.GPSSamplerUUID, tee.CmdEstablishSessionKey, []byte(pubStr))
	if err != nil {
		t.Fatal(err)
	}
	sessionKey, err := sigcrypto.Decrypt(auditorKey, wrapped)
	if err != nil {
		t.Fatal(err)
	}

	macEnv := NewTEEMACEnv(dev, env.Clock, env.Receiver)
	a := &Adaptive{Env: macEnv, Index: zone.NewIndex(nil, 0), VMaxMS: geo.MaxDroneSpeedMPS}
	res, err := a.Run(route.End())
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range res.PoA.Samples {
		if err := sigcrypto.VerifyMAC(sessionKey, ss.Sample.Marshal(), ss.Sig); err != nil {
			t.Fatalf("sample %d MAC invalid: %v", i, err)
		}
	}
	if st := dev.Snapshot(); st.Signs != 0 || st.MACs == 0 {
		t.Errorf("stats = %+v, want MACs only", st)
	}
}
