package sampling

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/poa"
	"repro/internal/zone"
)

// Adaptive implements Algorithm 1 of the paper: the Adapter reads the GPS
// in the normal world at the hardware update rate R, finds the nearest
// no-fly zone, and only crosses into the secure world (GetGPSAuth) when the
// possible-travel-range is about to touch the nearest zone:
//
//	condition (2): D1 + D2 >= vmax * (t2 - t1)        — still sufficient
//	condition (3): D1 + D2 <= vmax * (t2 - t1 + 2/R)  — but not for long
//
// where D_i is the distance from sample i to the nearest zone boundary, S1
// is the last sample recorded in the PoA and S2 the latest normal-world
// read.
type Adaptive struct {
	Env    Env
	Index  *zone.Index // nearest-zone search over the flight's NFZ set
	VMaxMS float64     // FAA speed bound

	// StrictPaper selects the literal Algorithm 1 guard, which skips the
	// secure-world call when the alibi is *already* insufficient
	// (condition (2) false). The default (false) also re-anchors in that
	// case, which bounds the damage of a missed GPS update to a single
	// insufficient pair. This is the ablation discussed in DESIGN.md.
	StrictPaper bool

	// MaxGap, when positive, forces a heartbeat sample whenever no PoA
	// sample was taken for this long (e.g. when no zone is nearby at
	// all). Zero disables the heartbeat.
	MaxGap time.Duration

	// Metrics, when set, receives read/auth counters and the
	// samples-per-zone-crossing histogram under mode="adaptive".
	Metrics *obs.Registry
}

// Run executes the adaptive loop from the receiver's first update until the
// end instant.
func (a *Adaptive) Run(until time.Time) (*RunResult, error) {
	if a.VMaxMS <= 0 {
		return nil, fmt.Errorf("%w: vmax %v", ErrBadRate, a.VMaxMS)
	}

	res := newRunResult()
	rateR := a.Env.Receiver.RateHz()
	start := a.Env.Receiver.FirstUpdate()
	if start.After(until) {
		return nil, ErrNoSamples
	}

	// crossing tracks the burst of consecutive zone-triggered samples:
	// each approach to a zone shows up as one histogram observation of
	// how many authenticated samples it cost.
	heartbeats := a.Metrics.Counter(obs.L(MetricHeartbeatsTotal, "mode", "adaptive"))
	crossing := a.Metrics.Histogram(obs.L(MetricZoneCrossingSamples, "mode", "adaptive"), obs.CountBuckets)
	burst := 0
	flushBurst := func() {
		if burst > 0 {
			crossing.Observe(float64(burst))
			burst = 0
		}
	}

	// The first PoA sample anchors the trace at the start of the flight
	// (S_{k0} = S_0 in the paper).
	a.Env.Clock.Set(start)
	last, err := a.authSample(res)
	if err != nil {
		return nil, fmt.Errorf("adaptive first sample: %w", err)
	}

	for at := a.Env.Receiver.NextUpdateAfter(start); !at.After(until); at = a.Env.Receiver.NextUpdateAfter(at) {
		a.Env.Clock.Set(at)
		s2, err := a.readSample(res)
		if err != nil {
			return nil, fmt.Errorf("adaptive read at %v: %w", at, err)
		}

		record := false
		_, d2, err := a.Index.Nearest(s2.Pos)
		switch {
		case errors.Is(err, zone.ErrNoZones):
			// Nothing to prove alibi against; only the heartbeat fires.
		case err != nil:
			return nil, fmt.Errorf("adaptive nearest zone: %w", err)
		default:
			_, d1, err := a.Index.Nearest(last.Pos)
			if err != nil {
				return nil, fmt.Errorf("adaptive nearest zone: %w", err)
			}
			dt := s2.Time.Sub(last.Time).Seconds()
			sum := d1 + d2
			cond2 := sum >= a.VMaxMS*dt           // pair still sufficient
			cond3 := sum <= a.VMaxMS*(dt+2/rateR) // will not be after the next update
			if a.StrictPaper {
				record = cond2 && cond3
			} else {
				record = cond3
			}
		}
		zoneTriggered := record
		if !record && a.MaxGap > 0 && s2.Time.Sub(last.Time) >= a.MaxGap {
			record = true
		}

		switch {
		case record:
			last, err = a.authSample(res)
			if err != nil {
				return nil, fmt.Errorf("adaptive auth at %v: %w", at, err)
			}
			if zoneTriggered {
				burst++
			} else {
				heartbeats.Inc()
				flushBurst()
			}
		default:
			flushBurst()
		}
	}
	flushBurst()

	// Close the trace with a final sample so the PoA covers the entire
	// flight period (goal G1): without it, nothing constrains the drone
	// between the last recorded sample and landing.
	if fix, err := a.Env.Receiver.LatestFix(until); err == nil && fix.Time.After(last.Time) {
		a.Env.Clock.Set(fix.Time)
		if _, err := a.authSample(res); err != nil {
			return nil, fmt.Errorf("adaptive final sample: %w", err)
		}
	}

	res.finish(start, until)
	return res, nil
}

// readSample performs the cheap normal-world read.
func (a *Adaptive) readSample(res *RunResult) (poa.Sample, error) {
	s, err := a.Env.Read()
	if err != nil {
		return poa.Sample{}, err
	}
	res.Stats.Reads++
	a.Metrics.Counter(obs.L(MetricReadsTotal, "mode", "adaptive")).Inc()
	return s, nil
}

// authSample performs the secure-world authenticated sample and records it.
func (a *Adaptive) authSample(res *RunResult) (poa.Sample, error) {
	ss, err := a.Env.Auth()
	if err != nil {
		return poa.Sample{}, err
	}
	res.Stats.AuthCalls++
	a.Metrics.Counter(obs.L(MetricAuthTotal, "mode", "adaptive")).Inc()
	res.record(ss)
	return ss.Sample, nil
}

// RunResult bundles the PoA a sampler produced with its statistics.
type RunResult struct {
	PoA   poa.PoA
	Stats Stats
}

func newRunResult() *RunResult { return &RunResult{} }

// record appends a signed sample, skipping duplicates of the same hardware
// tick (two wake-ups can land on one update when rates are close).
func (r *RunResult) record(ss poa.SignedSample) {
	if n := r.PoA.Len(); n > 0 && !ss.Sample.Time.After(r.PoA.Samples[n-1].Sample.Time) {
		return
	}
	r.PoA.Append(ss)
	r.Stats.PoASamples = r.PoA.Len()
	r.Stats.Times = append(r.Stats.Times, ss.Sample.Time)
}

// finish stamps the run window.
func (r *RunResult) finish(start, until time.Time) {
	r.Stats.PoASamples = r.PoA.Len()
	r.Stats.Elapsed = until.Sub(start)
}
