package geo

import (
	"math/rand"
	"testing"
)

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(urbana)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := LatLon{
			Lat: urbana.Lat + (rng.Float64()-0.5)*0.2, // ~±11 km
			Lon: urbana.Lon + (rng.Float64()-0.5)*0.2,
		}
		back := pr.ToLatLon(pr.ToLocal(p))
		if !almostEqual(back.Lat, p.Lat, 1e-9) || !almostEqual(back.Lon, p.Lon, 1e-9) {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	}
}

func TestProjectionDistanceAgreement(t *testing.T) {
	// At county scale the planar distance must agree with haversine to
	// well under GPS accuracy (a few metres).
	pr := NewProjection(urbana)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		p := urbana.Offset(rng.Float64()*360, rng.Float64()*8000)
		q := urbana.Offset(rng.Float64()*360, rng.Float64()*8000)
		planar := pr.ToLocal(p).Dist(pr.ToLocal(q))
		sphere := HaversineMeters(p, q)
		if !almostEqual(planar, sphere, 0.02*sphere+0.5) {
			t.Fatalf("planar %v vs haversine %v for %v-%v", planar, sphere, p, q)
		}
	}
}

func TestProjectionOrigin(t *testing.T) {
	pr := NewProjection(urbana)
	if pr.Origin() != urbana {
		t.Errorf("Origin() = %v, want %v", pr.Origin(), urbana)
	}
	o := pr.ToLocal(urbana)
	if !almostEqual(o.X, 0, 1e-9) || !almostEqual(o.Y, 0, 1e-9) {
		t.Errorf("origin projects to %+v, want (0,0)", o)
	}
}

func TestProjectionPolarClamp(t *testing.T) {
	pr := NewProjection(LatLon{Lat: 90, Lon: 0})
	p := pr.ToLocal(LatLon{Lat: 89.999, Lon: 1})
	if p.X != p.X || p.Y != p.Y { // NaN check
		t.Error("polar projection produced NaN")
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{X: 3, Y: 4}
	b := Point{X: 1, Y: 2}
	if got := a.Sub(b); got != (Point{X: 2, Y: 2}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Add(b); got != (Point{X: 4, Y: 6}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Scale(2); got != (Point{X: 6, Y: 8}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := a.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Dist(b); !almostEqual(got, 2.8284271247461903, 1e-12) {
		t.Errorf("Dist = %v", got)
	}
}

func TestGeoCircle(t *testing.T) {
	z := GeoCircle{Center: urbana, R: MilesToMeters(5)}
	if !z.Valid() {
		t.Fatal("airport zone should be valid")
	}
	if !z.ContainsLatLon(urbana.Offset(90, 1000)) {
		t.Error("point 1 km from centre should be inside 5-mile zone")
	}
	if z.ContainsLatLon(urbana.Offset(90, 9000)) {
		t.Error("point 9 km out should be outside 5-mile (8 km) zone")
	}

	// Boundary distance signs.
	if d := z.BoundaryDistMeters(urbana.Offset(0, 9000)); d <= 0 {
		t.Errorf("outside point boundary distance = %v, want > 0", d)
	}
	if d := z.BoundaryDistMeters(urbana); d >= 0 {
		t.Errorf("centre boundary distance = %v, want < 0", d)
	}

	if (GeoCircle{Center: urbana, R: 0}).Valid() {
		t.Error("zero-radius zone should be invalid")
	}
	if (GeoCircle{Center: LatLon{Lat: 91}, R: 5}).Valid() {
		t.Error("invalid centre should make zone invalid")
	}
}

func TestCircleBoundaryDist(t *testing.T) {
	c := Circle{Center: Point{}, R: 10}
	if d := c.BoundaryDist(Point{X: 13, Y: 0}); !almostEqual(d, 3, 1e-12) {
		t.Errorf("outside dist = %v, want 3", d)
	}
	if d := c.BoundaryDist(Point{X: 4, Y: 0}); !almostEqual(d, -6, 1e-12) {
		t.Errorf("inside dist = %v, want -6", d)
	}
	if !c.Contains(Point{X: 10, Y: 0}) {
		t.Error("boundary point should be contained")
	}
	if !c.IntersectsCircle(Circle{Center: Point{X: 15, Y: 0}, R: 5}) {
		t.Error("tangent circles intersect")
	}
	if c.IntersectsCircle(Circle{Center: Point{X: 16, Y: 0}, R: 5}) {
		t.Error("separated circles do not intersect")
	}
}
