package geo

import "errors"

// ErrDegeneratePolygon is returned when a polygon has fewer than three
// vertices and therefore cannot describe a no-fly area.
var ErrDegeneratePolygon = errors.New("geo: polygon needs at least 3 vertices")

// Polygon is a simple polygon on the local plane, described by its vertices
// in order. Zone Owners may register polygonal no-fly zones (paper §VII-B2);
// the auditor converts them to their smallest enclosing circle once at
// registration time.
type Polygon struct {
	Vertices []Point `json:"vertices"`
}

// Valid reports whether the polygon has at least three vertices.
func (pg Polygon) Valid() bool { return len(pg.Vertices) >= 3 }

// Contains reports whether p lies strictly inside or on the boundary of the
// polygon, by ray casting with an on-edge check.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Vertices[j], pg.Vertices[i]
		if segmentDistToPoint(a, b, p) < 1e-9 {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Centroid returns the area centroid of the polygon (or the vertex mean for
// degenerate, zero-area inputs).
func (pg Polygon) Centroid() Point {
	n := len(pg.Vertices)
	if n == 0 {
		return Point{}
	}
	var areaSum, cx, cy float64
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Vertices[j], pg.Vertices[i]
		cross := a.X*b.Y - b.X*a.Y
		areaSum += cross
		cx += (a.X + b.X) * cross
		cy += (a.Y + b.Y) * cross
	}
	if areaSum == 0 {
		var sx, sy float64
		for _, v := range pg.Vertices {
			sx += v.X
			sy += v.Y
		}
		return Point{X: sx / float64(n), Y: sy / float64(n)}
	}
	return Point{X: cx / (3 * areaSum), Y: cy / (3 * areaSum)}
}

// EnclosingCircle returns the smallest circle covering every vertex, which
// (for a convex or star-shaped no-fly area) covers the whole polygon. This
// is the registration-time conversion from §VII-B2.
func (pg Polygon) EnclosingCircle() (Circle, error) {
	if !pg.Valid() {
		return Circle{}, ErrDegeneratePolygon
	}
	return SmallestEnclosingCircle(pg.Vertices), nil
}
