package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestTravelEllipseEmpty(t *testing.T) {
	f1 := Point{X: 0, Y: 0}
	f2 := Point{X: 1000, Y: 0}

	// dt too short to cover the inter-focal distance at vmax.
	e := NewTravelEllipse(f1, f2, 10, 44.704) // 447 m budget < 1000 m
	if !e.Empty() {
		t.Error("ellipse should be empty when samples exceed the speed bound")
	}
	if e.IntersectsDisk(Circle{Center: Point{X: 500, Y: 0}, R: 100}) {
		t.Error("empty ellipse must not intersect anything")
	}
	if e.SemiMajor() != 0 || e.SemiMinor() != 0 {
		t.Error("empty ellipse axes should be 0")
	}

	// Exactly feasible: degenerate segment ellipse.
	e = TravelEllipse{F1: f1, F2: f2, SumLimit: 1000}
	if e.Empty() {
		t.Error("ellipse with SumLimit == focal distance is the segment, not empty")
	}
}

func TestTravelEllipseContains(t *testing.T) {
	e := TravelEllipse{F1: Point{X: -300, Y: 0}, F2: Point{X: 300, Y: 0}, SumLimit: 1000}
	// a = 500, c = 300, b = 400.
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{}, true},
		{"focus", Point{X: 300, Y: 0}, true},
		{"major vertex", Point{X: 500, Y: 0}, true},
		{"minor vertex", Point{X: 0, Y: 400}, true},
		{"beyond major vertex", Point{X: 500.1, Y: 0}, false},
		{"beyond minor vertex", Point{X: 0, Y: 400.1}, false},
		{"far away", Point{X: 5000, Y: 5000}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestTravelEllipseAxes(t *testing.T) {
	e := TravelEllipse{F1: Point{X: -300, Y: 0}, F2: Point{X: 300, Y: 0}, SumLimit: 1000}
	if !almostEqual(e.SemiMajor(), 500, 1e-9) {
		t.Errorf("SemiMajor = %v, want 500", e.SemiMajor())
	}
	if !almostEqual(e.SemiMinor(), 400, 1e-9) {
		t.Errorf("SemiMinor = %v, want 400", e.SemiMinor())
	}
}

func TestIntersectsDiskTangent(t *testing.T) {
	// Paper Fig 3: the minimum sampling rate yields an ellipse tangent to
	// the NFZ. Build an ellipse and a circle tangent at the major vertex.
	e := TravelEllipse{F1: Point{X: -300, Y: 0}, F2: Point{X: 300, Y: 0}, SumLimit: 1000}
	// Major vertex at (500, 0); circle of radius 100 centred at (600, 0)
	// touches it exactly.
	touching := Circle{Center: Point{X: 600, Y: 0}, R: 100}
	if !e.IntersectsDisk(touching) {
		t.Error("tangent circle should intersect (boundary contact)")
	}
	separated := Circle{Center: Point{X: 601, Y: 0}, R: 100}
	if e.IntersectsDisk(separated) {
		t.Error("circle 1 m past tangency should not intersect")
	}
}

func TestIntersectsDiskOverlapping(t *testing.T) {
	e := TravelEllipse{F1: Point{X: -300, Y: 0}, F2: Point{X: 300, Y: 0}, SumLimit: 1000}
	tests := []struct {
		name string
		c    Circle
		want bool
	}{
		{"circle containing a focus", Circle{Center: Point{X: 300, Y: 50}, R: 100}, true},
		{"circle inside ellipse", Circle{Center: Point{}, R: 10}, true},
		{"circle containing whole ellipse", Circle{Center: Point{}, R: 10000}, true},
		{"disjoint above", Circle{Center: Point{X: 0, Y: 1000}, R: 100}, false},
		{"disjoint diagonal", Circle{Center: Point{X: 800, Y: 800}, R: 200}, false},
		{"overlapping minor vertex", Circle{Center: Point{X: 0, Y: 450}, R: 60}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.IntersectsDisk(tt.c); got != tt.want {
				t.Errorf("IntersectsDisk(%+v) = %v, want %v", tt.c, got, tt.want)
			}
		})
	}
}

// TestConservativeImpliesExact checks the soundness relationship the
// sampler relies on: whenever the paper's conservative boundary test says
// "disjoint", the exact test must agree. (The converse may fail — the
// conservative test is allowed to be pessimistic.)
func TestConservativeImpliesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		f1 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		f2 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		sum := f1.Dist(f2) + rng.Float64()*1000
		e := TravelEllipse{F1: f1, F2: f2, SumLimit: sum}
		c := Circle{
			Center: Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000},
			R:      rng.Float64() * 500,
		}
		if e.DisjointFromDiskConservative(c) && e.IntersectsDisk(c) {
			t.Fatalf("conservative says disjoint but exact says intersecting:\n e=%+v\n c=%+v", e, c)
		}
	}
}

// TestExactMatchesSampledMembership cross-validates the exact intersection
// test against brute-force point sampling of the disk.
func TestExactMatchesSampledMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		f1 := Point{X: rng.Float64()*1000 - 500, Y: rng.Float64()*1000 - 500}
		f2 := Point{X: rng.Float64()*1000 - 500, Y: rng.Float64()*1000 - 500}
		sum := f1.Dist(f2) + rng.Float64()*800
		e := TravelEllipse{F1: f1, F2: f2, SumLimit: sum}
		c := Circle{
			Center: Point{X: rng.Float64()*3000 - 1500, Y: rng.Float64()*3000 - 1500},
			R:      rng.Float64()*400 + 1,
		}

		// Sample the disk densely; if any sampled point is inside the
		// ellipse, the exact test must report intersection.
		found := false
		for j := 0; j < 500 && !found; j++ {
			theta := rng.Float64() * 2 * math.Pi
			rr := math.Sqrt(rng.Float64()) * c.R
			p := Point{X: c.Center.X + rr*math.Cos(theta), Y: c.Center.Y + rr*math.Sin(theta)}
			if e.Contains(p) {
				found = true
			}
		}
		if found && !e.IntersectsDisk(c) {
			t.Fatalf("sampled point inside ellipse but exact test says disjoint:\n e=%+v\n c=%+v", e, c)
		}
	}
}

func TestMinFocalSumOnDisk(t *testing.T) {
	e := TravelEllipse{F1: Point{X: -100, Y: 0}, F2: Point{X: 100, Y: 0}, SumLimit: 400}

	// Disk crossing the focal segment: minimum is the focal distance.
	c := Circle{Center: Point{X: 0, Y: 10}, R: 20}
	if got := e.MinFocalSumOnDisk(c); !almostEqual(got, 200, 1e-6) {
		t.Errorf("min over segment-crossing disk = %v, want 200", got)
	}

	// Disk far along the major axis: nearest point is the disk boundary
	// point closest to both foci, at (400, 0).
	c = Circle{Center: Point{X: 500, Y: 0}, R: 100}
	want := (400.0 - (-100.0)) + (400.0 - 100.0) // 500 + 300
	if got := e.MinFocalSumOnDisk(c); !almostEqual(got, want, 1e-3) {
		t.Errorf("min over distant disk = %v, want %v", got, want)
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 10, Y: 0}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"above middle", Point{X: 5, Y: 3}, 3},
		{"beyond end", Point{X: 13, Y: 4}, 5},
		{"before start", Point{X: -3, Y: 4}, 5},
		{"on segment", Point{X: 7, Y: 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := segmentDistToPoint(a, b, tt.p); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("segmentDistToPoint = %v, want %v", got, tt.want)
			}
		})
	}

	// Degenerate zero-length segment.
	if got := segmentDistToPoint(a, a, Point{X: 3, Y: 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("degenerate segment distance = %v, want 5", got)
	}
}
