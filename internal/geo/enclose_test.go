package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestSmallestEnclosingCircleBasics(t *testing.T) {
	tests := []struct {
		name       string
		pts        []Point
		wantCenter Point
		wantR      float64
	}{
		{"empty", nil, Point{}, 0},
		{"single point", []Point{{X: 3, Y: 4}}, Point{X: 3, Y: 4}, 0},
		{
			"two points",
			[]Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
			Point{X: 5, Y: 0}, 5,
		},
		{
			"equilateral-ish triangle",
			[]Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8.660254037844386}},
			Point{X: 5, Y: 2.886751345948129}, 5.773502691896258,
		},
		{
			"square",
			[]Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
			Point{X: 5, Y: 5}, 5 * math.Sqrt2,
		},
		{
			"interior point ignored",
			[]Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 1}},
			Point{X: 5, Y: 0}, 5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := SmallestEnclosingCircle(tt.pts)
			if !almostEqual(c.Center.X, tt.wantCenter.X, 1e-6) ||
				!almostEqual(c.Center.Y, tt.wantCenter.Y, 1e-6) {
				t.Errorf("center = %+v, want %+v", c.Center, tt.wantCenter)
			}
			if !almostEqual(c.R, tt.wantR, 1e-6) {
				t.Errorf("radius = %v, want %v", c.R, tt.wantR)
			}
		})
	}
}

func TestSmallestEnclosingCircleCollinear(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}, {X: 2, Y: 0}}
	c := SmallestEnclosingCircle(pts)
	if !almostEqual(c.R, 5, 1e-9) || !almostEqual(c.Center.X, 5, 1e-9) {
		t.Errorf("collinear enclosing circle = %+v, want center (5,0) r 5", c)
	}
}

// TestEnclosingCircleProperties verifies, on random inputs, that the result
// (1) contains every input point and (2) is minimal: no circle through the
// same support with a 1% smaller radius can contain all points.
func TestEnclosingCircleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		}
		c := SmallestEnclosingCircle(pts)

		for _, p := range pts {
			if d := c.Center.Dist(p); d > c.R*(1+1e-7)+1e-7 {
				t.Fatalf("trial %d: point %v outside circle %+v (d=%v)", trial, p, c, d)
			}
		}

		// Minimality sanity check: the radius must not exceed the radius
		// of the circle centred at the centroid of the farthest pair.
		var worst float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := pts[i].Dist(pts[j]); d > worst {
					worst = d
				}
			}
		}
		// Known bound: R <= diameter/sqrt(3) for the SEC of any planar set
		// (Jung's theorem), and R >= diameter/2.
		if c.R < worst/2-1e-7 || c.R > worst/math.Sqrt(3)+1e-7 {
			t.Fatalf("trial %d: radius %v violates Jung bounds for diameter %v", trial, c.R, worst)
		}
	}
}

func TestPolygonEnclosingCircle(t *testing.T) {
	pg := Polygon{Vertices: []Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30, Y: 40}, {X: 0, Y: 40}}}
	c, err := pg.EnclosingCircle()
	if err != nil {
		t.Fatalf("EnclosingCircle: %v", err)
	}
	if !almostEqual(c.R, 25, 1e-6) {
		t.Errorf("rectangle SEC radius = %v, want 25", c.R)
	}

	if _, err := (Polygon{Vertices: []Point{{}, {X: 1}}}).EnclosingCircle(); err == nil {
		t.Error("degenerate polygon should return an error")
	}
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{Vertices: []Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{X: 5, Y: 5}, true},
		{"on edge", Point{X: 0, Y: 5}, true},
		{"vertex", Point{X: 0, Y: 0}, true},
		{"outside right", Point{X: 11, Y: 5}, false},
		{"outside diagonal", Point{X: -1, Y: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := square.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPolygonCentroid(t *testing.T) {
	square := Polygon{Vertices: []Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}}
	c := square.Centroid()
	if !almostEqual(c.X, 5, 1e-9) || !almostEqual(c.Y, 5, 1e-9) {
		t.Errorf("square centroid = %+v, want (5,5)", c)
	}

	// Collinear (zero-area) polygon falls back to vertex mean.
	line := Polygon{Vertices: []Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}}
	c = line.Centroid()
	if !almostEqual(c.X, 2, 1e-9) || !almostEqual(c.Y, 0, 1e-9) {
		t.Errorf("degenerate centroid = %+v, want (2,0)", c)
	}
}
