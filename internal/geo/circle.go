package geo

import "math"

// Circle is a disk on the local plane: the planar representation of a
// circular no-fly zone z = (lat, lon, r).
type Circle struct {
	Center Point   `json:"center"`
	R      float64 `json:"r"` // radius in metres
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist(p) <= c.R
}

// BoundaryDist returns the signed distance from p to the circle boundary:
// positive outside, zero on the boundary, negative inside. This is the
// quantity D_i = dist(S_i, center) - r used by the adaptive sampling
// conditions (paper eq. 2 and 3).
func (c Circle) BoundaryDist(p Point) float64 {
	return c.Center.Dist(p) - c.R
}

// IntersectsCircle reports whether two disks overlap.
func (c Circle) IntersectsCircle(o Circle) bool {
	return c.Center.Dist(o.Center) <= c.R+o.R
}

// GeoCircle is a circular zone in geographic coordinates, as registered by a
// Zone Owner.
type GeoCircle struct {
	Center LatLon  `json:"center"`
	R      float64 `json:"r"` // radius in metres
}

// Valid reports whether the zone has a legal centre and a positive radius.
func (g GeoCircle) Valid() bool { return g.Center.Valid() && g.R > 0 && !math.IsInf(g.R, 0) }

// ToLocal projects the zone onto the local plane.
func (g GeoCircle) ToLocal(pr *Projection) Circle {
	return Circle{Center: pr.ToLocal(g.Center), R: g.R}
}

// BoundaryDistMeters returns the signed haversine distance from p to the
// zone boundary: positive outside, negative inside.
func (g GeoCircle) BoundaryDistMeters(p LatLon) float64 {
	return HaversineMeters(g.Center, p) - g.R
}

// ContainsLatLon reports whether the geographic point lies inside the zone.
func (g GeoCircle) ContainsLatLon(p LatLon) bool {
	return HaversineMeters(g.Center, p) <= g.R
}
