// Package geo provides the geodesy substrate for AliDrone: WGS-84
// coordinates, a local planar projection, distances, no-fly-zone circles,
// possible-travel-range ellipses (2-D) and ellipsoids (3-D), polygons, and
// the smallest-enclosing-circle construction used for polygonal no-fly
// zones.
//
// All internal computation is carried out in metres and seconds on a local
// east-north plane; the package exposes conversion helpers for the imperial
// units used throughout the paper (feet, miles, mph) and the knots reported
// by NMEA receivers.
package geo

// Conversion factors between the units used by the paper/FAA regulations and
// the SI units used internally.
const (
	// MetersPerFoot converts international feet to metres.
	MetersPerFoot = 0.3048
	// MetersPerMile converts statute miles to metres.
	MetersPerMile = 1609.344
	// MetersPerNauticalMile converts nautical miles to metres.
	MetersPerNauticalMile = 1852.0
	// EarthRadiusMeters is the mean Earth radius used by the haversine
	// formula.
	EarthRadiusMeters = 6371008.8
)

// FeetToMeters converts a length in feet to metres.
func FeetToMeters(ft float64) float64 { return ft * MetersPerFoot }

// MetersToFeet converts a length in metres to feet.
func MetersToFeet(m float64) float64 { return m / MetersPerFoot }

// MilesToMeters converts a length in statute miles to metres.
func MilesToMeters(mi float64) float64 { return mi * MetersPerMile }

// MetersToMiles converts a length in metres to statute miles.
func MetersToMiles(m float64) float64 { return m / MetersPerMile }

// MPHToMetersPerSecond converts a speed in miles per hour to metres per
// second.
func MPHToMetersPerSecond(mph float64) float64 { return mph * MetersPerMile / 3600 }

// MetersPerSecondToMPH converts a speed in metres per second to miles per
// hour.
func MetersPerSecondToMPH(ms float64) float64 { return ms * 3600 / MetersPerMile }

// KnotsToMetersPerSecond converts a speed in knots (used by NMEA $GPRMC
// sentences) to metres per second.
func KnotsToMetersPerSecond(kn float64) float64 { return kn * MetersPerNauticalMile / 3600 }

// MetersPerSecondToKnots converts a speed in metres per second to knots.
func MetersPerSecondToKnots(ms float64) float64 { return ms * 3600 / MetersPerNauticalMile }

// MaxDroneSpeedMPS is the FAA part-107 maximum drone ground speed (100 mph)
// that the Proof-of-Alibi possible-travel-range argument relies on,
// expressed in metres per second.
var MaxDroneSpeedMPS = MPHToMetersPerSecond(100)
