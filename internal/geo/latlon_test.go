package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// urbana is the approximate location of the paper's field studies.
var urbana = LatLon{Lat: 40.1106, Lon: -88.2073}

func TestLatLonValid(t *testing.T) {
	tests := []struct {
		name string
		p    LatLon
		want bool
	}{
		{"urbana", urbana, true},
		{"north pole", LatLon{Lat: 90, Lon: 0}, true},
		{"date line", LatLon{Lat: 0, Lon: 180}, true},
		{"lat too big", LatLon{Lat: 90.01, Lon: 0}, false},
		{"lon too small", LatLon{Lat: 0, Lon: -180.5}, false},
		{"nan lat", LatLon{Lat: math.NaN(), Lon: 0}, false},
		{"nan lon", LatLon{Lat: 0, Lon: math.NaN()}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(); got != tt.want {
				t.Errorf("Valid() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	nyc := LatLon{Lat: 40.7128, Lon: -74.0060}
	la := LatLon{Lat: 34.0522, Lon: -118.2437}
	// Great-circle NYC-LA is roughly 3936 km.
	d := HaversineMeters(nyc, la)
	if d < 3.90e6 || d > 3.96e6 {
		t.Errorf("NYC-LA haversine = %v m, want ~3.94e6", d)
	}

	if d := HaversineMeters(urbana, urbana); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	fn := func(lat1, lon1, lat2, lon2 float64) bool {
		p := LatLon{Lat: math.Mod(lat1, 89), Lon: math.Mod(lon1, 179)}
		q := LatLon{Lat: math.Mod(lat2, 89), Lon: math.Mod(lon2, 179)}
		return almostEqual(HaversineMeters(p, q), HaversineMeters(q, p), 1e-6)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		bearing := rng.Float64() * 360
		dist := rng.Float64() * 20000 // up to 20 km, the scenario scale
		q := urbana.Offset(bearing, dist)
		got := HaversineMeters(urbana, q)
		if !almostEqual(got, dist, 1e-3*dist+1e-6) {
			t.Fatalf("offset(%v, %v): haversine back = %v", bearing, dist, got)
		}
	}
}

func TestOffsetBearing(t *testing.T) {
	// Travelling due north increases latitude and keeps longitude.
	q := urbana.Offset(0, 1000)
	if q.Lat <= urbana.Lat {
		t.Errorf("north offset did not increase latitude: %v", q)
	}
	if !almostEqual(q.Lon, urbana.Lon, 1e-9) {
		t.Errorf("north offset changed longitude: %v", q)
	}

	// Travelling due east keeps latitude (to first order).
	q = urbana.Offset(90, 1000)
	if !almostEqual(q.Lat, urbana.Lat, 1e-4) {
		t.Errorf("east offset changed latitude too much: %v", q)
	}
	if q.Lon <= urbana.Lon {
		t.Errorf("east offset did not increase longitude: %v", q)
	}
}

func TestInitialBearing(t *testing.T) {
	north := urbana.Offset(0, 5000)
	if b := InitialBearing(urbana, north); !almostEqual(b, 0, 0.5) && !almostEqual(b, 360, 0.5) {
		t.Errorf("bearing to north point = %v, want ~0", b)
	}
	east := urbana.Offset(90, 5000)
	if b := InitialBearing(urbana, east); !almostEqual(b, 90, 0.5) {
		t.Errorf("bearing to east point = %v, want ~90", b)
	}
}

func TestRect(t *testing.T) {
	a := LatLon{Lat: 40.2, Lon: -88.1}
	b := LatLon{Lat: 40.0, Lon: -88.3}
	r := NewRect(a, b)

	if !r.Valid() {
		t.Fatal("rect from valid corners should be valid")
	}
	if !r.Contains(urbana) {
		t.Errorf("rect %+v should contain %v", r, urbana)
	}
	if r.Contains(LatLon{Lat: 41, Lon: -88.2}) {
		t.Error("rect should not contain point north of it")
	}
	if r.Contains(LatLon{Lat: 40.1, Lon: -87.0}) {
		t.Error("rect should not contain point east of it")
	}

	// Corners are inclusive.
	if !r.Contains(LatLon{Lat: r.MinLat, Lon: r.MinLon}) {
		t.Error("rect should contain its own min corner")
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(LatLon{Lat: 40.0, Lon: -88.3}, LatLon{Lat: 40.2, Lon: -88.1})
	e := r.Expand(5000)

	if e.MinLat >= r.MinLat || e.MaxLat <= r.MaxLat {
		t.Error("expand should widen latitude range")
	}
	if e.MinLon >= r.MinLon || e.MaxLon <= r.MaxLon {
		t.Error("expand should widen longitude range")
	}

	// A point ~3 km outside the original rect should be inside the
	// expanded one.
	outside := LatLon{Lat: 40.2, Lon: -88.1}.Offset(45, 3000)
	if r.Contains(outside) {
		t.Fatal("test point should start outside the rect")
	}
	if !e.Contains(outside) {
		t.Error("expanded rect should contain the nearby point")
	}
}

func TestRectExpandClamps(t *testing.T) {
	r := NewRect(LatLon{Lat: 89.9, Lon: 179.9}, LatLon{Lat: 89.99, Lon: 179.99})
	e := r.Expand(1e7)
	if e.MaxLat > 90 || e.MaxLon > 180 || e.MinLat < -90 || e.MinLon < -180 {
		t.Errorf("expanded rect exceeds legal ranges: %+v", e)
	}
}
