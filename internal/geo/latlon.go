package geo

import (
	"fmt"
	"math"
)

// LatLon is a WGS-84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the coordinate lies within the legal WGS-84 ranges.
func (p LatLon) Valid() bool {
	return !math.IsNaN(p.Lat) && !math.IsNaN(p.Lon) &&
		p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the coordinate as "(lat, lon)" with six decimal places,
// matching the precision used in the paper's figures.
func (p LatLon) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// HaversineMeters returns the great-circle distance in metres between p and
// q using the haversine formula on a spherical Earth.
func HaversineMeters(p, q LatLon) float64 {
	lat1 := p.Lat * math.Pi / 180
	lat2 := q.Lat * math.Pi / 180
	dLat := (q.Lat - p.Lat) * math.Pi / 180
	dLon := (q.Lon - p.Lon) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(a)))
}

// InitialBearing returns the initial great-circle bearing from p to q in
// degrees clockwise from true north, in [0, 360).
func InitialBearing(p, q LatLon) float64 {
	lat1 := p.Lat * math.Pi / 180
	lat2 := q.Lat * math.Pi / 180
	dLon := (q.Lon - p.Lon) * math.Pi / 180

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Offset returns the coordinate reached by travelling distanceMeters from p
// along the given bearing (degrees clockwise from north) on a spherical
// Earth.
func (p LatLon) Offset(bearingDeg, distanceMeters float64) LatLon {
	brg := bearingDeg * math.Pi / 180
	lat1 := p.Lat * math.Pi / 180
	lon1 := p.Lon * math.Pi / 180
	ad := distanceMeters / EarthRadiusMeters

	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*sinLat2,
	)

	// Normalise longitude into [-180, 180].
	lonDeg := lon2 * 180 / math.Pi
	for lonDeg > 180 {
		lonDeg -= 360
	}
	for lonDeg < -180 {
		lonDeg += 360
	}
	return LatLon{Lat: lat2 * 180 / math.Pi, Lon: lonDeg}
}

// Rect is an axis-aligned latitude/longitude rectangle, used for the zone
// query "navigation area" in the protocol (two corner coordinates).
type Rect struct {
	MinLat float64 `json:"minLat"`
	MinLon float64 `json:"minLon"`
	MaxLat float64 `json:"maxLat"`
	MaxLon float64 `json:"maxLon"`
}

// NewRect builds a Rect from two arbitrary corner points, normalising the
// min/max ordering as the auditor does when it receives a zone query.
func NewRect(a, b LatLon) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// Contains reports whether the point lies inside the rectangle (inclusive).
func (r Rect) Contains(p LatLon) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Valid reports whether the rectangle corners are legal coordinates and
// properly ordered.
func (r Rect) Valid() bool {
	return (LatLon{Lat: r.MinLat, Lon: r.MinLon}).Valid() &&
		(LatLon{Lat: r.MaxLat, Lon: r.MaxLon}).Valid() &&
		r.MinLat <= r.MaxLat && r.MinLon <= r.MaxLon
}

// Expand grows the rectangle by approximately marginMeters on every side.
// The auditor uses this so that zones whose *boundary* reaches into the
// queried navigation area are returned even when their centres fall outside.
func (r Rect) Expand(marginMeters float64) Rect {
	dLat := marginMeters / EarthRadiusMeters * 180 / math.Pi
	midLat := (r.MinLat + r.MaxLat) / 2 * math.Pi / 180
	cos := math.Cos(midLat)
	if cos < 1e-6 {
		cos = 1e-6
	}
	dLon := dLat / cos
	return Rect{
		MinLat: math.Max(-90, r.MinLat-dLat),
		MinLon: math.Max(-180, r.MinLon-dLon),
		MaxLat: math.Min(90, r.MaxLat+dLat),
		MaxLon: math.Min(180, r.MaxLon+dLon),
	}
}
