package geo

import "math"

// Point3 is a position on the local east-north-up frame, in metres. It
// backs the 3-D physical model extension (paper §VII-B1) where GPS samples
// carry altitude.
type Point3 struct {
	X float64 `json:"x"` // metres east
	Y float64 `json:"y"` // metres north
	Z float64 `json:"z"` // metres above the reference altitude
}

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// XY projects the point onto the horizontal plane.
func (p Point3) XY() Point { return Point{X: p.X, Y: p.Y} }

// TravelEllipsoid is the 3-D possible-travel-range between two samples:
// {p : d(p,F1) + d(p,F2) <= SumLimit}, a prolate spheroid with the two
// sample positions as foci.
type TravelEllipsoid struct {
	F1       Point3  `json:"f1"`
	F2       Point3  `json:"f2"`
	SumLimit float64 `json:"sumLimit"`
}

// NewTravelEllipsoid builds the 3-D possible-travel-range between two
// positions observed dt seconds apart under speed bound vmax (m/s).
func NewTravelEllipsoid(f1, f2 Point3, dt, vmax float64) TravelEllipsoid {
	return TravelEllipsoid{F1: f1, F2: f2, SumLimit: vmax * dt}
}

// Empty reports whether the ellipsoid contains no points.
func (e TravelEllipsoid) Empty() bool { return e.SumLimit < e.F1.Dist(e.F2) }

// Contains reports whether p lies inside or on the ellipsoid.
func (e TravelEllipsoid) Contains(p Point3) bool {
	return p.Dist(e.F1)+p.Dist(e.F2) <= e.SumLimit
}

// Cylinder is a vertical no-fly region z' = (lat, lon, alt, r): the set of
// points within horizontal radius R of the axis and with height in
// [ZMin, ZMax]. The paper interprets the 4-tuple as a cylinder above the
// protected property.
type Cylinder struct {
	Center Point   `json:"center"` // axis position on the horizontal plane
	R      float64 `json:"r"`      // horizontal radius, metres
	ZMin   float64 `json:"zMin"`   // bottom of the protected airspace
	ZMax   float64 `json:"zMax"`   // top of the protected airspace
}

// Contains reports whether p lies inside the cylinder.
func (c Cylinder) Contains(p Point3) bool {
	return p.Z >= c.ZMin && p.Z <= c.ZMax && c.Center.Dist(p.XY()) <= c.R
}

// IntersectsEllipsoid reports whether the travel ellipsoid reaches into the
// cylinder, i.e. whether the two consecutive samples fail to prove alibi to
// the 3-D zone (paper §VII-B1: alibi iff E' ∩ z' = ∅).
//
// The focal-sum f(p) = d(p,F1)+d(p,F2) is convex in 3-D as well; we
// minimise it over the cylinder by minimising, for each candidate height z
// in [ZMin, ZMax], over the horizontal disk at that height. The inner disk
// minimisation reuses the 2-D machinery on the slice; the outer height
// minimisation is unimodal (a convex function partially minimised over a
// convex set remains convex in the remaining variable) so golden-section
// search applies.
func (c Cylinder) IntersectsEllipsoid(e TravelEllipsoid) bool {
	if e.Empty() {
		return false
	}
	return c.minFocalSum(e) <= e.SumLimit
}

// minFocalSum returns min over the cylinder of d(p,F1)+d(p,F2).
func (c Cylinder) minFocalSum(e TravelEllipsoid) float64 {
	atHeight := func(z float64) float64 {
		return minFocalSumOnDisk3(e, Circle{Center: c.Center, R: c.R}, z)
	}

	lo, hi := c.ZMin, c.ZMax
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi-lo < 1e-9 {
		return atHeight(lo)
	}
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := atHeight(x1), atHeight(x2)
	for i := 0; i < 80 && hi-lo > 1e-9; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = atHeight(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = atHeight(x2)
		}
	}
	return math.Min(math.Min(f1, f2), math.Min(atHeight(c.ZMin), atHeight(c.ZMax)))
}

// minFocalSumOnDisk3 minimises the 3-D focal sum over the horizontal disk
// at height z.
func minFocalSumOnDisk3(e TravelEllipsoid, disk Circle, z float64) float64 {
	f := func(p Point) float64 {
		q := Point3{X: p.X, Y: p.Y, Z: z}
		return q.Dist(e.F1) + q.Dist(e.F2)
	}

	// The unconstrained minimiser over the plane z=const of the focal sum
	// is found numerically; if it falls inside the disk we can take it
	// directly, otherwise the boundary search applies (convexity again).
	inner := minOnPlane(f, disk.Center)
	if disk.Contains(inner) {
		return f(inner)
	}
	return minOnCircle(f, disk)
}

// minOnPlane performs a coordinate-descent/gradient-free minimisation of a
// convex function on the plane starting near start. Nelder-Mead would be
// overkill; a shrinking pattern search converges fine for the smooth convex
// focal-sum.
func minOnPlane(f func(Point) float64, start Point) Point {
	p := start
	step := 1000.0
	fp := f(p)
	for step > 1e-7 {
		improved := false
		for _, d := range [4]Point{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			q := p.Add(d)
			if fq := f(q); fq < fp {
				p, fp = q, fq
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return p
}
