package geo

import "math"

// Point is a position on the local east-north plane, in metres.
type Point struct {
	X float64 `json:"x"` // metres east of the projection origin
	Y float64 `json:"y"` // metres north of the projection origin
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{X: p.X * k, Y: p.Y * k} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Projection maps WGS-84 coordinates onto a local tangent plane using the
// equirectangular approximation around an origin. At the county scale of the
// paper's field studies (a few miles) the approximation error is far below
// GPS noise, so planar geometry (ellipses, circles) is exact enough for the
// Proof-of-Alibi sufficiency tests.
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection returns a local projection centred at origin.
func NewProjection(origin LatLon) *Projection {
	cos := math.Cos(origin.Lat * math.Pi / 180)
	if math.Abs(cos) < 1e-9 {
		// Degenerate at the poles; clamp so the projection stays finite.
		cos = 1e-9
	}
	return &Projection{origin: origin, cosLat: cos}
}

// Origin returns the projection origin.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToLocal converts a geographic coordinate to local plane metres.
func (pr *Projection) ToLocal(p LatLon) Point {
	dLat := (p.Lat - pr.origin.Lat) * math.Pi / 180
	dLon := (p.Lon - pr.origin.Lon) * math.Pi / 180
	return Point{
		X: EarthRadiusMeters * dLon * pr.cosLat,
		Y: EarthRadiusMeters * dLat,
	}
}

// ToLatLon converts a local plane point back to a geographic coordinate.
func (pr *Projection) ToLatLon(p Point) LatLon {
	return LatLon{
		Lat: pr.origin.Lat + p.Y/EarthRadiusMeters*180/math.Pi,
		Lon: pr.origin.Lon + p.X/(EarthRadiusMeters*pr.cosLat)*180/math.Pi,
	}
}
