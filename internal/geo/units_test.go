package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestUnitConversions(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"one foot", FeetToMeters(1), 0.3048, 1e-12},
		{"one mile", MilesToMeters(1), 1609.344, 1e-9},
		{"five miles (airport NFZ radius)", MilesToMeters(5), 8046.72, 1e-9},
		{"100 mph (FAA vmax)", MPHToMetersPerSecond(100), 44.704, 1e-9},
		{"one knot", KnotsToMetersPerSecond(1), 0.514444, 1e-5},
		{"20 ft (residential NFZ radius)", FeetToMeters(20), 6.096, 1e-12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEqual(tt.got, tt.want, tt.tol) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestConversionRoundTrips(t *testing.T) {
	// Map arbitrary quick inputs into a physically meaningful range so the
	// conversion factors cannot overflow float64 at the extremes.
	clamp := func(x float64) float64 { return math.Mod(x, 1e9) }
	props := []struct {
		name string
		fn   func(float64) bool
	}{
		{"feet", func(raw float64) bool {
			x := clamp(raw)
			return almostEqual(MetersToFeet(FeetToMeters(x)), x, 1e-6*math.Abs(x)+1e-9)
		}},
		{"miles", func(raw float64) bool {
			x := clamp(raw)
			return almostEqual(MetersToMiles(MilesToMeters(x)), x, 1e-6*math.Abs(x)+1e-9)
		}},
		{"mph", func(raw float64) bool {
			x := clamp(raw)
			return almostEqual(MetersPerSecondToMPH(MPHToMetersPerSecond(x)), x, 1e-6*math.Abs(x)+1e-9)
		}},
		{"knots", func(raw float64) bool {
			x := clamp(raw)
			return almostEqual(MetersPerSecondToKnots(KnotsToMetersPerSecond(x)), x, 1e-6*math.Abs(x)+1e-9)
		}},
	}
	for _, p := range props {
		t.Run(p.name, func(t *testing.T) {
			if err := quick.Check(p.fn, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMaxDroneSpeed(t *testing.T) {
	if !almostEqual(MaxDroneSpeedMPS, 44.704, 1e-9) {
		t.Errorf("MaxDroneSpeedMPS = %v, want 44.704", MaxDroneSpeedMPS)
	}
}
