package geo

import "math"

// TravelEllipse is the possible-travel-range of a drone between two GPS
// samples (paper §IV-C1): the set of points p with
//
//	dist(p, F1) + dist(p, F2) <= SumLimit
//
// where F1, F2 are the two sample locations and SumLimit = vmax * (t2 - t1).
// When SumLimit < dist(F1, F2) the ellipse is empty (the samples themselves
// are inconsistent with the speed bound).
type TravelEllipse struct {
	F1       Point   `json:"f1"`
	F2       Point   `json:"f2"`
	SumLimit float64 `json:"sumLimit"` // metres
}

// NewTravelEllipse builds the possible-travel-range between two positions
// observed dt seconds apart under the speed bound vmax (m/s).
func NewTravelEllipse(f1, f2 Point, dt, vmax float64) TravelEllipse {
	return TravelEllipse{F1: f1, F2: f2, SumLimit: vmax * dt}
}

// Empty reports whether the ellipse contains no points, i.e. the two
// samples could not both be genuine under the speed bound.
func (e TravelEllipse) Empty() bool {
	return e.SumLimit < e.F1.Dist(e.F2)
}

// Contains reports whether p lies inside or on the ellipse.
func (e TravelEllipse) Contains(p Point) bool {
	return p.Dist(e.F1)+p.Dist(e.F2) <= e.SumLimit
}

// focalSum is the convex function f(p) = d(p,F1) + d(p,F2) whose sub-level
// set at SumLimit is the ellipse.
func (e TravelEllipse) focalSum(p Point) float64 {
	return p.Dist(e.F1) + p.Dist(e.F2)
}

// MinFocalSumOnDisk returns the minimum of d(p,F1)+d(p,F2) over the disk c.
// The ellipse intersects the disk iff this minimum is <= SumLimit.
//
// The focal-sum is convex, so:
//   - if the disk meets the focal segment [F1,F2], the minimum is the
//     inter-focal distance;
//   - otherwise the constrained minimum lies on the disk boundary, where the
//     restriction of a convex function to a circle is circularly unimodal,
//     so a coarse scan followed by golden-section refinement converges.
func (e TravelEllipse) MinFocalSumOnDisk(c Circle) float64 {
	if segmentDistToPoint(e.F1, e.F2, c.Center) <= c.R {
		return e.F1.Dist(e.F2)
	}
	return minOnCircle(e.focalSum, c)
}

// IntersectsDisk reports whether the ellipse and the disk share any point,
// using the exact convex minimisation. An empty ellipse intersects nothing.
func (e TravelEllipse) IntersectsDisk(c Circle) bool {
	if e.Empty() {
		return false
	}
	return e.MinFocalSumOnDisk(c) <= e.SumLimit
}

// DisjointFromDiskConservative implements the paper's boundary-distance
// test: the ellipse is certainly disjoint from the disk when
//
//	D1 + D2 > SumLimit, with Di = dist(Fi, center) - r.
//
// By the triangle inequality every point p in the disk has
// d(p,Fi) >= Di, so D1+D2 > SumLimit implies disjointness. The converse
// does not hold: the test may report "possibly intersecting" for some
// disjoint pairs, which only makes the sampler more eager (safe).
func (e TravelEllipse) DisjointFromDiskConservative(c Circle) bool {
	d1 := c.BoundaryDist(e.F1)
	d2 := c.BoundaryDist(e.F2)
	return d1+d2 > e.SumLimit
}

// SemiMajor returns the semi-major axis length a = SumLimit/2, or 0 for an
// empty ellipse.
func (e TravelEllipse) SemiMajor() float64 {
	if e.Empty() {
		return 0
	}
	return e.SumLimit / 2
}

// SemiMinor returns the semi-minor axis length b = sqrt(a^2 - c^2) where c
// is half the inter-focal distance, or 0 for an empty ellipse.
func (e TravelEllipse) SemiMinor() float64 {
	if e.Empty() {
		return 0
	}
	a := e.SumLimit / 2
	f := e.F1.Dist(e.F2) / 2
	return math.Sqrt(math.Max(0, a*a-f*f))
}

// segmentDistToPoint returns the distance from point p to the segment [a,b].
func segmentDistToPoint(a, b, p Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return a.Dist(p)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	proj := a.Add(ab.Scale(t))
	return proj.Dist(p)
}

// minOnCircle minimises f over the boundary of c, assuming the restriction
// of f to the circle is circularly unimodal (true for convex f whose
// unconstrained minimiser lies outside c). It scans a coarse grid to
// bracket the minimum, then refines with golden-section search.
func minOnCircle(f func(Point) float64, c Circle) float64 {
	const grid = 64
	at := func(theta float64) float64 {
		return f(Point{
			X: c.Center.X + c.R*math.Cos(theta),
			Y: c.Center.Y + c.R*math.Sin(theta),
		})
	}

	best, bestTheta := math.Inf(1), 0.0
	step := 2 * math.Pi / grid
	for i := 0; i < grid; i++ {
		theta := float64(i) * step
		if v := at(theta); v < best {
			best, bestTheta = v, theta
		}
	}

	// Golden-section refine within one grid step on either side.
	lo, hi := bestTheta-step, bestTheta+step
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := at(x1), at(x2)
	for i := 0; i < 60 && hi-lo > 1e-12; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = at(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = at(x2)
		}
	}
	return math.Min(best, math.Min(f1, f2))
}
