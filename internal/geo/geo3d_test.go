package geo

import (
	"math/rand"
	"testing"
)

func TestPoint3Dist(t *testing.T) {
	a := Point3{X: 1, Y: 2, Z: 2}
	if d := a.Dist(Point3{}); !almostEqual(d, 3, 1e-12) {
		t.Errorf("Dist = %v, want 3", d)
	}
	if xy := a.XY(); xy != (Point{X: 1, Y: 2}) {
		t.Errorf("XY = %+v", xy)
	}
}

func TestTravelEllipsoidBasics(t *testing.T) {
	f1 := Point3{X: -300, Y: 0, Z: 100}
	f2 := Point3{X: 300, Y: 0, Z: 100}
	e := NewTravelEllipsoid(f1, f2, 22.37, 44.704) // SumLimit ~1000 m

	if e.Empty() {
		t.Fatal("feasible ellipsoid should not be empty")
	}
	if !e.Contains(Point3{X: 0, Y: 0, Z: 100}) {
		t.Error("midpoint should be inside")
	}
	if e.Contains(Point3{X: 0, Y: 0, Z: 100 + 401}) {
		t.Error("point past the minor axis should be outside")
	}

	tight := NewTravelEllipsoid(f1, f2, 1, 44.704)
	if !tight.Empty() {
		t.Error("speed-infeasible ellipsoid should be empty")
	}
}

func TestCylinderContains(t *testing.T) {
	c := Cylinder{Center: Point{X: 0, Y: 0}, R: 50, ZMin: 0, ZMax: 120}
	tests := []struct {
		name string
		p    Point3
		want bool
	}{
		{"inside", Point3{X: 10, Y: 10, Z: 60}, true},
		{"on wall", Point3{X: 50, Y: 0, Z: 60}, true},
		{"above top", Point3{X: 0, Y: 0, Z: 121}, false},
		{"below bottom", Point3{X: 0, Y: 0, Z: -1}, false},
		{"outside radius", Point3{X: 51, Y: 0, Z: 60}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%+v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCylinderEllipsoidIntersection(t *testing.T) {
	// Drone flying level at 80 m; cylinder NFZ 0-120 m tall.
	cyl := Cylinder{Center: Point{X: 0, Y: 0}, R: 50, ZMin: 0, ZMax: 120}

	tests := []struct {
		name string
		e    TravelEllipsoid
		want bool
	}{
		{
			"passes right through",
			TravelEllipsoid{F1: Point3{X: -200, Z: 80}, F2: Point3{X: 200, Z: 80}, SumLimit: 500},
			true,
		},
		{
			"flies far above the zone top",
			TravelEllipsoid{F1: Point3{X: -200, Z: 800}, F2: Point3{X: 200, Z: 800}, SumLimit: 410},
			false,
		},
		{
			// SumLimit 401 vs focal distance 400 gives a semi-minor axis
			// of ~14.2 m, so the closest reachable point is at Y ~ 55.8,
			// outside the 50 m cylinder radius.
			"tight trace passing near but outside radius",
			TravelEllipsoid{F1: Point3{X: -200, Y: 70, Z: 80}, F2: Point3{X: 200, Y: 70, Z: 80}, SumLimit: 401},
			false,
		},
		{
			"loose trace that could detour into the zone",
			TravelEllipsoid{F1: Point3{X: -200, Y: 60, Z: 80}, F2: Point3{X: 200, Y: 60, Z: 80}, SumLimit: 800},
			true,
		},
		{
			"empty ellipsoid",
			TravelEllipsoid{F1: Point3{X: -200, Z: 80}, F2: Point3{X: 200, Z: 80}, SumLimit: 100},
			false,
		},
		{
			"just above the top, slack enough to dip in",
			TravelEllipsoid{F1: Point3{X: 0, Y: 0, Z: 130}, F2: Point3{X: 10, Y: 0, Z: 130}, SumLimit: 100},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cyl.IntersectsEllipsoid(tt.e); got != tt.want {
				t.Errorf("IntersectsEllipsoid = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestCylinderIntersectionAgainstSampling cross-validates the analytic
// intersection with random point sampling inside the cylinder.
func TestCylinderIntersectionAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cyl := Cylinder{Center: Point{X: 0, Y: 0}, R: 80, ZMin: 0, ZMax: 150}
	for i := 0; i < 150; i++ {
		f1 := Point3{X: rng.Float64()*800 - 400, Y: rng.Float64()*800 - 400, Z: rng.Float64() * 300}
		f2 := Point3{X: rng.Float64()*800 - 400, Y: rng.Float64()*800 - 400, Z: rng.Float64() * 300}
		e := TravelEllipsoid{F1: f1, F2: f2, SumLimit: f1.Dist(f2) + rng.Float64()*400}

		foundInside := false
		for j := 0; j < 800 && !foundInside; j++ {
			p := Point3{
				X: rng.Float64()*200 - 100,
				Y: rng.Float64()*200 - 100,
				Z: rng.Float64() * 160,
			}
			if cyl.Contains(p) && e.Contains(p) {
				foundInside = true
			}
		}
		if foundInside && !cyl.IntersectsEllipsoid(e) {
			t.Fatalf("sampling found a shared point but analytic test says disjoint: e=%+v", e)
		}
	}
}
