package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSECContainsAll: the smallest enclosing circle contains every
// input point.
func TestQuickSECContainsAll(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
		}
		c := SmallestEnclosingCircle(pts)
		for _, p := range pts {
			if c.Center.Dist(p) > c.R*(1+1e-7)+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickSECSubsetMonotone: adding points never shrinks the enclosing
// circle.
func TestQuickSECSubsetMonotone(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
		}
		sub := pts[:1+rng.Intn(n)]
		rSub := SmallestEnclosingCircle(sub).R
		rAll := SmallestEnclosingCircle(pts).R
		return rAll >= rSub-1e-7
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickEllipseContainsFoci: any non-empty travel ellipse contains both
// of its foci (the drone certainly was at both samples).
func TestQuickEllipseContainsFoci(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		f2 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		e := TravelEllipse{F1: f1, F2: f2, SumLimit: f1.Dist(f2) * (1 + rng.Float64())}
		return e.Contains(e.F1) && e.Contains(e.F2)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEllipseDiskSymmetricInFoci: swapping the foci never changes the
// intersection verdict.
func TestQuickEllipseDiskSymmetricInFoci(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		f2 := Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000}
		sum := f1.Dist(f2) + rng.Float64()*800
		c := Circle{
			Center: Point{X: rng.Float64()*3000 - 1500, Y: rng.Float64()*3000 - 1500},
			R:      rng.Float64()*400 + 1,
		}
		a := TravelEllipse{F1: f1, F2: f2, SumLimit: sum}
		b := TravelEllipse{F1: f2, F2: f1, SumLimit: sum}
		return a.IntersectsDisk(c) == b.IntersectsDisk(c)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickOffsetDistance: Offset moves a point by exactly the requested
// geodesic distance (within numerical tolerance) for any bearing.
func TestQuickOffsetDistance(t *testing.T) {
	origin := LatLon{Lat: 40.1106, Lon: -88.2073}
	fn := func(rawBearing, rawDist float64) bool {
		bearing := mod360(rawBearing)
		dist := modRange(rawDist, 50000)
		q := origin.Offset(bearing, dist)
		got := HaversineMeters(origin, q)
		return almostEqual(got, dist, dist*1e-6+1e-6)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRectContainsCenter: any rect built from two corners contains
// both corners and its centre.
func TestQuickRectContainsCenter(t *testing.T) {
	fn := func(lat1Raw, lon1Raw, lat2Raw, lon2Raw float64) bool {
		a := LatLon{Lat: modRange(lat1Raw, 85), Lon: modRange(lon1Raw, 175)}
		b := LatLon{Lat: modRange(lat2Raw, 85), Lon: modRange(lon2Raw, 175)}
		r := NewRect(a, b)
		mid := LatLon{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
		return r.Contains(a) && r.Contains(b) && r.Contains(mid)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// mod360 maps an arbitrary float into [0, 360).
func mod360(x float64) float64 {
	m := math.Mod(x, 360)
	if m < 0 {
		m += 360
	}
	return m
}

// modRange maps an arbitrary float into [0, limit).
func modRange(x, limit float64) float64 {
	m := math.Mod(math.Abs(x), limit)
	if math.IsNaN(m) {
		return 0
	}
	return m
}
