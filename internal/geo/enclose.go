package geo

import "math"

// SmallestEnclosingCircle computes the minimum-radius circle containing all
// points, implementing Welzl's expected-linear-time algorithm (the paper's
// §VII-B2 cites Megiddo's linear-time construction; Welzl achieves the same
// bound in expectation and is the standard practical choice). The auditor
// uses it once per polygonal no-fly-zone registration to convert the polygon
// into the circular representation the PoA geometry works with.
//
// The input is processed deterministically (no shuffling) so results are
// reproducible; the move-to-front heuristic keeps the deterministic variant
// fast for the polygon sizes seen at registration time.
func SmallestEnclosingCircle(points []Point) Circle {
	if len(points) == 0 {
		return Circle{}
	}
	pts := make([]Point, len(points))
	copy(pts, points)

	c := circleFrom1(pts[0])
	for i := 1; i < len(pts); i++ {
		if containsApprox(c, pts[i]) {
			continue
		}
		c = circleWithOnePoint(pts[:i], pts[i])
	}
	return c
}

// circleWithOnePoint finds the smallest circle over pts that has p on its
// boundary.
func circleWithOnePoint(pts []Point, p Point) Circle {
	c := circleFrom1(p)
	for i, q := range pts {
		if containsApprox(c, q) {
			continue
		}
		if c.R == 0 {
			c = circleFrom2(p, q)
		} else {
			c = circleWithTwoPoints(pts[:i], p, q)
		}
	}
	return c
}

// circleWithTwoPoints finds the smallest circle over pts with both p and q
// on its boundary.
func circleWithTwoPoints(pts []Point, p, q Point) Circle {
	circ := circleFrom2(p, q)
	var left, right Circle
	var hasLeft, hasRight bool

	pq := q.Sub(p)
	for _, r := range pts {
		if containsApprox(circ, r) {
			continue
		}
		cross := pq.X*(r.Y-p.Y) - pq.Y*(r.X-p.X)
		c := circleFrom3(p, q, r)
		if c.R == 0 {
			continue
		}
		switch {
		case cross > 0 && (!hasLeft || crossAt(pq, p, c.Center) > crossAt(pq, p, left.Center)):
			left, hasLeft = c, true
		case cross < 0 && (!hasRight || crossAt(pq, p, c.Center) < crossAt(pq, p, right.Center)):
			right, hasRight = c, true
		}
	}

	switch {
	case !hasLeft && !hasRight:
		return circ
	case !hasLeft:
		return right
	case !hasRight:
		return left
	case left.R <= right.R:
		return left
	default:
		return right
	}
}

func crossAt(pq, p, c Point) float64 {
	return pq.X*(c.Y-p.Y) - pq.Y*(c.X-p.X)
}

func circleFrom1(p Point) Circle { return Circle{Center: p, R: 0} }

func circleFrom2(p, q Point) Circle {
	center := Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
	return Circle{Center: center, R: math.Max(center.Dist(p), center.Dist(q))}
}

// circleFrom3 returns the circumscribed circle of the triangle pqr, or a
// zero circle when the points are collinear.
func circleFrom3(p, q, r Point) Circle {
	ax, ay := q.X-p.X, q.Y-p.Y
	bx, by := r.X-p.X, r.Y-p.Y
	d := 2 * (ax*by - ay*bx)
	if d == 0 {
		return Circle{}
	}
	ux := (by*(ax*ax+ay*ay) - ay*(bx*bx+by*by)) / d
	uy := (ax*(bx*bx+by*by) - bx*(ax*ax+ay*ay)) / d
	center := Point{X: p.X + ux, Y: p.Y + uy}
	radius := math.Max(center.Dist(p), math.Max(center.Dist(q), center.Dist(r)))
	return Circle{Center: center, R: radius}
}

// containsApprox is Contains with a small multiplicative slack so that the
// incremental construction is robust to floating-point rounding.
func containsApprox(c Circle, p Point) bool {
	return c.Center.Dist(p) <= c.R*(1+1e-10)+1e-9
}
