package protocol

// Cluster-layer wire surface: the endpoints auditor nodes use among
// themselves (forwarding, gossip, state handoff) and that routing
// clients use to learn the ring (/cluster/map). The payload of the map
// and gossip exchanges is owned by internal/cluster; this file only
// names the doors and the cross-node envelopes so operator clients and
// the auditor agree without importing each other.

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Cluster endpoint paths.
const (
	// PathClusterMap serves the versioned cluster map (GET): the
	// client-side routing contract.
	PathClusterMap = "/cluster/map"
	// PathClusterGossip accepts one membership digest (POST) and answers
	// with the receiver's digest — the HTTP fallback for peers without a
	// wire address.
	PathClusterGossip = "/cluster/gossip"
	// PathClusterRegister files a drone registration under a
	// router-issued ID on the owning node (POST, cluster-internal).
	PathClusterRegister = "/cluster/register"
	// PathClusterZone replicates a zone registration to a peer's shards
	// (POST, cluster-internal; receivers do not re-broadcast).
	PathClusterZone = "/cluster/zone"
	// PathClusterHandoff streams shard state to a new owner before the
	// ring change takes effect (POST, cluster-internal).
	PathClusterHandoff = "/cluster/handoff"
	// PathClusterKey serves the cluster's shared PoA encryption key to a
	// joining node (GET, cluster-internal; production deployments must
	// front this with an authenticated channel).
	PathClusterKey = "/cluster/key"
)

// PathReadyz is the readiness probe (GET): 200 once a node has recovered
// its shards and joined the ring, 503 with a reason otherwise. Routing
// clients treat a non-ready node as a redial target, not a routing
// destination. Distinct from /healthz, which only proves the process is
// alive.
const PathReadyz = "/readyz"

// ForwardedHeader marks a request as already forwarded once between
// auditor nodes. A node receiving a marked request for a drone it does
// not own answers ErrMisrouted instead of forwarding again — the
// single-hop guard that turns routing disagreement into a client-visible
// retry instead of a forwarding loop.
const ForwardedHeader = "X-Alidrone-Forwarded"

// ErrMisrouted is the sentinel for the single-hop guard: the receiving
// node does not own the drone and the request was already forwarded (or
// arrived on a cluster-internal door that never forwards). The HTTP
// transport maps it to 421 Misdirected Request; clients refresh their
// cluster map and retry.
var ErrMisrouted = errors.New("protocol: request misrouted past its owning node")

// MisroutedError carries the routing disagreement's details.
type MisroutedError struct {
	// DroneID is the key that was routed.
	DroneID string
	// Owner is the node the receiver believes owns it ("" when the
	// receiver has no ring).
	Owner string
}

// Error implements error.
func (e *MisroutedError) Error() string {
	return fmt.Sprintf("%v: drone %q (owner here: %q)", ErrMisrouted, e.DroneID, e.Owner)
}

// Unwrap makes errors.Is(err, ErrMisrouted) hold.
func (e *MisroutedError) Unwrap() error { return ErrMisrouted }

// ClusterRegisterRequest files a drone under an ID the routing layer
// already placed on the ring (the router issues IDs, the owner stores
// them).
type ClusterRegisterRequest struct {
	DroneID string               `json:"droneId"`
	Req     RegisterDroneRequest `json:"req"`
}

// ClusterHandoffRequest streams one node's shard state to the node that
// owns (part of) it under a newer map. State is the source shard's
// snapshot in the auditor's persistence format; the receiver imports the
// entries the new ring assigns to it and checkpoints before answering,
// so an acknowledged handoff is durable on the new owner.
type ClusterHandoffRequest struct {
	From       string            `json:"from"`
	MapVersion uint64            `json:"mapVersion"`
	State      []json.RawMessage `json:"state"` // one snapshot per source shard
}

// ClusterKeyResponse carries the cluster's shared PoA encryption key.
type ClusterKeyResponse struct {
	EncKey string `json:"encKey"`
}
