package protocol

// Cluster-layer wire surface: the endpoints auditor nodes use among
// themselves (forwarding, gossip, state handoff) and that routing
// clients use to learn the ring (/cluster/map). The payload of the map
// and gossip exchanges is owned by internal/cluster; this file only
// names the doors and the cross-node envelopes so operator clients and
// the auditor agree without importing each other.

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Cluster endpoint paths.
const (
	// PathClusterMap serves the versioned cluster map (GET): the
	// client-side routing contract.
	PathClusterMap = "/cluster/map"
	// PathClusterGossip accepts one membership digest (POST) and answers
	// with the receiver's digest — the HTTP fallback for peers without a
	// wire address.
	PathClusterGossip = "/cluster/gossip"
	// PathClusterRegister files a drone registration under a
	// router-issued ID on the owning node (POST, cluster-internal).
	PathClusterRegister = "/cluster/register"
	// PathClusterZone replicates a zone registration to a peer's shards
	// (POST, cluster-internal; receivers do not re-broadcast).
	PathClusterZone = "/cluster/zone"
	// PathClusterHandoff streams shard state to a new owner before the
	// ring change takes effect (POST, cluster-internal).
	PathClusterHandoff = "/cluster/handoff"
	// PathClusterKey serves the cluster's shared PoA encryption key to a
	// joining node (GET, cluster-internal; production deployments must
	// front this with an authenticated channel).
	PathClusterKey = "/cluster/key"
	// PathClusterMetrics serves the fleet-merged metrics exposition
	// (GET): the serving node scrapes every peer's /metrics, merges the
	// series (exact for fixed-bucket histograms) and answers with the
	// aggregate plus per-node series carrying a node label. Any node
	// answers for the whole fleet.
	PathClusterMetrics = "/cluster/metrics"
	// PathClusterStatus serves a fleet-wide JSON status snapshot (GET):
	// ring version, per-node membership state, per-shard counts, handoff
	// progress and SLO summaries. Any node answers for the whole fleet.
	PathClusterStatus = "/cluster/status"
	// PathClusterNodeStatus serves one node's own status fragment (GET,
	// cluster-internal): the per-node slice PathClusterStatus aggregates.
	PathClusterNodeStatus = "/cluster/nodestatus"
)

// PathReadyz is the readiness probe (GET): 200 once a node has recovered
// its shards and joined the ring, 503 with a reason otherwise. Routing
// clients treat a non-ready node as a redial target, not a routing
// destination. Distinct from /healthz, which only proves the process is
// alive.
const PathReadyz = "/readyz"

// ForwardedHeader marks a request as already forwarded once between
// auditor nodes. A node receiving a marked request for a drone it does
// not own answers ErrMisrouted instead of forwarding again — the
// single-hop guard that turns routing disagreement into a client-visible
// retry instead of a forwarding loop.
const ForwardedHeader = "X-Alidrone-Forwarded"

// ErrMisrouted is the sentinel for the single-hop guard: the receiving
// node does not own the drone and the request was already forwarded (or
// arrived on a cluster-internal door that never forwards). The HTTP
// transport maps it to 421 Misdirected Request; clients refresh their
// cluster map and retry.
var ErrMisrouted = errors.New("protocol: request misrouted past its owning node")

// MisroutedError carries the routing disagreement's details.
type MisroutedError struct {
	// DroneID is the key that was routed.
	DroneID string
	// Owner is the node the receiver believes owns it ("" when the
	// receiver has no ring).
	Owner string
}

// Error implements error.
func (e *MisroutedError) Error() string {
	return fmt.Sprintf("%v: drone %q (owner here: %q)", ErrMisrouted, e.DroneID, e.Owner)
}

// Unwrap makes errors.Is(err, ErrMisrouted) hold.
func (e *MisroutedError) Unwrap() error { return ErrMisrouted }

// ClusterRegisterRequest files a drone under an ID the routing layer
// already placed on the ring (the router issues IDs, the owner stores
// them).
type ClusterRegisterRequest struct {
	DroneID string               `json:"droneId"`
	Req     RegisterDroneRequest `json:"req"`
}

// ClusterHandoffRequest streams one node's shard state to the node that
// owns (part of) it under a newer map. State is the source shard's
// snapshot in the auditor's persistence format; the receiver imports the
// entries the new ring assigns to it and checkpoints before answering,
// so an acknowledged handoff is durable on the new owner.
type ClusterHandoffRequest struct {
	From       string            `json:"from"`
	MapVersion uint64            `json:"mapVersion"`
	State      []json.RawMessage `json:"state"` // one snapshot per source shard
}

// ClusterKeyResponse carries the cluster's shared PoA encryption key.
type ClusterKeyResponse struct {
	EncKey string `json:"encKey"`
}

// ClusterShardStatus is one shard's slice of a node status.
type ClusterShardStatus struct {
	Shard        string `json:"shard"` // shard tag (e.g. "node-1-s0")
	Drones       int    `json:"drones"`
	RetainedPoAs int    `json:"retainedPoAs"`
	OpenStreams  int    `json:"openStreams"`
	Sessions     int    `json:"sessions"`
	// WALSince counts WAL records appended since the shard's last
	// snapshot compaction (its durable backlog).
	WALSince uint64 `json:"walSince"`
}

// ClusterNodeStatus is one node's status fragment: what the node knows
// about itself, served on PathClusterNodeStatus and aggregated into
// ClusterStatusResponse.
type ClusterNodeStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// State is the membership state the *reporting* node sees for this
	// node (alive/suspect/dead); a node always reports itself alive.
	State string `json:"state"`
	// RingVersion is the cluster-map version this node operates under;
	// disagreement across nodes means a membership change is still
	// propagating.
	RingVersion uint64               `json:"ringVersion"`
	Shards      []ClusterShardStatus `json:"shards"`
	// HandoffsSeen maps source node → highest map version whose handoff
	// this node has imported (rebalance progress).
	HandoffsSeen map[string]uint64 `json:"handoffsSeen,omitempty"`
	// SLO is the node's sliding-window latency/shed summary (the
	// obs.SLOSummary JSON; raw so the protocol layer stays decoupled
	// from the obs package). Empty when SLO tracking is disabled.
	SLO json.RawMessage `json:"slo,omitempty"`
	// WireConnections is the node's live binary-transport connections.
	WireConnections int `json:"wireConnections"`
	// Err is set on the aggregating node when this peer could not be
	// reached; the other fields are then zero.
	Err string `json:"err,omitempty"`
}

// ClusterStatusResponse is the fleet-wide status snapshot.
type ClusterStatusResponse struct {
	// FetchedFrom is the node that served the aggregation.
	FetchedFrom string `json:"fetchedFrom"`
	// RingVersion is the serving node's cluster-map version.
	RingVersion uint64              `json:"ringVersion"`
	Nodes       []ClusterNodeStatus `json:"nodes"`
}
