package protocol

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the sentinel for load-shedding: the Auditor's
// admission controller refused the request because the verification
// budget is exhausted. It is a *retryable* condition — nothing about the
// submission itself was judged — and the HTTP transport maps it to
// 429 Too Many Requests with a Retry-After header.
var ErrOverloaded = errors.New("protocol: auditor overloaded")

// OverloadedError is the typed load-shedding error: it matches
// ErrOverloaded via errors.Is and carries the backoff hint the transport
// serialises as Retry-After.
type OverloadedError struct {
	// RetryAfter is how long the client should wait before retrying.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// RetryAfterHeader is the HTTP header carrying the shed request's backoff
// hint, in integral seconds (RFC 9110 §10.2.3).
const RetryAfterHeader = "Retry-After"
