package protocol

import "time"

// AccusationRequest is a Zone Owner's incident report (paper §III-A): she
// spotted the drone's visible identifier near her property and reports
// (zone, drone, time) to the Auditor, who checks the retained
// Proof-of-Alibi.
type AccusationRequest struct {
	DroneID string    `json:"droneId"`
	ZoneID  string    `json:"zoneId"`
	At      time.Time `json:"at"`
}

// PathAccuse is the accusation endpoint.
const PathAccuse = "/v1/accuse"
