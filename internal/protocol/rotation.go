package protocol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/poa"
	"repro/internal/sigcrypto"
)

var (
	// ErrUnknownEpoch is returned when a PoA names a key rotation epoch
	// the Auditor has no record of for that drone.
	ErrUnknownEpoch = errors.New("protocol: unknown key epoch")
	// ErrEpochExpired is returned when a PoA is signed under a retired
	// key whose acceptance window has closed.
	ErrEpochExpired = errors.New("protocol: key epoch outside the rotation acceptance window")
)

// PathRotateKey is the key-rotation endpoint.
const PathRotateKey = "/v1/rotate-key"

// RotateKeyRequest carries a TEE key handover to the Auditor: the new
// verification key at epoch NewEpoch, vouched for by the outgoing key's
// signature inside the handover record.
type RotateKeyRequest struct {
	DroneID  string             `json:"droneId"`
	Handover sigcrypto.Handover `json:"handover"`
}

// RotateKeyResponse acknowledges the now-active key epoch.
type RotateKeyResponse struct {
	Epoch int `json:"epoch"`
}

// RotationAPI is the optional key-rotation surface of an Auditor
// transport. It is separate from API so transports and test doubles that
// predate rotation keep compiling; callers type-assert for it.
type RotationAPI interface {
	RotateKey(req RotateKeyRequest) (RotateKeyResponse, error)
}

// KeyRing resolves a drone's TEE verification key for a key rotation
// epoch. Implementations decide the acceptance policy for retired epochs
// (the Auditor keys it off its injectable clock).
type KeyRing interface {
	KeyFor(epoch int) (sigcrypto.PublicKey, error)
}

// StaticKey is a single-key ring for drones that have never rotated: it
// serves epoch zero and reports ErrUnknownEpoch for everything else.
type StaticKey struct {
	Pub sigcrypto.PublicKey
}

// KeyFor implements KeyRing.
func (k StaticKey) KeyFor(epoch int) (sigcrypto.PublicKey, error) {
	if epoch != 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownEpoch, epoch)
	}
	return k.Pub, nil
}

// anyEpochKey ignores the epoch entirely — the pre-rotation behaviour the
// legacy *rsa.PublicKey verify helpers preserve.
type anyEpochKey struct {
	pub sigcrypto.PublicKey
}

func (k anyEpochKey) KeyFor(int) (sigcrypto.PublicKey, error) { return k.pub, nil }

// VerifyPoASamplesRingCtx checks every per-sample TEE signature in a PoA,
// resolving the verification key per sample through the ring so traces
// that span a key rotation verify correctly. It returns the index of the
// first bad sample, or -1 with a nil error when all verify; pool and ctx
// behave as in VerifyPoASignaturesPoolCtx.
func VerifyPoASamplesRingCtx(ctx context.Context, p poa.PoA, ring KeyRing, pool *parallel.Pool) (int, error) {
	idx, err := pool.FirstErrorCtx(ctx, len(p.Samples), func(i int) error {
		ss := p.Samples[i]
		key, err := ring.KeyFor(ss.KeyEpoch)
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		if err := key.Verify(ss.Sample.Marshal(), ss.Sig); err != nil {
			return fmt.Errorf("sample %d: %w", i, ErrBadSignature)
		}
		return nil
	})
	if err != nil {
		return idx, err
	}
	return -1, nil
}

// IsVerdictError reports whether a signature-verification error is a
// typed authenticity failure — one that should become a violation verdict
// — rather than an internal fault that must withhold the verdict.
func IsVerdictError(err error) bool {
	return errors.Is(err, ErrBadSignature) ||
		errors.Is(err, sigcrypto.ErrBadSignature) ||
		errors.Is(err, ErrUnknownEpoch) ||
		errors.Is(err, ErrEpochExpired)
}
