package protocol

// This file defines the wire messages for the paper's §VII-A1 alternative
// Proof-of-Alibi envelopes, which address the cost of per-sample
// asymmetric signatures on long keys:
//
//   - batch mode (§VII-A1b): the TEE buffers samples in secure memory and
//     signs the whole trace once at the end of the flight;
//   - symmetric mode (§VII-A1a): the TEE establishes an ephemeral HMAC
//     session key with the Auditor before the flight and tags each sample
//     with it.

// SubmitBatchPoARequest submits a batch-signed trace: the plaintext is the
// canonical batch encoding plus the single TEE signature, encrypted to the
// Auditor like a regular PoA.
type SubmitBatchPoARequest struct {
	DroneID        string `json:"droneId"`
	EncryptedBatch []byte `json:"encryptedBatch"` // RSAES over the JSON BatchPoA
}

// StartSessionRequest establishes a symmetric flight session: WrappedKey
// is the ephemeral HMAC key generated inside the drone TEE, encrypted
// under the Auditor's public key (so only the Auditor and the TEE ever
// hold it — crucially, not the Drone Operator).
type StartSessionRequest struct {
	DroneID    string `json:"droneId"`
	WrappedKey []byte `json:"wrappedKey"`
}

// StartSessionResponse acknowledges the session.
type StartSessionResponse struct {
	SessionID string `json:"sessionId"`
}

// SubmitMACPoARequest submits a symmetric-mode PoA: the samples carry
// HMAC tags under the flight's session key instead of RSA signatures.
type SubmitMACPoARequest struct {
	DroneID      string `json:"droneId"`
	SessionID    string `json:"sessionId"`
	EncryptedPoA []byte `json:"encryptedPoA"` // RSAES over the JSON PoA (tags in Sig fields)
}

// Extended endpoint paths.
const (
	PathSubmitBatchPoA = "/v1/submit-batch-poa"
	PathStartSession   = "/v1/start-session"
	PathSubmitMACPoA   = "/v1/submit-mac-poa"
)

// ModesAPI is the extended Auditor surface for the §VII-A1 envelopes.
// Implemented alongside API by auditor.Server and operator.HTTPAuditor.
type ModesAPI interface {
	SubmitBatchPoA(SubmitBatchPoARequest) (SubmitPoAResponse, error)
	StartSession(StartSessionRequest) (StartSessionResponse, error)
	SubmitMACPoA(SubmitMACPoARequest) (SubmitPoAResponse, error)
}
